//! Kernel fusion end-to-end: the multi-layer MLP of the paper's
//! Figure 11, validated numerically on the simulator and compared
//! against the per-layer cuBLASLt baseline on the timing model.
//!
//! ```text
//! cargo run --example fused_mlp
//! ```

use graphene::ir::Arch;
use graphene::kernels::mlp::{build_fused_mlp, MlpConfig};
use graphene::kernels::reference::cublaslt_gemm_epilogue;
use graphene::sim::host::{bias_add_ref, matmul_ref, relu_ref, HostTensor};
use graphene::sim::{analyze, machine_for, time_kernel, time_sequence};
use std::collections::HashMap;

fn main() {
    // --- numerics: a small fused MLP vs the reference chain -------------
    let cfg = MlpConfig { m: 64, hidden: 64, layers: 4, bm: 64, wm: 32, wn: 32 };
    let kernel = build_fused_mlp(Arch::Sm86, &cfg);
    graphene::ir::validate::validate(&kernel, Arch::Sm86).expect("validates");

    let (m, h, l) = (cfg.m as usize, cfg.hidden as usize, cfg.layers as usize);
    let x = HostTensor::random(&[m, h], 7);
    let weights: Vec<HostTensor> = (0..l)
        .map(|i| {
            let w = HostTensor::random(&[h, h], 70 + i as u64);
            HostTensor::from_vec(&[h, h], w.as_slice().iter().map(|v| v * 0.2).collect())
        })
        .collect();
    let biases: Vec<Vec<f32>> =
        (0..l).map(|i| (0..h).map(|j| ((i + j) % 3) as f32 * 0.05).collect()).collect();

    let mut w_flat = Vec::new();
    let mut b_flat = Vec::new();
    for i in 0..l {
        w_flat.extend_from_slice(weights[i].as_slice());
        b_flat.extend_from_slice(&biases[i]);
    }
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], x.as_slice().to_vec());
    inputs.insert(kernel.params[1], w_flat);
    inputs.insert(kernel.params[2], b_flat);
    let out = graphene::sim::execute(&kernel, Arch::Sm86, &inputs).expect("simulate");

    let mut expect = x.clone();
    for (w, b) in weights.iter().zip(&biases) {
        let mut next = matmul_ref(&expect, w);
        bias_add_ref(&mut next, b);
        relu_ref(&mut next);
        expect = next;
    }
    let got = HostTensor::from_vec(&[m, h], out.globals[&kernel.params[3]].clone());
    got.assert_close(&expect, 2e-3);
    println!(
        "fused {l}-layer MLP ({m}x{h}) matches the reference chain \
         (max |diff| = {:.2e})",
        got.max_abs_diff(&expect)
    );

    // --- timing shape: the paper's Figure 11 sweep ----------------------
    println!("\nFigure 11 sweep (M=4096, hidden=128) on the Ampere machine model:");
    println!("{:>7} {:>12} {:>14} {:>9}", "layers", "fused", "cuBLASLt x L", "speedup");
    let machine = machine_for(Arch::Sm86);
    for layers in [1i64, 2, 4, 8, 12, 16, 20] {
        let cfg = MlpConfig::paper(4096, layers);
        let k = build_fused_mlp(Arch::Sm86, &cfg);
        let fused = time_kernel(&analyze(&k, Arch::Sm86).unwrap(), machine, k.grid_size());
        let one = cublaslt_gemm_epilogue(4096, 128, 128, true, true).profile(machine);
        let unfused = time_sequence(&vec![one; layers as usize]);
        println!(
            "{layers:>7} {:>9.1} us {:>11.1} us {:>8.2}x",
            fused.time_s * 1e6,
            unfused * 1e6,
            unfused / fused.time_s
        );
    }
    println!(
        "\nThe fusion keeps all intermediate activations in shared memory: the\n\
         library baseline pays one kernel launch and one global-memory round\n\
         trip per layer (paper Figure 11)."
    );
}
