//! Using Graphene the way an ML compiler would (paper §5.4, §6): build a
//! Transformer-style operator graph, lower it once with the *default*
//! strategy (one library kernel per node) and once with the *fusing*
//! strategy (pattern-matching Graphene's fused kernels), and compare.
//!
//! ```text
//! cargo run --example compiler_lowering
//! ```

use graphene::ir::{Arch, UnaryOp};
use graphene::kernels::graph::{lower_fused, lower_unfused, Graph, Op};

fn main() {
    // A BERT-style encoder layer over batch 32 x seq 384 tokens.
    let layer = Graph::new(32 * 384, 768)
        .op(Op::MatMul { n: 768 }) // QKV projection (condensed)
        .op(Op::Attention { heads: 12, seq: 384 })
        .op(Op::MatMul { n: 768 }) // output projection
        .op(Op::BiasAdd)
        .op(Op::Layernorm)
        .op(Op::MatMul { n: 3072 }) // FFN expand
        .op(Op::BiasAdd)
        .op(Op::Activation(UnaryOp::Gelu))
        .op(Op::MatMul { n: 768 }) // FFN contract
        .op(Op::BiasAdd)
        .op(Op::Layernorm);

    println!(
        "operator graph: {} ops over [{}x{}] activations\n",
        layer.ops.len(),
        layer.rows,
        layer.cols
    );

    let unfused = lower_unfused(&layer);
    println!("default lowering (one library kernel per node): {} launches", unfused.launches());
    for k in &unfused.kernels {
        println!("  {}", k.describe());
    }
    let t_unfused = unfused.time_s(Arch::Sm86);

    let fused = lower_fused(&layer, Arch::Sm86);
    println!("\nGraphene fusing lowering: {} launches", fused.launches());
    for k in &fused.kernels {
        println!("  {}", k.describe());
    }
    let t_fused = fused.time_s(Arch::Sm86);

    println!(
        "\nsimulated layer time (Ampere): {:.1} us -> {:.1} us  ({:.2}x)",
        t_unfused * 1e6,
        t_fused * 1e6,
        t_unfused / t_fused
    );

    // The MLP case from Figure 11, as a graph.
    let mut mlp = Graph::new(4096, 128);
    for _ in 0..8 {
        mlp = mlp.op(Op::MatMul { n: 128 }).op(Op::BiasAdd).op(Op::Activation(UnaryOp::Relu));
    }
    let u = lower_unfused(&mlp);
    let f = lower_fused(&mlp, Arch::Sm86);
    println!(
        "\n8-layer MLP (Figure 11): {} launches -> {} launch ({}), {:.2}x faster",
        u.launches(),
        f.launches(),
        f.kernels[0].describe(),
        u.time_s(Arch::Sm86) / f.time_s(Arch::Sm86)
    );
    println!(
        "\n\"Fused kernels should be preferred over cumulative library invocations\n\
         (which often is the default lowering in deep learning compilers) if\n\
         problem sizes permit.\"  — the paper, section 6"
    );
}
