//! The optimized tensor-core GEMM (paper Figure 9's kernel): built with
//! the Graphene builder, validated functionally on a small size, then
//! profiled at the paper's evaluation size on both simulated machines.
//!
//! ```text
//! cargo run --example tensor_core_gemm
//! ```

use graphene::ir::Arch;
use graphene::kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene::sim::host::{matmul_ref, HostTensor};
use graphene::sim::{analyze, machine_for, time_kernel};
use std::collections::HashMap;

fn main() {
    // --- functional check on both architectures -------------------------
    for (arch, cfg) in [
        (Arch::Sm86, GemmConfig::small(64, 64, 32)),
        (
            Arch::Sm70,
            GemmConfig {
                m: 64,
                n: 64,
                k: 16,
                bm: 32,
                bn: 32,
                bk: 8,
                wm: 32,
                wn: 32,
                swizzle: true,
            },
        ),
    ] {
        let kernel = build_gemm(arch, &cfg, Epilogue::None);
        graphene::ir::validate::validate(&kernel, arch).expect("validates");
        let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
        let a = HostTensor::random(&[m, k], 5);
        let b = HostTensor::random(&[k, n], 6);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene::sim::execute(&kernel, arch, &inputs).expect("simulate");
        let expect = matmul_ref(&a, &b);
        let got = HostTensor::from_vec(&[m, n], out.globals[&kernel.params[2]].clone());
        got.assert_close(&expect, 1e-3);
        println!(
            "{arch}: {m}x{n}x{k} GEMM through {} matches the reference \
             ({} tensor-core FLOPs counted)",
            match arch {
                Arch::Sm86 => "ldmatrix + mma.m16n8k16",
                Arch::Sm70 => "quad-pair mma.m8n8k4",
            },
            out.counters.flops_tc
        );
    }

    // --- the paper-scale profile (Figure 9) ------------------------------
    println!("\nPaper-scale profile (cuBLAS tile sizes, fp16 with fp32 accumulation):");
    for arch in [Arch::Sm70, Arch::Sm86] {
        let (m, n, k) = match arch {
            Arch::Sm70 => (5120, 5120, 2048),
            Arch::Sm86 => (5376, 5376, 2048),
        };
        let kernel = build_gemm(arch, &GemmConfig::cublas_like(m, n, k), Epilogue::None);
        let c = analyze(&kernel, arch).expect("analyze");
        let p = time_kernel(&c, machine_for(arch), kernel.grid_size());
        println!(
            "  {arch:6} {m}x{n}x{k}: {:8.1} us, compute {:5.1}% of peak, \
             DRAM {:5.1}% of peak, smem conflict factor {:.2}",
            p.time_s * 1e6,
            p.compute_util * 100.0,
            p.dram_util * 100.0,
            c.conflict_factor()
        );
    }
    println!("\nBoth kernels are compute-bound — the Tensor Cores run at capacity\nwhile memory sits far below peak, matching the paper's Figure 9.");
}
