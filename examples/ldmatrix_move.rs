//! The paper's motivating example (Figure 1): a warp-level `ldmatrix`
//! data movement — expressed in Graphene IR, lowered to CUDA C++ with
//! inline PTX, and *executed* on the simulator to visualise the
//! data-to-thread mapping of Figures 1a/1b.
//!
//! ```text
//! cargo run --example ldmatrix_move
//! ```

use graphene::codegen::generate;
use graphene::ir::builder::KernelBuilder;
use graphene::ir::spec::SpecKind;
use graphene::ir::{Arch, Elem, ScalarType, TensorType};
use graphene::layout::{it, Layout};
use graphene::sym::IntExpr;
use std::collections::HashMap;

fn build() -> graphene::ir::Kernel {
    let mut kb = KernelBuilder::new("ldmatrix_move", &[1], &[32]);
    let block = kb.block();
    // Source staged from global so the simulation has observable inputs.
    let src = kb.param("src", &[16, 16], ScalarType::F16);
    let dump = kb.param("dump", &[32, 8], ScalarType::F16);
    let smem = kb.alloc_shared("smem", TensorType::row_major(&[16, 16], ScalarType::F16));
    let grid = kb.grid();

    // Stage src -> smem (one 8-wide vector per thread: 32 x 8 = 256).
    let tid = kb.module()[block].hw_var();
    let src_v8 = kb.tile_c(src, &[Some(1), Some(8)]).unwrap();
    let smem_v8 = kb.tile_c(smem, &[Some(1), Some(8)]).unwrap();
    let (r, c8) = (tid.clone() / 2, tid.clone() % 2);
    let s = kb.index(src_v8, &[r.clone(), c8.clone()]);
    let d = kb.index(smem_v8, &[r, c8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![s], vec![d]);
    kb.sync();

    // The destination register fragment [2,2].[1,2].fp16.RF (Table 2).
    let frag = TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: Elem::Tile(Box::new(TensorType::row_major(&[1, 2], ScalarType::F16))),
        swizzle: Default::default(),
    };
    let regs = kb.alloc_reg("regs", frag);

    // Figure 1d: decompose the Move down to the atomic ldmatrix.
    kb.spec_decomposed(SpecKind::Move, vec![block], vec![smem], vec![regs], |kb| {
        let warp = kb.block();
        let grp8 = kb.thread_tile(warp, &Layout::contiguous(8)).unwrap();
        let grps = kb.thread_reshape(grp8, &[2, 2]).unwrap();
        let g = kb.module()[grps].group_coords();
        let local = kb.module()[grps].local_coord();
        let tiles = kb.tile_c(smem, &[Some(8), Some(8)]).unwrap();
        let per_grp = kb.index(tiles, &[g[0].clone(), g[1].clone()]);
        let rows = kb.tile_c(per_grp, &[Some(1), None]).unwrap();
        let per_thr = kb.index(rows, &[local, IntExpr::zero()]);
        kb.spec(SpecKind::Move, vec![warp], vec![per_thr], vec![regs]);
    });

    // Dump every thread's fragment to global so we can print Figure 1b.
    let dump_v8 = kb.tile_c(dump, &[Some(1), Some(8)]).unwrap();
    let d = kb.index(dump_v8, &[tid.clone() % 32, IntExpr::zero()]);
    let regs_flat = kb.view_as(
        regs,
        TensorType::scalar(Layout::contiguous(8), ScalarType::F16),
        IntExpr::zero(),
    );
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![regs_flat], vec![d]);
    kb.build()
}

fn main() {
    let kernel = build();
    println!("=== Graphene IR (cf. paper Figure 1d) ===\n{kernel}");

    println!("=== Generated CUDA C++ (cf. paper Figure 1c) ===");
    println!("{}", generate(&kernel, Arch::Sm86).expect("Ampere codegen"));

    // Execute: fill the 16x16 source with value 100*row + col so the
    // fragment dump is readable.
    let src: Vec<f32> = (0..256).map(|i| (100 * (i / 16) + i % 16) as f32).collect();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], src);
    let out = graphene::sim::execute(&kernel, Arch::Sm86, &inputs).expect("simulate");
    let dump = &out.globals[&kernel.params[1]];

    println!("=== Register contents per thread (cf. paper Figure 1b) ===");
    println!("(each value printed as row*100 + col of the 16x16 source tile)\n");
    for t in 0..32 {
        let vals: Vec<String> = (0..8).map(|v| format!("{:4}", dump[t * 8 + v] as i64)).collect();
        println!("  T{t:02}: {}", vals.join(" "));
    }
    println!("\nThread T0 receives (0,0),(0,1) of each 8x8 tile — the mapping of Figure 1b.");

    // And the same IR is *rejected* on Volta, which has no ldmatrix:
    match generate(&kernel, Arch::Sm70) {
        Err(e) => println!("\nOn Volta: {e}"),
        Ok(_) => unreachable!("Volta must reject ldmatrix"),
    }
}
