//! Quickstart: the core Graphene concepts in one tour.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the paper's three core ideas — hierarchical tensor
//! layouts (§3), logical thread groups (§4), and decomposable specs
//! lowered to CUDA C++ (§5) — on small, printable examples.

use graphene::codegen::generate;
use graphene::ir::builder::KernelBuilder;
use graphene::ir::spec::SpecKind;
use graphene::ir::{Arch, ScalarType, TensorType};
use graphene::layout::{it, Layout};
use graphene::sim::execute;
use graphene::sym::IntExpr;
use std::collections::HashMap;

fn main() {
    // ------------------------------------------------------------------
    // 1. Tensors and layouts (paper §3, Figure 3).
    // ------------------------------------------------------------------
    println!("== 1. Layouts ==");
    let row_major = Layout::row_major(&[4, 8]);
    println!("row-major 4x8:        {row_major}");
    // A hierarchical dimension: two adjacent columns contiguous, then
    // down the rows (Figure 3c).
    let fancy = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
    println!("hierarchical (Fig3c): {fancy}");
    println!(
        "  logical (1,3) lands at physical {} (same 2-D coordinates, any layout)",
        fancy.crd2idx(&it![1, 3])
    );

    // Tiling is just nesting (Figure 4): tile a tensor type into 2x4
    // tiles and look at the derived strides.
    let a = TensorType::row_major(&[4, 8], ScalarType::F32);
    let tiled = a.tile_contiguous(&[Some(2), Some(4)]).unwrap();
    println!("tiled 4x8 by (2,4):   {tiled}");

    // ------------------------------------------------------------------
    // 2. Logical thread groups (paper §4, Figures 5/6).
    // ------------------------------------------------------------------
    println!("\n== 2. Logical thread groups ==");
    let warp = graphene::ir::ThreadTensor::new("w", graphene::ir::ThreadLevel::Thread, &[32]);
    let grouped =
        warp.tile("t", &Layout::contiguous(8)).unwrap().reshape_groups("g", &[2, 2]).unwrap();
    println!("warp tiled for ldmatrix: {}", grouped.render());
    for (i, c) in grouped.group_coords().iter().enumerate() {
        println!("  group coord {i}: {c}");
    }
    let quad_pairs = warp.tile("qp", &graphene::ir::atomic::quad_pair_layout()).unwrap();
    println!("Volta quad-pairs:        {}", quad_pairs.render());

    // ------------------------------------------------------------------
    // 3. A complete kernel: specs, codegen, simulation (paper §5).
    // ------------------------------------------------------------------
    println!("\n== 3. A vector-add kernel ==");
    let n = 256;
    let mut kb = KernelBuilder::new("vec_add", &[2], &[128]);
    let x = kb.param("x", &[n], ScalarType::F32);
    let y = kb.param("y", &[n], ScalarType::F32);
    let z = kb.param("z", &[n], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].group_coords()[0].clone();
    let i = bid * 128 + tid;

    let xe = kb.index(x, std::slice::from_ref(&i));
    let ye = kb.index(y, std::slice::from_ref(&i));
    let ze = kb.index(z, &[i]);
    let xr = kb.alloc_reg("xr", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
    let yr = kb.alloc_reg("yr", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xe], vec![xr]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![ye], vec![yr]);
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::BinaryPointwise(graphene::ir::BinaryOp::Add),
        vec![grid, ts],
        vec![xr, yr],
        vec![xr],
    );
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xr], vec![ze]);
    let kernel = kb.build();

    graphene::ir::validate::validate(&kernel, Arch::Sm86).expect("kernel validates");
    println!("--- generated CUDA C++ ---");
    println!("{}", generate(&kernel, Arch::Sm86).expect("codegen"));

    // Execute the same IR on the simulator and check the values.
    let xs: Vec<f32> = (0..n).map(|v| v as f32).collect();
    let ys: Vec<f32> = (0..n).map(|v| 2.0 * v as f32).collect();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], xs);
    inputs.insert(kernel.params[1], ys);
    let out = execute(&kernel, Arch::Sm86, &inputs).expect("simulate");
    let z_out = &out.globals[&kernel.params[2]];
    assert!(z_out.iter().enumerate().all(|(i, &v)| v == 3.0 * i as f32));
    println!("simulated result verified: z[i] == 3*i for all {n} elements");
    println!(
        "counters: {} B read, {} B written, {} instructions",
        out.counters.global_read_bytes, out.counters.global_write_bytes, out.counters.instructions
    );

    // The IntExpr machinery that produced those indices:
    let e = (IntExpr::var_bounded("threadIdx.x", 128) / 32) * 32
        + IntExpr::var_bounded("threadIdx.x", 128) % 32;
    println!("\nbonus — the simplifier: {} ==> {}", e, graphene::sym::simplify(&e));
}
