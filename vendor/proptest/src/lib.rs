//! Vendored offline shim for the subset of `proptest` 1.x this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real crate
//! cannot be fetched. This shim keeps the public surface the tests are
//! written against — `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, [`Just`], `prop::collection::vec`,
//! range strategies, tuple/vec strategies, and
//! [`ProptestConfig::with_cases`] — on top of a deterministic
//! splitmix64-driven generator.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case reports its inputs' `Debug` only via
//!   the assertion message, not a minimised counterexample;
//! - no persistence: `.proptest-regressions` files are ignored;
//! - generation is uniform per combinator rather than size-weighted.

use std::rc::Rc;

/// Deterministic generator driving test-case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A new generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

/// Error type returned by failing property-test bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed test case carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for
    /// the previous depth level and returns a strategy for one more
    /// level of structure. Generation picks a depth level uniformly in
    /// `0..=depth`. `_desired_size` and `_expected_branch` are accepted
    /// for signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("non-empty").clone();
            levels.push(recurse(prev).boxed());
        }
        Levels { levels }.boxed()
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_recursive`]: one boxed
/// strategy per depth level, picked uniformly.
struct Levels<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Levels<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.levels.len() as u64) as usize;
        self.levels[i].generate(rng)
    }
}

/// A strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Length specification for [`collection::vec`](prop::collection::vec).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Namespace mirror of `proptest::prop` / `proptest::collection`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s whose length is drawn from `size` and
        /// whose elements are drawn from `elem`.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(elem, len_range)`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let (lo, hi) = (self.size.lo(), self.size.hi());
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

impl SizeRange {
    fn lo(&self) -> usize {
        self.lo
    }
    fn hi(&self) -> usize {
        self.hi
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (rather than panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$lhs, &$rhs);
        if !(*__pa_l == *__pa_r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __pa_l,
                __pa_r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__pa_l, __pa_r) = (&$lhs, &$rhs);
        if !(*__pa_l == *__pa_r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __pa_l,
                __pa_r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$lhs, &$rhs);
        if *__pa_l == *__pa_r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __pa_l
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Mirrors `proptest::proptest!`: each `fn`
/// takes `pattern in strategy` arguments and its body may use
/// `prop_assert*!` or `return Ok(())`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pt_config: $crate::ProptestConfig = $cfg;
                let mut __pt_rng = $crate::TestRng::new(0x6772_6170_6865_6e65);
                for __pt_case in 0..__pt_config.cases {
                    let __pt_result: $crate::TestCaseResult = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), &mut __pt_rng);)*
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    })();
                    if let ::core::result::Result::Err(err) = __pt_result {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            __pt_case + 1,
                            __pt_config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (1i64..=4, 1i64..=4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1i64..=6, y in 0usize..5) {
            prop_assert!((1..=6).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_maps(p in pair().prop_map(|(a, b)| (a * 2, b * 3))) {
            prop_assert_eq!(p.0 % 2, 0);
            prop_assert_eq!(p.1 % 3, 0);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(1i64..=6, 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()), "len {}", v.len());
            if v.is_empty() {
                return Ok(());
            }
        }

        #[test]
        fn oneof_hits_all_alternatives(x in prop_oneof![Just(1i64), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn recursion_bounded(t in Just(Tree::Leaf(0)).boxed().prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })) {
            prop_assert!(depth(&t) <= 3, "depth {}", depth(&t));
        }
    }
}
