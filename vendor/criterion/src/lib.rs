//! Vendored offline shim for the subset of `criterion` 0.5 this
//! workspace's benches use.
//!
//! The build environment has no crates.io access, so the real harness
//! cannot be fetched. This shim keeps the same entry points
//! (`Criterion`, `bench_function`, `benchmark_group`,
//! `criterion_group!`, `criterion_main!`, `black_box`) and reports
//! simple min/mean timings to stdout instead of criterion's full
//! statistical pipeline. Each benchmark closure is run for a small
//! fixed number of timed iterations.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<48} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "bench {name:<48} min {min:>12.3?}   mean {mean:>12.3?}   ({} iters)",
            self.samples.len()
        );
    }
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iterations: 3, samples: Vec::new() };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A named group of benchmarks. Configuration setters are accepted and
/// ignored (the shim always runs a fixed number of iterations).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iterations: 3, samples: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
