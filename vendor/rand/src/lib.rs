//! Vendored offline shim for the subset of `rand` 0.8 this workspace
//! uses: a seedable deterministic RNG (`StdRng`) and uniform
//! `gen_range` sampling over primitive ranges.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched; this shim keeps the same module paths
//! (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`) and deterministic
//! seeding semantics the tests rely on. It is NOT a cryptographic or
//! statistically rigorous generator — it is a splitmix64/xoshiro256**
//! pair, which is more than adequate for generating test tensors.

/// Core trait for random number generators, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed (deterministic across runs).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly. Implemented for the primitive
/// integer and float ranges the workspace draws from.
pub trait UniformRange<T> {
    /// Draws one uniform sample.
    fn sample<G: RngCore>(&self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            fn sample<G: RngCore>(&self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<G: RngCore>(&self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl UniformRange<f32> for core::ops::Range<f32> {
    fn sample<G: RngCore>(&self, rng: &mut G) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl UniformRange<f64> for core::ops::Range<f64> {
    fn sample<G: RngCore>(&self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64 —
    /// stands in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
            let v = rng.gen_range(1i64..=6);
            assert!((1..=6).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }
}
