//! # graphene
//!
//! A from-scratch Rust reproduction of **"Graphene: An IR for Optimized
//! Tensor Computations on GPUs"** (Hagedorn et al., ASPLOS 2023).
//!
//! This umbrella crate re-exports the whole system:
//!
//! - [`layout`] — the CuTe-style shape/layout algebra (paper §3),
//! - [`sym`] — symbolic index expressions and simplification (§3.4, §5.5),
//! - [`ir`] — tensors, logical thread groups, specs, decompositions,
//!   atomic specs (§3–§5),
//! - [`codegen`] — the CUDA C++ backend (§5.5),
//! - [`sim`] — the simulated GPU substrate (functional interpreter +
//!   roofline timing for Volta-like and Ampere-like machines),
//! - [`kernels`] — the paper's evaluation workloads (GEMM, fused
//!   epilogues, MLP, LSTM, Layernorm, FMHA) and the library baselines.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction results. Run the examples for a tour:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example ldmatrix_move
//! cargo run --example fused_mlp
//! ```

pub use graphene_codegen as codegen;
pub use graphene_ir as ir;
pub use graphene_kernels as kernels;
pub use graphene_layout as layout;
pub use graphene_sim as sim;
pub use graphene_sym as sym;
