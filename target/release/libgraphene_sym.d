/root/repo/target/release/libgraphene_sym.rlib: /root/repo/crates/graphene-sym/src/expr.rs /root/repo/crates/graphene-sym/src/lib.rs /root/repo/crates/graphene-sym/src/simplify.rs
