/root/repo/target/release/deps/rand-ba81cb09f595a11b.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-ba81cb09f595a11b: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
