/root/repo/target/release/deps/graphene_bench-cba0adcd16529ea8.d: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/release/deps/libgraphene_bench-cba0adcd16529ea8.rlib: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/release/deps/libgraphene_bench-cba0adcd16529ea8.rmeta: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

crates/graphene-bench/src/lib.rs:
crates/graphene-bench/src/ablations.rs:
crates/graphene-bench/src/figures.rs:
crates/graphene-bench/src/report.rs:
