/root/repo/target/release/deps/graphene-5f0cce9f373a08de.d: src/lib.rs

/root/repo/target/release/deps/graphene-5f0cce9f373a08de: src/lib.rs

src/lib.rs:
