/root/repo/target/release/deps/graphene_bench-c0d3a2b4c88fd9c7.d: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/release/deps/graphene_bench-c0d3a2b4c88fd9c7: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

crates/graphene-bench/src/lib.rs:
crates/graphene-bench/src/ablations.rs:
crates/graphene-bench/src/figures.rs:
crates/graphene-bench/src/report.rs:
