/root/repo/target/release/deps/fig13_layernorm-fda53d28ee265b11.d: crates/graphene-bench/src/bin/fig13_layernorm.rs

/root/repo/target/release/deps/fig13_layernorm-fda53d28ee265b11: crates/graphene-bench/src/bin/fig13_layernorm.rs

crates/graphene-bench/src/bin/fig13_layernorm.rs:
