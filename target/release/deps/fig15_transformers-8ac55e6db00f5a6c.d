/root/repo/target/release/deps/fig15_transformers-8ac55e6db00f5a6c.d: crates/graphene-bench/src/bin/fig15_transformers.rs

/root/repo/target/release/deps/fig15_transformers-8ac55e6db00f5a6c: crates/graphene-bench/src/bin/fig15_transformers.rs

crates/graphene-bench/src/bin/fig15_transformers.rs:
