/root/repo/target/release/deps/fig11_mlp-cd18b09a66db2f45.d: crates/graphene-bench/src/bin/fig11_mlp.rs

/root/repo/target/release/deps/fig11_mlp-cd18b09a66db2f45: crates/graphene-bench/src/bin/fig11_mlp.rs

crates/graphene-bench/src/bin/fig11_mlp.rs:
