/root/repo/target/release/deps/fig01_ldmatrix-7b184a7b4bff5a1a.d: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

/root/repo/target/release/deps/fig01_ldmatrix-7b184a7b4bff5a1a: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

crates/graphene-bench/src/bin/fig01_ldmatrix.rs:
