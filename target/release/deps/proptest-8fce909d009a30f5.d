/root/repo/target/release/deps/proptest-8fce909d009a30f5.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-8fce909d009a30f5: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
