/root/repo/target/release/deps/fig08_gemm-9e8a59b46b95d71f.d: crates/graphene-bench/src/bin/fig08_gemm.rs

/root/repo/target/release/deps/fig08_gemm-9e8a59b46b95d71f: crates/graphene-bench/src/bin/fig08_gemm.rs

crates/graphene-bench/src/bin/fig08_gemm.rs:
