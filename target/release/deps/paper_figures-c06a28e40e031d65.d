/root/repo/target/release/deps/paper_figures-c06a28e40e031d65.d: crates/graphene-bench/benches/paper_figures.rs

/root/repo/target/release/deps/paper_figures-c06a28e40e031d65: crates/graphene-bench/benches/paper_figures.rs

crates/graphene-bench/benches/paper_figures.rs:
