/root/repo/target/release/deps/graphene_sym-0651baacf32bc026.d: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/release/deps/graphene_sym-0651baacf32bc026: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

crates/graphene-sym/src/lib.rs:
crates/graphene-sym/src/expr.rs:
crates/graphene-sym/src/simplify.rs:
