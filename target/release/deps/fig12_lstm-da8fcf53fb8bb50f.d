/root/repo/target/release/deps/fig12_lstm-da8fcf53fb8bb50f.d: crates/graphene-bench/src/bin/fig12_lstm.rs

/root/repo/target/release/deps/fig12_lstm-da8fcf53fb8bb50f: crates/graphene-bench/src/bin/fig12_lstm.rs

crates/graphene-bench/src/bin/fig12_lstm.rs:
