/root/repo/target/release/deps/table2_atomic_specs-c07f32e780cab88a.d: crates/graphene-bench/src/bin/table2_atomic_specs.rs

/root/repo/target/release/deps/table2_atomic_specs-c07f32e780cab88a: crates/graphene-bench/src/bin/table2_atomic_specs.rs

crates/graphene-bench/src/bin/table2_atomic_specs.rs:
