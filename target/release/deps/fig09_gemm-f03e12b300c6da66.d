/root/repo/target/release/deps/fig09_gemm-f03e12b300c6da66.d: crates/graphene-bench/src/bin/fig09_gemm.rs

/root/repo/target/release/deps/fig09_gemm-f03e12b300c6da66: crates/graphene-bench/src/bin/fig09_gemm.rs

crates/graphene-bench/src/bin/fig09_gemm.rs:
