/root/repo/target/release/deps/rendering-9120df9de9d99cd5.d: crates/graphene-sym/tests/rendering.rs

/root/repo/target/release/deps/rendering-9120df9de9d99cd5: crates/graphene-sym/tests/rendering.rs

crates/graphene-sym/tests/rendering.rs:
