/root/repo/target/release/deps/pipeline_properties-29843f3a90fbdcc7.d: tests/pipeline_properties.rs

/root/repo/target/release/deps/pipeline_properties-29843f3a90fbdcc7: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
