/root/repo/target/release/deps/graphene_layout-51d3b16615b5cd18.d: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/release/deps/libgraphene_layout-51d3b16615b5cd18.rlib: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/release/deps/libgraphene_layout-51d3b16615b5cd18.rmeta: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

crates/graphene-layout/src/lib.rs:
crates/graphene-layout/src/algebra.rs:
crates/graphene-layout/src/int_tuple.rs:
crates/graphene-layout/src/layout.rs:
crates/graphene-layout/src/swizzle.rs:
