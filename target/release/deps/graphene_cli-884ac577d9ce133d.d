/root/repo/target/release/deps/graphene_cli-884ac577d9ce133d.d: crates/graphene-cli/src/lib.rs

/root/repo/target/release/deps/graphene_cli-884ac577d9ce133d: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
