/root/repo/target/release/deps/graphene-d4c07d12475146cb.d: src/lib.rs

/root/repo/target/release/deps/libgraphene-d4c07d12475146cb.rlib: src/lib.rs

/root/repo/target/release/deps/libgraphene-d4c07d12475146cb.rmeta: src/lib.rs

src/lib.rs:
