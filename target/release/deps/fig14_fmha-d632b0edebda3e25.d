/root/repo/target/release/deps/fig14_fmha-d632b0edebda3e25.d: crates/graphene-bench/src/bin/fig14_fmha.rs

/root/repo/target/release/deps/fig14_fmha-d632b0edebda3e25: crates/graphene-bench/src/bin/fig14_fmha.rs

crates/graphene-bench/src/bin/fig14_fmha.rs:
