/root/repo/target/release/deps/graphene_ir-ab115d0e2a82d316.d: crates/graphene-ir/src/lib.rs crates/graphene-ir/src/atomic.rs crates/graphene-ir/src/body.rs crates/graphene-ir/src/builder.rs crates/graphene-ir/src/dtype.rs crates/graphene-ir/src/memory.rs crates/graphene-ir/src/module.rs crates/graphene-ir/src/ops.rs crates/graphene-ir/src/printer.rs crates/graphene-ir/src/spec.rs crates/graphene-ir/src/tensor.rs crates/graphene-ir/src/threads.rs crates/graphene-ir/src/transform.rs crates/graphene-ir/src/validate.rs

/root/repo/target/release/deps/graphene_ir-ab115d0e2a82d316: crates/graphene-ir/src/lib.rs crates/graphene-ir/src/atomic.rs crates/graphene-ir/src/body.rs crates/graphene-ir/src/builder.rs crates/graphene-ir/src/dtype.rs crates/graphene-ir/src/memory.rs crates/graphene-ir/src/module.rs crates/graphene-ir/src/ops.rs crates/graphene-ir/src/printer.rs crates/graphene-ir/src/spec.rs crates/graphene-ir/src/tensor.rs crates/graphene-ir/src/threads.rs crates/graphene-ir/src/transform.rs crates/graphene-ir/src/validate.rs

crates/graphene-ir/src/lib.rs:
crates/graphene-ir/src/atomic.rs:
crates/graphene-ir/src/body.rs:
crates/graphene-ir/src/builder.rs:
crates/graphene-ir/src/dtype.rs:
crates/graphene-ir/src/memory.rs:
crates/graphene-ir/src/module.rs:
crates/graphene-ir/src/ops.rs:
crates/graphene-ir/src/printer.rs:
crates/graphene-ir/src/spec.rs:
crates/graphene-ir/src/tensor.rs:
crates/graphene-ir/src/threads.rs:
crates/graphene-ir/src/transform.rs:
crates/graphene-ir/src/validate.rs:
