/root/repo/target/release/deps/graphene_codegen-a9a3670c1ee921da.d: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/release/deps/graphene_codegen-a9a3670c1ee921da: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

crates/graphene-codegen/src/lib.rs:
crates/graphene-codegen/src/emit.rs:
crates/graphene-codegen/src/expr.rs:
crates/graphene-codegen/src/writer.rs:
