/root/repo/target/release/deps/fig08_gemm-7984f102f53b0531.d: crates/graphene-bench/src/bin/fig08_gemm.rs

/root/repo/target/release/deps/fig08_gemm-7984f102f53b0531: crates/graphene-bench/src/bin/fig08_gemm.rs

crates/graphene-bench/src/bin/fig08_gemm.rs:
