/root/repo/target/release/deps/semantics-9cdd717913a2bade.d: crates/graphene-sim/tests/semantics.rs

/root/repo/target/release/deps/semantics-9cdd717913a2bade: crates/graphene-sim/tests/semantics.rs

crates/graphene-sim/tests/semantics.rs:
