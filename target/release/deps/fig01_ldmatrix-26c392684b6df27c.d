/root/repo/target/release/deps/fig01_ldmatrix-26c392684b6df27c.d: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

/root/repo/target/release/deps/fig01_ldmatrix-26c392684b6df27c: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

crates/graphene-bench/src/bin/fig01_ldmatrix.rs:
