/root/repo/target/release/deps/graphene_cli-036a164c58ce53cc.d: crates/graphene-cli/src/lib.rs

/root/repo/target/release/deps/libgraphene_cli-036a164c58ce53cc.rlib: crates/graphene-cli/src/lib.rs

/root/repo/target/release/deps/libgraphene_cli-036a164c58ce53cc.rmeta: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
