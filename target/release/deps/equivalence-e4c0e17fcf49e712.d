/root/repo/target/release/deps/equivalence-e4c0e17fcf49e712.d: crates/graphene-kernels/tests/equivalence.rs

/root/repo/target/release/deps/equivalence-e4c0e17fcf49e712: crates/graphene-kernels/tests/equivalence.rs

crates/graphene-kernels/tests/equivalence.rs:
