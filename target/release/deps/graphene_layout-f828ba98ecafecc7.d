/root/repo/target/release/deps/graphene_layout-f828ba98ecafecc7.d: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/release/deps/graphene_layout-f828ba98ecafecc7: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

crates/graphene-layout/src/lib.rs:
crates/graphene-layout/src/algebra.rs:
crates/graphene-layout/src/int_tuple.rs:
crates/graphene-layout/src/layout.rs:
crates/graphene-layout/src/swizzle.rs:
