/root/repo/target/release/deps/soundness-c922e6a49529fbc5.d: crates/graphene-sym/tests/soundness.rs

/root/repo/target/release/deps/soundness-c922e6a49529fbc5: crates/graphene-sym/tests/soundness.rs

crates/graphene-sym/tests/soundness.rs:
