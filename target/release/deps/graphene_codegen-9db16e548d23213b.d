/root/repo/target/release/deps/graphene_codegen-9db16e548d23213b.d: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/release/deps/libgraphene_codegen-9db16e548d23213b.rlib: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/release/deps/libgraphene_codegen-9db16e548d23213b.rmeta: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

crates/graphene-codegen/src/lib.rs:
crates/graphene-codegen/src/emit.rs:
crates/graphene-codegen/src/expr.rs:
crates/graphene-codegen/src/writer.rs:
