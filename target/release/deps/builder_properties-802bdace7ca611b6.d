/root/repo/target/release/deps/builder_properties-802bdace7ca611b6.d: tests/builder_properties.rs

/root/repo/target/release/deps/builder_properties-802bdace7ca611b6: tests/builder_properties.rs

tests/builder_properties.rs:
