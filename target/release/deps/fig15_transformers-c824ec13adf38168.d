/root/repo/target/release/deps/fig15_transformers-c824ec13adf38168.d: crates/graphene-bench/src/bin/fig15_transformers.rs

/root/repo/target/release/deps/fig15_transformers-c824ec13adf38168: crates/graphene-bench/src/bin/fig15_transformers.rs

crates/graphene-bench/src/bin/fig15_transformers.rs:
