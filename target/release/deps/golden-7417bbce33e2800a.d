/root/repo/target/release/deps/golden-7417bbce33e2800a.d: crates/graphene-codegen/tests/golden.rs

/root/repo/target/release/deps/golden-7417bbce33e2800a: crates/graphene-codegen/tests/golden.rs

crates/graphene-codegen/tests/golden.rs:
