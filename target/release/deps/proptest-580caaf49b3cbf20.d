/root/repo/target/release/deps/proptest-580caaf49b3cbf20.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-580caaf49b3cbf20.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-580caaf49b3cbf20.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
