/root/repo/target/release/deps/graphene-5a7cb1d8b3b9f178.d: crates/graphene-cli/src/main.rs

/root/repo/target/release/deps/graphene-5a7cb1d8b3b9f178: crates/graphene-cli/src/main.rs

crates/graphene-cli/src/main.rs:
