/root/repo/target/release/deps/printer_golden-7f4816ed67af44f8.d: crates/graphene-ir/tests/printer_golden.rs

/root/repo/target/release/deps/printer_golden-7f4816ed67af44f8: crates/graphene-ir/tests/printer_golden.rs

crates/graphene-ir/tests/printer_golden.rs:
