/root/repo/target/release/deps/end_to_end-37bae5eb453fca6b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-37bae5eb453fca6b: tests/end_to_end.rs

tests/end_to_end.rs:
