/root/repo/target/release/deps/compiler-aa3374f5d217b03a.d: crates/graphene-bench/benches/compiler.rs

/root/repo/target/release/deps/compiler-aa3374f5d217b03a: crates/graphene-bench/benches/compiler.rs

crates/graphene-bench/benches/compiler.rs:
