/root/repo/target/release/deps/graphene-f78436b9e754c44d.d: crates/graphene-cli/src/main.rs

/root/repo/target/release/deps/graphene-f78436b9e754c44d: crates/graphene-cli/src/main.rs

crates/graphene-cli/src/main.rs:
