/root/repo/target/release/deps/table2_atomic_specs-b0a3cf861fd8a9d3.d: crates/graphene-bench/src/bin/table2_atomic_specs.rs

/root/repo/target/release/deps/table2_atomic_specs-b0a3cf861fd8a9d3: crates/graphene-bench/src/bin/table2_atomic_specs.rs

crates/graphene-bench/src/bin/table2_atomic_specs.rs:
