/root/repo/target/release/deps/graphene_sym-287d14794f515c7b.d: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/release/deps/libgraphene_sym-287d14794f515c7b.rlib: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/release/deps/libgraphene_sym-287d14794f515c7b.rmeta: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

crates/graphene-sym/src/lib.rs:
crates/graphene-sym/src/expr.rs:
crates/graphene-sym/src/simplify.rs:
