/root/repo/target/release/deps/graphene_sim-48971bbd36b69f96.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/release/deps/graphene_sim-48971bbd36b69f96: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
