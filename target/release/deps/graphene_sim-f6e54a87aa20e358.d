/root/repo/target/release/deps/graphene_sim-f6e54a87aa20e358.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/release/deps/libgraphene_sim-f6e54a87aa20e358.rlib: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/release/deps/libgraphene_sim-f6e54a87aa20e358.rmeta: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
