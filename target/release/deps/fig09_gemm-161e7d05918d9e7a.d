/root/repo/target/release/deps/fig09_gemm-161e7d05918d9e7a.d: crates/graphene-bench/src/bin/fig09_gemm.rs

/root/repo/target/release/deps/fig09_gemm-161e7d05918d9e7a: crates/graphene-bench/src/bin/fig09_gemm.rs

crates/graphene-bench/src/bin/fig09_gemm.rs:
