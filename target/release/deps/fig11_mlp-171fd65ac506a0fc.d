/root/repo/target/release/deps/fig11_mlp-171fd65ac506a0fc.d: crates/graphene-bench/src/bin/fig11_mlp.rs

/root/repo/target/release/deps/fig11_mlp-171fd65ac506a0fc: crates/graphene-bench/src/bin/fig11_mlp.rs

crates/graphene-bench/src/bin/fig11_mlp.rs:
