/root/repo/target/release/deps/table2-d9dbc64f0f22c38d.d: crates/graphene-ir/tests/table2.rs

/root/repo/target/release/deps/table2-d9dbc64f0f22c38d: crates/graphene-ir/tests/table2.rs

crates/graphene-ir/tests/table2.rs:
