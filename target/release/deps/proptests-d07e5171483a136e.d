/root/repo/target/release/deps/proptests-d07e5171483a136e.d: crates/graphene-layout/tests/proptests.rs

/root/repo/target/release/deps/proptests-d07e5171483a136e: crates/graphene-layout/tests/proptests.rs

crates/graphene-layout/tests/proptests.rs:
