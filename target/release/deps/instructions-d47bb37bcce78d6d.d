/root/repo/target/release/deps/instructions-d47bb37bcce78d6d.d: crates/graphene-codegen/tests/instructions.rs

/root/repo/target/release/deps/instructions-d47bb37bcce78d6d: crates/graphene-codegen/tests/instructions.rs

crates/graphene-codegen/tests/instructions.rs:
