/root/repo/target/release/deps/ablations-4a3d35b081eb9ff4.d: crates/graphene-bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-4a3d35b081eb9ff4: crates/graphene-bench/src/bin/ablations.rs

crates/graphene-bench/src/bin/ablations.rs:
