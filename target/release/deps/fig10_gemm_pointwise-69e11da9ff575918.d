/root/repo/target/release/deps/fig10_gemm_pointwise-69e11da9ff575918.d: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

/root/repo/target/release/deps/fig10_gemm_pointwise-69e11da9ff575918: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs:
