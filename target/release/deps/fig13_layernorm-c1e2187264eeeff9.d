/root/repo/target/release/deps/fig13_layernorm-c1e2187264eeeff9.d: crates/graphene-bench/src/bin/fig13_layernorm.rs

/root/repo/target/release/deps/fig13_layernorm-c1e2187264eeeff9: crates/graphene-bench/src/bin/fig13_layernorm.rs

crates/graphene-bench/src/bin/fig13_layernorm.rs:
