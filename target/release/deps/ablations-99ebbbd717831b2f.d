/root/repo/target/release/deps/ablations-99ebbbd717831b2f.d: crates/graphene-bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-99ebbbd717831b2f: crates/graphene-bench/src/bin/ablations.rs

crates/graphene-bench/src/bin/ablations.rs:
