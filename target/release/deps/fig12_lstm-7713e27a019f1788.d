/root/repo/target/release/deps/fig12_lstm-7713e27a019f1788.d: crates/graphene-bench/src/bin/fig12_lstm.rs

/root/repo/target/release/deps/fig12_lstm-7713e27a019f1788: crates/graphene-bench/src/bin/fig12_lstm.rs

crates/graphene-bench/src/bin/fig12_lstm.rs:
