/root/repo/target/release/deps/fig14_fmha-f30f8887c7db1a96.d: crates/graphene-bench/src/bin/fig14_fmha.rs

/root/repo/target/release/deps/fig14_fmha-f30f8887c7db1a96: crates/graphene-bench/src/bin/fig14_fmha.rs

crates/graphene-bench/src/bin/fig14_fmha.rs:
