/root/repo/target/release/deps/fig10_gemm_pointwise-453750bb1dcb4c8d.d: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

/root/repo/target/release/deps/fig10_gemm_pointwise-453750bb1dcb4c8d: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs:
