/root/repo/target/release/examples/compiler_lowering-137706f4cf49c0cc.d: examples/compiler_lowering.rs

/root/repo/target/release/examples/compiler_lowering-137706f4cf49c0cc: examples/compiler_lowering.rs

examples/compiler_lowering.rs:
