/root/repo/target/release/examples/ldmatrix_move-1be03edb360765f8.d: examples/ldmatrix_move.rs

/root/repo/target/release/examples/ldmatrix_move-1be03edb360765f8: examples/ldmatrix_move.rs

examples/ldmatrix_move.rs:
