/root/repo/target/release/examples/fused_mlp-39452c50c2d04913.d: examples/fused_mlp.rs

/root/repo/target/release/examples/fused_mlp-39452c50c2d04913: examples/fused_mlp.rs

examples/fused_mlp.rs:
