/root/repo/target/release/examples/tensor_core_gemm-b8d023255f834dea.d: examples/tensor_core_gemm.rs

/root/repo/target/release/examples/tensor_core_gemm-b8d023255f834dea: examples/tensor_core_gemm.rs

examples/tensor_core_gemm.rs:
