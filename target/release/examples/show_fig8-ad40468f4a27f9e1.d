/root/repo/target/release/examples/show_fig8-ad40468f4a27f9e1.d: crates/graphene-codegen/examples/show_fig8.rs

/root/repo/target/release/examples/show_fig8-ad40468f4a27f9e1: crates/graphene-codegen/examples/show_fig8.rs

crates/graphene-codegen/examples/show_fig8.rs:
