/root/repo/target/release/examples/quickstart-bdfb710fa49db946.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-bdfb710fa49db946: examples/quickstart.rs

examples/quickstart.rs:
