/root/repo/target/debug/deps/fig14_fmha-bb3358b76b885dce.d: crates/graphene-bench/src/bin/fig14_fmha.rs

/root/repo/target/debug/deps/fig14_fmha-bb3358b76b885dce: crates/graphene-bench/src/bin/fig14_fmha.rs

crates/graphene-bench/src/bin/fig14_fmha.rs:
