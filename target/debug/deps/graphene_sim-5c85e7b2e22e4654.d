/root/repo/target/debug/deps/graphene_sim-5c85e7b2e22e4654.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/debug/deps/libgraphene_sim-5c85e7b2e22e4654.rlib: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/debug/deps/libgraphene_sim-5c85e7b2e22e4654.rmeta: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
