/root/repo/target/debug/deps/proptests-8470c89d2dcf18ab.d: crates/graphene-layout/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8470c89d2dcf18ab.rmeta: crates/graphene-layout/tests/proptests.rs Cargo.toml

crates/graphene-layout/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
