/root/repo/target/debug/deps/property-ea1eb0e1059083d2.d: crates/graphene-analysis/tests/property.rs Cargo.toml

/root/repo/target/debug/deps/libproperty-ea1eb0e1059083d2.rmeta: crates/graphene-analysis/tests/property.rs Cargo.toml

crates/graphene-analysis/tests/property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
