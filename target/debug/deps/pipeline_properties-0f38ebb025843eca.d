/root/repo/target/debug/deps/pipeline_properties-0f38ebb025843eca.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-0f38ebb025843eca: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
