/root/repo/target/debug/deps/graphene_sim-6f6be88108f78008.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

/root/repo/target/debug/deps/graphene_sim-6f6be88108f78008: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
