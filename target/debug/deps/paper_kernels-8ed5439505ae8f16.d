/root/repo/target/debug/deps/paper_kernels-8ed5439505ae8f16.d: crates/graphene-analysis/tests/paper_kernels.rs

/root/repo/target/debug/deps/paper_kernels-8ed5439505ae8f16: crates/graphene-analysis/tests/paper_kernels.rs

crates/graphene-analysis/tests/paper_kernels.rs:
