/root/repo/target/debug/deps/graphene_cli-0546acb277b84b81.d: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/graphene_cli-0546acb277b84b81: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
