/root/repo/target/debug/deps/golden-02222f4ce4379152.d: crates/graphene-codegen/tests/golden.rs

/root/repo/target/debug/deps/golden-02222f4ce4379152: crates/graphene-codegen/tests/golden.rs

crates/graphene-codegen/tests/golden.rs:
