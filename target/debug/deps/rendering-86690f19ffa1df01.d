/root/repo/target/debug/deps/rendering-86690f19ffa1df01.d: crates/graphene-sym/tests/rendering.rs Cargo.toml

/root/repo/target/debug/deps/librendering-86690f19ffa1df01.rmeta: crates/graphene-sym/tests/rendering.rs Cargo.toml

crates/graphene-sym/tests/rendering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
