/root/repo/target/debug/deps/builder_properties-63063e7f42e1768e.d: tests/builder_properties.rs

/root/repo/target/debug/deps/builder_properties-63063e7f42e1768e: tests/builder_properties.rs

tests/builder_properties.rs:
