/root/repo/target/debug/deps/graphene_sym-bb861819ff34e3db.d: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/debug/deps/graphene_sym-bb861819ff34e3db: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

crates/graphene-sym/src/lib.rs:
crates/graphene-sym/src/expr.rs:
crates/graphene-sym/src/simplify.rs:
