/root/repo/target/debug/deps/fig11_mlp-9c216c0b9f43f5f0.d: crates/graphene-bench/src/bin/fig11_mlp.rs

/root/repo/target/debug/deps/fig11_mlp-9c216c0b9f43f5f0: crates/graphene-bench/src/bin/fig11_mlp.rs

crates/graphene-bench/src/bin/fig11_mlp.rs:
