/root/repo/target/debug/deps/graphene_kernels-591baa4c4dd63cee.d: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_kernels-591baa4c4dd63cee.rmeta: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs Cargo.toml

crates/graphene-kernels/src/lib.rs:
crates/graphene-kernels/src/common.rs:
crates/graphene-kernels/src/fmha.rs:
crates/graphene-kernels/src/gemm.rs:
crates/graphene-kernels/src/graph.rs:
crates/graphene-kernels/src/layernorm.rs:
crates/graphene-kernels/src/lstm.rs:
crates/graphene-kernels/src/mlp.rs:
crates/graphene-kernels/src/mma.rs:
crates/graphene-kernels/src/reference.rs:
crates/graphene-kernels/src/softmax.rs:
crates/graphene-kernels/src/transformer.rs:
crates/graphene-kernels/src/tune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
