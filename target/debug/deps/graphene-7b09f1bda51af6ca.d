/root/repo/target/debug/deps/graphene-7b09f1bda51af6ca.d: crates/graphene-cli/src/main.rs

/root/repo/target/debug/deps/graphene-7b09f1bda51af6ca: crates/graphene-cli/src/main.rs

crates/graphene-cli/src/main.rs:
