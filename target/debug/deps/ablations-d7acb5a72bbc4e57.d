/root/repo/target/debug/deps/ablations-d7acb5a72bbc4e57.d: crates/graphene-bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-d7acb5a72bbc4e57.rmeta: crates/graphene-bench/src/bin/ablations.rs Cargo.toml

crates/graphene-bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
