/root/repo/target/debug/deps/proptests-c3d7d196c3cf4ff0.d: crates/graphene-layout/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c3d7d196c3cf4ff0: crates/graphene-layout/tests/proptests.rs

crates/graphene-layout/tests/proptests.rs:
