/root/repo/target/debug/deps/paper_kernels-a98b5d24548dba86.d: crates/graphene-analysis/tests/paper_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_kernels-a98b5d24548dba86.rmeta: crates/graphene-analysis/tests/paper_kernels.rs Cargo.toml

crates/graphene-analysis/tests/paper_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
