/root/repo/target/debug/deps/fig15_transformers-63d819fb2158c050.d: crates/graphene-bench/src/bin/fig15_transformers.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_transformers-63d819fb2158c050.rmeta: crates/graphene-bench/src/bin/fig15_transformers.rs Cargo.toml

crates/graphene-bench/src/bin/fig15_transformers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
