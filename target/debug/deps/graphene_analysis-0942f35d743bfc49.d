/root/repo/target/debug/deps/graphene_analysis-0942f35d743bfc49.d: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs

/root/repo/target/debug/deps/graphene_analysis-0942f35d743bfc49: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs

crates/graphene-analysis/src/lib.rs:
crates/graphene-analysis/src/banks.rs:
crates/graphene-analysis/src/memspace.rs:
crates/graphene-analysis/src/races.rs:
crates/graphene-analysis/src/uninit.rs:
crates/graphene-analysis/src/walk.rs:
