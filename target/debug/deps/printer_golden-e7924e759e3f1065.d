/root/repo/target/debug/deps/printer_golden-e7924e759e3f1065.d: crates/graphene-ir/tests/printer_golden.rs Cargo.toml

/root/repo/target/debug/deps/libprinter_golden-e7924e759e3f1065.rmeta: crates/graphene-ir/tests/printer_golden.rs Cargo.toml

crates/graphene-ir/tests/printer_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
