/root/repo/target/debug/deps/fig08_gemm-85e7be273fdc7f0e.d: crates/graphene-bench/src/bin/fig08_gemm.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_gemm-85e7be273fdc7f0e.rmeta: crates/graphene-bench/src/bin/fig08_gemm.rs Cargo.toml

crates/graphene-bench/src/bin/fig08_gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
