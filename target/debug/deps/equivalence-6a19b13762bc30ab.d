/root/repo/target/debug/deps/equivalence-6a19b13762bc30ab.d: crates/graphene-kernels/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-6a19b13762bc30ab.rmeta: crates/graphene-kernels/tests/equivalence.rs Cargo.toml

crates/graphene-kernels/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
