/root/repo/target/debug/deps/rendering-65ac21c38fc767d2.d: crates/graphene-sym/tests/rendering.rs

/root/repo/target/debug/deps/rendering-65ac21c38fc767d2: crates/graphene-sym/tests/rendering.rs

crates/graphene-sym/tests/rendering.rs:
