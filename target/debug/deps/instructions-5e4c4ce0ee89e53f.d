/root/repo/target/debug/deps/instructions-5e4c4ce0ee89e53f.d: crates/graphene-codegen/tests/instructions.rs

/root/repo/target/debug/deps/instructions-5e4c4ce0ee89e53f: crates/graphene-codegen/tests/instructions.rs

crates/graphene-codegen/tests/instructions.rs:
