/root/repo/target/debug/deps/graphene_sym-37063cf831d0394e.d: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_sym-37063cf831d0394e.rmeta: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs Cargo.toml

crates/graphene-sym/src/lib.rs:
crates/graphene-sym/src/expr.rs:
crates/graphene-sym/src/simplify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
