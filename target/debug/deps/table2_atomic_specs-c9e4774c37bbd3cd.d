/root/repo/target/debug/deps/table2_atomic_specs-c9e4774c37bbd3cd.d: crates/graphene-bench/src/bin/table2_atomic_specs.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_atomic_specs-c9e4774c37bbd3cd.rmeta: crates/graphene-bench/src/bin/table2_atomic_specs.rs Cargo.toml

crates/graphene-bench/src/bin/table2_atomic_specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
