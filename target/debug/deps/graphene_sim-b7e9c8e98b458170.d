/root/repo/target/debug/deps/graphene_sim-b7e9c8e98b458170.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_sim-b7e9c8e98b458170.rmeta: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs Cargo.toml

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
