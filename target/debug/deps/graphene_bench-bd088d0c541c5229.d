/root/repo/target/debug/deps/graphene_bench-bd088d0c541c5229.d: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/debug/deps/graphene_bench-bd088d0c541c5229: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

crates/graphene-bench/src/lib.rs:
crates/graphene-bench/src/ablations.rs:
crates/graphene-bench/src/figures.rs:
crates/graphene-bench/src/report.rs:
