/root/repo/target/debug/deps/fig13_layernorm-de32e54ffa64b7d3.d: crates/graphene-bench/src/bin/fig13_layernorm.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_layernorm-de32e54ffa64b7d3.rmeta: crates/graphene-bench/src/bin/fig13_layernorm.rs Cargo.toml

crates/graphene-bench/src/bin/fig13_layernorm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
