/root/repo/target/debug/deps/fig13_layernorm-64fd37fe77021e6f.d: crates/graphene-bench/src/bin/fig13_layernorm.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_layernorm-64fd37fe77021e6f.rmeta: crates/graphene-bench/src/bin/fig13_layernorm.rs Cargo.toml

crates/graphene-bench/src/bin/fig13_layernorm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
