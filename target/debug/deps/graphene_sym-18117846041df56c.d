/root/repo/target/debug/deps/graphene_sym-18117846041df56c.d: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/debug/deps/libgraphene_sym-18117846041df56c.rlib: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

/root/repo/target/debug/deps/libgraphene_sym-18117846041df56c.rmeta: crates/graphene-sym/src/lib.rs crates/graphene-sym/src/expr.rs crates/graphene-sym/src/simplify.rs

crates/graphene-sym/src/lib.rs:
crates/graphene-sym/src/expr.rs:
crates/graphene-sym/src/simplify.rs:
