/root/repo/target/debug/deps/graphene_analysis-91103e39f3c05c2b.d: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_analysis-91103e39f3c05c2b.rmeta: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs Cargo.toml

crates/graphene-analysis/src/lib.rs:
crates/graphene-analysis/src/banks.rs:
crates/graphene-analysis/src/memspace.rs:
crates/graphene-analysis/src/races.rs:
crates/graphene-analysis/src/uninit.rs:
crates/graphene-analysis/src/walk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
