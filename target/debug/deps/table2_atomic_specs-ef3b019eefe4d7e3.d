/root/repo/target/debug/deps/table2_atomic_specs-ef3b019eefe4d7e3.d: crates/graphene-bench/src/bin/table2_atomic_specs.rs

/root/repo/target/debug/deps/table2_atomic_specs-ef3b019eefe4d7e3: crates/graphene-bench/src/bin/table2_atomic_specs.rs

crates/graphene-bench/src/bin/table2_atomic_specs.rs:
