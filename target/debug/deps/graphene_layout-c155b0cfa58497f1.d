/root/repo/target/debug/deps/graphene_layout-c155b0cfa58497f1.d: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_layout-c155b0cfa58497f1.rmeta: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs Cargo.toml

crates/graphene-layout/src/lib.rs:
crates/graphene-layout/src/algebra.rs:
crates/graphene-layout/src/int_tuple.rs:
crates/graphene-layout/src/layout.rs:
crates/graphene-layout/src/swizzle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
