/root/repo/target/debug/deps/soundness-dde23678a1f23976.d: crates/graphene-sym/tests/soundness.rs

/root/repo/target/debug/deps/soundness-dde23678a1f23976: crates/graphene-sym/tests/soundness.rs

crates/graphene-sym/tests/soundness.rs:
