/root/repo/target/debug/deps/fig12_lstm-cf5aac0bde5f949b.d: crates/graphene-bench/src/bin/fig12_lstm.rs

/root/repo/target/debug/deps/fig12_lstm-cf5aac0bde5f949b: crates/graphene-bench/src/bin/fig12_lstm.rs

crates/graphene-bench/src/bin/fig12_lstm.rs:
