/root/repo/target/debug/deps/graphene_cli-c62319892c1f211a.d: crates/graphene-cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_cli-c62319892c1f211a.rmeta: crates/graphene-cli/src/lib.rs Cargo.toml

crates/graphene-cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
