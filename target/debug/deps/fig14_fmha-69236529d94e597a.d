/root/repo/target/debug/deps/fig14_fmha-69236529d94e597a.d: crates/graphene-bench/src/bin/fig14_fmha.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_fmha-69236529d94e597a.rmeta: crates/graphene-bench/src/bin/fig14_fmha.rs Cargo.toml

crates/graphene-bench/src/bin/fig14_fmha.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
