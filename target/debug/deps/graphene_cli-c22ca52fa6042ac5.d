/root/repo/target/debug/deps/graphene_cli-c22ca52fa6042ac5.d: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/libgraphene_cli-c22ca52fa6042ac5.rlib: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/libgraphene_cli-c22ca52fa6042ac5.rmeta: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
