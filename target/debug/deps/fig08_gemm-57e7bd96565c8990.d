/root/repo/target/debug/deps/fig08_gemm-57e7bd96565c8990.d: crates/graphene-bench/src/bin/fig08_gemm.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_gemm-57e7bd96565c8990.rmeta: crates/graphene-bench/src/bin/fig08_gemm.rs Cargo.toml

crates/graphene-bench/src/bin/fig08_gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
