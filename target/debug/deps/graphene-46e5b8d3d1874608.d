/root/repo/target/debug/deps/graphene-46e5b8d3d1874608.d: crates/graphene-cli/src/main.rs

/root/repo/target/debug/deps/graphene-46e5b8d3d1874608: crates/graphene-cli/src/main.rs

crates/graphene-cli/src/main.rs:
