/root/repo/target/debug/deps/compiler-88619d4b6699d1a7.d: crates/graphene-bench/benches/compiler.rs Cargo.toml

/root/repo/target/debug/deps/libcompiler-88619d4b6699d1a7.rmeta: crates/graphene-bench/benches/compiler.rs Cargo.toml

crates/graphene-bench/benches/compiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
