/root/repo/target/debug/deps/graphene_codegen-cc3ead45e7e37506.d: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/debug/deps/graphene_codegen-cc3ead45e7e37506: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

crates/graphene-codegen/src/lib.rs:
crates/graphene-codegen/src/emit.rs:
crates/graphene-codegen/src/expr.rs:
crates/graphene-codegen/src/writer.rs:
