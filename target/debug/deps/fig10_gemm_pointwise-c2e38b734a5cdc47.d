/root/repo/target/debug/deps/fig10_gemm_pointwise-c2e38b734a5cdc47.d: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

/root/repo/target/debug/deps/fig10_gemm_pointwise-c2e38b734a5cdc47: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs

crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs:
