/root/repo/target/debug/deps/graphene_bench-de1f015db2972b5f.d: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_bench-de1f015db2972b5f.rmeta: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs Cargo.toml

crates/graphene-bench/src/lib.rs:
crates/graphene-bench/src/ablations.rs:
crates/graphene-bench/src/figures.rs:
crates/graphene-bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
