/root/repo/target/debug/deps/fig14_fmha-440957f900fc16bd.d: crates/graphene-bench/src/bin/fig14_fmha.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_fmha-440957f900fc16bd.rmeta: crates/graphene-bench/src/bin/fig14_fmha.rs Cargo.toml

crates/graphene-bench/src/bin/fig14_fmha.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
