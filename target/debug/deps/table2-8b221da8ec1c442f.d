/root/repo/target/debug/deps/table2-8b221da8ec1c442f.d: crates/graphene-ir/tests/table2.rs

/root/repo/target/debug/deps/table2-8b221da8ec1c442f: crates/graphene-ir/tests/table2.rs

crates/graphene-ir/tests/table2.rs:
