/root/repo/target/debug/deps/property-0fad962913c72b8a.d: crates/graphene-analysis/tests/property.rs

/root/repo/target/debug/deps/property-0fad962913c72b8a: crates/graphene-analysis/tests/property.rs

crates/graphene-analysis/tests/property.rs:
