/root/repo/target/debug/deps/fig12_lstm-616c8783cdbf2f74.d: crates/graphene-bench/src/bin/fig12_lstm.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_lstm-616c8783cdbf2f74.rmeta: crates/graphene-bench/src/bin/fig12_lstm.rs Cargo.toml

crates/graphene-bench/src/bin/fig12_lstm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
