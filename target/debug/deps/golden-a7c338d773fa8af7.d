/root/repo/target/debug/deps/golden-a7c338d773fa8af7.d: crates/graphene-codegen/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-a7c338d773fa8af7.rmeta: crates/graphene-codegen/tests/golden.rs Cargo.toml

crates/graphene-codegen/tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
