/root/repo/target/debug/deps/graphene-110d4baa9799da59.d: src/lib.rs

/root/repo/target/debug/deps/graphene-110d4baa9799da59: src/lib.rs

src/lib.rs:
