/root/repo/target/debug/deps/soundness-accd7fa967bcdbf9.d: crates/graphene-sym/tests/soundness.rs Cargo.toml

/root/repo/target/debug/deps/libsoundness-accd7fa967bcdbf9.rmeta: crates/graphene-sym/tests/soundness.rs Cargo.toml

crates/graphene-sym/tests/soundness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
