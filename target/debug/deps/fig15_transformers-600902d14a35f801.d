/root/repo/target/debug/deps/fig15_transformers-600902d14a35f801.d: crates/graphene-bench/src/bin/fig15_transformers.rs

/root/repo/target/debug/deps/fig15_transformers-600902d14a35f801: crates/graphene-bench/src/bin/fig15_transformers.rs

crates/graphene-bench/src/bin/fig15_transformers.rs:
