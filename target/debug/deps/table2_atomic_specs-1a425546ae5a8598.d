/root/repo/target/debug/deps/table2_atomic_specs-1a425546ae5a8598.d: crates/graphene-bench/src/bin/table2_atomic_specs.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_atomic_specs-1a425546ae5a8598.rmeta: crates/graphene-bench/src/bin/table2_atomic_specs.rs Cargo.toml

crates/graphene-bench/src/bin/table2_atomic_specs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
