/root/repo/target/debug/deps/graphene_bench-a24b3a9956d42a5d.d: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/debug/deps/libgraphene_bench-a24b3a9956d42a5d.rlib: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

/root/repo/target/debug/deps/libgraphene_bench-a24b3a9956d42a5d.rmeta: crates/graphene-bench/src/lib.rs crates/graphene-bench/src/ablations.rs crates/graphene-bench/src/figures.rs crates/graphene-bench/src/report.rs

crates/graphene-bench/src/lib.rs:
crates/graphene-bench/src/ablations.rs:
crates/graphene-bench/src/figures.rs:
crates/graphene-bench/src/report.rs:
