/root/repo/target/debug/deps/fig01_ldmatrix-f2003a3ae5e9e5e0.d: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

/root/repo/target/debug/deps/fig01_ldmatrix-f2003a3ae5e9e5e0: crates/graphene-bench/src/bin/fig01_ldmatrix.rs

crates/graphene-bench/src/bin/fig01_ldmatrix.rs:
