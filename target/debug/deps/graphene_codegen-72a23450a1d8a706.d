/root/repo/target/debug/deps/graphene_codegen-72a23450a1d8a706.d: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/debug/deps/libgraphene_codegen-72a23450a1d8a706.rlib: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

/root/repo/target/debug/deps/libgraphene_codegen-72a23450a1d8a706.rmeta: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs

crates/graphene-codegen/src/lib.rs:
crates/graphene-codegen/src/emit.rs:
crates/graphene-codegen/src/expr.rs:
crates/graphene-codegen/src/writer.rs:
