/root/repo/target/debug/deps/equivalence-212c15aa6e49d9ce.d: crates/graphene-kernels/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-212c15aa6e49d9ce: crates/graphene-kernels/tests/equivalence.rs

crates/graphene-kernels/tests/equivalence.rs:
