/root/repo/target/debug/deps/graphene_cli-c3aaed172a232907.d: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/graphene_cli-c3aaed172a232907: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
