/root/repo/target/debug/deps/fig08_gemm-ad09107016640cd6.d: crates/graphene-bench/src/bin/fig08_gemm.rs

/root/repo/target/debug/deps/fig08_gemm-ad09107016640cd6: crates/graphene-bench/src/bin/fig08_gemm.rs

crates/graphene-bench/src/bin/fig08_gemm.rs:
