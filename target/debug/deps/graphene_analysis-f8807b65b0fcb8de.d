/root/repo/target/debug/deps/graphene_analysis-f8807b65b0fcb8de.d: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs

/root/repo/target/debug/deps/libgraphene_analysis-f8807b65b0fcb8de.rlib: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs

/root/repo/target/debug/deps/libgraphene_analysis-f8807b65b0fcb8de.rmeta: crates/graphene-analysis/src/lib.rs crates/graphene-analysis/src/banks.rs crates/graphene-analysis/src/memspace.rs crates/graphene-analysis/src/races.rs crates/graphene-analysis/src/uninit.rs crates/graphene-analysis/src/walk.rs

crates/graphene-analysis/src/lib.rs:
crates/graphene-analysis/src/banks.rs:
crates/graphene-analysis/src/memspace.rs:
crates/graphene-analysis/src/races.rs:
crates/graphene-analysis/src/uninit.rs:
crates/graphene-analysis/src/walk.rs:
