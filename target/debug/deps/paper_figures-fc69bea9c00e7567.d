/root/repo/target/debug/deps/paper_figures-fc69bea9c00e7567.d: crates/graphene-bench/benches/paper_figures.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_figures-fc69bea9c00e7567.rmeta: crates/graphene-bench/benches/paper_figures.rs Cargo.toml

crates/graphene-bench/benches/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
