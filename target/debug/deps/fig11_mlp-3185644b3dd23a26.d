/root/repo/target/debug/deps/fig11_mlp-3185644b3dd23a26.d: crates/graphene-bench/src/bin/fig11_mlp.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_mlp-3185644b3dd23a26.rmeta: crates/graphene-bench/src/bin/fig11_mlp.rs Cargo.toml

crates/graphene-bench/src/bin/fig11_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
