/root/repo/target/debug/deps/graphene_codegen-3af0df1906de2823.d: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_codegen-3af0df1906de2823.rmeta: crates/graphene-codegen/src/lib.rs crates/graphene-codegen/src/emit.rs crates/graphene-codegen/src/expr.rs crates/graphene-codegen/src/writer.rs Cargo.toml

crates/graphene-codegen/src/lib.rs:
crates/graphene-codegen/src/emit.rs:
crates/graphene-codegen/src/expr.rs:
crates/graphene-codegen/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
