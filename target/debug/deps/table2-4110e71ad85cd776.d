/root/repo/target/debug/deps/table2-4110e71ad85cd776.d: crates/graphene-ir/tests/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-4110e71ad85cd776.rmeta: crates/graphene-ir/tests/table2.rs Cargo.toml

crates/graphene-ir/tests/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
