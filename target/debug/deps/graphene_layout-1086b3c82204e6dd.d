/root/repo/target/debug/deps/graphene_layout-1086b3c82204e6dd.d: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/debug/deps/graphene_layout-1086b3c82204e6dd: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

crates/graphene-layout/src/lib.rs:
crates/graphene-layout/src/algebra.rs:
crates/graphene-layout/src/int_tuple.rs:
crates/graphene-layout/src/layout.rs:
crates/graphene-layout/src/swizzle.rs:
