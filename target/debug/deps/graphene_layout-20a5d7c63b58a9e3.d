/root/repo/target/debug/deps/graphene_layout-20a5d7c63b58a9e3.d: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/debug/deps/libgraphene_layout-20a5d7c63b58a9e3.rlib: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

/root/repo/target/debug/deps/libgraphene_layout-20a5d7c63b58a9e3.rmeta: crates/graphene-layout/src/lib.rs crates/graphene-layout/src/algebra.rs crates/graphene-layout/src/int_tuple.rs crates/graphene-layout/src/layout.rs crates/graphene-layout/src/swizzle.rs

crates/graphene-layout/src/lib.rs:
crates/graphene-layout/src/algebra.rs:
crates/graphene-layout/src/int_tuple.rs:
crates/graphene-layout/src/layout.rs:
crates/graphene-layout/src/swizzle.rs:
