/root/repo/target/debug/deps/ablations-23ef322db69d170b.d: crates/graphene-bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-23ef322db69d170b.rmeta: crates/graphene-bench/src/bin/ablations.rs Cargo.toml

crates/graphene-bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
