/root/repo/target/debug/deps/graphene_kernels-8eaeb260e83d43e4.d: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs

/root/repo/target/debug/deps/graphene_kernels-8eaeb260e83d43e4: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs

crates/graphene-kernels/src/lib.rs:
crates/graphene-kernels/src/common.rs:
crates/graphene-kernels/src/fmha.rs:
crates/graphene-kernels/src/gemm.rs:
crates/graphene-kernels/src/graph.rs:
crates/graphene-kernels/src/layernorm.rs:
crates/graphene-kernels/src/lstm.rs:
crates/graphene-kernels/src/mlp.rs:
crates/graphene-kernels/src/mma.rs:
crates/graphene-kernels/src/reference.rs:
crates/graphene-kernels/src/softmax.rs:
crates/graphene-kernels/src/transformer.rs:
crates/graphene-kernels/src/tune.rs:
