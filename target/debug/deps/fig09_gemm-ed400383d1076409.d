/root/repo/target/debug/deps/fig09_gemm-ed400383d1076409.d: crates/graphene-bench/src/bin/fig09_gemm.rs

/root/repo/target/debug/deps/fig09_gemm-ed400383d1076409: crates/graphene-bench/src/bin/fig09_gemm.rs

crates/graphene-bench/src/bin/fig09_gemm.rs:
