/root/repo/target/debug/deps/fig10_gemm_pointwise-8808ae8dacdc9970.d: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_gemm_pointwise-8808ae8dacdc9970.rmeta: crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs Cargo.toml

crates/graphene-bench/src/bin/fig10_gemm_pointwise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
