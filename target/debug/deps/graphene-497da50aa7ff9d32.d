/root/repo/target/debug/deps/graphene-497da50aa7ff9d32.d: crates/graphene-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene-497da50aa7ff9d32.rmeta: crates/graphene-cli/src/main.rs Cargo.toml

crates/graphene-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
