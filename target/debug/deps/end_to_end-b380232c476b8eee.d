/root/repo/target/debug/deps/end_to_end-b380232c476b8eee.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b380232c476b8eee: tests/end_to_end.rs

tests/end_to_end.rs:
