/root/repo/target/debug/deps/graphene_kernels-4a4fd53d60a4ef2e.d: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs

/root/repo/target/debug/deps/libgraphene_kernels-4a4fd53d60a4ef2e.rlib: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs

/root/repo/target/debug/deps/libgraphene_kernels-4a4fd53d60a4ef2e.rmeta: crates/graphene-kernels/src/lib.rs crates/graphene-kernels/src/common.rs crates/graphene-kernels/src/fmha.rs crates/graphene-kernels/src/gemm.rs crates/graphene-kernels/src/graph.rs crates/graphene-kernels/src/layernorm.rs crates/graphene-kernels/src/lstm.rs crates/graphene-kernels/src/mlp.rs crates/graphene-kernels/src/mma.rs crates/graphene-kernels/src/reference.rs crates/graphene-kernels/src/softmax.rs crates/graphene-kernels/src/transformer.rs crates/graphene-kernels/src/tune.rs

crates/graphene-kernels/src/lib.rs:
crates/graphene-kernels/src/common.rs:
crates/graphene-kernels/src/fmha.rs:
crates/graphene-kernels/src/gemm.rs:
crates/graphene-kernels/src/graph.rs:
crates/graphene-kernels/src/layernorm.rs:
crates/graphene-kernels/src/lstm.rs:
crates/graphene-kernels/src/mlp.rs:
crates/graphene-kernels/src/mma.rs:
crates/graphene-kernels/src/reference.rs:
crates/graphene-kernels/src/softmax.rs:
crates/graphene-kernels/src/transformer.rs:
crates/graphene-kernels/src/tune.rs:
