/root/repo/target/debug/deps/fig09_gemm-68ee74c2bbdcb6c2.d: crates/graphene-bench/src/bin/fig09_gemm.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_gemm-68ee74c2bbdcb6c2.rmeta: crates/graphene-bench/src/bin/fig09_gemm.rs Cargo.toml

crates/graphene-bench/src/bin/fig09_gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
