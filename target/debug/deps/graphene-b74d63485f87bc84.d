/root/repo/target/debug/deps/graphene-b74d63485f87bc84.d: crates/graphene-cli/src/main.rs

/root/repo/target/debug/deps/graphene-b74d63485f87bc84: crates/graphene-cli/src/main.rs

crates/graphene-cli/src/main.rs:
