/root/repo/target/debug/deps/semantics-0973fdd1cd67994c.d: crates/graphene-sim/tests/semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics-0973fdd1cd67994c.rmeta: crates/graphene-sim/tests/semantics.rs Cargo.toml

crates/graphene-sim/tests/semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
