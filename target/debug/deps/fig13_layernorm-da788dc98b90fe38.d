/root/repo/target/debug/deps/fig13_layernorm-da788dc98b90fe38.d: crates/graphene-bench/src/bin/fig13_layernorm.rs

/root/repo/target/debug/deps/fig13_layernorm-da788dc98b90fe38: crates/graphene-bench/src/bin/fig13_layernorm.rs

crates/graphene-bench/src/bin/fig13_layernorm.rs:
