/root/repo/target/debug/deps/printer_golden-b18326f88d2d9347.d: crates/graphene-ir/tests/printer_golden.rs

/root/repo/target/debug/deps/printer_golden-b18326f88d2d9347: crates/graphene-ir/tests/printer_golden.rs

crates/graphene-ir/tests/printer_golden.rs:
