/root/repo/target/debug/deps/fig09_gemm-44ab9b2d118c873b.d: crates/graphene-bench/src/bin/fig09_gemm.rs

/root/repo/target/debug/deps/fig09_gemm-44ab9b2d118c873b: crates/graphene-bench/src/bin/fig09_gemm.rs

crates/graphene-bench/src/bin/fig09_gemm.rs:
