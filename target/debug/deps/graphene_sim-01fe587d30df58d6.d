/root/repo/target/debug/deps/graphene_sim-01fe587d30df58d6.d: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_sim-01fe587d30df58d6.rmeta: crates/graphene-sim/src/lib.rs crates/graphene-sim/src/analyze.rs crates/graphene-sim/src/counters.rs crates/graphene-sim/src/exec.rs crates/graphene-sim/src/host.rs crates/graphene-sim/src/machine.rs crates/graphene-sim/src/timing.rs Cargo.toml

crates/graphene-sim/src/lib.rs:
crates/graphene-sim/src/analyze.rs:
crates/graphene-sim/src/counters.rs:
crates/graphene-sim/src/exec.rs:
crates/graphene-sim/src/host.rs:
crates/graphene-sim/src/machine.rs:
crates/graphene-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
