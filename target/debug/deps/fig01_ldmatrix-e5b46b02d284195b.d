/root/repo/target/debug/deps/fig01_ldmatrix-e5b46b02d284195b.d: crates/graphene-bench/src/bin/fig01_ldmatrix.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_ldmatrix-e5b46b02d284195b.rmeta: crates/graphene-bench/src/bin/fig01_ldmatrix.rs Cargo.toml

crates/graphene-bench/src/bin/fig01_ldmatrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
