/root/repo/target/debug/deps/fig14_fmha-fb792181e93a9589.d: crates/graphene-bench/src/bin/fig14_fmha.rs

/root/repo/target/debug/deps/fig14_fmha-fb792181e93a9589: crates/graphene-bench/src/bin/fig14_fmha.rs

crates/graphene-bench/src/bin/fig14_fmha.rs:
