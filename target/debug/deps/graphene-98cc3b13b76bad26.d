/root/repo/target/debug/deps/graphene-98cc3b13b76bad26.d: src/lib.rs

/root/repo/target/debug/deps/libgraphene-98cc3b13b76bad26.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraphene-98cc3b13b76bad26.rmeta: src/lib.rs

src/lib.rs:
