/root/repo/target/debug/deps/ablations-12b5ca1301df20ab.d: crates/graphene-bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-12b5ca1301df20ab: crates/graphene-bench/src/bin/ablations.rs

crates/graphene-bench/src/bin/ablations.rs:
