/root/repo/target/debug/deps/fig12_lstm-6c2fa156d46801e4.d: crates/graphene-bench/src/bin/fig12_lstm.rs

/root/repo/target/debug/deps/fig12_lstm-6c2fa156d46801e4: crates/graphene-bench/src/bin/fig12_lstm.rs

crates/graphene-bench/src/bin/fig12_lstm.rs:
