/root/repo/target/debug/deps/builder_properties-af49b1bd403e4edf.d: tests/builder_properties.rs Cargo.toml

/root/repo/target/debug/deps/libbuilder_properties-af49b1bd403e4edf.rmeta: tests/builder_properties.rs Cargo.toml

tests/builder_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
