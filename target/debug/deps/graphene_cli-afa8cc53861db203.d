/root/repo/target/debug/deps/graphene_cli-afa8cc53861db203.d: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/libgraphene_cli-afa8cc53861db203.rlib: crates/graphene-cli/src/lib.rs

/root/repo/target/debug/deps/libgraphene_cli-afa8cc53861db203.rmeta: crates/graphene-cli/src/lib.rs

crates/graphene-cli/src/lib.rs:
