/root/repo/target/debug/deps/graphene-5255d4431a6b2176.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene-5255d4431a6b2176.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
