/root/repo/target/debug/deps/graphene_ir-71a0bf0e43a525af.d: crates/graphene-ir/src/lib.rs crates/graphene-ir/src/atomic.rs crates/graphene-ir/src/body.rs crates/graphene-ir/src/builder.rs crates/graphene-ir/src/diag.rs crates/graphene-ir/src/dtype.rs crates/graphene-ir/src/memory.rs crates/graphene-ir/src/module.rs crates/graphene-ir/src/ops.rs crates/graphene-ir/src/printer.rs crates/graphene-ir/src/spec.rs crates/graphene-ir/src/tensor.rs crates/graphene-ir/src/threads.rs crates/graphene-ir/src/transform.rs crates/graphene-ir/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene_ir-71a0bf0e43a525af.rmeta: crates/graphene-ir/src/lib.rs crates/graphene-ir/src/atomic.rs crates/graphene-ir/src/body.rs crates/graphene-ir/src/builder.rs crates/graphene-ir/src/diag.rs crates/graphene-ir/src/dtype.rs crates/graphene-ir/src/memory.rs crates/graphene-ir/src/module.rs crates/graphene-ir/src/ops.rs crates/graphene-ir/src/printer.rs crates/graphene-ir/src/spec.rs crates/graphene-ir/src/tensor.rs crates/graphene-ir/src/threads.rs crates/graphene-ir/src/transform.rs crates/graphene-ir/src/validate.rs Cargo.toml

crates/graphene-ir/src/lib.rs:
crates/graphene-ir/src/atomic.rs:
crates/graphene-ir/src/body.rs:
crates/graphene-ir/src/builder.rs:
crates/graphene-ir/src/diag.rs:
crates/graphene-ir/src/dtype.rs:
crates/graphene-ir/src/memory.rs:
crates/graphene-ir/src/module.rs:
crates/graphene-ir/src/ops.rs:
crates/graphene-ir/src/printer.rs:
crates/graphene-ir/src/spec.rs:
crates/graphene-ir/src/tensor.rs:
crates/graphene-ir/src/threads.rs:
crates/graphene-ir/src/transform.rs:
crates/graphene-ir/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
