/root/repo/target/debug/deps/semantics-c553f58cd18e8288.d: crates/graphene-sim/tests/semantics.rs

/root/repo/target/debug/deps/semantics-c553f58cd18e8288: crates/graphene-sim/tests/semantics.rs

crates/graphene-sim/tests/semantics.rs:
