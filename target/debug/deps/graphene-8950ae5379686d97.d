/root/repo/target/debug/deps/graphene-8950ae5379686d97.d: crates/graphene-cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libgraphene-8950ae5379686d97.rmeta: crates/graphene-cli/src/main.rs Cargo.toml

crates/graphene-cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
