/root/repo/target/debug/deps/instructions-0e4157ab87d80acb.d: crates/graphene-codegen/tests/instructions.rs Cargo.toml

/root/repo/target/debug/deps/libinstructions-0e4157ab87d80acb.rmeta: crates/graphene-codegen/tests/instructions.rs Cargo.toml

crates/graphene-codegen/tests/instructions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
