/root/repo/target/debug/examples/compiler_lowering-36f9ccf91b08231b.d: examples/compiler_lowering.rs Cargo.toml

/root/repo/target/debug/examples/libcompiler_lowering-36f9ccf91b08231b.rmeta: examples/compiler_lowering.rs Cargo.toml

examples/compiler_lowering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
