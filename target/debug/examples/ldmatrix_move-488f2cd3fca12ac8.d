/root/repo/target/debug/examples/ldmatrix_move-488f2cd3fca12ac8.d: examples/ldmatrix_move.rs Cargo.toml

/root/repo/target/debug/examples/libldmatrix_move-488f2cd3fca12ac8.rmeta: examples/ldmatrix_move.rs Cargo.toml

examples/ldmatrix_move.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
