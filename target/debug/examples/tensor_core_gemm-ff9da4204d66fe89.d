/root/repo/target/debug/examples/tensor_core_gemm-ff9da4204d66fe89.d: examples/tensor_core_gemm.rs Cargo.toml

/root/repo/target/debug/examples/libtensor_core_gemm-ff9da4204d66fe89.rmeta: examples/tensor_core_gemm.rs Cargo.toml

examples/tensor_core_gemm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
