/root/repo/target/debug/examples/ldmatrix_move-289faf046eebe7ac.d: examples/ldmatrix_move.rs

/root/repo/target/debug/examples/ldmatrix_move-289faf046eebe7ac: examples/ldmatrix_move.rs

examples/ldmatrix_move.rs:
