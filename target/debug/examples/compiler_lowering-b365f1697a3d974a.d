/root/repo/target/debug/examples/compiler_lowering-b365f1697a3d974a.d: examples/compiler_lowering.rs

/root/repo/target/debug/examples/compiler_lowering-b365f1697a3d974a: examples/compiler_lowering.rs

examples/compiler_lowering.rs:
