/root/repo/target/debug/examples/show_fig8-24968ad1f0e0ebf6.d: crates/graphene-codegen/examples/show_fig8.rs Cargo.toml

/root/repo/target/debug/examples/libshow_fig8-24968ad1f0e0ebf6.rmeta: crates/graphene-codegen/examples/show_fig8.rs Cargo.toml

crates/graphene-codegen/examples/show_fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
