/root/repo/target/debug/examples/show_fig8-936a77f7359123e2.d: crates/graphene-codegen/examples/show_fig8.rs

/root/repo/target/debug/examples/show_fig8-936a77f7359123e2: crates/graphene-codegen/examples/show_fig8.rs

crates/graphene-codegen/examples/show_fig8.rs:
