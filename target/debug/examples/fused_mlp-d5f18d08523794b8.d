/root/repo/target/debug/examples/fused_mlp-d5f18d08523794b8.d: examples/fused_mlp.rs Cargo.toml

/root/repo/target/debug/examples/libfused_mlp-d5f18d08523794b8.rmeta: examples/fused_mlp.rs Cargo.toml

examples/fused_mlp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
