/root/repo/target/debug/examples/quickstart-e66567f944d0244d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e66567f944d0244d: examples/quickstart.rs

examples/quickstart.rs:
