/root/repo/target/debug/examples/fused_mlp-add78781d44cc076.d: examples/fused_mlp.rs

/root/repo/target/debug/examples/fused_mlp-add78781d44cc076: examples/fused_mlp.rs

examples/fused_mlp.rs:
