/root/repo/target/debug/examples/tensor_core_gemm-953cd307e517d4a9.d: examples/tensor_core_gemm.rs

/root/repo/target/debug/examples/tensor_core_gemm-953cd307e517d4a9: examples/tensor_core_gemm.rs

examples/tensor_core_gemm.rs:
