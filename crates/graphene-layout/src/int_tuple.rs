//! Recursive integer tuples — the building block of Graphene shapes.
//!
//! The paper (§3.1, Figure 2) defines
//!
//! ```text
//! IntTuple = (Size, ..., Size)
//! Size     = IntExpr | IntTuple
//! ```
//!
//! i.e. every dimension of a shape (and every stride) may itself be a tuple
//! of integers. This recursion is what lets Graphene express *hierarchical
//! dimensions* (multiple strides per logical dimension, §3.2) and tiles
//! (§3.3). The notation and algebra follow NVIDIA's CuTe shape algebra,
//! which the paper explicitly builds upon.

use std::fmt;

/// A recursively-nested integer tuple.
///
/// An [`IntTuple`] is either a single integer leaf or an ordered tuple of
/// nested [`IntTuple`]s. Shapes and strides of Graphene layouts are both
/// `IntTuple`s with *congruent* (identical) nesting profiles.
///
/// # Examples
///
/// ```
/// use graphene_layout::{it, IntTuple};
///
/// // The shape (4, (2, 4)) — a 2-D shape whose second dimension is
/// // hierarchical (used for the layouts of Figure 3c/d in the paper).
/// let shape = it![4, [2, 4]];
/// assert_eq!(shape.size(), 32);
/// assert_eq!(shape.rank(), 2);
/// assert_eq!(shape.depth(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum IntTuple {
    /// A single integer leaf.
    Int(i64),
    /// An ordered tuple of nested tuples.
    Tuple(Vec<IntTuple>),
}

impl IntTuple {
    /// Creates a leaf from an integer.
    pub fn int(v: i64) -> Self {
        IntTuple::Int(v)
    }

    /// Creates a tuple node from an iterator of elements.
    pub fn tuple<I>(items: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<IntTuple>,
    {
        IntTuple::Tuple(items.into_iter().map(Into::into).collect())
    }

    /// The empty tuple `()`.
    pub fn empty() -> Self {
        IntTuple::Tuple(Vec::new())
    }

    /// Returns `true` if this is a single integer leaf.
    pub fn is_int(&self) -> bool {
        matches!(self, IntTuple::Int(_))
    }

    /// Returns the leaf value if this is a leaf.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            IntTuple::Int(v) => Some(*v),
            IntTuple::Tuple(_) => None,
        }
    }

    /// Returns the child elements. A leaf behaves as a rank-1 tuple
    /// containing itself, so this returns a single-element slice view via
    /// `modes()` instead; `children` is `None` for leaves.
    pub fn children(&self) -> Option<&[IntTuple]> {
        match self {
            IntTuple::Int(_) => None,
            IntTuple::Tuple(v) => Some(v),
        }
    }

    /// Rank: the number of top-level modes. Leaves have rank 1.
    pub fn rank(&self) -> usize {
        match self {
            IntTuple::Int(_) => 1,
            IntTuple::Tuple(v) => v.len(),
        }
    }

    /// Depth of nesting: leaves have depth 0, a flat tuple depth 1, etc.
    pub fn depth(&self) -> usize {
        match self {
            IntTuple::Int(_) => 0,
            IntTuple::Tuple(v) => 1 + v.iter().map(IntTuple::depth).max().unwrap_or(0),
        }
    }

    /// The product of all leaves — the total number of elements of a shape.
    pub fn size(&self) -> i64 {
        match self {
            IntTuple::Int(v) => *v,
            IntTuple::Tuple(v) => v.iter().map(IntTuple::size).product(),
        }
    }

    /// The number of leaves.
    pub fn num_leaves(&self) -> usize {
        match self {
            IntTuple::Int(_) => 1,
            IntTuple::Tuple(v) => v.iter().map(IntTuple::num_leaves).sum(),
        }
    }

    /// Returns mode `i` of this tuple.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn mode(&self, i: usize) -> &IntTuple {
        match self {
            IntTuple::Int(_) => {
                assert_eq!(i, 0, "leaf IntTuple has a single mode");
                self
            }
            IntTuple::Tuple(v) => &v[i],
        }
    }

    /// All leaves in order (depth-first, left-to-right).
    pub fn leaves(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.num_leaves());
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<i64>) {
        match self {
            IntTuple::Int(v) => out.push(*v),
            IntTuple::Tuple(v) => v.iter().for_each(|t| t.collect_leaves(out)),
        }
    }

    /// A flat (depth ≤ 1) tuple with the same leaves.
    pub fn flatten(&self) -> IntTuple {
        match self {
            IntTuple::Int(v) => IntTuple::Int(*v),
            IntTuple::Tuple(_) => {
                IntTuple::Tuple(self.leaves().into_iter().map(IntTuple::Int).collect())
            }
        }
    }

    /// Two tuples are *congruent* when they have identical nesting profiles
    /// (same tree shape; leaf values may differ). Layouts require congruent
    /// shape and stride.
    pub fn congruent(&self, other: &IntTuple) -> bool {
        match (self, other) {
            (IntTuple::Int(_), IntTuple::Int(_)) => true,
            (IntTuple::Tuple(a), IntTuple::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.congruent(y))
            }
            _ => false,
        }
    }

    /// Rebuilds a tuple congruent to `profile` from a flat list of leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` does not contain exactly `profile.num_leaves()`
    /// entries.
    pub fn unflatten(profile: &IntTuple, leaves: &[i64]) -> IntTuple {
        let mut iter = leaves.iter().copied();
        let out = Self::unflatten_inner(profile, &mut iter);
        assert!(iter.next().is_none(), "too many leaves for profile");
        out
    }

    fn unflatten_inner(profile: &IntTuple, leaves: &mut impl Iterator<Item = i64>) -> IntTuple {
        match profile {
            IntTuple::Int(_) => IntTuple::Int(leaves.next().expect("too few leaves for profile")),
            IntTuple::Tuple(v) => {
                IntTuple::Tuple(v.iter().map(|p| Self::unflatten_inner(p, leaves)).collect())
            }
        }
    }

    /// Appends a mode, turning a leaf into a rank-2 tuple.
    pub fn append(&self, mode: IntTuple) -> IntTuple {
        match self {
            IntTuple::Int(v) => IntTuple::Tuple(vec![IntTuple::Int(*v), mode]),
            IntTuple::Tuple(v) => {
                let mut v = v.clone();
                v.push(mode);
                IntTuple::Tuple(v)
            }
        }
    }

    /// Prepends a mode, turning a leaf into a rank-2 tuple.
    pub fn prepend(&self, mode: IntTuple) -> IntTuple {
        match self {
            IntTuple::Int(v) => IntTuple::Tuple(vec![mode, IntTuple::Int(*v)]),
            IntTuple::Tuple(v) => {
                let mut out = vec![mode];
                out.extend(v.iter().cloned());
                IntTuple::Tuple(out)
            }
        }
    }

    /// Element-wise product of congruent tuples.
    ///
    /// # Panics
    ///
    /// Panics if the tuples are not congruent.
    pub fn elem_mul(&self, other: &IntTuple) -> IntTuple {
        match (self, other) {
            (IntTuple::Int(a), IntTuple::Int(b)) => IntTuple::Int(a * b),
            (IntTuple::Tuple(a), IntTuple::Tuple(b)) if a.len() == b.len() => {
                IntTuple::Tuple(a.iter().zip(b).map(|(x, y)| x.elem_mul(y)).collect())
            }
            _ => panic!("elem_mul requires congruent tuples: {self} vs {other}"),
        }
    }

    /// Iterates over the top-level modes. A leaf yields itself once.
    pub fn modes(&self) -> Vec<IntTuple> {
        match self {
            IntTuple::Int(v) => vec![IntTuple::Int(*v)],
            IntTuple::Tuple(v) => v.clone(),
        }
    }
}

impl From<i64> for IntTuple {
    fn from(v: i64) -> Self {
        IntTuple::Int(v)
    }
}

impl From<i32> for IntTuple {
    fn from(v: i32) -> Self {
        IntTuple::Int(v as i64)
    }
}

impl From<usize> for IntTuple {
    fn from(v: usize) -> Self {
        IntTuple::Int(v as i64)
    }
}

impl From<Vec<IntTuple>> for IntTuple {
    fn from(v: Vec<IntTuple>) -> Self {
        IntTuple::Tuple(v)
    }
}

impl From<&[i64]> for IntTuple {
    fn from(v: &[i64]) -> Self {
        IntTuple::Tuple(v.iter().map(|&x| IntTuple::Int(x)).collect())
    }
}

impl fmt::Display for IntTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntTuple::Int(v) => write!(f, "{v}"),
            IntTuple::Tuple(v) => {
                write!(f, "(")?;
                for (i, t) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for IntTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience macro for building [`IntTuple`]s with tuple-like syntax.
///
/// A top-level comma list builds a tuple; a single expression builds a
/// leaf; square brackets nest.
///
/// ```
/// use graphene_layout::{it, IntTuple};
/// let t = it![4, [2, 4]];
/// assert_eq!(t.to_string(), "(4,(2,4))");
/// assert_eq!(it![8], IntTuple::Int(8));
/// ```
#[macro_export]
macro_rules! it {
    ([$($inner:tt),* $(,)?]) => {
        $crate::IntTuple::Tuple(vec![$( $crate::it!($inner) ),*])
    };
    ($v:expr) => {
        $crate::IntTuple::from($v)
    };
    ($($e:tt),+ $(,)?) => {
        $crate::IntTuple::Tuple(vec![$( $crate::it!($e) ),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_basics() {
        let t = IntTuple::int(7);
        assert!(t.is_int());
        assert_eq!(t.as_int(), Some(7));
        assert_eq!(t.rank(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.size(), 7);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.to_string(), "7");
    }

    #[test]
    fn nested_tuple() {
        let t = it![4, [2, 4]];
        assert_eq!(t.rank(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.size(), 32);
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.leaves(), vec![4, 2, 4]);
        assert_eq!(t.to_string(), "(4,(2,4))");
    }

    #[test]
    fn flatten_preserves_leaves() {
        let t = it![[2, [3, 5]], 7];
        let f = t.flatten();
        assert_eq!(f.depth(), 1);
        assert_eq!(f.leaves(), t.leaves());
        assert_eq!(f.size(), t.size());
    }

    #[test]
    fn congruence() {
        let a = it![4, [2, 4]];
        let b = it![9, [1, 7]];
        let c = it![[4, 2], 4];
        assert!(a.congruent(&b));
        assert!(!a.congruent(&c));
        assert!(IntTuple::int(3).congruent(&IntTuple::int(9)));
        assert!(!IntTuple::int(3).congruent(&a));
    }

    #[test]
    fn unflatten_roundtrip() {
        let profile = it![4, [2, [4, 3]], 6];
        let leaves = profile.leaves();
        let rebuilt = IntTuple::unflatten(&profile, &leaves);
        assert_eq!(rebuilt, profile);
    }

    #[test]
    #[should_panic(expected = "too few leaves")]
    fn unflatten_too_few() {
        IntTuple::unflatten(&it![2, 3], &[1]);
    }

    #[test]
    fn elem_mul_congruent() {
        let a = it![2, [3, 4]];
        let b = it![5, [6, 7]];
        assert_eq!(a.elem_mul(&b), it![10, [18, 28]]);
    }

    #[test]
    fn empty_tuple() {
        let e = IntTuple::empty();
        assert_eq!(e.rank(), 0);
        assert_eq!(e.size(), 1);
        assert_eq!(e.num_leaves(), 0);
        assert_eq!(e.to_string(), "()");
    }

    #[test]
    fn append_prepend() {
        let t = IntTuple::int(4).append(IntTuple::int(5));
        assert_eq!(t, it![4, 5]);
        let t = t.prepend(IntTuple::int(3));
        assert_eq!(t, it![3, 4, 5]);
    }

    #[test]
    fn mode_access() {
        let t = it![4, [2, 4]];
        assert_eq!(t.mode(0), &IntTuple::Int(4));
        assert_eq!(t.mode(1), &it![2, 4]);
        let leaf = IntTuple::int(9);
        assert_eq!(leaf.mode(0), &leaf);
    }
}
