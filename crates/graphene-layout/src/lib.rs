//! # graphene-layout
//!
//! The shape-and-layout algebra underlying
//! [Graphene](https://doi.org/10.1145/3582016.3582018) (ASPLOS '23), an IR
//! for optimized tensor computations on GPUs.
//!
//! Graphene tensors are written `name : [dims:strides] . elemtype . memory`
//! where both `dims` and `strides` are *recursive* integer tuples
//! ([`IntTuple`]). This crate implements:
//!
//! - [`IntTuple`] — recursively nested integer tuples (paper §3.1),
//! - [`Layout`] — congruent shape/stride pairs denoting coordinate→memory
//!   maps, including hierarchical dimensions (paper §3.2, Figure 3),
//! - the layout algebra ([`coalesce`], [`composition`], [`complement`],
//!   [`logical_divide`], [`zipped_divide`], [`tiled_divide`],
//!   [`logical_product`], [`blocked_product`]) that tensor tiling
//!   (paper §3.3, Figure 4) desugars to, and
//! - [`Swizzle`] — XOR swizzles for bank-conflict-free shared memory.
//!
//! The algebra follows NVIDIA's CuTe shape algebra, which the paper
//! explicitly builds upon.
//!
//! ## Example: the layouts of Figure 3
//!
//! ```
//! use graphene_layout::{Layout, it};
//!
//! // (a) column-major  [(4,8):(1,4)]
//! let a = Layout::column_major(&[4, 8]);
//! // (b) row-major     [(4,8):(8,1)]
//! let b = Layout::row_major(&[4, 8]);
//! // (c) hierarchical  [(4,(2,4)):(2,(1,8))]
//! let c = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
//! assert_eq!(a.size(), 32);
//! assert_eq!(b.size(), 32);
//! assert!(c.is_compact());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algebra;
mod int_tuple;
mod layout;
mod linear;
mod swizzle;

pub use algebra::{
    blocked_product, coalesce, complement, composition, logical_divide, logical_product,
    right_inverse, tiled_divide, with_shape, zipped_divide, LayoutError, Result,
};
pub use int_tuple::IntTuple;
pub use layout::Layout;
pub use linear::{
    prove_banks, rank_f2, solutions_force_equal, solve_f2, synthesize_swizzle, word_columns,
    AccessSite, BankProof, SolutionSpace,
};
pub use swizzle::Swizzle;
