//! XOR swizzles for bank-conflict-free shared-memory layouts.
//!
//! The paper (§3.2) notes that optimized kernels lay out shared-memory
//! tensors "in more complex ways beyond the simpler layouts", and §6
//! attributes Graphene's FMHA win over the MLPerf kernels to "optimized
//! shared memory layouts". In CuTe (which the paper builds upon) such
//! layouts are expressed by post-composing a layout with an XOR swizzle.
//!
//! A [`Swizzle`] with parameters `(bits, base, shift)` permutes physical
//! indices by XOR-ing a window of `bits` bits (located `shift` positions
//! above the `base`-bit offset window) into the low window:
//!
//! ```text
//! y = x ^ ((x >> shift) & mask << base)
//! ```
//!
//! Because XOR with a moving key is an involution on each aligned block,
//! the swizzle is a bijection on any `2^(base+bits+shift)`-aligned region,
//! so it never changes *which* bytes are used — only their arrangement
//! across shared-memory banks.

use std::fmt;

/// An XOR-swizzle permutation of physical indices.
///
/// `bits` is the number of address bits that participate, `base` is the
/// position of the low (target) window, and `shift` is the distance from
/// the low window up to the key window.
///
/// # Examples
///
/// ```
/// use graphene_layout::Swizzle;
/// // The classic <3,3,3> swizzle used for 128-byte smem rows of fp16.
/// let sw = Swizzle::new(3, 3, 3);
/// assert_eq!(sw.apply(0), 0);
/// // Row bits are XORed into the column bits:
/// assert_ne!(sw.apply(1 << 6), 1 << 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Swizzle {
    bits: u32,
    base: u32,
    shift: u32,
}

impl Swizzle {
    /// Creates a swizzle. A `bits` of 0 is the identity permutation.
    ///
    /// # Panics
    ///
    /// Panics if the windows would exceed 63 bits.
    pub fn new(bits: u32, base: u32, shift: u32) -> Self {
        assert!(base + bits + shift <= 63, "swizzle windows exceed i64 range");
        Swizzle { bits, base, shift }
    }

    /// The identity swizzle.
    pub fn identity() -> Self {
        Swizzle { bits: 0, base: 0, shift: 0 }
    }

    /// Returns `true` if this swizzle is the identity.
    pub fn is_identity(&self) -> bool {
        self.bits == 0
    }

    /// Number of participating bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Base (target window) position.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Shift from target window to key window.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Applies the swizzle to a physical index.
    ///
    /// # Panics
    ///
    /// Panics if `x` is negative.
    pub fn apply(&self, x: i64) -> i64 {
        assert!(x >= 0, "swizzle applied to negative index {x}");
        if self.bits == 0 {
            return x;
        }
        let mask = ((1i64 << self.bits) - 1) << (self.base + self.shift);
        x ^ ((x & mask) >> self.shift)
    }

    /// The number of indices over which this swizzle is a self-contained
    /// permutation (its period).
    pub fn period(&self) -> i64 {
        1i64 << (self.base + self.bits + self.shift)
    }
}

impl fmt::Display for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Swizzle<{},{},{}>", self.bits, self.base, self.shift)
    }
}

impl fmt::Debug for Swizzle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Default for Swizzle {
    fn default() -> Self {
        Swizzle::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn identity_is_noop() {
        let sw = Swizzle::identity();
        assert!(sw.is_identity());
        for x in 0..1024 {
            assert_eq!(sw.apply(x), x);
        }
    }

    #[test]
    fn swizzle_is_bijective_on_period() {
        for (b, m, s) in [(1u32, 0u32, 1u32), (2, 0, 2), (3, 3, 3), (2, 4, 3)] {
            let sw = Swizzle::new(b, m, s);
            let n = sw.period();
            let image: HashSet<i64> = (0..n).map(|x| sw.apply(x)).collect();
            assert_eq!(image.len() as i64, n, "{sw} not bijective");
            assert!(image.iter().all(|&y| y >= 0 && y < n), "{sw} escapes period");
        }
    }

    #[test]
    fn swizzle_is_involution() {
        let sw = Swizzle::new(3, 3, 3);
        for x in 0..sw.period() {
            assert_eq!(sw.apply(sw.apply(x)), x);
        }
    }

    #[test]
    fn swizzle_spreads_banks() {
        // 32 banks of 4 bytes; fp16 rows of 64 elements (128 B = all banks).
        // Without swizzle, a column access (stride 64 elements) hits one
        // bank; with Swizzle<3,3,3> the 8 rows within a 512-element period
        // hit 8 distinct bank groups.
        let sw = Swizzle::new(3, 3, 3);
        let bank = |elem_idx: i64| (elem_idx * 2 / 4) % 32; // fp16 = 2 bytes
        let unswizzled: HashSet<i64> = (0..8).map(|r| bank(r * 64)).collect();
        let swizzled: HashSet<i64> = (0..8).map(|r| bank(sw.apply(r * 64))).collect();
        assert_eq!(unswizzled.len(), 1);
        assert_eq!(swizzled.len(), 8);
    }

    #[test]
    fn display_format() {
        assert_eq!(Swizzle::new(3, 4, 3).to_string(), "Swizzle<3,4,3>");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_index_panics() {
        Swizzle::new(1, 0, 1).apply(-1);
    }
}
