//! F₂ linear algebra for layout proofs: bank-conflict rank conditions,
//! affine solution spaces for race disjointness, and swizzle synthesis.
//!
//! The key observation (PAPERS.md, "Linear Layouts") is that every stage of
//! the shared-memory addressing pipeline is linear over F₂ once the address
//! itself is XOR-affine in its input bits (`graphene_sym::linearize`):
//!
//! - an XOR [`Swizzle`] is linear: `sw(x ⊕ y) = sw(x) ⊕ sw(y)`;
//! - byte→word scaling is a bit shift, and shifts are bit selections;
//! - bank extraction `word & 31` is a projection.
//!
//! So an access's behaviour across a warp is captured by the *columns*
//! `m_k` — the word-address images of each varying input bit — and
//! conflict-freedom becomes a rank condition ([`BankProof`]): with word
//! rank `r_w` and bank rank `r_b`, the warp touches `2^r_w` distinct words
//! spread over `2^r_b` banks, costing `2^(r_w − r_b)` transactions against
//! an ideal of `2^max(r_w−5, 0)`. Uniform bits (loop counters, warp
//! selectors) only XOR-shift the coset and cannot change these counts, so
//! one rank computation covers all warps and iterations.

use crate::swizzle::Swizzle;

/// The rank over F₂ of a set of bit-vector columns.
pub fn rank_f2(columns: impl IntoIterator<Item = i64>) -> u32 {
    let mut basis: Vec<u64> = Vec::new();
    for col in columns {
        let mut v = col as u64;
        for &b in &basis {
            v = v.min(v ^ b);
        }
        if v != 0 {
            basis.push(v);
        }
    }
    basis.len() as u32
}

/// One shared-memory access site, abstracted to the element-address columns
/// of its varying input bits (warp lane bits and intra-access vector bits).
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Element-address mask contributed by each varying bit.
    pub columns: Vec<i64>,
    /// Element size in bytes (must be a power of two to prove).
    pub bytes_per: i64,
}

/// A proved bank-behaviour summary for one warp-wide access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankProof {
    /// Rank of the word-address columns: the warp touches `2^word_rank`
    /// distinct 4-byte words.
    pub word_rank: u32,
    /// Rank of the bank columns (`word & 31`).
    pub bank_rank: u32,
}

impl BankProof {
    /// Distinct 4-byte words touched by the warp.
    pub fn distinct_words(&self) -> i64 {
        1i64 << self.word_rank
    }

    /// Transactions a conflict-free access of this footprint would need.
    pub fn ideal(&self) -> i64 {
        1i64 << self.word_rank.saturating_sub(5)
    }

    /// Transactions this access actually needs (uniform across banks by
    /// linearity): distinct words per touched bank.
    pub fn actual(&self) -> i64 {
        1i64 << (self.word_rank - self.bank_rank)
    }

    /// `true` when the access is provably bank-conflict-free:
    /// `bank_rank == min(5, word_rank)`.
    pub fn conflict_free(&self) -> bool {
        self.bank_rank == self.word_rank.min(5)
    }
}

/// Maps a site's element-address columns through `swizzle` and byte→word
/// scaling. Returns `None` when `bytes_per` is not a positive power of two.
pub fn word_columns(site: &AccessSite, swizzle: Swizzle) -> Option<Vec<i64>> {
    if site.bytes_per <= 0 || site.bytes_per.count_ones() != 1 {
        return None;
    }
    let log2b = site.bytes_per.trailing_zeros();
    Some(
        site.columns
            .iter()
            .map(|&c| {
                let s = swizzle.apply(c);
                if log2b >= 2 {
                    s << (log2b - 2)
                } else {
                    s >> (2 - log2b)
                }
            })
            .collect(),
    )
}

/// Proves the bank behaviour of one access site under `swizzle`.
pub fn prove_banks(site: &AccessSite, swizzle: Swizzle) -> Option<BankProof> {
    let wcols = word_columns(site, swizzle)?;
    Some(BankProof {
        word_rank: rank_f2(wcols.iter().copied()),
        bank_rank: rank_f2(wcols.iter().map(|c| c & 31)),
    })
}

/// Solves the F₂ swizzle-synthesis system: the smallest-period XOR swizzle
/// under which *every* given access site is provably conflict-free.
///
/// Candidates are enumerated in increasing period (identity first), so a
/// layout that is already conflict-free synthesizes the identity, and the
/// result never uses more padding than necessary. Returns `None` when no
/// swizzle in the bounded window space works (callers fall back to search).
pub fn synthesize_swizzle(sites: &[AccessSite]) -> Option<Swizzle> {
    if sites.is_empty() {
        return None;
    }
    let proven =
        |sw: Swizzle| sites.iter().all(|s| prove_banks(s, sw).is_some_and(|p| p.conflict_free()));
    if proven(Swizzle::identity()) {
        return Some(Swizzle::identity());
    }
    for total in 2..=14u32 {
        for bits in 1..=5.min(total - 1) {
            for shift in 1..=(total - bits) {
                let sw = Swizzle::new(bits, total - bits - shift, shift);
                if proven(sw) {
                    return Some(sw);
                }
            }
        }
    }
    None
}

/// The affine solution space of an F₂ system `A·x = b`: all solutions are
/// `particular ⊕ span(nullspace)`, with vectors encoded as bitsets over the
/// column indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSpace {
    /// One solution of the system.
    pub particular: u64,
    /// Basis of the homogeneous solutions.
    pub nullspace: Vec<u64>,
}

/// Solves `⨁ x_i·columns[i] = target` over F₂ by Gaussian elimination with
/// combination tracking. Returns `None` when the system is infeasible.
///
/// # Panics
///
/// Panics if more than 64 columns are given.
pub fn solve_f2(columns: &[i64], target: i64) -> Option<SolutionSpace> {
    assert!(columns.len() <= 64, "solve_f2 supports at most 64 columns");
    // Reduced basis: (column value, combination of original columns).
    let mut basis: Vec<(u64, u64)> = Vec::new();
    let mut nullspace = Vec::new();
    for (i, &col) in columns.iter().enumerate() {
        let mut v = col as u64;
        let mut combo = 1u64 << i;
        for &(bv, bc) in &basis {
            if v ^ bv < v {
                v ^= bv;
                combo ^= bc;
            }
        }
        if v == 0 {
            nullspace.push(combo);
        } else {
            basis.push((v, combo));
        }
    }
    let mut t = target as u64;
    let mut particular = 0u64;
    for &(bv, bc) in &basis {
        if t ^ bv < t {
            t ^= bv;
            particular ^= bc;
        }
    }
    (t == 0).then_some(SolutionSpace { particular, nullspace })
}

/// For a system whose `2n` columns are the bits of two thread ids (`t1`
/// bits first, then `t2` bits), returns `true` when every solution has
/// `t1 == t2` — i.e. the two accesses can only collide within one thread.
pub fn solutions_force_equal(space: &SolutionSpace, n: usize) -> bool {
    let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let diff = |x: u64| (x & mask) ^ ((x >> n) & mask);
    diff(space.particular) == 0 && space.nullspace.iter().all(|&v| diff(v) == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn rank_basics() {
        assert_eq!(rank_f2([]), 0);
        assert_eq!(rank_f2([0]), 0);
        assert_eq!(rank_f2([1, 2, 4]), 3);
        assert_eq!(rank_f2([1, 2, 3]), 2);
        assert_eq!(rank_f2([5, 3, 6]), 2); // 5 ^ 3 = 6
    }

    /// fp32 column access with stride 32 words: all lanes hit bank 0.
    fn strided_site(stride: i64, bytes: i64) -> AccessSite {
        AccessSite { columns: (0..5).map(|b| stride << b).collect(), bytes_per: bytes }
    }

    #[test]
    fn strided_access_is_fully_conflicted() {
        let proof = prove_banks(&strided_site(32, 4), Swizzle::identity()).unwrap();
        assert_eq!(proof.word_rank, 5);
        assert_eq!(proof.bank_rank, 0);
        assert_eq!(proof.actual(), 32);
        assert_eq!(proof.ideal(), 1);
        assert!(!proof.conflict_free());
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let proof = prove_banks(&strided_site(1, 4), Swizzle::identity()).unwrap();
        assert_eq!(proof.word_rank, 5);
        assert_eq!(proof.bank_rank, 5);
        assert!(proof.conflict_free());
        assert_eq!(proof.actual(), proof.ideal());
    }

    #[test]
    fn narrow_footprint_is_conflict_free() {
        // 8 distinct words in 8 distinct banks: ideal = actual = 1.
        let site = AccessSite { columns: vec![1, 2, 4], bytes_per: 4 };
        let proof = prove_banks(&site, Swizzle::identity()).unwrap();
        assert_eq!(proof.word_rank, 3);
        assert!(proof.conflict_free());
        assert_eq!(proof.actual(), 1);
    }

    #[test]
    fn non_pow2_bytes_cannot_prove() {
        let site = AccessSite { columns: vec![1], bytes_per: 3 };
        assert!(prove_banks(&site, Swizzle::identity()).is_none());
    }

    #[test]
    fn synthesis_fixes_strided_access() {
        let site = strided_site(32, 4);
        let sw = synthesize_swizzle(std::slice::from_ref(&site)).unwrap();
        assert!(!sw.is_identity());
        let proof = prove_banks(&site, sw).unwrap();
        assert!(proof.conflict_free(), "synthesized {sw} must prove");
    }

    #[test]
    fn synthesis_returns_identity_when_already_free() {
        let site = strided_site(1, 4);
        assert_eq!(synthesize_swizzle(std::slice::from_ref(&site)), Some(Swizzle::identity()));
        assert_eq!(synthesize_swizzle(&[]), None);
    }

    #[test]
    fn synthesis_satisfies_all_sites_at_once() {
        // A row access (conflict-free already) plus a column access: the
        // synthesized swizzle must keep the first free while fixing the
        // second.
        let row = strided_site(1, 4);
        let col = strided_site(32, 4);
        let sw = synthesize_swizzle(&[row.clone(), col.clone()]).unwrap();
        assert!(prove_banks(&row, sw).unwrap().conflict_free());
        assert!(prove_banks(&col, sw).unwrap().conflict_free());
    }

    /// Brute-force cross-check: the proof's (ideal, actual) must match
    /// direct enumeration of every lane-bit assignment.
    fn check_against_enumeration(site: &AccessSite, sw: Swizzle) {
        let proof = prove_banks(site, sw).unwrap();
        let n = site.columns.len();
        let mut words = std::collections::HashSet::new();
        let mut per_bank: HashMap<i64, std::collections::HashSet<i64>> = HashMap::new();
        for assign in 0..(1u32 << n) {
            let mut addr = 0i64;
            for (b, &col) in site.columns.iter().enumerate() {
                if (assign >> b) & 1 == 1 {
                    addr ^= col;
                }
            }
            let word = sw.apply(addr) * site.bytes_per / 4;
            words.insert(word);
            per_bank.entry(word & 31).or_default().insert(word);
        }
        let distinct = words.len() as i64;
        let ideal = (distinct + 31) / 32;
        let actual = per_bank.values().map(|s| s.len() as i64).max().unwrap();
        assert_eq!(proof.distinct_words(), distinct, "{site:?} under {sw}");
        assert_eq!(proof.ideal(), ideal, "{site:?} under {sw}");
        assert_eq!(proof.actual(), actual.max(ideal), "{site:?} under {sw}");
    }

    #[test]
    fn proof_matches_enumeration_on_random_sites() {
        // Deterministic LCG; no external dependencies.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for _ in 0..200 {
            let ncols = 1 + (next() % 7) as usize;
            let site = AccessSite {
                columns: (0..ncols).map(|_| next() & 0xFFF).collect(),
                bytes_per: [1, 2, 4, 8][(next() % 4) as usize],
            };
            let sw = match next() % 3 {
                0 => Swizzle::identity(),
                1 => Swizzle::new(3, 3, 3),
                _ => Swizzle::new(2, 4, 3),
            };
            check_against_enumeration(&site, sw);
        }
    }

    #[test]
    fn solver_finds_solutions() {
        // x0·1 ⊕ x1·2 ⊕ x2·3 = 3 has solutions (x2) and (x0, x1).
        let space = solve_f2(&[1, 2, 3], 3).unwrap();
        assert_eq!(space.nullspace.len(), 1);
        let mut addr = 0i64;
        for (i, &c) in [1i64, 2, 3].iter().enumerate() {
            if (space.particular >> i) & 1 == 1 {
                addr ^= c;
            }
        }
        assert_eq!(addr, 3);
    }

    #[test]
    fn solver_detects_infeasible() {
        assert!(solve_f2(&[2, 4], 1).is_none());
        assert!(solve_f2(&[], 7).is_none());
        assert!(solve_f2(&[], 0).is_some());
    }

    #[test]
    fn identical_addresses_force_equal_threads() {
        // addr(t) = t * 4 for both accesses, 3 thread bits: the only way
        // addr(t1) == addr(t2) is t1 == t2.
        let cols = [4, 8, 16, 4, 8, 16];
        let space = solve_f2(&cols, 0).unwrap();
        assert!(solutions_force_equal(&space, 3));
    }

    #[test]
    fn aliasing_addresses_do_not_force_equal() {
        // addr(t) = (t % 2) * 4: thread bit 1 is dead, so t1 = 0 and
        // t2 = 2 collide.
        let cols = [4, 0, 4, 0];
        let space = solve_f2(&cols, 0).unwrap();
        assert!(!solutions_force_equal(&space, 2));
    }

    #[test]
    fn disjoint_offsets_are_infeasible() {
        // addr_P(t) = t*2, addr_Q(t) = t*2 + 1 (constant difference 1):
        // never equal — the race pair is proven disjoint.
        let cols = [2, 4, 2, 4];
        assert!(solve_f2(&cols, 1).is_none());
    }
}
