//! The layout algebra: coalesce, composition, complement, divide, product.
//!
//! These are the operations Graphene's tiling (§3.3) desugars to. They
//! follow the CuTe shape algebra the paper cites:
//!
//! - [`coalesce`] simplifies a layout without changing its function.
//! - [`composition`] computes `(A ∘ B)(i) = A(B(i))` as a layout.
//! - [`complement`] computes the layout enumerating everything `A` does
//!   *not* address within a given extent.
//! - [`logical_divide`] / [`zipped_divide`] / [`tiled_divide`] split a
//!   layout into (tile, rest-of-tiles) — this is tensor tiling.
//! - [`logical_product`] / [`blocked_product`] repeat a tile over a space.

use crate::int_tuple::IntTuple;
use crate::layout::Layout;

/// Errors produced by layout algebra operations.
///
/// The static layout algebra requires certain divisibility conditions
/// between shapes and strides; violations are reported rather than
/// panicking so IR-level code can surface good diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A shape did not divide evenly where the algebra requires it.
    IndivisibleShape {
        /// What was being divided.
        dividend: i64,
        /// The divisor that failed.
        divisor: i64,
        /// The operation that raised the error.
        op: &'static str,
    },
    /// A tiler had higher rank than the layout being tiled.
    RankMismatch {
        /// Rank of the layout.
        layout_rank: usize,
        /// Rank of the tiler.
        tiler_rank: usize,
    },
    /// Composition ran out of elements in the left-hand layout.
    Incompatible(String),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::IndivisibleShape { dividend, divisor, op } => {
                write!(f, "{op}: {dividend} is not divisible by {divisor}")
            }
            LayoutError::RankMismatch { layout_rank, tiler_rank } => {
                write!(f, "tiler rank {tiler_rank} exceeds layout rank {layout_rank}")
            }
            LayoutError::Incompatible(msg) => write!(f, "incompatible layouts: {msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Result alias for layout algebra operations.
pub type Result<T> = std::result::Result<T, LayoutError>;

/// Simplifies a layout to an equivalent one with the fewest modes.
///
/// The resulting layout denotes the *same function* from linear indices to
/// physical indices (a property-tested invariant). Size-1 modes are
/// dropped and adjacent modes `(s0:d0, s1:d1)` with `d1 == s0*d0` are
/// merged into `(s0*s1 : d0)`.
///
/// ```
/// use graphene_layout::{coalesce, Layout, it};
/// let l = Layout::new(it![2, [1, 6]], it![1, [7, 2]]);
/// assert_eq!(coalesce(&l).to_string(), "[12:1]");
/// ```
pub fn coalesce(layout: &Layout) -> Layout {
    let shapes = layout.shape().leaves();
    let strides = layout.stride().leaves();
    let mut out: Vec<(i64, i64)> = Vec::new();
    for (&s, &d) in shapes.iter().zip(&strides) {
        if s == 1 {
            continue; // size-1 modes contribute nothing
        }
        match out.last_mut() {
            Some((ps, pd)) if d == *ps * *pd => *ps *= s,
            _ => out.push((s, d)),
        }
    }
    if out.is_empty() {
        return Layout::contiguous(1);
    }
    if out.len() == 1 {
        return Layout::strided(out[0].0, out[0].1);
    }
    Layout::new(
        IntTuple::Tuple(out.iter().map(|&(s, _)| IntTuple::Int(s)).collect()),
        IntTuple::Tuple(out.iter().map(|&(_, d)| IntTuple::Int(d)).collect()),
    )
}

/// Integer division that errors when not exact.
fn exact_div(a: i64, b: i64, op: &'static str) -> Result<i64> {
    if b == 0 || a % b != 0 {
        return Err(LayoutError::IndivisibleShape { dividend: a, divisor: b, op });
    }
    Ok(a / b)
}

/// Composes a flat left layout with a single `(n, r)` mode of the right
/// layout: selects `n` elements of `A` advancing by `r` linear positions.
fn compose_mode(lhs: &[(i64, i64)], n: i64, r: i64) -> Result<Vec<(i64, i64)>> {
    if n == 1 {
        // A single element: stride is irrelevant for the function's image,
        // but keep A(r * 0) = offsetless semantics: shape 1, stride 0.
        return Ok(vec![(1, 0)]);
    }
    let mut out = Vec::new();
    let mut rest_r = r; // how far we still need to advance into A
    let mut rest_n = n; // how many elements we still need
    for (i, &(s, d)) in lhs.iter().enumerate() {
        let is_last = i + 1 == lhs.len();
        if rest_r >= s {
            // This whole mode is skipped by the stride.
            if is_last {
                // Advancing beyond A: only valid if stride lands exactly at
                // a multiple (treat A as extended by its last stride).
                let step = exact_div(rest_r, s, "composition")? * (s * d);
                // n elements with stride step*?? — approximate as stride
                // d * rest_r with shape n (A extended linearly).
                let _ = step;
                out.push((rest_n, d * rest_r));
                rest_n = 1;
                break;
            }
            rest_r = exact_div(rest_r, s, "composition")?;
            continue;
        }
        // rest_r < s: this mode is (partially) used.
        let avail = exact_div(s, rest_r, "composition")?; // elements available in this mode
        let take = avail.min(rest_n);
        out.push((take, d * rest_r));
        rest_n = exact_div(rest_n, take, "composition")?;
        rest_r = 1;
        if rest_n == 1 {
            break;
        }
        // Need to continue into subsequent modes; the remainder of this
        // mode must have been fully consumed.
        if take != avail {
            return Err(LayoutError::Incompatible(format!(
                "mode of extent {s} only partially consumed ({take} of {avail}) \
                 with more elements required"
            )));
        }
    }
    if rest_n > 1 {
        return Err(LayoutError::Incompatible(format!(
            "right layout requires {rest_n} more elements than left provides"
        )));
    }
    Ok(out)
}

/// Layout composition: `composition(A, B)` is the layout `R` with
/// `R(i) = A(B(i))` for all `i < size(B)`.
///
/// The result has the same top-level rank profile as `B` (each mode of `B`
/// composes independently).
///
/// ```
/// use graphene_layout::{composition, Layout, it};
/// // Select every other row of a row-major 4×8: B = [2:2] over mode 0.
/// let a = Layout::row_major(&[4, 8]);
/// let b = Layout::new(it![2], it![2]);
/// let r = composition(&a.mode(0), &b).unwrap();
/// assert_eq!(r.value(0), 0);
/// assert_eq!(r.value(1), 16);
/// ```
pub fn composition(lhs: &Layout, rhs: &Layout) -> Result<Layout> {
    // Compose each top-level mode of rhs with the whole lhs.
    fn go(lhs_flat: &[(i64, i64)], shape: &IntTuple, stride: &IntTuple) -> Result<Layout> {
        match (shape, stride) {
            (IntTuple::Int(n), IntTuple::Int(r)) => {
                let modes = compose_mode(lhs_flat, *n, *r)?;
                let l = if modes.len() == 1 {
                    Layout::strided(modes[0].0, modes[0].1)
                } else {
                    Layout::new(
                        IntTuple::Tuple(modes.iter().map(|&(s, _)| IntTuple::Int(s)).collect()),
                        IntTuple::Tuple(modes.iter().map(|&(_, d)| IntTuple::Int(d)).collect()),
                    )
                };
                Ok(coalesce(&l))
            }
            (IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
                let parts: Result<Vec<Layout>> =
                    ss.iter().zip(ds).map(|(s, d)| go(lhs_flat, s, d)).collect();
                Ok(Layout::from_modes(&parts?))
            }
            _ => unreachable!("layout invariant: congruent shape/stride"),
        }
    }
    let flat = lhs.flatten();
    let pairs: Vec<(i64, i64)> =
        flat.shape().leaves().into_iter().zip(flat.stride().leaves()).collect();
    go(&pairs, rhs.shape(), rhs.stride())
}

/// The complement of `A` within an extent `cosize_hi`: a layout `A*` that
/// enumerates, in increasing order, exactly the indices in
/// `[0, cosize_hi)` *not* reachable by `A` repeated — such that
/// `(A, A*)` tiles the extent completely.
///
/// ```
/// use graphene_layout::{complement, Layout};
/// // A strided tile [4:2] covers {0,2,4,6} of 0..8; its complement
/// // enumerates the odd positions.
/// let c = complement(&Layout::strided(4, 2), 8).unwrap();
/// assert_eq!(c.to_string(), "[2:1]");
/// ```
///
/// # Errors
///
/// Errors if `A`'s strides don't nest cleanly within `cosize_hi` (the
/// usual CuTe admissibility conditions).
pub fn complement(layout: &Layout, cosize_hi: i64) -> Result<Layout> {
    // Filter stride-0 / size-1 modes, sort by stride.
    let shapes = layout.shape().leaves();
    let strides = layout.stride().leaves();
    let mut modes: Vec<(i64, i64)> = shapes
        .iter()
        .zip(&strides)
        .filter(|&(&s, &d)| s > 1 && d > 0)
        .map(|(&s, &d)| (s, d))
        .collect();
    modes.sort_by_key(|&(_, d)| d);

    let mut out_shape = Vec::new();
    let mut out_stride = Vec::new();
    let mut current = 1i64; // covered contiguous extent so far
    for &(s, d) in &modes {
        let gap = exact_div(d, current, "complement")?;
        if gap > 1 {
            out_shape.push(gap);
            out_stride.push(current);
        }
        current = s * d;
    }
    let rest = if cosize_hi % current == 0 {
        cosize_hi / current
    } else {
        // Over-approximate (paper §3.4 partial tiles): round up.
        (cosize_hi + current - 1) / current
    };
    if rest > 1 || out_shape.is_empty() {
        out_shape.push(rest.max(1));
        out_stride.push(current);
    }
    let l = if out_shape.len() == 1 {
        Layout::strided(out_shape[0], out_stride[0])
    } else {
        Layout::new(
            IntTuple::Tuple(out_shape.into_iter().map(IntTuple::Int).collect()),
            IntTuple::Tuple(out_stride.into_iter().map(IntTuple::Int).collect()),
        )
    };
    Ok(coalesce(&l))
}

/// `logical_divide(A, B)` splits `A` by the tiler `B`, producing a rank-2
/// layout `((tile), (rest))`: mode 0 iterates within one tile (through the
/// elements `B` selects) and mode 1 iterates across tiles.
///
/// ```
/// use graphene_layout::{logical_divide, Layout};
/// let d = logical_divide(&Layout::contiguous(16), &Layout::contiguous(4)).unwrap();
/// assert_eq!(d.mode(0).indices(), vec![0, 1, 2, 3]);     // one tile
/// assert_eq!(d.mode(1).indices(), vec![0, 4, 8, 12]);    // tile origins
/// ```
///
/// # Errors
///
/// Errors when the tiler does not divide the layout.
pub fn logical_divide(layout: &Layout, tiler: &Layout) -> Result<Layout> {
    let comp = complement(tiler, layout.size())?;
    let combined = Layout::from_modes(&[tiler.clone(), comp]);
    composition(layout, &combined)
}

/// Applies `logical_divide` independently per mode of a multi-mode tiler,
/// then gathers the results as `((tile_modes...), (rest_modes...))`.
///
/// This is exactly the paper's `tile(...)` operation on tensors (§3.3):
/// the outer (left) result shape arranges the tiles, the inner shape is
/// the tile itself. Our convention: result mode 0 = the tile, mode 1 = the
/// arrangement of tiles.
///
/// ```
/// use graphene_layout::{zipped_divide, Layout};
/// // Figure 4b: row-major 4x8 tiled by (2, 4).
/// let a = Layout::row_major(&[4, 8]);
/// let z = zipped_divide(&a, &[Layout::contiguous(2), Layout::contiguous(4)]).unwrap();
/// assert_eq!(z.mode(0).size(), 8);  // elements per tile
/// assert_eq!(z.mode(1).size(), 4);  // 2x2 tiles
/// ```
///
/// # Errors
///
/// Errors when a tiler does not divide its mode or ranks mismatch.
pub fn zipped_divide(layout: &Layout, tilers: &[Layout]) -> Result<Layout> {
    if tilers.len() > layout.rank() {
        return Err(LayoutError::RankMismatch {
            layout_rank: layout.rank(),
            tiler_rank: tilers.len(),
        });
    }
    let mut tile_modes = Vec::new();
    let mut rest_modes = Vec::new();
    for (i, tiler) in tilers.iter().enumerate() {
        let divided = logical_divide(&layout.mode(i), tiler)?;
        tile_modes.push(divided.mode(0));
        rest_modes.push(divided.mode(1));
    }
    // Untouched trailing modes go to the rest.
    for i in tilers.len()..layout.rank() {
        rest_modes.push(layout.mode(i));
    }
    Ok(Layout::from_modes(&[Layout::from_modes(&tile_modes), Layout::from_modes(&rest_modes)]))
}

/// Like [`zipped_divide`] but presented as `(tile, rest...)` with the rest
/// modes unpacked at the top level: `((TileM, TileN), RestM, RestN, ...)`.
pub fn tiled_divide(layout: &Layout, tilers: &[Layout]) -> Result<Layout> {
    let z = zipped_divide(layout, tilers)?;
    let mut modes = vec![z.mode(0)];
    modes.extend(z.mode(1).modes());
    Ok(Layout::from_modes(&modes))
}

/// `logical_product(A, B)`: a rank-2 layout whose mode 0 is `A` (the tile)
/// and whose mode 1 iterates `size(B)` replicas of `A` laid out according
/// to `B` over `A`'s complement.
///
/// ```
/// use graphene_layout::{logical_product, Layout};
/// let p = logical_product(&Layout::contiguous(2), &Layout::contiguous(4)).unwrap();
/// let mut all = p.indices();
/// all.sort_unstable();
/// assert_eq!(all, (0..8).collect::<Vec<_>>());
/// ```
///
/// # Errors
///
/// Errors when the replication is inadmissible.
pub fn logical_product(layout: &Layout, tiler: &Layout) -> Result<Layout> {
    let comp = complement(layout, layout.cosize() * tiler.cosize())?;
    let rep = composition(&comp, tiler)?;
    Ok(Layout::from_modes(&[layout.clone(), rep]))
}

/// `blocked_product(A, B)`: tile `A` repeated per `B`, presented
/// mode-by-mode (the common "block a matrix by a tile" product).
///
/// ```
/// use graphene_layout::{blocked_product, Layout};
/// let b = blocked_product(
///     &Layout::column_major(&[2, 2]),
///     &Layout::column_major(&[2, 3]),
/// ).unwrap();
/// assert_eq!(b.size(), 24); // a 4x6 blocked arrangement
/// ```
///
/// # Errors
///
/// Errors when the product is inadmissible.
pub fn blocked_product(tile: &Layout, arrangement: &Layout) -> Result<Layout> {
    let lp = logical_product(tile, arrangement)?;
    let t = lp.mode(0);
    let r = lp.mode(1);
    let rank = t.rank().max(r.rank());
    let mut modes = Vec::with_capacity(rank);
    for i in 0..rank {
        let tm = if i < t.rank() { Some(t.mode(i)) } else { None };
        let rm = if i < r.rank() { Some(r.mode(i)) } else { None };
        let m = match (tm, rm) {
            (Some(a), Some(b)) => Layout::from_modes(&[a, b]),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => unreachable!(),
        };
        modes.push(coalesce(&m));
    }
    Ok(Layout::from_modes(&modes))
}

/// Relabels the domain of `layout` with a new shape of the same size:
/// `with_shape(A, S)(c) = A(colex_linear_index_of(c in S))` — the
/// "reshape" of a tensor view without moving data.
///
/// ```
/// use graphene_layout::{it, with_shape, Layout};
/// let a = Layout::row_major(&[4, 8]);
/// let r = with_shape(&a, &it![8, 4]).unwrap();
/// assert_eq!(r.size(), 32);
/// assert_eq!(r.value(5), a.value(5)); // same function, new labels
/// ```
///
/// # Errors
///
/// Errors if the sizes differ or the composition is inadmissible.
pub fn with_shape(layout: &Layout, new_shape: &IntTuple) -> Result<Layout> {
    if new_shape.size() != layout.size() {
        return Err(LayoutError::Incompatible(format!(
            "reshape size mismatch: {} vs {}",
            new_shape.size(),
            layout.size()
        )));
    }
    // Column-major compact connector over the new shape.
    let dims = new_shape.leaves();
    let connector = {
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc = 1;
        for &d in &dims {
            strides.push(IntTuple::Int(acc));
            acc *= d;
        }
        let strides = IntTuple::unflatten(
            new_shape,
            &strides
                .iter()
                .map(|t| match t {
                    IntTuple::Int(v) => *v,
                    IntTuple::Tuple(_) => unreachable!(),
                })
                .collect::<Vec<_>>(),
        );
        Layout::new(new_shape.clone(), strides)
    };
    composition(layout, &connector)
}

/// The right inverse of a *compact bijective* layout: a layout `B` with
/// `A(B(p)) = p` for every physical position `p` — i.e. `B` maps
/// physical positions back to linear coordinates.
///
/// ```
/// use graphene_layout::{right_inverse, Layout};
/// let a = Layout::row_major(&[4, 8]);
/// let inv = right_inverse(&a).unwrap();
/// assert!((0..32).all(|p| a.value(inv.value(p)) == p));
/// ```
///
/// # Errors
///
/// Errors if `A` is not compact (not a bijection onto `0..size`).
pub fn right_inverse(layout: &Layout) -> Result<Layout> {
    if !layout.is_compact() {
        return Err(LayoutError::Incompatible(format!(
            "right_inverse requires a compact bijective layout, got {layout}"
        )));
    }
    let flat = coalesce(layout);
    let shapes = flat.shape().leaves();
    let strides = flat.stride().leaves();
    // Colex multiplier of each mode in the original linear order.
    let mut mults = Vec::with_capacity(shapes.len());
    let mut acc = 1;
    for &s in &shapes {
        mults.push(acc);
        acc *= s;
    }
    // Sort modes by their physical stride: that is the order in which
    // physical positions advance.
    let mut order: Vec<usize> = (0..shapes.len()).collect();
    order.sort_by_key(|&i| strides[i]);
    let inv_shapes: Vec<i64> = order.iter().map(|&i| shapes[i]).collect();
    let inv_strides: Vec<i64> = order.iter().map(|&i| mults[i]).collect();
    let l = if inv_shapes.len() == 1 {
        Layout::strided(inv_shapes[0], inv_strides[0])
    } else {
        Layout::new(
            IntTuple::Tuple(inv_shapes.into_iter().map(IntTuple::Int).collect()),
            IntTuple::Tuple(inv_strides.into_iter().map(IntTuple::Int).collect()),
        )
    };
    Ok(coalesce(&l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it;

    /// Check two layouts denote the same function.
    fn same_function(a: &Layout, b: &Layout) {
        assert_eq!(a.size(), b.size(), "{a} vs {b}");
        for i in 0..a.size() {
            assert_eq!(a.value(i), b.value(i), "{a} vs {b} differ at {i}");
        }
    }

    #[test]
    fn coalesce_merges_contiguous() {
        let l = Layout::new(it![4, 8], it![1, 4]);
        assert_eq!(coalesce(&l).to_string(), "[32:1]");
        same_function(&l, &coalesce(&l));
    }

    #[test]
    fn coalesce_drops_unit_modes() {
        let l = Layout::new(it![2, [1, 6]], it![1, [7, 2]]);
        let c = coalesce(&l);
        assert_eq!(c.to_string(), "[12:1]");
        same_function(&l, &c);
    }

    #[test]
    fn coalesce_keeps_gaps() {
        let l = Layout::new(it![4, 8], it![1, 5]); // gap: 5 != 4
        let c = coalesce(&l);
        assert_eq!(c.to_string(), "[(4,8):(1,5)]");
        same_function(&l, &c);
    }

    #[test]
    fn composition_identity() {
        let a = Layout::new(it![4, 8], it![8, 1]);
        let id = Layout::contiguous(32);
        let r = composition(&a, &id).unwrap();
        same_function(&a.flatten(), &r);
    }

    #[test]
    fn composition_stride_picks_every_other() {
        // A = 1-D contiguous 0..16; B = [8:2] -> picks 0,2,4,...
        let a = Layout::contiguous(16);
        let b = Layout::strided(8, 2);
        let r = composition(&a, &b).unwrap();
        assert_eq!(r.indices(), vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn composition_through_strided_lhs() {
        // A = [4:8] (0,8,16,24); B = [2:2] -> A(0), A(2) = 0, 16
        let a = Layout::strided(4, 8);
        let b = Layout::strided(2, 2);
        let r = composition(&a, &b).unwrap();
        assert_eq!(r.indices(), vec![0, 16]);
    }

    #[test]
    fn composition_multimode_rhs() {
        let a = Layout::row_major(&[4, 8]);
        // B reshapes the 32 elements as (8, 4) colex.
        let b = Layout::column_major(&[8, 4]);
        let r = composition(&a, &b).unwrap();
        assert_eq!(r.size(), 32);
        for i in 0..32 {
            assert_eq!(r.value(i), a.value(b.value(i)));
        }
    }

    #[test]
    fn complement_of_strided() {
        // A = [4:2] covers 0,2,4,6 within 8 -> complement = [2:1]
        let a = Layout::strided(4, 2);
        let c = complement(&a, 8).unwrap();
        assert_eq!(c.to_string(), "[2:1]");
    }

    #[test]
    fn complement_of_contiguous_tile() {
        // A = [2:1] within 8 -> complement [4:2]
        let a = Layout::contiguous(2);
        let c = complement(&a, 8).unwrap();
        assert_eq!(c.to_string(), "[4:2]");
    }

    #[test]
    fn complement_covers_everything() {
        // (A, A*) must be a bijection onto 0..N for admissible A.
        for (shape, stride, n) in
            [(it![4], it![2], 8i64), (it![2, 2], it![1, 8], 16), (it![8], it![1], 64)]
        {
            let a = Layout::new(shape, stride);
            let c = complement(&a, n).unwrap();
            let combined = Layout::from_modes(&[a.clone(), c.clone()]);
            let mut seen: Vec<i64> = combined.indices();
            seen.sort_unstable();
            let expect: Vec<i64> = (0..n).collect();
            assert_eq!(seen, expect, "A={a} A*={c}");
        }
    }

    #[test]
    fn logical_divide_1d() {
        // Divide 16 contiguous elements by tile [4:1]:
        // mode0 = the tile (4 elems), mode1 = 4 tiles with stride 4.
        let a = Layout::contiguous(16);
        let tiler = Layout::contiguous(4);
        let d = logical_divide(&a, &tiler).unwrap();
        assert_eq!(d.mode(0).indices(), vec![0, 1, 2, 3]);
        assert_eq!(d.mode(1).indices(), vec![0, 4, 8, 12]);
    }

    #[test]
    fn logical_divide_interleaved() {
        // Paper Figure 4c: tile rows with [2:2] (every other row).
        // 1-D view: divide [4:1] (a column of 4 rows) by [2:2].
        let rows = Layout::contiguous(4);
        let tiler = Layout::strided(2, 2);
        let d = logical_divide(&rows, &tiler).unwrap();
        // tile contains rows {0, 2}; rest iterates tiles {0, 1}.
        assert_eq!(d.mode(0).indices(), vec![0, 2]);
        assert_eq!(d.mode(1).indices(), vec![0, 1]);
    }

    #[test]
    fn zipped_divide_2d_matches_paper_figure4b() {
        // Figure 4b: A:[(4,8):(8,1)] row-major tiled by ([2:1],[4:1]).
        let a = Layout::row_major(&[4, 8]);
        let z = zipped_divide(&a, &[Layout::contiguous(2), Layout::contiguous(4)]).unwrap();
        // Tile = 2×4; first tile addresses rows 0-1, cols 0-3.
        let tile = z.mode(0);
        assert_eq!(tile.size(), 8);
        let mut idx: Vec<i64> = tile.indices();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        // 2×2 arrangement of tiles; strides (2 rows * 8, 4 cols) = (16, 4).
        let rest = z.mode(1);
        assert_eq!(rest.size(), 4);
        let mut r: Vec<i64> = rest.indices();
        r.sort_unstable();
        assert_eq!(r, vec![0, 4, 16, 20]);
    }

    #[test]
    fn zipped_divide_noncontiguous_figure4c() {
        // Figure 4c: tile size ([2:2],[4:1]) — every other row.
        let a = Layout::row_major(&[4, 8]);
        let z = zipped_divide(&a, &[Layout::strided(2, 2), Layout::contiguous(4)]).unwrap();
        let tile = z.mode(0);
        let mut idx: Vec<i64> = tile.indices();
        idx.sort_unstable();
        // rows 0 and 2, cols 0..4 -> offsets 0..3 and 16..19
        assert_eq!(idx, vec![0, 1, 2, 3, 16, 17, 18, 19]);
    }

    #[test]
    fn zipped_divide_hierarchical_figure4d() {
        // Figure 4d: tile size ([2:2], [(2,2):(1,4)]) — every other row and
        // 2 adjacent cols repeated twice with stride 4.
        let a = Layout::row_major(&[4, 8]);
        let col_tiler = Layout::new(it![2, 2], it![1, 4]);
        let z = zipped_divide(&a, &[Layout::strided(2, 2), col_tiler]).unwrap();
        let tile = z.mode(0);
        assert_eq!(tile.size(), 8);
        let mut idx: Vec<i64> = tile.indices();
        idx.sort_unstable();
        // rows {0,2} × cols {0,1,4,5} -> {0,1,4,5, 16,17,20,21}
        assert_eq!(idx, vec![0, 1, 4, 5, 16, 17, 20, 21]);
    }

    #[test]
    fn tiles_partition_everything() {
        // Every element must appear in exactly one (tile, rest) pair.
        let a = Layout::row_major(&[8, 16]);
        let z = zipped_divide(&a, &[Layout::contiguous(4), Layout::contiguous(8)]).unwrap();
        let mut all: Vec<i64> = z.indices();
        all.sort_unstable();
        let expect: Vec<i64> = (0..128).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn logical_product_replicates() {
        // Repeat a [2:1] tile 4 times -> covers 8 contiguous.
        let tile = Layout::contiguous(2);
        let p = logical_product(&tile, &Layout::contiguous(4)).unwrap();
        let mut all: Vec<i64> = p.indices();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_product_2d() {
        // 2×2 tile blocked over a 2×3 arrangement -> 4×6 result.
        let tile = Layout::column_major(&[2, 2]);
        let arr = Layout::column_major(&[2, 3]);
        let b = blocked_product(&tile, &arr).unwrap();
        assert_eq!(b.size(), 24);
        let mut all: Vec<i64> = b.indices();
        all.sort_unstable();
        assert_eq!(all, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn divide_rank_mismatch_error() {
        let a = Layout::contiguous(8);
        let err = zipped_divide(&a, &[Layout::contiguous(2), Layout::contiguous(2)]);
        assert!(matches!(err, Err(LayoutError::RankMismatch { .. })));
    }

    #[test]
    fn indivisible_error_display() {
        let e = LayoutError::IndivisibleShape { dividend: 7, divisor: 2, op: "composition" };
        assert_eq!(e.to_string(), "composition: 7 is not divisible by 2");
    }

    #[test]
    fn with_shape_relabels_without_moving_data() {
        let a = Layout::row_major(&[4, 8]);
        let r = with_shape(&a, &it![8, 4]).unwrap();
        assert_eq!(r.size(), 32);
        for i in 0..32 {
            assert_eq!(r.value(i), a.value(i), "same function, new labels");
        }
        assert!(with_shape(&a, &it![5, 5]).is_err());
    }

    #[test]
    fn right_inverse_of_row_major() {
        let a = Layout::row_major(&[4, 8]);
        let inv = right_inverse(&a).unwrap();
        for i in 0..32 {
            assert_eq!(a.value(inv.value(i)), i);
        }
    }

    #[test]
    fn right_inverse_of_hierarchical() {
        // Figure 3c's compact hierarchical layout.
        let a = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
        let inv = right_inverse(&a).unwrap();
        for i in 0..32 {
            assert_eq!(a.value(inv.value(i)), i);
        }
    }

    #[test]
    fn right_inverse_rejects_noncompact() {
        assert!(right_inverse(&Layout::strided(4, 2)).is_err());
        assert!(right_inverse(&Layout::new(it![4], it![0])).is_err());
    }
}
