//! Layouts: pairs of congruent shape and stride tuples.
//!
//! A Graphene tensor shape (paper §3.1, Figure 2) is written
//! `[dims:strides]`. This module implements the *layout function* such a
//! pair denotes: a map from logical coordinates (or linearised indices) to
//! positions in one-dimensional physical memory, obtained as the dot
//! product of coordinates and strides (paper §3.2), generalised over
//! hierarchical dimensions.

use crate::int_tuple::IntTuple;
use std::fmt;

/// A layout: a `shape` and a congruent `stride` tuple.
///
/// The layout denotes the function mapping each logical coordinate within
/// `shape` to `dot(coord, stride)`. Linear (1-D) indices are interpreted in
/// *colexicographic* order — the leftmost mode varies fastest — matching the
/// CuTe convention the paper builds upon.
///
/// # Examples
///
/// ```
/// use graphene_layout::{Layout, it};
///
/// // Figure 3b: a row-major 4×8 tensor, [(4,8):(8,1)].
/// let row_major = Layout::new(it![4, 8], it![8, 1]);
/// assert_eq!(row_major.crd2idx(&it![1, 2]), 10);
/// assert_eq!(row_major.size(), 32);
/// assert_eq!(row_major.cosize(), 32);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    shape: IntTuple,
    stride: IntTuple,
}

impl Layout {
    /// Creates a layout from congruent shape and stride tuples.
    ///
    /// # Panics
    ///
    /// Panics if `shape` and `stride` are not congruent or if any shape
    /// leaf is non-positive or any stride leaf is negative.
    pub fn new(shape: IntTuple, stride: IntTuple) -> Self {
        assert!(shape.congruent(&stride), "shape {shape} and stride {stride} must be congruent");
        assert!(shape.leaves().iter().all(|&s| s > 0), "shape leaves must be positive: {shape}");
        assert!(
            stride.leaves().iter().all(|&d| d >= 0),
            "stride leaves must be non-negative: {stride}"
        );
        Layout { shape, stride }
    }

    /// A rank-1 layout `[n:1]` over `n` contiguous elements.
    pub fn contiguous(n: i64) -> Self {
        Layout::new(IntTuple::Int(n), IntTuple::Int(1))
    }

    /// A rank-1 layout `[n:d]`.
    pub fn strided(n: i64, d: i64) -> Self {
        Layout::new(IntTuple::Int(n), IntTuple::Int(d))
    }

    /// A column-major layout for the given flat dimensions (leftmost mode
    /// has stride 1). A single dimension yields a rank-1 leaf layout.
    pub fn column_major(dims: &[i64]) -> Self {
        if let [n] = dims {
            return Layout::contiguous(*n);
        }
        let mut strides = Vec::with_capacity(dims.len());
        let mut acc = 1;
        for &d in dims {
            strides.push(acc);
            acc *= d;
        }
        Layout::new(
            IntTuple::from(dims),
            IntTuple::Tuple(strides.into_iter().map(IntTuple::Int).collect()),
        )
    }

    /// A row-major layout for the given flat dimensions (rightmost mode has
    /// stride 1). This is the default layout for Graphene data tensors,
    /// e.g. `A:[(16,16):(16,1)]` in the paper's §3.1.
    pub fn row_major(dims: &[i64]) -> Self {
        if let [n] = dims {
            return Layout::contiguous(*n);
        }
        let mut strides = vec![0; dims.len()];
        let mut acc = 1;
        for (i, &d) in dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        Layout::new(
            IntTuple::from(dims),
            IntTuple::Tuple(strides.into_iter().map(IntTuple::Int).collect()),
        )
    }

    /// The shape tuple.
    pub fn shape(&self) -> &IntTuple {
        &self.shape
    }

    /// The stride tuple.
    pub fn stride(&self) -> &IntTuple {
        &self.stride
    }

    /// The number of logical elements (product of the shape).
    pub fn size(&self) -> i64 {
        self.shape.size()
    }

    /// The rank (number of top-level modes).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// The depth of the shape tree.
    pub fn depth(&self) -> usize {
        self.shape.depth()
    }

    /// The image extent: one past the largest index this layout can
    /// produce (`max(layout(i)) + 1`), or 0 for empty layouts.
    pub fn cosize(&self) -> i64 {
        if self.size() == 0 {
            return 0;
        }
        // The max of the dot product is attained at coord = shape - 1.
        let shapes = self.shape.leaves();
        let strides = self.stride.leaves();
        1 + shapes.iter().zip(&strides).map(|(&s, &d)| (s - 1) * d).sum::<i64>()
    }

    /// Sub-layout: mode `i` of this layout.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn mode(&self, i: usize) -> Layout {
        Layout::new(self.shape.mode(i).clone(), self.stride.mode(i).clone())
    }

    /// The top-level modes of this layout as individual layouts.
    pub fn modes(&self) -> Vec<Layout> {
        (0..self.rank()).map(|i| self.mode(i)).collect()
    }

    /// Builds a rank-N layout from per-mode layouts.
    pub fn from_modes(modes: &[Layout]) -> Layout {
        Layout::new(
            IntTuple::Tuple(modes.iter().map(|l| l.shape.clone()).collect()),
            IntTuple::Tuple(modes.iter().map(|l| l.stride.clone()).collect()),
        )
    }

    /// Flattens nesting, keeping leaves in order.
    pub fn flatten(&self) -> Layout {
        Layout::new(self.shape.flatten(), self.stride.flatten())
    }

    /// Maps a (possibly hierarchical) coordinate to a physical index: the
    /// generalised dot product of coordinate and stride (paper §3.2).
    ///
    /// The coordinate may be:
    /// - congruent to the shape (full hierarchical coordinate),
    /// - a flat tuple of rank equal to the layout's rank (each entry is a
    ///   *linear* coordinate within that mode), or
    /// - a single integer (linear coordinate for the whole layout, colex).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds or incompatible with the
    /// shape.
    pub fn crd2idx(&self, coord: &IntTuple) -> i64 {
        crd2idx_impl(coord, &self.shape, &self.stride)
    }

    /// Maps a linear index (colexicographic within the shape) to a physical
    /// index. This *is* the layout function `L(i)`.
    pub fn value(&self, i: i64) -> i64 {
        self.crd2idx(&IntTuple::Int(i))
    }

    /// Maps a linear index to the hierarchical coordinate within `shape`
    /// (colexicographic: leftmost/innermost leaf varies fastest).
    pub fn idx2crd(&self, idx: i64) -> IntTuple {
        assert!(
            idx >= 0 && idx < self.size(),
            "index {idx} out of bounds for shape {} (size {})",
            self.shape,
            self.size()
        );
        let mut rem = idx;
        idx2crd_impl(&self.shape, &mut rem)
    }

    /// All physical indices produced by this layout, in linear-coordinate
    /// order. Useful for tests and for the simulator.
    pub fn indices(&self) -> Vec<i64> {
        (0..self.size()).map(|i| self.value(i)).collect()
    }

    /// Returns `true` if no two logical coordinates map to the same
    /// physical index (the layout function is injective).
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.size() as usize);
        (0..self.size()).all(|i| seen.insert(self.value(i)))
    }

    /// Returns `true` if the layout is a compact (bijective onto
    /// `0..size()`) column-major-ordered enumeration — i.e. `cosize == size`
    /// and injective.
    pub fn is_compact(&self) -> bool {
        self.cosize() == self.size() && self.is_injective()
    }
}

fn crd2idx_impl(coord: &IntTuple, shape: &IntTuple, stride: &IntTuple) -> i64 {
    match (coord, shape, stride) {
        // Linear coordinate into an arbitrary (sub)shape: peel modes colex.
        (IntTuple::Int(c), IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
            let mut rem = *c;
            let mut acc = 0;
            for (i, (s, d)) in ss.iter().zip(ds).enumerate() {
                let sz = s.size();
                let sub = if i + 1 == ss.len() { rem } else { rem % sz };
                acc += crd2idx_impl(&IntTuple::Int(sub), s, d);
                rem /= sz;
            }
            acc
        }
        (IntTuple::Int(c), IntTuple::Int(s), IntTuple::Int(d)) => {
            assert!(*c >= 0 && c < s, "coordinate {c} out of bounds for extent {s}");
            c * d
        }
        (IntTuple::Tuple(cs), IntTuple::Tuple(ss), IntTuple::Tuple(ds)) => {
            assert_eq!(cs.len(), ss.len(), "coordinate {coord} incompatible with shape {shape}");
            cs.iter().zip(ss.iter().zip(ds)).map(|(c, (s, d))| crd2idx_impl(c, s, d)).sum()
        }
        _ => panic!(
            "coordinate {coord} incompatible with shape {shape} / stride {stride} \
             (shape and stride must be congruent)"
        ),
    }
}

fn idx2crd_impl(shape: &IntTuple, rem: &mut i64) -> IntTuple {
    match shape {
        IntTuple::Int(s) => {
            let c = *rem % *s;
            *rem /= *s;
            IntTuple::Int(c)
        }
        IntTuple::Tuple(ss) => IntTuple::Tuple(ss.iter().map(|s| idx2crd_impl(s, rem)).collect()),
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.shape, self.stride)
    }
}

impl fmt::Debug for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it;

    #[test]
    fn row_and_column_major_match_paper_figure3() {
        // Figure 3a: [(4,8):(1,4)] column-major 4×8.
        let cm = Layout::column_major(&[4, 8]);
        assert_eq!(cm.to_string(), "[(4,8):(1,4)]");
        assert_eq!(cm.crd2idx(&it![2, 3]), 2 + 3 * 4);
        // Figure 3b: [(4,8):(8,1)] row-major.
        let rm = Layout::row_major(&[4, 8]);
        assert_eq!(rm.to_string(), "[(4,8):(8,1)]");
        assert_eq!(rm.crd2idx(&it![2, 3]), 2 * 8 + 3);
    }

    #[test]
    fn hierarchical_layout_figure3c() {
        // Figure 3c: [(4,(2,4)):(2,(1,8))] — two adjacent column values are
        // contiguous, then rows, then the next two columns.
        let l = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
        assert_eq!(l.size(), 32);
        assert_eq!(l.cosize(), 32);
        assert!(l.is_compact());
        // Logical (row=0, col=0..3) -> 0, 1, 8, 9
        assert_eq!(l.crd2idx(&it![0, [0, 0]]), 0);
        assert_eq!(l.crd2idx(&it![0, [1, 0]]), 1);
        assert_eq!(l.crd2idx(&it![0, [0, 1]]), 8);
        assert_eq!(l.crd2idx(&it![0, [1, 1]]), 9);
        // Row 1, col 0 -> 2 (moving down the rows is stride 2).
        assert_eq!(l.crd2idx(&it![1, [0, 0]]), 2);
    }

    #[test]
    fn flat_coordinate_within_hierarchical_mode() {
        // A 2-D logical coordinate (i, j) can address a hierarchical
        // dimension: j is linearised colex within (2,4).
        let l = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
        // j = 3 -> (1, 1) within (2,4) -> 1*1 + 1*8 = 9
        assert_eq!(l.crd2idx(&it![0, 3]), 9);
        // j = 5 -> (1, 2) -> 1 + 16 = 17
        assert_eq!(l.crd2idx(&it![1, 5]), 2 + 17);
    }

    #[test]
    fn linear_index_colex_order() {
        let cm = Layout::column_major(&[4, 8]);
        // In colex order the first mode varies fastest, so for a
        // column-major layout the linear index IS the physical index.
        for i in 0..32 {
            assert_eq!(cm.value(i), i);
        }
        let rm = Layout::row_major(&[4, 8]);
        assert_eq!(rm.value(0), 0);
        assert_eq!(rm.value(1), 8); // next row
        assert_eq!(rm.value(4), 1); // wrapped to next column
    }

    #[test]
    fn idx2crd_roundtrip() {
        let l = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
        for i in 0..l.size() {
            let c = l.idx2crd(i);
            assert_eq!(l.crd2idx(&c), l.value(i));
        }
    }

    #[test]
    fn cosize_padded_layout() {
        // Padded layout [(4,8):(9,1)] from §3.2 — stride exceeds size.
        let l = Layout::new(it![4, 8], it![9, 1]);
        assert_eq!(l.size(), 32);
        assert_eq!(l.cosize(), 3 * 9 + 7 + 1);
        assert!(l.is_injective());
        assert!(!l.is_compact());
    }

    #[test]
    fn broadcast_stride_zero_not_injective() {
        let l = Layout::new(it![4, 8], it![0, 1]);
        assert!(!l.is_injective());
        assert_eq!(l.cosize(), 8);
    }

    #[test]
    fn quad_pair_layout_figure6() {
        // Volta quad-pairs: [(4,2):(1,16)] — threads 0-3 and 16-19 form
        // quad-pair 0.
        let qp = Layout::new(it![4, 2], it![1, 16]);
        assert_eq!(qp.indices(), vec![0, 1, 2, 3, 16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "must be congruent")]
    fn incongruent_rejected() {
        Layout::new(it![4, [2, 4]], it![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_coordinate_rejected() {
        let l = Layout::row_major(&[4, 8]);
        l.crd2idx(&it![4, 0]);
    }

    #[test]
    fn mode_access_and_from_modes() {
        let l = Layout::new(it![4, [2, 4]], it![2, [1, 8]]);
        let m1 = l.mode(1);
        assert_eq!(m1.to_string(), "[(2,4):(1,8)]");
        let rebuilt = Layout::from_modes(&[l.mode(0), l.mode(1)]);
        assert_eq!(rebuilt, l);
    }
}
