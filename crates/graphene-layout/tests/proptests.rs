//! Property-based tests for the layout algebra.
//!
//! These check the semantic laws the algebra must satisfy on randomly
//! generated layouts: coalescing preserves the layout function, tiling
//! partitions every element exactly once, composition computes function
//! composition, and complements tile their extent.

use graphene_layout::{
    coalesce, complement, composition, logical_divide, zipped_divide, IntTuple, Layout,
};
use proptest::prelude::*;

/// Strategy: a flat layout with 1..=4 modes, sizes 1..=6, compact
/// column-major-ordered strides (always admissible for the algebra).
fn compact_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec(1i64..=6, 1..=4).prop_map(|dims| Layout::column_major(&dims))
}

/// Strategy: a flat layout with arbitrary (possibly gappy) strides.
fn strided_layout() -> impl Strategy<Value = Layout> {
    prop::collection::vec((1i64..=6, 1i64..=8), 1..=4).prop_map(|modes| {
        Layout::new(
            IntTuple::Tuple(modes.iter().map(|&(s, _)| IntTuple::Int(s)).collect()),
            IntTuple::Tuple(modes.iter().map(|&(_, d)| IntTuple::Int(d)).collect()),
        )
    })
}

/// Strategy: a hierarchical layout built by nesting two flat layouts.
fn hierarchical_layout() -> impl Strategy<Value = Layout> {
    (strided_layout(), strided_layout()).prop_map(|(a, b)| Layout::from_modes(&[a, b]))
}

proptest! {
    /// `coalesce(L)` denotes the same function as `L`.
    #[test]
    fn coalesce_preserves_function(l in strided_layout()) {
        let c = coalesce(&l);
        prop_assert_eq!(c.size(), l.size());
        for i in 0..l.size() {
            prop_assert_eq!(c.value(i), l.value(i));
        }
    }

    /// Coalescing is idempotent.
    #[test]
    fn coalesce_idempotent(l in hierarchical_layout()) {
        let once = coalesce(&l);
        let twice = coalesce(&once);
        prop_assert_eq!(once, twice);
    }

    /// `idx2crd` then `crd2idx` reproduces the layout function.
    #[test]
    fn crd_roundtrip(l in hierarchical_layout()) {
        for i in 0..l.size() {
            let c = l.idx2crd(i);
            prop_assert_eq!(l.crd2idx(&c), l.value(i));
        }
    }

    /// `cosize` is exactly `1 + max(L(i))` for non-empty layouts.
    #[test]
    fn cosize_is_max_plus_one(l in strided_layout()) {
        let max = (0..l.size()).map(|i| l.value(i)).max().unwrap();
        prop_assert_eq!(l.cosize(), max + 1);
    }

    /// Composition: `(A ∘ B)(i) = A(B(i))` whenever it is defined.
    #[test]
    fn composition_is_function_composition(
        a in compact_layout(),
        n in 1i64..=8,
        r in 1i64..=4,
    ) {
        if n * r > a.size() {
            return Ok(());
        }
        let b = Layout::strided(n, r);
        if let Ok(comp) = composition(&a, &b) {
            prop_assert_eq!(comp.size(), b.size());
            for i in 0..b.size() {
                prop_assert_eq!(comp.value(i), a.value(b.value(i)));
            }
        }
    }

    /// `(A, complement(A, N))` is a bijection onto `0..N` when `A` is
    /// injective and `N` is a multiple of A's reach.
    #[test]
    fn complement_tiles_extent(s in 1i64..=6, d in 1i64..=4, mult in 1i64..=4) {
        let a = Layout::strided(s, d);
        // Choose N as a multiple of the region A occupies.
        let reach = s * d;
        let n = reach * mult;
        let c = complement(&a, n).unwrap();
        let combined = Layout::from_modes(&[a, c]);
        let mut all: Vec<i64> = combined.indices();
        all.sort_unstable();
        all.dedup();
        // Combined must be injective over exactly n positions when A is
        // "nestable" (d divides into the extent cleanly).
        if reach % d == 0 && combined.size() == n {
            prop_assert_eq!(all.len() as i64, n);
            prop_assert_eq!(*all.last().unwrap(), n - 1);
        }
    }

    /// Tiling partitions: every source element appears in exactly one
    /// (element-in-tile, tile) position.
    #[test]
    fn tiling_partitions_elements(
        rows in 1i64..=4, cols in 1i64..=4,
        tr in 1i64..=4, tc in 1i64..=4,
    ) {
        let (rows, cols) = (rows * tr, cols * tc); // ensure divisibility
        let a = Layout::row_major(&[rows, cols]);
        let z = zipped_divide(&a, &[Layout::contiguous(tr), Layout::contiguous(tc)]).unwrap();
        prop_assert_eq!(z.size(), rows * cols);
        let mut all: Vec<i64> = z.indices();
        all.sort_unstable();
        let expect: Vec<i64> = (0..rows * cols).collect();
        prop_assert_eq!(all, expect);
    }

    /// Dividing a 1-D layout by an interleaved tiler still partitions.
    #[test]
    fn interleaved_divide_partitions(tiles in 1i64..=4, tsz in 1i64..=4) {
        let n = tiles * tsz;
        let a = Layout::contiguous(n);
        // Tile selects `tsz` elements with stride `tiles` (fully raked).
        let tiler = Layout::strided(tsz, tiles);
        let d = logical_divide(&a, &tiler).unwrap();
        let mut all: Vec<i64> = d.indices();
        all.sort_unstable();
        let expect: Vec<i64> = (0..n).collect();
        prop_assert_eq!(all, expect);
    }

    /// Swizzles are bijections over their period.
    #[test]
    fn swizzle_bijective(bits in 0u32..=3, base in 0u32..=4, shift in 1u32..=4) {
        let sw = graphene_layout::Swizzle::new(bits, base, shift);
        let n = sw.period().min(4096);
        let mut image: Vec<i64> = (0..n).map(|x| sw.apply(x)).collect();
        image.sort_unstable();
        image.dedup();
        prop_assert_eq!(image.len() as i64, n);
    }
}

proptest! {
    /// `with_shape` preserves the layout function for any compatible
    /// factorisation of the size.
    #[test]
    fn with_shape_preserves_function(a in 1i64..=4, b in 1i64..=4, c in 1i64..=4) {
        use graphene_layout::{with_shape, IntTuple};
        let l = Layout::row_major(&[a * b, c]);
        let reshaped = with_shape(
            &l,
            &IntTuple::Tuple(vec![IntTuple::Int(a), IntTuple::Int(b * c)]),
        );
        if let Ok(r) = reshaped {
            prop_assert_eq!(r.size(), l.size());
            for i in 0..l.size() {
                prop_assert_eq!(r.value(i), l.value(i));
            }
        }
    }

    /// `right_inverse` inverts every compact row-major layout.
    #[test]
    fn right_inverse_inverts(dims in prop::collection::vec(1i64..=5, 1..=3)) {
        use graphene_layout::right_inverse;
        let l = Layout::row_major(&dims);
        let inv = right_inverse(&l).unwrap();
        for p in 0..l.size() {
            prop_assert_eq!(l.value(inv.value(p)), p);
        }
    }
}
