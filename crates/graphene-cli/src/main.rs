//! The `graphene` binary. See [`graphene_cli::usage`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Internal panics (not just `CliError`s) must still exit nonzero
    // with a one-line diagnostic instead of a backtrace dump.
    let result = std::panic::catch_unwind(|| graphene_cli::run(&args));
    match result {
        Ok(Ok(out)) => print!("{out}"),
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("unexpected internal error");
            eprintln!("error: internal: {msg}");
            std::process::exit(1);
        }
    }
}
