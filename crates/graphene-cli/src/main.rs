//! The `graphene` binary. See [`graphene_cli::usage`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match graphene_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
