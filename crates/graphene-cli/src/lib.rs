//! # graphene-cli
//!
//! The `graphene` command-line tool: build any of the paper's kernels,
//! then print its Graphene IR, its generated CUDA C++, or its simulated
//! profile on the Volta-like / Ampere-like machine models.
//!
//! ```text
//! graphene gemm --arch sm86 --m 5376 --n 5376 --k 2048 --emit profile
//! graphene gemm --arch sm70 --m 1024 --n 1024 --k 512 --epilogue bias+relu --emit cuda
//! graphene mlp --m 4096 --layers 8 --emit profile
//! graphene fmha --emit cuda
//! graphene layernorm --rows 16384 --hidden 1024 --emit ir
//! graphene lint gemm --emit=json
//! graphene lint fmha --prove
//! graphene table2 --arch sm86
//! ```

#![warn(missing_docs)]

use graphene_ir::{Arch, Kernel};
use graphene_sim::{
    analyze, execute_graph, execute_plan, execute_reference, machine_for, replay_graph, replay_opt,
    time_kernel, ExecMode, GraphTraceCache, HostTensor, KernelPlan, OptStats, TraceCache, TraceKey,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// What the tool prints for a built kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Emit {
    /// The Graphene IR listing.
    Ir,
    /// The generated CUDA C++.
    Cuda,
    /// The simulated profile (counters + roofline timing).
    Profile,
}

/// Parsed command line.
#[derive(Debug)]
pub struct Cli {
    /// Sub-command name.
    pub command: String,
    /// `--key value` / `--key=value` options.
    pub options: HashMap<String, String>,
    /// Bare (non-option) arguments after the sub-command, e.g. the
    /// kernel name in `lint gemm`.
    pub positional: Vec<String>,
}

/// Errors surfaced to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Errors on missing sub-command or malformed options.
    pub fn parse(args: &[String]) -> Result<Cli, CliError> {
        let Some(command) = args.first() else {
            return Err(CliError(usage()));
        };
        let mut options = HashMap::new();
        let mut positional = Vec::new();
        let mut i = 1;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                positional.push(args[i].clone());
                i += 1;
                continue;
            };
            // Both `--key value` and `--key=value` are accepted; a
            // bare `--flag` (at end of line or followed by another
            // option) is a boolean flag and reads as `true`.
            if let Some((k, v)) = key.split_once('=') {
                options.insert(k.to_string(), v.to_string());
                i += 1;
            } else if args.get(i + 1).is_none_or(|v| v.starts_with("--")) {
                options.insert(key.to_string(), "true".to_string());
                i += 1;
            } else {
                options.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            }
        }
        Ok(Cli { command: command.clone(), options, positional })
    }

    fn arch(&self) -> Result<Arch, CliError> {
        match self.options.get("arch").map(String::as_str) {
            None | Some("sm86") | Some("ampere") => Ok(Arch::Sm86),
            Some("sm70") | Some("volta") => Ok(Arch::Sm70),
            Some(other) => Err(CliError(format!("unknown arch `{other}` (sm70|sm86)"))),
        }
    }

    fn emit(&self) -> Result<Emit, CliError> {
        match self.options.get("emit").map(String::as_str) {
            None | Some("profile") => Ok(Emit::Profile),
            Some("cuda") => Ok(Emit::Cuda),
            Some("ir") => Ok(Emit::Ir),
            Some(other) => Err(CliError(format!("unknown emit `{other}` (ir|cuda|profile)"))),
        }
    }

    fn flag(&self, key: &str) -> bool {
        matches!(self.options.get(key).map(String::as_str), Some("true" | "1" | "yes"))
    }

    fn int(&self, key: &str, default: i64) -> Result<i64, CliError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| CliError(format!("--{key} expects an integer, got `{v}`")))
            }
        }
    }
}

/// The usage text.
pub fn usage() -> String {
    "usage: graphene <command> [--options]\n\
     commands:\n\
       gemm       --arch sm70|sm86 --m --n --k [--epilogue none|bias|relu|bias+relu|bias+gelu] [--emit ir|cuda|profile]\n\
       mlp        --arch ... --m --hidden --layers [--emit ...]\n\
       lstm       --arch ... --m --hidden [--emit ...]\n\
       layernorm  --rows --hidden [--emit ...]\n\
       softmax    --rows --cols [--emit ...]\n\
       fmha       --heads --seq --d [--emit ...]   (Ampere only)\n\
       run        <kernel> [--arch ...] [--exec reference|sequential|parallel|replay] [sizes]  (execute on the functional simulator)\n\
       run-graph  [--layers N] [--batch N] [--seq N] [--hidden N] [--heads N] [--ffn N]\n\
                  [--lowering default|fused] [--exec plan|replay]  (execute a whole encoder graph in one arena)\n\
       tune       [--kernel gemm|fmha|layernorm|mlp] [--arch ...] [sizes] [--search exhaustive|random|beam]\n\
                  [--budget N] [--seed N] [--samples N] [--width N] [--patience N]\n\
                  [--cache tune-cache.json] [--top N] [--emit text|json]  (schedule search)\n\
       lint       <kernel> [--arch ...] [--prove] [--emit text|json]  (static analysis; kernel = gemm|gemm-db|mlp|lstm|layernorm|softmax|fmha;\n\
                  --prove appends the F2 symbolic proof report: conflict/race/bounds provenance)\n\
       serve      [--addr HOST:PORT] [--workers N] [--queue N] [--deadline-ms N] [--sync-tune-limit N]\n\
                  [--job-workers N] [--cache tune-cache.json] [--ready-file PATH]\n\
                  (persistent daemon: resident plan/trace/tune caches, newline-JSON over TCP)\n\
       client     [--addr HOST:PORT] <cmd> [kernel] [--options...] | --json '{...}'\n\
                  (send one request to a running daemon; exits nonzero on \"ok\":false)\n\
       table2     --arch sm70|sm86\n"
        .to_string()
}

/// Runs the CLI, returning the output text.
///
/// # Errors
///
/// Returns a user-facing error message for bad arguments or
/// un-lowerable kernels.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let cli = Cli::parse(args)?;
    match cli.command.as_str() {
        "gemm" | "mlp" | "lstm" | "layernorm" | "softmax" | "fmha" => {
            let (arch, kernel) = build_named_kernel(&cli, &cli.command)?;
            render(cli.emit()?, arch, &kernel)
        }
        "lint" => lint(&cli),
        "run" => exec_run(&cli),
        "run-graph" => run_graph(&cli),
        "tune" => tune_cmd(&cli),
        "serve" => serve_cmd(&cli),
        "client" => client_cmd(&cli),
        "table2" => {
            let arch = cli.arch()?;
            let mut out = String::new();
            let _ = writeln!(out, "atomic specifications for {arch}:");
            for a in graphene_ir::atomic::registry(arch) {
                let _ = writeln!(
                    out,
                    "  {:18} {:22} exec {:18} -> {}",
                    a.kind.name(),
                    a.name,
                    a.exec_local.to_string(),
                    a.ptx
                );
            }
            Ok(out)
        }
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError(format!("unknown command `{other}`\n\n{}", usage()))),
    }
}

/// Builds the kernel a sub-command (or `lint` target) names by
/// delegating to the shared [`graphene_kernels::catalog`] — the same
/// front door the serve daemon uses, so both surfaces build identical
/// kernels from identical options by construction.
fn build_named_kernel(cli: &Cli, name: &str) -> Result<(Arch, Kernel), CliError> {
    let arch = cli.arch()?;
    let nk = graphene_kernels::catalog::build_named(name, arch, &cli.options).map_err(CliError)?;
    Ok((arch, nk.kernel))
}

/// The `lint` sub-command: run the full static-analysis pipeline of
/// `graphene-analysis` over a named kernel and render the diagnostics.
///
/// Returns `Err` when any error-severity diagnostic is present, so the
/// binary exits non-zero — this is what CI's lint-selfcheck keys on.
fn lint(cli: &Cli) -> Result<String, CliError> {
    let Some(name) = cli.positional.first() else {
        return Err(CliError(
            "lint needs a kernel name: lint <gemm|gemm-db|mlp|lstm|layernorm|softmax|fmha>".into(),
        ));
    };
    let (arch, kernel) = build_named_kernel(cli, name)?;
    let mut plans = graphene_sim::PlanCache::new();
    let diags = graphene_analysis::analyze_kernel_cached(&kernel, arch, &mut plans);
    let errors = graphene_analysis::error_count(&diags);
    let report = cli
        .flag("prove")
        .then(|| graphene_analysis::prove::prove_kernel_cached(&kernel, arch, &mut plans));
    let out = match cli.options.get("emit").map(String::as_str) {
        None | Some("text") => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "lint {} ({arch}): {} diagnostics, {errors} errors",
                kernel.name,
                diags.len()
            );
            for d in &diags {
                let _ = writeln!(out, "  {d}");
            }
            if let Some(r) = &report {
                out.push_str(&r.render_text());
            }
            out
        }
        Some("json") => {
            let mut json = graphene_analysis::render_json(&kernel.name, &diags);
            if let Some(r) = &report {
                // Splice the proof object into the lint JSON document.
                let trimmed = json.trim_end().strip_suffix('}').map(str::to_string);
                json = trimmed.unwrap_or(json);
                json.push_str(&format!(",\"proof\":{}}}\n", r.render_json()));
            }
            json
        }
        Some(other) => return Err(CliError(format!("unknown emit `{other}` (text|json)"))),
    };
    if errors > 0 {
        Err(CliError(out))
    } else {
        Ok(out)
    }
}

/// The `run` sub-command: execute a kernel on the functional simulator
/// with seeded random inputs and report wall time, counters, and an
/// output checksum (identical across all three engines by construction).
fn exec_run(cli: &Cli) -> Result<String, CliError> {
    let Some(name) = cli.positional.first() else {
        return Err(CliError(
            "run needs a kernel name: run <gemm|gemm-db|mlp|lstm|layernorm|softmax|fmha>".into(),
        ));
    };
    let (arch, kernel) = build_named_kernel(cli, name)?;
    #[derive(PartialEq)]
    enum Engine {
        Reference,
        Plan(ExecMode),
        Replay,
    }
    let engine = match cli.options.get("exec").map(String::as_str) {
        None | Some("parallel") => Engine::Plan(ExecMode::Parallel),
        Some("sequential") => Engine::Plan(ExecMode::Sequential),
        Some("reference") => Engine::Reference,
        Some("replay") => Engine::Replay,
        Some(other) => {
            return Err(CliError(format!(
                "unknown exec mode `{other}` (reference|sequential|parallel|replay)"
            )))
        }
    };
    let plan = KernelPlan::compile(&kernel, arch).map_err(|e| CliError(e.to_string()))?;
    let mut inputs = HashMap::new();
    for (i, (id, _, len)) in plan.params().iter().enumerate() {
        inputs.insert(*id, HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec());
    }
    let bindings = HashMap::new();
    // Replay: record once into a trace cache, then serve two replay
    // requests from it — the second cache lookup and the reported
    // hit/re-interpretation stats demonstrate the record-once contract.
    let mut trace_line = None;
    let mut opt_line = None;
    let mut cache_line = None;
    let start = std::time::Instant::now();
    let outcome = match &engine {
        Engine::Plan(m) => execute_plan(&plan, &inputs, &bindings, *m),
        Engine::Reference => execute_reference(&kernel, arch, &inputs),
        Engine::Replay => {
            let cache = TraceCache::new();
            let key = TraceKey {
                kernel: kernel.name.clone(),
                problem: format!("{} blocks x {} threads", plan.grid_size(), plan.block_size()),
                arch,
            };
            let t0 = std::time::Instant::now();
            let trace =
                cache.get_or_record(&key, &plan, &bindings).map_err(|e| CliError(e.to_string()))?;
            let record_ms = t0.elapsed().as_secs_f64() * 1e3;
            let st = trace.stats();
            trace_line = Some(format!(
                "trace    : {} steps, {} residual addresses, recorded in {record_ms:.3} ms",
                trace.num_steps(),
                trace.num_addrs()
            ));
            opt_line = Some(opt_stats_line(st));
            let trace =
                cache.get_or_record(&key, &plan, &bindings).map_err(|e| CliError(e.to_string()))?;
            let first = replay_opt(&trace, &inputs);
            let second = replay_opt(&trace, &inputs);
            cache_line = Some(format!(
                "trace-cache : {} recording(s), {} hit(s), re-interpretations : {}",
                cache.recordings(),
                cache.hits(),
                cache.recordings().saturating_sub(1)
            ));
            first.and(second)
        }
    }
    .map_err(|e| CliError(e.to_string()))?;
    let wall = start.elapsed().as_secs_f64();
    let checksum: f64 =
        outcome.globals.values().flat_map(|buf| buf.iter()).map(|&x| f64::from(x)).sum();
    let c = &outcome.counters;
    let mut out = String::new();
    let _ = writeln!(out, "kernel   : {}", kernel.name);
    let _ = writeln!(
        out,
        "engine   : {}",
        match &engine {
            Engine::Reference => "reference interpreter",
            Engine::Plan(ExecMode::Sequential) => "compiled (sequential) interpreter",
            Engine::Plan(_) => "compiled (parallel) interpreter",
            Engine::Replay => "trace replay",
        }
    );
    let _ = writeln!(out, "launch   : {} blocks x {} threads", plan.grid_size(), plan.block_size());
    if let Some(l) = &trace_line {
        let _ = writeln!(out, "{l}");
    }
    if let Some(l) = &opt_line {
        let _ = writeln!(out, "{l}");
    }
    if let Some(l) = &cache_line {
        let _ = writeln!(out, "{l}");
    }
    let _ = writeln!(out, "wall     : {:.3} ms", wall * 1e3);
    let _ = writeln!(
        out,
        "counters : {} instructions, {} TC flops, {} FMA flops, {} syncs",
        c.instructions, c.flops_tc, c.flops_fma, c.syncs
    );
    let _ = writeln!(
        out,
        "traffic  : {} B global read, {} B global written, {} smem transactions",
        c.global_read_bytes, c.global_write_bytes, c.smem_transactions
    );
    let _ = writeln!(out, "checksum : {checksum:.6}");
    Ok(out)
}

/// Renders one trace-optimizer stats line (`run --exec replay` and
/// `run-graph --exec replay` share the format).
fn opt_stats_line(st: &OptStats) -> String {
    format!(
        "trace-opt : {:.1}% coalesced, {} -> {} trace bytes ({:.1}% smaller), {} -> {} steps ({} dead fills, {} fused)",
        st.coalesced_fraction() * 100.0,
        st.bytes_before,
        st.bytes_after,
        st.bytes_saved_fraction() * 100.0,
        st.steps_before,
        st.steps_after,
        st.dead_fills,
        st.fused_steps
    )
}

/// The `run-graph` sub-command: build a transformer encoder graph,
/// lower it to an executable kernel sequence sharing one liveness-
/// planned arena, and run it end to end — either through the
/// compiled-plan engine or through whole-graph trace replay (which
/// additionally cross-checks the replayed output against the plan
/// engine bit-for-bit).
fn run_graph(cli: &Cli) -> Result<String, CliError> {
    use graphene_kernels::exec_lower::{lower_executable, ExecLowering};
    use graphene_kernels::graph::encoder_graph;

    let layers = cli.int("layers", 2)?;
    let batch = cli.int("batch", 1)?;
    let seq = cli.int("seq", 128)?;
    let hidden = cli.int("hidden", 256)?;
    let heads = cli.int("heads", 4)?;
    let ffn = cli.int("ffn", 1024)?;
    let arch = cli.arch()?;
    let lowering = match cli.options.get("lowering").map(String::as_str) {
        None | Some("fused") => ExecLowering::Fused,
        Some("default") => ExecLowering::Default,
        Some(other) => return Err(CliError(format!("unknown lowering `{other}` (default|fused)"))),
    };
    let replay_engine = match cli.options.get("exec").map(String::as_str) {
        None | Some("plan") => false,
        Some("replay") => true,
        Some(other) => return Err(CliError(format!("unknown exec mode `{other}` (plan|replay)"))),
    };
    let json = match cli.options.get("emit").map(String::as_str) {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => return Err(CliError(format!("unknown emit `{other}` (text|json)"))),
    };

    let graph = encoder_graph(layers, batch, seq, hidden, heads, ffn);
    let eg = lower_executable(&graph, arch, lowering).map_err(CliError)?;
    let ws = eg.workspace();

    let mut inputs = HashMap::new();
    for (i, (name, len)) in eg.externals().iter().enumerate() {
        inputs
            .insert(name.clone(), HostTensor::random(&[*len], 1000 + i as u64).as_slice().to_vec());
    }

    let checksum = |o: &GraphOutcomeOutputs| -> f64 {
        let mut temps: Vec<_> = o.iter().collect();
        temps.sort_by_key(|(t, _)| **t);
        temps.iter().flat_map(|(_, buf)| buf.iter()).map(|&x| f64::from(x)).sum()
    };

    // Execute first, collecting everything both renderings need; the
    // replay path also captures cache counters and the bit-comparison.
    struct ReplayInfo {
        kernels: usize,
        steps: usize,
        record_ms: f64,
        replay_ms: f64,
        graph_stats: (u64, u64, u64),
        trace_stats: (u64, u64),
        opt: OptStats,
        same: bool,
    }
    let start = std::time::Instant::now();
    let (outcome, replay_info) = if replay_engine {
        let traces = TraceCache::new();
        let graphs = GraphTraceCache::new();
        let t0 = std::time::Instant::now();
        graphs.get_or_record(&eg, &traces).map_err(|e| CliError(e.to_string()))?;
        let record_ms = t0.elapsed().as_secs_f64() * 1e3;
        // A second request must come back from the cache: the printed
        // hit count is the record-once contract made visible.
        let gt = graphs.get_or_record(&eg, &traces).map_err(|e| CliError(e.to_string()))?;
        let t1 = std::time::Instant::now();
        let replayed =
            replay_graph(&gt, &inputs, ExecMode::Parallel).map_err(|e| CliError(e.to_string()))?;
        let replay_ms = t1.elapsed().as_secs_f64() * 1e3;
        let plan_out =
            execute_graph(&eg, &inputs, ExecMode::Parallel).map_err(|e| CliError(e.to_string()))?;
        let same = {
            let b = |o: &GraphOutcomeOutputs| -> Vec<Vec<u32>> {
                let mut v: Vec<_> = o
                    .iter()
                    .map(|(t, xs)| (*t, xs.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()))
                    .collect();
                v.sort_by_key(|(t, _)| *t);
                v.into_iter().map(|(_, bits)| bits).collect()
            };
            b(&replayed.outputs) == b(&plan_out.outputs)
        };
        let info = ReplayInfo {
            kernels: gt.num_kernels(),
            steps: gt.num_steps(),
            record_ms,
            replay_ms,
            graph_stats: (graphs.recordings(), graphs.hits(), graphs.evictions()),
            trace_stats: (traces.recordings(), traces.hits()),
            opt: gt.opt_stats(),
            same,
        };
        (replayed, Some(info))
    } else {
        let outcome =
            execute_graph(&eg, &inputs, ExecMode::Parallel).map_err(|e| CliError(e.to_string()))?;
        (outcome, None)
    };
    let wall = start.elapsed().as_secs_f64();
    let c = &outcome.counters;
    let sum = checksum(&outcome.outputs);
    let diverged = replay_info.as_ref().is_some_and(|r| !r.same);

    let out = if json {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"graph\":{{\"layers\":{layers},\"batch\":{batch},\"seq\":{seq},\
             \"hidden\":{hidden},\"heads\":{heads},\"ffn\":{ffn},\"ops\":{}}},\
             \"lowering\":{{\"mode\":\"{}\",\"launches\":{}}},\
             \"arena\":{{\"planned_bytes\":{},\"naive_bytes\":{},\"saving\":{:.4}}},\
             \"engine\":\"{}\",",
            graph.ops.len(),
            lowering.label(),
            eg.nodes.len(),
            ws.arena_bytes(),
            ws.naive_bytes(),
            ws.saving(),
            if replay_engine { "replay" } else { "plan" },
        );
        if let Some(r) = &replay_info {
            let _ = write!(
                out,
                "\"trace\":{{\"kernels\":{},\"steps\":{},\"record_ms\":{:.3},\"replay_ms\":{:.3}}},\
                 \"trace_opt\":{{\"coalesced_fraction\":{:.4},\"bytes_before\":{},\
                 \"bytes_after\":{},\"steps_before\":{},\"steps_after\":{},\
                 \"dead_fills\":{},\"fused_steps\":{}}},\
                 \"graph_cache\":{{\"recordings\":{},\"hits\":{},\"evictions\":{}}},\
                 \"trace_cache\":{{\"recordings\":{},\"hits\":{}}},\
                 \"plan_vs_replay\":\"{}\",",
                r.kernels,
                r.steps,
                r.record_ms,
                r.replay_ms,
                r.opt.coalesced_fraction(),
                r.opt.bytes_before,
                r.opt.bytes_after,
                r.opt.steps_before,
                r.opt.steps_after,
                r.opt.dead_fills,
                r.opt.fused_steps,
                r.graph_stats.0,
                r.graph_stats.1,
                r.graph_stats.2,
                r.trace_stats.0,
                r.trace_stats.1,
                if r.same { "match" } else { "mismatch" },
            );
        }
        let _ = writeln!(
            out,
            "\"wall_ms\":{:.3},\"counters\":{{\"instructions\":{},\"flops_tc\":{},\
             \"flops_fma\":{},\"syncs\":{}}},\"checksum\":{sum:.6}}}",
            wall * 1e3,
            c.instructions,
            c.flops_tc,
            c.flops_fma,
            c.syncs,
        );
        out
    } else {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "graph    : {layers}-layer encoder ({} ops), batch {batch}, seq {seq}, hidden {hidden}, {heads} heads, ffn {ffn}",
            graph.ops.len()
        );
        let _ =
            writeln!(out, "lowering : {} ({} kernel launches)", lowering.label(), eg.nodes.len());
        let _ = writeln!(
            out,
            "arena    : {} B planned vs {} B naive ({:.1}% saved)",
            ws.arena_bytes(),
            ws.naive_bytes(),
            ws.saving() * 100.0
        );
        if let Some(r) = &replay_info {
            let _ = writeln!(
                out,
                "trace    : {} kernels, {} steps, recorded in {:.3} ms",
                r.kernels, r.steps, r.record_ms
            );
            let _ = writeln!(out, "{}", opt_stats_line(&r.opt));
            let _ = writeln!(
                out,
                "graph-cache : {} recording(s), {} hit(s), evictions : {}",
                r.graph_stats.0, r.graph_stats.1, r.graph_stats.2
            );
            let _ = writeln!(
                out,
                "trace-cache : {} recording(s), {} hit(s)",
                r.trace_stats.0, r.trace_stats.1
            );
            let _ = writeln!(out, "engine   : graph trace replay ({:.3} ms replay)", r.replay_ms);
            let _ = writeln!(out, "plan-vs-replay : {}", if r.same { "match" } else { "MISMATCH" });
        } else {
            let _ = writeln!(out, "engine   : compiled-plan graph executor");
        }
        let _ = writeln!(out, "wall     : {:.3} ms", wall * 1e3);
        let _ = writeln!(
            out,
            "counters : {} instructions, {} TC flops, {} FMA flops, {} syncs",
            c.instructions, c.flops_tc, c.flops_fma, c.syncs
        );
        let _ = writeln!(out, "checksum : {sum:.6}");
        out
    };
    if diverged {
        return Err(CliError(format!("replay diverged from plan execution\n{out}")));
    }
    Ok(out)
}

/// Output map of a graph execution, keyed by temp index.
type GraphOutcomeOutputs = HashMap<usize, Vec<f32>>;

/// The `tune` sub-command: a thin veneer over the `graphene-tune`
/// subsystem. Builds the requested [`SearchSpace`], runs the chosen
/// strategy through the prune → cost pipeline (consulting the
/// persistent tuning database when `--cache` is given), and renders the
/// winner with its pipeline accounting.
fn tune_cmd(cli: &Cli) -> Result<String, CliError> {
    use graphene_tune::{Search, TuneDb};

    let arch = cli.arch()?;
    let kernel = cli
        .options
        .get("kernel")
        .map(String::as_str)
        .or_else(|| cli.positional.first().map(String::as_str))
        .unwrap_or("gemm");
    // Space, strategy, and knob validation all live in the shared tune
    // catalog — the daemon's `tune` requests go through the same path.
    let space =
        graphene_tune::catalog::space_from_options(kernel, arch, &cli.options).map_err(CliError)?;
    let opts = graphene_tune::catalog::options_from_options(&cli.options).map_err(CliError)?;

    let mut db = cli.options.get("cache").map(TuneDb::load);
    let report = graphene_tune::tune(space.as_ref(), &opts, db.as_mut())
        .map_err(|e| CliError(e.to_string()))?;
    // The hand-picked default, for the speedup line. Skipped on a cache
    // hit: a warm run performs zero simulations, which is the point.
    let default_time_s = if report.stats.db_hit {
        None
    } else {
        let d = space.build(&space.default_point());
        analyze(&d, space.arch())
            .ok()
            .map(|c| time_kernel(&c, machine_for(space.arch()), d.grid_size()).time_s)
    };

    match cli.options.get("emit").map(String::as_str) {
        None | Some("text") => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "tuned {} {} on {arch} ({})",
                report.space,
                report.problem,
                match opts.search {
                    Search::Exhaustive => "exhaustive".to_string(),
                    Search::Random { samples, .. } => format!("random, {samples} samples"),
                    Search::Beam { width, .. } => format!("beam, width {width}"),
                },
            );
            let _ = writeln!(out, "winner   : {}", report.best_desc);
            match default_time_s {
                Some(d) if d > 0.0 => {
                    let _ = writeln!(
                        out,
                        "time     : {:.3} us (default {:.3} us, {:.2}x)",
                        report.best_time_s * 1e6,
                        d * 1e6,
                        d / report.best_time_s
                    );
                }
                _ => {
                    let _ = writeln!(out, "time     : {:.3} us", report.best_time_s * 1e6);
                }
            }
            let s = &report.stats;
            let _ = writeln!(
                out,
                "pipeline : {} proposed, {} pruned (constraint), {} pruned (analysis), {} simulated",
                s.proposed, s.pruned_constraint, s.pruned_analysis, s.simulated
            );
            if db.is_some() {
                let _ = writeln!(out, "cache    : {}", if s.db_hit { "hit" } else { "miss" });
            }
            if !report.leaderboard.is_empty() {
                let _ = writeln!(out, "leaderboard:");
                for c in &report.leaderboard {
                    let _ = writeln!(
                        out,
                        "  {:9.3} us  {}",
                        c.profile.time_s * 1e6,
                        space.describe(&c.point)
                    );
                }
            }
            Ok(out)
        }
        Some("json") => {
            let point_json = |p: &graphene_tune::Point| {
                space
                    .params()
                    .iter()
                    .zip(&p.0)
                    .map(|(d, v)| format!("\"{}\":{v}", d.name))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let s = &report.stats;
            let mut out = String::new();
            let _ = write!(
                out,
                "{{\"kernel\":\"{}\",\"problem\":\"{}\",\"arch\":\"{arch:?}\",\
                 \"winner\":{{\"point\":{{{}}},\"time_s\":{}}},",
                report.space,
                report.problem,
                point_json(&report.best_point),
                report.best_time_s,
            );
            if let Some(d) = default_time_s {
                let _ = write!(out, "\"default_time_s\":{d},");
            }
            let _ = write!(
                out,
                "\"stats\":{{\"proposed\":{},\"pruned_constraint\":{},\"pruned_analysis\":{},\
                 \"simulated\":{},\"db_hit\":{}}},",
                s.proposed, s.pruned_constraint, s.pruned_analysis, s.simulated, s.db_hit
            );
            let lb = report
                .leaderboard
                .iter()
                .map(|c| {
                    format!(
                        "{{\"point\":{{{}}},\"time_s\":{}}}",
                        point_json(&c.point),
                        c.profile.time_s
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "\"leaderboard\":[{lb}]}}");
            Ok(out)
        }
        Some(other) => Err(CliError(format!("unknown emit `{other}` (text|json)"))),
    }
}

fn render(emit: Emit, arch: Arch, kernel: &Kernel) -> Result<String, CliError> {
    graphene_ir::validate::validate(kernel, arch)
        .map_err(|ds| CliError(format!("kernel does not validate: {}", ds[0])))?;
    match emit {
        Emit::Ir => Ok(kernel.to_string()),
        Emit::Cuda => graphene_codegen::generate(kernel, arch).map_err(|e| CliError(e.to_string())),
        Emit::Profile => {
            let c = analyze(kernel, arch).map_err(|e| CliError(e.to_string()))?;
            let machine = machine_for(arch);
            let p = time_kernel(&c, machine, kernel.grid_size());
            let mut out = String::new();
            let _ = writeln!(out, "kernel   : {}", kernel.name);
            let _ = writeln!(out, "machine  : {} ({arch})", machine.name);
            let _ = writeln!(
                out,
                "launch   : {} blocks x {} threads, {} B smem/block",
                kernel.grid_size(),
                kernel.block_size(),
                kernel.shared_bytes()
            );
            let _ = writeln!(out, "time     : {:.3} us", p.time_s * 1e6);
            let _ = writeln!(
                out,
                "compute  : {:.1}% of peak ({} TC flops, {} FMA flops)",
                p.compute_util * 100.0,
                c.flops_tc,
                c.flops_fma
            );
            let _ = writeln!(
                out,
                "dram     : {:.1}% of peak ({} B unique, {} B via L2)",
                p.dram_util * 100.0,
                c.dram_bytes(),
                c.l2_bytes()
            );
            let _ = writeln!(
                out,
                "smem     : {} B read, {} B written, conflict factor {:.2}",
                c.smem_read_bytes,
                c.smem_write_bytes,
                c.conflict_factor()
            );
            let _ = writeln!(
                out,
                "roofs    : tensor {:.1} us | fma {:.1} us | dram {:.1} us | l2 {:.1} us | smem {:.1} us",
                p.tensor_time_s * 1e6,
                p.fma_time_s * 1e6,
                p.dram_time_s * 1e6,
                p.l2_time_s * 1e6,
                p.smem_time_s * 1e6
            );
            Ok(out)
        }
    }
}

/// The `serve` sub-command: run the persistent daemon until it drains
/// (a `shutdown` request, SIGINT, or SIGTERM).
///
/// The listening address is printed (and flushed) *before* the server
/// blocks so scripts can scrape it; `--ready-file PATH` additionally
/// writes the address to a file once the socket is bound, which is
/// race-free for harnesses that start the daemon in the background.
fn serve_cmd(cli: &Cli) -> Result<String, CliError> {
    let opts = graphene_serve::ServeOptions {
        addr: cli.options.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7474".to_string()),
        workers: usize::try_from(cli.int("workers", 4)?.max(1)).unwrap_or(4),
        queue_cap: usize::try_from(cli.int("queue", 64)?.max(1)).unwrap_or(64),
        deadline_ms: u64::try_from(cli.int("deadline-ms", 5000)?.max(0)).unwrap_or(5000),
        sync_tune_limit: usize::try_from(
            cli.int("sync-tune-limit", graphene_serve::state::DEFAULT_SYNC_TUNE_LIMIT as i64)?
                .max(0),
        )
        .unwrap_or(graphene_serve::state::DEFAULT_SYNC_TUNE_LIMIT),
        job_workers: usize::try_from(cli.int("job-workers", 1)?.max(1)).unwrap_or(1),
        cache: cli.options.get("cache").cloned(),
    };
    graphene_serve::install_signal_handlers();
    let server = graphene_serve::Server::bind(opts)
        .map_err(|e| CliError(format!("serve: bind failed: {e}")))?;
    let addr =
        server.local_addr().map_err(|e| CliError(format!("serve: no local address: {e}")))?;
    println!("graphene-serve listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = cli.options.get("ready-file") {
        std::fs::write(path, format!("{addr}\n"))
            .map_err(|e| CliError(format!("serve: cannot write ready file `{path}`: {e}")))?;
    }
    server.run().map_err(|e| CliError(format!("serve: {e}")))?;
    Ok("graphene-serve drained\n".to_string())
}

/// The `client` sub-command: send one request line to a running daemon
/// and print the response. The request is either built from the
/// command line (`client run gemm --m 256 ...` — the first positional
/// is the protocol `cmd`, the second the `kernel`) or passed verbatim
/// via `--json '{...}'`. A response carrying `"ok":false` is returned
/// as an error so the process exits nonzero.
fn client_cmd(cli: &Cli) -> Result<String, CliError> {
    let addr = cli.options.get("addr").map_or("127.0.0.1:7474", String::as_str);
    let timeout_s = cli.int("timeout", 120)?.max(1);
    let line = if let Some(raw) = cli.options.get("json") {
        raw.clone()
    } else {
        let Some(cmd) = cli.positional.first() else {
            return Err(CliError(
                "client: expected a protocol command (lint|run|run-graph|tune|poll|cancel|stats|shutdown) or --json".to_string(),
            ));
        };
        let mut fields = vec![format!("\"cmd\":\"{}\"", graphene_tune::json::escape(cmd))];
        if let Some(kernel) = cli.positional.get(1) {
            fields.push(format!("\"kernel\":\"{}\"", graphene_tune::json::escape(kernel)));
        }
        // Every remaining `--key value` forwards as a protocol field;
        // client-side transport options stay local. Integers go over
        // the wire as numbers, everything else as strings — the server
        // stringifies scalars anyway, so this only affects readability.
        let mut opts: Vec<_> = cli
            .options
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "addr" | "timeout" | "json"))
            .collect();
        opts.sort();
        for (k, v) in opts {
            let key = graphene_tune::json::escape(k);
            if v.parse::<i64>().is_ok() || v == "true" || v == "false" {
                fields.push(format!("\"{key}\":{v}"));
            } else {
                fields.push(format!("\"{key}\":\"{}\"", graphene_tune::json::escape(v)));
            }
        }
        format!("{{{}}}", fields.join(","))
    };
    let resp = graphene_serve::client::request(
        addr,
        &line,
        std::time::Duration::from_secs(u64::try_from(timeout_s).unwrap_or(120)),
    )
    .map_err(|e| CliError(format!("client: {addr}: {e}")))?;
    if resp.contains("\"ok\":false") {
        return Err(CliError(resp));
    }
    Ok(format!("{resp}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn gemm_profile() {
        let out = run_str("gemm --arch sm86 --m 1024 --n 1024 --k 512").unwrap();
        assert!(out.contains("machine  : RTX A6000"));
        assert!(out.contains("compute  :"));
    }

    #[test]
    fn gemm_cuda_emission() {
        let out = run_str("gemm --arch sm86 --m 256 --n 256 --k 32 --emit cuda").unwrap();
        assert!(out.contains("__global__ void graphene_gemm_sm86_gemm"));
        assert!(out.contains("ldmatrix"));
    }

    #[test]
    fn gemm_ir_emission() {
        let out = run_str("gemm --arch sm70 --m 256 --n 256 --k 32 --emit ir").unwrap();
        assert!(out.contains("MatMul <<<"));
        assert!(out.contains(".fp16.GL"));
    }

    #[test]
    fn epilogue_parsing() {
        let out = run_str("gemm --m 256 --n 256 --k 32 --epilogue bias+relu --emit cuda").unwrap();
        assert!(out.contains("bias"));
        assert!(run_str("gemm --epilogue nope").is_err());
    }

    #[test]
    fn other_kernels() {
        assert!(run_str("layernorm --rows 64 --hidden 512").unwrap().contains("time"));
        assert!(run_str("softmax --rows 64 --cols 512").unwrap().contains("time"));
        assert!(run_str("mlp --m 512 --layers 3").unwrap().contains("time"));
        assert!(run_str("lstm --m 512").unwrap().contains("time"));
        assert!(run_str("table2 --arch sm70").unwrap().contains("mma.m8n8k4"));
    }

    #[test]
    fn bad_inputs_reported() {
        assert!(run_str("gemm --m 100 --n 100 --k 100").is_err());
        assert!(run_str("frobnicate").unwrap_err().0.contains("unknown command"));
        assert!(run_str("gemm --m").is_err());
        assert!(Cli::parse(&[]).is_err());
    }
}

#[cfg(test)]
mod lint_tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn lint_clean_kernel_succeeds() {
        let out = run_str("lint gemm --m 256 --n 256 --k 64").unwrap();
        assert!(out.contains("0 errors"), "{out}");
    }

    #[test]
    fn lint_emits_json_with_equals_syntax() {
        // The exact invocation shape CI's lint-selfcheck uses.
        let out = run_str("lint gemm --m 256 --n 256 --k 64 --emit=json").unwrap();
        assert!(out.contains("\"kernel\""), "{out}");
        assert!(out.contains("\"errors\":0"), "{out}");
    }

    #[test]
    fn lint_covers_every_paper_kernel() {
        let cases = [
            ("gemm-db", "--m 256 --n 256 --k 64"),
            ("mlp", "--m 256 --layers 2"),
            ("lstm", "--m 256"),
            ("layernorm", "--rows 64 --hidden 512"),
            ("softmax", "--rows 64 --cols 512"),
            ("fmha", ""),
        ];
        for (name, opts) in cases {
            let out = run_str(&format!("lint {name} {opts}"))
                .unwrap_or_else(|e| panic!("lint {name} failed: {e}"));
            assert!(out.contains("0 errors"), "{name}: {out}");
        }
    }

    #[test]
    fn lint_prove_reports_proven_provenance() {
        let out = run_str("lint gemm --m 256 --n 256 --k 64 --prove").unwrap();
        assert!(
            out.contains("proof (F2 symbolic): conflicts proven free, bounds proven in-bounds"),
            "{out}"
        );
        assert!(out.contains("proven"), "{out}");
        assert!(!out.contains("[sampled]"), "{out}");
        assert!(out.contains("races:"), "{out}");
        assert!(out.contains("0 sampled"), "{out}");
    }

    #[test]
    fn lint_prove_json_embeds_proof_object() {
        let out = run_str("lint gemm --m 256 --n 256 --k 64 --prove --emit=json").unwrap();
        assert!(out.contains("\"proof\":{"), "{out}");
        assert!(out.contains("\"conflicts_proven_free\":true"), "{out}");
        assert!(out.contains("\"all_proven\":true"), "{out}");
        assert!(out.contains("\"bounds_clean\":true"), "{out}");
        assert!(out.contains("\"provenance\":\"proven-"), "{out}");
    }

    #[test]
    fn bare_flags_parse_at_end_and_before_options() {
        let a = Cli::parse(&["lint".into(), "gemm".into(), "--prove".into()]).unwrap();
        assert!(a.flag("prove"));
        let b = Cli::parse(&[
            "lint".into(),
            "gemm".into(),
            "--prove".into(),
            "--m".into(),
            "64".into(),
        ])
        .unwrap();
        assert!(b.flag("prove"));
        assert_eq!(b.options.get("m").map(String::as_str), Some("64"));
    }

    #[test]
    fn lint_rejects_unknown_kernel_and_missing_name() {
        assert!(run_str("lint frobnicate").unwrap_err().0.contains("unknown kernel"));
        assert!(run_str("lint").unwrap_err().0.contains("kernel name"));
        assert!(run_str("lint gemm --emit=yaml").unwrap_err().0.contains("unknown emit"));
    }

    #[test]
    fn equals_and_space_option_forms_are_equivalent() {
        let a = Cli::parse(&["gemm".into(), "--m".into(), "512".into()]).unwrap();
        let b = Cli::parse(&["gemm".into(), "--m=512".into()]).unwrap();
        assert_eq!(a.options.get("m"), b.options.get("m"));
    }
}

#[cfg(test)]
mod run_tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn run_executes_all_modes_with_matching_checksums() {
        let checksum = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("checksum : "))
                .map(str::to_owned)
                .expect("checksum line")
        };
        let base = "run gemm --m 128 --n 128 --k 32";
        let par = run_str(&format!("{base} --exec parallel")).unwrap();
        let seq = run_str(&format!("{base} --exec sequential")).unwrap();
        let reference = run_str(&format!("{base} --exec reference")).unwrap();
        assert!(par.contains("compiled (parallel)"), "{par}");
        assert!(seq.contains("compiled (sequential)"), "{seq}");
        assert!(reference.contains("reference interpreter"), "{reference}");
        assert_eq!(checksum(&par), checksum(&seq));
        assert_eq!(checksum(&par), checksum(&reference));
    }

    #[test]
    fn run_rejects_bad_mode_and_missing_kernel() {
        assert!(run_str("run gemm --exec warp-speed").unwrap_err().0.contains("exec mode"));
        assert!(run_str("run").unwrap_err().0.contains("kernel name"));
    }

    /// `run --exec replay` records once, replays from the trace cache,
    /// and its checksum matches the interpreting engines.
    #[test]
    fn run_replay_matches_and_reports_cache() {
        let checksum = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("checksum : "))
                .map(str::to_owned)
                .expect("checksum line")
        };
        let base = "run gemm --m 128 --n 128 --k 32";
        let seq = run_str(&format!("{base} --exec sequential")).unwrap();
        let rep = run_str(&format!("{base} --exec replay")).unwrap();
        assert!(rep.contains("engine   : trace replay"), "{rep}");
        assert!(rep.contains("trace    : "), "{rep}");
        assert!(rep.contains("1 recording(s)"), "{rep}");
        assert!(rep.contains("1 hit(s)"), "{rep}");
        assert!(rep.contains("re-interpretations : 0"), "{rep}");
        assert_eq!(checksum(&seq), checksum(&rep));
    }
}

#[cfg(test)]
mod run_graph_tests {
    use super::*;

    fn run_str(s: &str) -> Result<String, CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        run(&args)
    }

    const SMALL: &str = "--layers 1 --seq 64 --hidden 256 --heads 4 --ffn 256";

    #[test]
    fn run_graph_plan_and_replay_agree_and_report_arena() {
        let checksum = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("checksum : "))
                .map(str::to_owned)
                .expect("checksum line")
        };
        let plan = run_str(&format!("run-graph {SMALL} --exec plan")).unwrap();
        assert!(plan.contains("compiled-plan graph executor"), "{plan}");
        assert!(plan.contains("arena    : "), "{plan}");
        assert!(plan.contains("% saved)"), "{plan}");

        let rep = run_str(&format!("run-graph {SMALL} --exec replay")).unwrap();
        assert!(rep.contains("graph trace replay"), "{rep}");
        assert!(rep.contains("graph-cache : 1 recording(s), 1 hit(s)"), "{rep}");
        assert!(rep.contains("plan-vs-replay : match"), "{rep}");
        assert_eq!(checksum(&plan), checksum(&rep));
    }

    #[test]
    fn run_graph_lowerings_match_bitwise_via_checksum() {
        let checksum = |out: &str| {
            out.lines()
                .find_map(|l| l.strip_prefix("checksum : "))
                .map(str::to_owned)
                .expect("checksum line")
        };
        let fused = run_str(&format!("run-graph {SMALL} --lowering fused")).unwrap();
        let def = run_str(&format!("run-graph {SMALL} --lowering default")).unwrap();
        assert!(fused.contains("lowering : fused"), "{fused}");
        assert!(def.contains("lowering : default"), "{def}");
        assert_eq!(checksum(&fused), checksum(&def));
    }

    #[test]
    fn run_graph_rejects_bad_flags_and_shapes() {
        assert!(run_str("run-graph --exec warp-speed").unwrap_err().0.contains("exec mode"));
        assert!(run_str("run-graph --lowering manual").unwrap_err().0.contains("lowering"));
        // hidden not divisible by 256: layernorm schedule can't lower it.
        assert!(run_str("run-graph --hidden 192 --seq 64").is_err());
    }
}

#[cfg(test)]
mod tune_tests {
    fn run_str(s: &str) -> Result<String, super::CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        super::run(&args)
    }

    #[test]
    fn tune_gemm_defaults_to_gemm_and_reports_pipeline() {
        let out =
            run_str("tune --m 512 --n 512 --k 256 --search random --samples 12 --top 3").unwrap();
        assert!(out.contains("tuned gemm m512_n512_k256_gemm"), "{out}");
        assert!(out.contains("winner   : bm="), "{out}");
        assert!(out.contains("pipeline :"), "{out}");
        assert!(out.contains("leaderboard:"), "{out}");
    }

    #[test]
    fn tune_layernorm_emits_json() {
        let out = run_str("tune --kernel layernorm --rows 512 --hidden 1024 --emit json").unwrap();
        assert!(out.contains("\"kernel\":\"layernorm\""), "{out}");
        assert!(out.contains("\"rows_per_block\":"), "{out}");
        assert!(out.contains("\"db_hit\":false"), "{out}");
        assert!(out.contains("\"default_time_s\":"), "{out}");
    }

    #[test]
    fn tune_cache_round_trip_serves_second_run_without_simulation() {
        let path = std::env::temp_dir()
            .join(format!("graphene-cli-tune-test-{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        let cmd = format!(
            "tune --kernel layernorm --rows 512 --hidden 1024 --cache {} --emit json",
            path.display()
        );
        let cold = run_str(&cmd).unwrap();
        assert!(cold.contains("\"db_hit\":false"), "{cold}");
        let warm = run_str(&cmd).unwrap();
        assert!(warm.contains("\"db_hit\":true"), "{warm}");
        assert!(warm.contains("\"simulated\":0"), "{warm}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tune_failures_are_errors_not_panics() {
        // Untileable problem: every candidate pruned -> nonzero exit.
        let err = run_str("tune --m 17 --n 17 --k 17").unwrap_err();
        assert!(err.0.contains("no legal candidate"), "{}", err.0);
        assert!(run_str("tune --kernel frobnicate").unwrap_err().0.contains("unknown tunable"));
        assert!(run_str("tune --search quantum").unwrap_err().0.contains("unknown search"));
        assert!(run_str("tune --budget -3").unwrap_err().0.contains("non-negative"));
        assert!(run_str("tune --top 0").unwrap_err().0.contains("--top"));
    }

    /// Negative strategy knobs used to wrap through `as usize` into
    /// astronomically large counts; now they are one-line errors.
    #[test]
    fn tune_rejects_negative_strategy_knobs() {
        let err = run_str("tune --search random --samples -1").unwrap_err();
        assert!(err.0.contains("--samples must be at least 1"), "{}", err.0);
        let err = run_str("tune --search beam --width -2").unwrap_err();
        assert!(err.0.contains("--width must be at least 1"), "{}", err.0);
        let err = run_str("tune --search beam --patience 0").unwrap_err();
        assert!(err.0.contains("--patience must be at least 1"), "{}", err.0);
        let err = run_str("tune --search random --seed -7").unwrap_err();
        assert!(err.0.contains("--seed must be non-negative"), "{}", err.0);
    }

    /// Spawns an in-process daemon on an ephemeral port and drives it
    /// with the `client` sub-command — the same path `graphene client`
    /// takes against `graphene serve`.
    #[test]
    fn client_round_trips_against_a_live_daemon() {
        let server = graphene_serve::Server::bind(graphene_serve::ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            ..Default::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let out =
            run_str(&format!("client --addr {addr} run gemm --m 256 --n 256 --k 64 --exec replay"))
                .unwrap();
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"trace_hit\":false"), "{out}");
        let warm =
            run_str(&format!("client --addr {addr} run gemm --m 256 --n 256 --k 64 --exec replay"))
                .unwrap();
        assert!(warm.contains("\"trace_hit\":true"), "{warm}");

        // Raw --json passthrough.
        let raw = super::run(&[
            "client".to_string(),
            "--addr".to_string(),
            addr.clone(),
            "--json".to_string(),
            r#"{"cmd":"stats"}"#.to_string(),
        ])
        .unwrap();
        assert!(raw.contains("\"caches\""), "{raw}");

        // A failing request comes back as Err, so the binary exits
        // nonzero.
        let err = run_str(&format!("client --addr {addr} frobnicate")).unwrap_err();
        assert!(err.0.contains("unknown cmd"), "{}", err.0);

        run_str(&format!("client --addr {addr} shutdown")).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn client_requires_a_command_or_json() {
        let err = run_str("client --addr 127.0.0.1:1").unwrap_err();
        assert!(err.0.contains("expected a protocol command"), "{}", err.0);
    }
}

#[cfg(test)]
mod robustness_tests {
    fn run_str(s: &str) -> Result<String, super::CliError> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        super::run(&args)
    }

    #[test]
    fn invalid_shapes_error_instead_of_panicking() {
        assert!(run_str("layernorm --hidden 100").unwrap_err().0.contains("multiple of 256"));
        assert!(run_str("layernorm --rows 3").unwrap_err().0.contains("multiple of 4"));
        assert!(run_str("softmax --cols 100").unwrap_err().0.contains("multiple of 256"));
        assert!(run_str("fmha --seq 100").unwrap_err().0.contains("seq"));
    }

    #[test]
    fn fmha_rejects_volta_explicitly() {
        let err = run_str("fmha --arch sm70").unwrap_err();
        assert!(err.0.contains("Ampere"), "{}", err.0);
    }
}
