//! Decomposition-equivalence tests: different decompositions of the same
//! kernel-level spec must compute the same function (the core soundness
//! property of Graphene's spec refinement, paper §5.1).

use graphene_ir::Arch;
use graphene_kernels::gemm::{
    build_gemm, build_gemm_double_buffered, build_gemm_no_ldmatrix, build_gemm_partial_m, Epilogue,
    GemmConfig,
};
use graphene_sim::host::HostTensor;
use std::collections::HashMap;

fn run(kernel: &graphene_ir::Kernel, a: &HostTensor, b: &HostTensor) -> Vec<f32> {
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], a.as_slice().to_vec());
    inputs.insert(kernel.params[1], b.as_slice().to_vec());
    graphene_sim::execute(kernel, Arch::Sm86, &inputs).expect("execute").globals[&kernel.params[2]]
        .clone()
}

/// All Ampere GEMM decompositions agree bitwise: they perform the same
/// floating-point operations in the same K order, only staged/loaded
/// differently.
#[test]
fn all_gemm_decompositions_agree() {
    let cfg =
        GemmConfig { m: 64, n: 64, k: 64, bm: 32, bn: 32, bk: 16, wm: 32, wn: 32, swizzle: true };
    let a = HostTensor::random(&[64, 64], 601);
    let b = HostTensor::random(&[64, 64], 602);

    let base = run(&build_gemm(Arch::Sm86, &cfg, Epilogue::None), &a, &b);
    let no_ldm = run(&build_gemm_no_ldmatrix(&cfg, Epilogue::None), &a, &b);
    let dbuf = run(&build_gemm_double_buffered(&cfg, Epilogue::None), &a, &b);
    let partial = run(&build_gemm_partial_m(&cfg, Epilogue::None), &a, &b);

    assert_eq!(base, no_ldm, "scalar-load decomposition diverged");
    assert_eq!(base, dbuf, "double-buffered decomposition diverged");
    assert_eq!(base, partial, "predicated decomposition diverged");
}

/// Volta and Ampere decompositions agree with each other up to
/// accumulation-order rounding (they use different tensor instructions
/// with different K-step granularity).
#[test]
fn volta_and_ampere_agree_numerically() {
    let cfg_amp =
        GemmConfig { m: 32, n: 32, k: 32, bm: 32, bn: 32, bk: 16, wm: 32, wn: 32, swizzle: true };
    let cfg_vol = GemmConfig { bk: 8, ..cfg_amp };
    let a = HostTensor::random(&[32, 32], 611);
    let b = HostTensor::random(&[32, 32], 612);

    let amp = run(&build_gemm(Arch::Sm86, &cfg_amp, Epilogue::None), &a, &b);
    let vol = {
        let kernel = build_gemm(Arch::Sm70, &cfg_vol, Epilogue::None);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        graphene_sim::execute(&kernel, Arch::Sm70, &inputs).expect("execute").globals
            [&kernel.params[2]]
            .clone()
    };
    for (x, y) in amp.iter().zip(&vol) {
        assert!((x - y).abs() < 1e-4, "{x} vs {y}");
    }
}

/// Epilogues commute with the decomposition choice.
#[test]
fn epilogue_identical_across_decompositions() {
    let cfg =
        GemmConfig { m: 32, n: 32, k: 32, bm: 32, bn: 32, bk: 16, wm: 32, wn: 32, swizzle: true };
    let a = HostTensor::random(&[32, 32], 621);
    let b = HostTensor::random(&[32, 32], 622);
    let bias: Vec<f32> = (0..32).map(|j| j as f32 * 0.01 - 0.1).collect();

    let run_bias = |kernel: &graphene_ir::Kernel| {
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        inputs.insert(kernel.params[3], bias.clone());
        graphene_sim::execute(kernel, Arch::Sm86, &inputs).expect("execute").globals
            [&kernel.params[2]]
            .clone()
    };
    let base = run_bias(&build_gemm(Arch::Sm86, &cfg, Epilogue::BiasRelu));
    let dbuf = run_bias(&build_gemm_double_buffered(&cfg, Epilogue::BiasRelu));
    assert_eq!(base, dbuf);
}
