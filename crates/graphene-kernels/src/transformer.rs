//! End-to-end Transformer inference (paper Figure 15).
//!
//! The paper injects its fused FMHA kernels "as custom operators into
//! multiple Huggingface Transformer networks" and reports end-to-end
//! inference speedup over regular PyTorch. We model a Transformer
//! encoder layer as its kernel sequence (QKV projections, attention,
//! output projection, two layernorms, the two FFN GEMMs with GeLU) on
//! the simulated machine and swap only the attention implementation:
//!
//! - baseline: batched `QKᵀ` cuBLAS GEMM + standalone softmax kernel +
//!   batched `PV` GEMM (the PyTorch lowering), or
//! - Graphene: the single fused FMHA kernel of [`crate::fmha`].
//!
//! "The speedup correlates with the fraction of FMHA occurrences per
//! network" — which this composition reproduces by construction.

use crate::fmha::FmhaConfig;
use crate::reference::{
    cublaslt_gemm_epilogue, pytorch_layernorm, unfused_fmha, LayernormImpl, LibraryKernel,
};
use graphene_ir::Arch;
use graphene_sim::{machine_for, time_sequence, KernelProfile, MachineDesc};

/// A Transformer network configuration (HuggingFace encoder families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Display name.
    pub name: &'static str,
    /// Encoder layers.
    pub layers: i64,
    /// Hidden size.
    pub hidden: i64,
    /// Attention heads.
    pub heads: i64,
    /// FFN intermediate size.
    pub intermediate: i64,
    /// Sequence length.
    pub seq: i64,
    /// Batch size.
    pub batch: i64,
}

impl TransformerConfig {
    /// The five networks of the paper's Figure 15 (BERT-family encoders,
    /// MLPerf-style batch 32 / sequence 384 inference).
    pub fn paper_networks() -> Vec<TransformerConfig> {
        vec![
            TransformerConfig {
                name: "DistilBERT",
                layers: 6,
                hidden: 768,
                heads: 12,
                intermediate: 3072,
                seq: 384,
                batch: 32,
            },
            TransformerConfig {
                name: "BERT-base",
                layers: 12,
                hidden: 768,
                heads: 12,
                intermediate: 3072,
                seq: 384,
                batch: 32,
            },
            TransformerConfig {
                name: "RoBERTa",
                layers: 12,
                hidden: 768,
                heads: 12,
                intermediate: 3072,
                seq: 384,
                batch: 32,
            },
            TransformerConfig {
                name: "ALBERT",
                layers: 12,
                hidden: 768,
                heads: 12,
                intermediate: 3072,
                seq: 384,
                batch: 32,
            },
            TransformerConfig {
                name: "BERT-large",
                layers: 24,
                hidden: 1024,
                heads: 16,
                intermediate: 4096,
                seq: 384,
                batch: 32,
            },
        ]
    }

    /// Head dimension.
    pub fn head_dim(&self) -> i64 {
        self.hidden / self.heads
    }

    /// Total token rows.
    pub fn rows(&self) -> i64 {
        self.batch * self.seq
    }
}

/// How the attention block is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionImpl {
    /// PyTorch lowering: batched GEMM + softmax kernel + batched GEMM.
    Unfused,
    /// Graphene's fused FMHA kernel injected as a custom operator.
    GrapheneFused,
}

/// The timing breakdown of one inference pass.
#[derive(Debug, Clone, Copy)]
pub struct InferenceTime {
    /// Total time, seconds.
    pub total_s: f64,
    /// Time spent in the attention core (FMHA or its unfused kernels).
    pub attention_s: f64,
}

impl InferenceTime {
    /// Fraction of time in the attention core.
    pub fn attention_fraction(&self) -> f64 {
        self.attention_s / self.total_s
    }
}

/// Times one full inference pass of a network.
pub fn time_inference(
    cfg: &TransformerConfig,
    attention: AttentionImpl,
    machine: &MachineDesc,
) -> InferenceTime {
    let rows = cfg.rows();
    let h = cfg.hidden;
    let d = cfg.head_dim();
    let heads = cfg.batch * cfg.heads;

    // Per-layer kernels outside the attention core.
    let mut fixed: Vec<LibraryKernel> = Vec::new();
    // QKV projections (three GEMMs rows x h x h; cuBLASLt folds bias).
    for _ in 0..3 {
        fixed.push(cublaslt_gemm_epilogue(rows, h, h, true, false));
    }
    // Attention output projection.
    fixed.push(cublaslt_gemm_epilogue(rows, h, h, true, false));
    // Two layernorms (PyTorch fused implementation).
    for _ in 0..2 {
        fixed.extend(pytorch_layernorm(rows, h, LayernormImpl::Fused));
    }
    // FFN: expand with GeLU, contract with bias.
    fixed.push(cublaslt_gemm_epilogue(rows, cfg.intermediate, h, true, true));
    fixed.push(cublaslt_gemm_epilogue(rows, h, cfg.intermediate, true, false));
    let fixed_time: f64 =
        time_sequence(&fixed.iter().map(|k| k.profile(machine)).collect::<Vec<_>>());

    // The attention core.
    let attention_time = match attention {
        AttentionImpl::Unfused => {
            let seq = unfused_fmha(heads, cfg.seq, d);
            time_sequence(&seq.iter().map(|k| k.profile(machine)).collect::<Vec<_>>())
        }
        AttentionImpl::GrapheneFused => {
            let fcfg = FmhaConfig { heads, seq: cfg.seq, d, bq: 128, wm: 32 };
            fused_fmha_profile(&fcfg, machine).time_s
        }
    };

    let per_layer = fixed_time + attention_time;
    InferenceTime {
        total_s: per_layer * cfg.layers as f64,
        attention_s: attention_time * cfg.layers as f64,
    }
}

/// Profiles the Graphene fused FMHA kernel via static analysis of the
/// real schedule (cached per configuration — building the IR for the
/// MLPerf shape is not free).
pub fn fused_fmha_profile(cfg: &FmhaConfig, machine: &MachineDesc) -> KernelProfile {
    use std::collections::HashMap;
    use std::sync::Mutex;
    use std::sync::OnceLock;
    type Key = (i64, i64, i64, i64, i64);
    static CACHE: OnceLock<Mutex<HashMap<Key, graphene_sim::Counters>>> = OnceLock::new();
    let key = (cfg.heads, cfg.seq, cfg.d, cfg.bq, cfg.wm);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let counters = {
        let mut guard = cache.lock().expect("fmha profile cache");
        if let Some(c) = guard.get(&key) {
            *c
        } else {
            let kernel = crate::fmha::build_fused_fmha(Arch::Sm86, cfg);
            let c = graphene_sim::analyze(&kernel, Arch::Sm86).expect("fmha analyzes");
            guard.insert(key, c);
            c
        }
    };
    graphene_sim::time_kernel(&counters, machine, cfg.blocks())
}

/// One row of the Figure 15 report.
#[derive(Debug, Clone)]
pub struct NetworkSpeedup {
    /// Network name.
    pub name: &'static str,
    /// Baseline (PyTorch) inference time, ms.
    pub baseline_ms: f64,
    /// Inference time with the Graphene FMHA injected, ms.
    pub graphene_ms: f64,
    /// Speedup factor.
    pub speedup: f64,
    /// Fraction of baseline time spent in attention.
    pub fmha_fraction: f64,
}

/// Produces the Figure 15 rows for all paper networks on Ampere.
pub fn figure15_rows() -> Vec<NetworkSpeedup> {
    let machine = machine_for(Arch::Sm86);
    TransformerConfig::paper_networks()
        .into_iter()
        .map(|cfg| {
            let base = time_inference(&cfg, AttentionImpl::Unfused, machine);
            let fused = time_inference(&cfg, AttentionImpl::GrapheneFused, machine);
            NetworkSpeedup {
                name: cfg.name,
                baseline_ms: base.total_s * 1e3,
                graphene_ms: fused.total_s * 1e3,
                speedup: base.total_s / fused.total_s,
                fmha_fraction: base.attention_fraction(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_attention_speeds_up_inference() {
        let machine = machine_for(Arch::Sm86);
        let cfg = TransformerConfig::paper_networks()[1]; // BERT-base
        let base = time_inference(&cfg, AttentionImpl::Unfused, machine);
        let fused = time_inference(&cfg, AttentionImpl::GrapheneFused, machine);
        assert!(fused.total_s < base.total_s);
        let speedup = base.total_s / fused.total_s;
        assert!(speedup > 1.05 && speedup < 2.5, "speedup {speedup}");
    }

    #[test]
    fn speedup_correlates_with_attention_fraction() {
        let rows = figure15_rows();
        // Sort by attention fraction; speedups must be non-decreasing
        // (allowing tiny numerical jitter).
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| a.fmha_fraction.partial_cmp(&b.fmha_fraction).unwrap());
        for pair in sorted.windows(2) {
            assert!(
                pair[1].speedup >= pair[0].speedup * 0.98,
                "{} ({}) vs {} ({})",
                pair[0].name,
                pair[0].speedup,
                pair[1].name,
                pair[1].speedup
            );
        }
    }

    #[test]
    fn head_dims_are_64() {
        for cfg in TransformerConfig::paper_networks() {
            assert_eq!(cfg.head_dim(), 64, "{}", cfg.name);
        }
    }
}
