//! GEMM tile search — **compatibility shim**.
//!
//! The real autotuning subsystem lives in the `graphene-tune` crate
//! (search spaces for every paper kernel, pluggable strategies, static
//! legality pruning, parallel costing, and a persistent tuning
//! database). This module keeps the original GEMM-only exhaustive API
//! (`candidate_configs` / `tune_gemm` / `best_gemm_config`) for callers
//! that predate it; `graphene-tune` cannot be referenced from here
//! without a dependency cycle (it builds kernels from this crate), so
//! the shim re-implements the trivial exhaustive loop over the shared
//! pieces: [`GemmConfig::validate`] is the single source of candidate
//! legality, and the cost model is the same
//! [`analyze`](graphene_sim::analyze) + [`time_kernel`] pair the
//! subsystem uses.

use crate::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_ir::Arch;
use graphene_sim::{analyze, machine_for, time_kernel, KernelProfile};

/// One evaluated candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The tile configuration.
    pub cfg: GemmConfig,
    /// Its simulated profile.
    pub profile: KernelProfile,
}

/// The candidate tile space: thread-block tiles × warp tiles × K steps,
/// filtered to the configurations [`GemmConfig::validate`] accepts.
/// Mirrors the shapes real GEMM libraries instantiate.
pub fn candidate_configs(m: i64, n: i64, k: i64, arch: Arch) -> Vec<GemmConfig> {
    let block_tiles: &[(i64, i64)] =
        &[(64, 64), (64, 128), (128, 64), (128, 128), (128, 256), (256, 128)];
    let warp_tiles: &[(i64, i64)] = &[(32, 32), (32, 64), (64, 32), (64, 64)];
    let bks: &[i64] = match arch {
        Arch::Sm86 => &[16, 32, 64],
        Arch::Sm70 => &[16, 32],
    };
    let mut out = Vec::new();
    for &(bm, bn) in block_tiles {
        for &(wm, wn) in warp_tiles {
            for &bk in bks {
                let cfg = GemmConfig { m, n, k, bm, bn, bk, wm, wn, swizzle: true };
                if cfg.validate(arch).is_ok() {
                    out.push(cfg);
                }
            }
        }
    }
    out
}

/// Exhaustively evaluates the candidate space and returns all profiles,
/// fastest first.
///
/// # Panics
///
/// Panics if no candidate tiles the problem (pathological sizes).
pub fn tune_gemm(m: i64, n: i64, k: i64, arch: Arch) -> Vec<Candidate> {
    let machine = machine_for(arch);
    let mut results: Vec<Candidate> = candidate_configs(m, n, k, arch)
        .into_iter()
        .map(|cfg| {
            let kernel = build_gemm(arch, &cfg, Epilogue::None);
            let counters = analyze(&kernel, arch).expect("candidate analyzes");
            let profile = time_kernel(&counters, machine, kernel.grid_size());
            Candidate { cfg, profile }
        })
        .collect();
    assert!(!results.is_empty(), "no valid tile configuration for {m}x{n}x{k}");
    results.sort_by(|a, b| a.profile.time_s.partial_cmp(&b.profile.time_s).unwrap());
    results
}

/// The best configuration for a problem.
pub fn best_gemm_config(m: i64, n: i64, k: i64, arch: Arch) -> Candidate {
    tune_gemm(m, n, k, arch).remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_space_is_nonempty_and_valid() {
        for arch in [Arch::Sm70, Arch::Sm86] {
            let cands = candidate_configs(1024, 1024, 512, arch);
            assert!(cands.len() >= 8, "{arch}: only {} candidates", cands.len());
            for c in &cands {
                c.validate(arch).expect("enumerated candidates are valid");
            }
        }
    }

    #[test]
    fn tuner_matches_or_beats_the_cublas_tile_at_square_sizes() {
        // At the paper's square evaluation size the cuBLAS 128x128x32
        // choice is already compute-bound; the tuner must find something
        // at least as good.
        let best = best_gemm_config(1536, 1536, 512, Arch::Sm86);
        let cublas_cfg = GemmConfig::cublas_like(1536, 1536, 512);
        let kernel = build_gemm(Arch::Sm86, &cublas_cfg, Epilogue::None);
        let cublas_t = time_kernel(
            &analyze(&kernel, Arch::Sm86).unwrap(),
            machine_for(Arch::Sm86),
            kernel.grid_size(),
        )
        .time_s;
        assert!(
            best.profile.time_s <= cublas_t * 1.001,
            "tuned {} vs cublas-tile {}",
            best.profile.time_s,
            cublas_t
        );
    }

    #[test]
    fn tuner_prefers_smaller_tiles_for_skinny_problems() {
        // A tall-skinny GEMM (n = 128) leaves 128x256-class tiles
        // starved; the tuner should pick bn <= 128 and fill the machine
        // with more, smaller blocks.
        let best = best_gemm_config(8192, 128, 256, Arch::Sm86);
        assert!(best.cfg.bn <= 128, "chose bn = {}", best.cfg.bn);
        // And it must beat the default 128x128 tile by occupancy.
        let default_cfg = GemmConfig::cublas_like(8192, 128, 256);
        let kernel = build_gemm(Arch::Sm86, &default_cfg, Epilogue::None);
        let default_t = time_kernel(
            &analyze(&kernel, Arch::Sm86).unwrap(),
            machine_for(Arch::Sm86),
            kernel.grid_size(),
        )
        .time_s;
        assert!(
            best.profile.time_s <= default_t,
            "tuned {} vs default {}",
            best.profile.time_s,
            default_t
        );
    }

    #[test]
    fn results_are_sorted() {
        let all = tune_gemm(512, 512, 256, Arch::Sm86);
        for pair in all.windows(2) {
            assert!(pair[0].profile.time_s <= pair[1].profile.time_s);
        }
    }
}
