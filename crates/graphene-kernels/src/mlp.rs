//! The fused multi-layer MLP kernel (paper Figure 11).
//!
//! "For specific problem sizes (N = K ≤ 128 with arbitrary M) it is
//! possible to fuse multiple MLP layers into a single kernel. In these
//! cases, all intermediate tensors fit into the GPU's shared memory
//! allowing to avoid communication via the slower global memory."
//!
//! Each thread-block owns a 128-row slice of the activations, kept in
//! shared memory across all `L` layers. Per layer, only the 128×128
//! weight tile and the bias are read from global memory; the
//! GEMM + bias + ReLU epilogue writes straight back to the *other*
//! shared activation buffer (ping-pong). The cuBLASLt baseline launches
//! one kernel per layer and round-trips the activations through global
//! memory — exactly the traffic and launch overhead this fusion
//! eliminates.

use crate::common::{
    a_frags_type, acc_root_type, b_frags_type, reg_vec, stage_tile, stage_transposed, unstage_tile,
};
use crate::mma::{
    emit_epilogue_store_ampere, emit_epilogue_store_volta, emit_warp_mma_ampere,
    emit_warp_mma_volta, volta_acc_ty, EpilogueOps, MmaGeom, StoreTarget, WarpCtx,
};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, Kernel, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sym::IntExpr;

/// Fused-MLP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Batch rows (arbitrary, tiled by 128 — or by `bm` for tests).
    pub m: i64,
    /// Hidden size (`N = K ≤ 128`, the paper's fusibility condition).
    pub hidden: i64,
    /// Number of layers fused into the kernel.
    pub layers: i64,
    /// Rows per thread-block.
    pub bm: i64,
    /// Warp tile rows/cols.
    pub wm: i64,
    /// Warp tile cols.
    pub wn: i64,
}

impl MlpConfig {
    /// The paper's evaluation shape: `N = K = 128`, 128-row blocks.
    pub fn paper(m: i64, layers: i64) -> Self {
        MlpConfig { m, hidden: 128, layers, bm: 128, wm: 64, wn: 64 }
    }

    fn geom(&self) -> MmaGeom {
        MmaGeom { bm: self.bm, bn: self.hidden, wm: self.wm, wn: self.wn, k_cols: self.hidden }
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.geom().threads()
    }

    /// Grid blocks.
    pub fn blocks(&self) -> i64 {
        self.m / self.bm
    }
}

/// Builds the fused `L`-layer MLP kernel:
/// `X ← relu(X × Wₗ + biasₗ)` for `ₗ = 0..L`, activations resident in
/// shared memory.
///
/// Parameters: `X:[m,h]`, `W:[L*h,h]` (layer-major), `bias:[L*h]`,
/// `Y:[m,h]`, all fp16.
pub fn build_fused_mlp(arch: Arch, cfg: &MlpConfig) -> Kernel {
    assert!(cfg.hidden <= 128, "fusibility requires N = K <= 128 (paper footnote 2)");
    assert_eq!(cfg.m % cfg.bm, 0, "row tiling");
    assert_eq!(cfg.hidden % 16, 0, "K tiling");
    let geom = cfg.geom();

    let mut kb = KernelBuilder::new(
        format!("graphene_fused_mlp_{}l", cfg.layers),
        &[cfg.blocks()],
        &[cfg.threads()],
    );
    let x = kb.param("X", &[cfg.m, cfg.hidden], ScalarType::F16);
    let w = kb.param("W", &[cfg.layers * cfg.hidden, cfg.hidden], ScalarType::F16);
    let bias = kb.param("bias", &[cfg.layers * cfg.hidden], ScalarType::F16);
    let y = kb.param("Y", &[cfg.m, cfg.hidden], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let row0 = bid * cfg.bm;

    // Activation ping-pong buffers and the weight stage (swizzled for
    // conflict-free access). On Volta the activations live transposed
    // ([hidden, bm]) so quad-pair A fragments are vectorised loads.
    let sw = crate::common::smem_swizzle();
    let act_dims = match arch {
        Arch::Sm86 => [cfg.bm, cfg.hidden],
        Arch::Sm70 => [cfg.hidden, cfg.bm],
    };
    let xs0 =
        kb.alloc_shared("Xs0", TensorType::row_major(&act_dims, ScalarType::F16).with_swizzle(sw));
    let xs1 =
        kb.alloc_shared("Xs1", TensorType::row_major(&act_dims, ScalarType::F16).with_swizzle(sw));
    let ws = kb.alloc_shared(
        "Ws",
        TensorType::row_major(&[cfg.hidden, cfg.hidden], ScalarType::F16).with_swizzle(sw),
    );

    let ctx = WarpCtx::new(&kb, block, &geom);

    kb.comment("stage the block's activation rows once");
    match arch {
        Arch::Sm86 => stage_tile(
            &mut kb,
            arch,
            &[grid],
            block,
            x,
            xs0,
            row0.clone(),
            IntExpr::zero(),
            cfg.bm,
            cfg.hidden,
            cfg.threads(),
        ),
        Arch::Sm70 => stage_transposed(
            &mut kb,
            &[grid],
            block,
            x,
            xs0,
            row0.clone(),
            IntExpr::zero(),
            cfg.bm,
            cfg.hidden,
            cfg.threads(),
        ),
    }

    match arch {
        Arch::Sm86 => {
            let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
            let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
            let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
            let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
            let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));
            for l in 0..cfg.layers {
                kb.comment(format!("layer {l}: stage weights, GEMM, bias+relu to smem"));
                stage_tile(
                    &mut kb,
                    arch,
                    &[grid],
                    block,
                    w,
                    ws,
                    IntExpr::constant(l * cfg.hidden),
                    IntExpr::zero(),
                    cfg.hidden,
                    cfg.hidden,
                    cfg.threads(),
                );
                kb.sync();
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
                let (src, dst) = if l % 2 == 0 { (xs0, xs1) } else { (xs1, xs0) };
                emit_warp_mma_ampere(
                    &mut kb, grid, warp, &ctx, src, ws, acc, a_frags, b_frags, &geom,
                );
                let ops = EpilogueOps {
                    bias: Some((bias, IntExpr::constant(l * cfg.hidden))),
                    activation: Some(UnaryOp::Relu),
                    scale: None,
                };
                let target = if l + 1 == cfg.layers {
                    StoreTarget::Global { tensor: y, row0: row0.clone(), col0: IntExpr::zero() }
                } else {
                    StoreTarget::Shared { tensor: dst }
                };
                emit_epilogue_store_ampere(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
                kb.sync();
            }
        }
        Arch::Sm70 => {
            let qp = kb
                .thread_tile(block, &graphene_ir::atomic::quad_pair_layout())
                .expect("quad pairs");
            let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 16);
            let acc = kb.alloc_reg("acc", volta_acc_ty(mi_cnt, ni_cnt));
            let a_regs = kb.alloc_reg("areg", reg_vec(4 * mi_cnt, ScalarType::F16));
            let b_regs = kb.alloc_reg("breg", reg_vec(4 * ni_cnt, ScalarType::F16));
            for l in 0..cfg.layers {
                kb.comment(format!("layer {l}: stage weights, GEMM, bias+relu to smem"));
                stage_tile(
                    &mut kb,
                    arch,
                    &[grid],
                    block,
                    w,
                    ws,
                    IntExpr::constant(l * cfg.hidden),
                    IntExpr::zero(),
                    cfg.hidden,
                    cfg.hidden,
                    cfg.threads(),
                );
                kb.sync();
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
                let (src, dst) = if l % 2 == 0 { (xs0, xs1) } else { (xs1, xs0) };
                emit_warp_mma_volta(
                    &mut kb, grid, block, qp, &ctx, src, ws, acc, a_regs, b_regs, &geom,
                );
                let ops = EpilogueOps {
                    bias: Some((bias, IntExpr::constant(l * cfg.hidden))),
                    activation: Some(UnaryOp::Relu),
                    scale: None,
                };
                let target = if l + 1 == cfg.layers {
                    StoreTarget::Global { tensor: y, row0: row0.clone(), col0: IntExpr::zero() }
                } else {
                    StoreTarget::Shared { tensor: dst }
                };
                emit_epilogue_store_volta(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
                kb.sync();
            }
        }
    }
    // Note: the final layer stored directly to global, so no unstage step.
    let _ = unstage_tile; // (used by other fused kernels)
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{bias_add_ref, matmul_ref, relu_ref, HostTensor};
    use std::collections::HashMap;

    fn mlp_ref(x: &HostTensor, w: &[HostTensor], bias: &[Vec<f32>]) -> HostTensor {
        let mut act = x.clone();
        for (wl, bl) in w.iter().zip(bias) {
            let mut next = matmul_ref(&act, wl);
            bias_add_ref(&mut next, bl);
            relu_ref(&mut next);
            act = next;
        }
        act
    }

    fn run(arch: Arch, cfg: &MlpConfig) {
        let kernel = build_fused_mlp(arch, cfg);
        validate(&kernel, arch).expect("validates");
        let (m, h, l) = (cfg.m as usize, cfg.hidden as usize, cfg.layers as usize);
        let x = HostTensor::random(&[m, h], 31);
        let ws: Vec<HostTensor> =
            (0..l).map(|i| HostTensor::random(&[h, h], 100 + i as u64)).collect();
        // Keep activations in a healthy range: small weights.
        let ws: Vec<HostTensor> = ws
            .into_iter()
            .map(|w| {
                let scaled: Vec<f32> = w.as_slice().iter().map(|v| v * 0.2).collect();
                HostTensor::from_vec(&[h, h], scaled)
            })
            .collect();
        let biases: Vec<Vec<f32>> =
            (0..l).map(|i| (0..h).map(|j| ((i + j) % 5) as f32 * 0.05).collect()).collect();

        let mut w_flat = Vec::with_capacity(l * h * h);
        let mut b_flat = Vec::with_capacity(l * h);
        for i in 0..l {
            w_flat.extend_from_slice(ws[i].as_slice());
            b_flat.extend_from_slice(&biases[i]);
        }
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        inputs.insert(kernel.params[1], w_flat);
        inputs.insert(kernel.params[2], b_flat);
        let out = graphene_sim::execute(&kernel, arch, &inputs).expect("execute");

        let expect = mlp_ref(&x, &ws, &biases);
        let got = HostTensor::from_vec(&[m, h], out.globals[&kernel.params[3]].clone());
        got.assert_close(&expect, 2e-3);
    }

    #[test]
    fn fused_mlp_three_layers_ampere() {
        let cfg = MlpConfig { m: 32, hidden: 32, layers: 3, bm: 32, wm: 32, wn: 32 };
        run(Arch::Sm86, &cfg);
    }

    #[test]
    fn fused_mlp_three_layers_volta() {
        let cfg = MlpConfig { m: 32, hidden: 32, layers: 3, bm: 32, wm: 32, wn: 32 };
        run(Arch::Sm70, &cfg);
    }

    #[test]
    fn fused_mlp_single_layer_matches_gemm_epilogue() {
        let cfg = MlpConfig { m: 32, hidden: 32, layers: 1, bm: 32, wm: 32, wn: 32 };
        run(Arch::Sm86, &cfg);
    }

    #[test]
    fn paper_config_shared_memory_fits() {
        let cfg = MlpConfig::paper(5120, 20);
        let kernel = build_fused_mlp(Arch::Sm86, &cfg);
        // 3 x 128x128 fp16 buffers = 96 KiB.
        assert_eq!(kernel.shared_bytes(), 3 * 128 * 128 * 2);
        validate(&kernel, Arch::Sm86).expect("paper config validates");
    }
}
