//! Temporary skeleton while kernels are being built.
#![allow(missing_docs)]
pub mod catalog;
pub mod common;
pub mod exec_lower;
pub mod fmha;
pub mod gemm;
pub mod graph;
pub mod layernorm;
pub mod lstm;
pub mod mlp;
pub mod mma;
pub mod pointwise;
pub mod reference;
pub mod softmax;
pub mod transformer;
