//! A miniature ML-compiler front-end over the Graphene kernels.
//!
//! The paper positions Graphene as a *target* for deep-learning
//! compilers: "we envision Graphene to be integrated into existing deep
//! learning compilers like XLA or Triton" (§5.4), and observes that
//! "fused kernels should be preferred over cumulative library
//! invocations (which often is the default lowering in deep learning
//! compilers) if problem sizes permit" (§6).
//!
//! This module demonstrates that integration: a small tensor-op graph,
//! a *default* lowering (one library kernel per node — the baseline the
//! paper's figures compare against), and a *fusing* lowering that
//! pattern-matches the paper's kernels:
//!
//! - `MatMul (+ BiasAdd) (+ ReLU/GeLU)` → the GEMM-epilogue kernel (Fig 10),
//! - chains of square `MatMul + BiasAdd + ReLU` layers with hidden ≤ 128
//!   → the fused MLP kernel (Fig 11),
//! - `Attention` → the fused FMHA kernel (Fig 14),
//! - `Layernorm` → the fused Layernorm kernel (Fig 13).

use crate::fmha::FmhaConfig;
use crate::gemm::{build_gemm, Epilogue, GemmConfig};
use crate::layernorm::{build_layernorm, LayernormConfig};
use crate::mlp::{build_fused_mlp, MlpConfig};
use crate::reference::{
    cublas_gemm, cudnn_pointwise, pytorch_layernorm, unfused_fmha, LayernormImpl, LibraryKernel,
};
use graphene_ir::{Arch, Kernel, UnaryOp};
use graphene_sim::{analyze, machine_for, time_kernel, MachineDesc};

/// A tensor operation in the front-end graph. Activations are 2-D
/// `[rows, cols]`; parameter tensors (weights, biases) are implicit.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `Y[rows,n] = X[rows,k] × W[k,n]`.
    MatMul {
        /// Output columns.
        n: i64,
    },
    /// `Y = X + bias` (row broadcast).
    BiasAdd,
    /// `Y = act(X)`.
    Activation(UnaryOp),
    /// Row-wise layernorm.
    Layernorm,
    /// Multi-head self-attention over `[rows, hidden]` activations.
    Attention {
        /// Attention heads (hidden must divide by this).
        heads: i64,
        /// Sequence length (rows must divide by this).
        seq: i64,
    },
}

/// A linear operator graph (a chain — the shape of every workload in the
/// paper's evaluation).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Input activation rows.
    pub rows: i64,
    /// Input activation columns.
    pub cols: i64,
    /// The operator chain.
    pub ops: Vec<Op>,
}

impl Graph {
    /// Creates a graph over `[rows, cols]` activations.
    pub fn new(rows: i64, cols: i64) -> Self {
        Graph { rows, cols, ops: Vec::new() }
    }

    /// Appends an op (builder style).
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// The activation width after each op (and validation).
    ///
    /// # Errors
    ///
    /// Returns a description of the first ill-formed op.
    pub fn infer_shapes(&self) -> Result<Vec<(i64, i64)>, String> {
        let mut shapes = Vec::with_capacity(self.ops.len());
        let (rows, mut cols) = (self.rows, self.cols);
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::MatMul { n } => {
                    if *n <= 0 {
                        return Err(format!("op {i}: MatMul with non-positive n"));
                    }
                    cols = *n;
                }
                Op::BiasAdd | Op::Activation(_) | Op::Layernorm => {}
                Op::Attention { heads, seq } => {
                    if cols % heads != 0 {
                        return Err(format!(
                            "op {i}: hidden {cols} not divisible by {heads} heads"
                        ));
                    }
                    if rows % seq != 0 {
                        return Err(format!("op {i}: rows {rows} not divisible by seq {seq}"));
                    }
                }
            }
            shapes.push((rows, cols));
        }
        Ok(shapes)
    }
}

/// One kernel of a lowered plan.
#[derive(Debug)]
pub enum Planned {
    /// A Graphene kernel (with its analysed launch grid).
    Graphene(Box<Kernel>),
    /// A modelled library kernel.
    Library(LibraryKernel),
}

impl Planned {
    /// A short description for reports.
    pub fn describe(&self) -> String {
        match self {
            Planned::Graphene(k) => format!("graphene:{}", k.name),
            Planned::Library(l) => format!("library:{}", l.name),
        }
    }

    /// Simulated execution time on a machine.
    pub fn time_s(&self, arch: Arch, machine: &MachineDesc) -> f64 {
        match self {
            Planned::Graphene(k) => {
                let c = analyze(k, arch).expect("planned kernel analyzes");
                time_kernel(&c, machine, k.grid_size()).time_s
            }
            Planned::Library(l) => l.profile(machine).time_s,
        }
    }
}

/// A lowered execution plan.
#[derive(Debug)]
pub struct Plan {
    /// Kernels in launch order.
    pub kernels: Vec<Planned>,
}

impl Plan {
    /// Total simulated time.
    pub fn time_s(&self, arch: Arch) -> f64 {
        let machine = machine_for(arch);
        self.kernels.iter().map(|k| k.time_s(arch, machine)).sum()
    }

    /// Kernel count (launches).
    pub fn launches(&self) -> usize {
        self.kernels.len()
    }
}

/// The *default* lowering: one library kernel per graph node — the
/// baseline strategy the paper's evaluation compares against.
///
/// # Panics
///
/// Panics if the graph is ill-formed (validate with
/// [`Graph::infer_shapes`] first).
pub fn lower_unfused(graph: &Graph) -> Plan {
    let shapes = graph.infer_shapes().expect("well-formed graph");
    let mut kernels = Vec::new();
    let mut cols = graph.cols;
    for (op, &(rows, out_cols)) in graph.ops.iter().zip(&shapes) {
        match op {
            Op::MatMul { n } => kernels.push(Planned::Library(cublas_gemm(rows, *n, cols))),
            Op::BiasAdd => {
                kernels.push(Planned::Library(cudnn_pointwise(rows, cols, 2, "bias_add")))
            }
            Op::Activation(a) => kernels.push(Planned::Library(cudnn_pointwise(
                rows,
                cols,
                1,
                match a {
                    UnaryOp::Relu => "relu",
                    UnaryOp::Gelu => "gelu",
                    _ => "activation",
                },
            ))),
            Op::Layernorm => {
                for k in pytorch_layernorm(rows, cols, LayernormImpl::Fused) {
                    kernels.push(Planned::Library(k));
                }
            }
            Op::Attention { heads, seq } => {
                let d = cols / heads;
                let instances = (rows / seq) * heads;
                for k in unfused_fmha(instances, *seq, d) {
                    kernels.push(Planned::Library(k));
                }
            }
        }
        cols = out_cols;
    }
    Plan { kernels }
}

/// The *fusing* lowering: pattern-matches the paper's fused kernels and
/// falls back to the library for anything unmatched.
///
/// # Panics
///
/// Panics if the graph is ill-formed.
pub fn lower_fused(graph: &Graph, arch: Arch) -> Plan {
    graph.infer_shapes().expect("well-formed graph");
    let mut kernels = Vec::new();
    let mut i = 0usize;
    let mut cols = graph.cols;
    let rows = graph.rows;
    let ops = &graph.ops;

    while i < ops.len() {
        // Pattern: N >= 2 consecutive square MLP layers, hidden <= 128,
        // on Ampere-or-Volta -> the fused multi-layer MLP kernel.
        let mlp_layers = count_mlp_layers(ops, i, cols);
        if mlp_layers >= 2 && cols <= 128 && rows % 128 == 0 && cols % 16 == 0 {
            let cfg =
                MlpConfig { m: rows, hidden: cols, layers: mlp_layers, bm: 128, wm: 64, wn: 64 };
            kernels.push(Planned::Graphene(Box::new(build_fused_mlp(arch, &cfg))));
            i += 3 * mlp_layers as usize;
            continue;
        }
        match &ops[i] {
            Op::MatMul { n } => {
                // Greedily absorb BiasAdd / activation into the epilogue.
                let mut epilogue = Epilogue::None;
                let mut consumed = 1;
                if matches!(ops.get(i + 1), Some(Op::BiasAdd)) {
                    epilogue = Epilogue::Bias;
                    consumed = 2;
                    match ops.get(i + 2) {
                        Some(Op::Activation(UnaryOp::Relu)) => {
                            epilogue = Epilogue::BiasRelu;
                            consumed = 3;
                        }
                        Some(Op::Activation(UnaryOp::Gelu)) => {
                            epilogue = Epilogue::BiasGelu;
                            consumed = 3;
                        }
                        _ => {}
                    }
                } else if matches!(ops.get(i + 1), Some(Op::Activation(UnaryOp::Relu))) {
                    epilogue = Epilogue::Relu;
                    consumed = 2;
                }
                if rows % 128 == 0 && n % 128 == 0 && cols % 32 == 0 {
                    let cfg = GemmConfig::cublas_like(rows, *n, cols);
                    kernels.push(Planned::Graphene(Box::new(build_gemm(arch, &cfg, epilogue))));
                } else {
                    // Shapes our schedule doesn't tile: library fallback.
                    kernels.push(Planned::Library(cublas_gemm(rows, *n, cols)));
                    consumed = 1;
                }
                cols = *n;
                i += consumed;
            }
            Op::BiasAdd => {
                kernels.push(Planned::Library(cudnn_pointwise(rows, cols, 2, "bias_add")));
                i += 1;
            }
            Op::Activation(_) => {
                kernels.push(Planned::Library(cudnn_pointwise(rows, cols, 1, "activation")));
                i += 1;
            }
            Op::Layernorm => {
                if cols % 256 == 0 && rows % 4 == 0 {
                    let cfg = LayernormConfig::new(rows, cols);
                    kernels.push(Planned::Graphene(Box::new(build_layernorm(arch, &cfg))));
                } else {
                    for k in pytorch_layernorm(rows, cols, LayernormImpl::Fused) {
                        kernels.push(Planned::Library(k));
                    }
                }
                i += 1;
            }
            Op::Attention { heads, seq } => {
                let d = cols / heads;
                let instances = (rows / seq) * heads;
                if arch == Arch::Sm86 && seq % 128 == 0 && d % 16 == 0 {
                    let cfg = FmhaConfig { heads: instances, seq: *seq, d, bq: 128, wm: 32 };
                    kernels.push(Planned::Graphene(Box::new(crate::fmha::build_fused_fmha(
                        arch, &cfg,
                    ))));
                } else {
                    for k in unfused_fmha(instances, *seq, d) {
                        kernels.push(Planned::Library(k));
                    }
                }
                i += 1;
            }
        }
    }
    Plan { kernels }
}

/// A BERT-style transformer encoder stack as a front-end graph:
/// `layers` repetitions of attention (with QKV and output
/// projections), layernorm, and a GeLU FFN — the paper's Figure 15
/// workload shape, sized by the caller.
///
/// Activations are `[batch*seq, hidden]`; the FFN expands to `ffn`
/// columns and projects back.
pub fn encoder_graph(
    layers: i64,
    batch: i64,
    seq: i64,
    hidden: i64,
    heads: i64,
    ffn: i64,
) -> Graph {
    let mut g = Graph::new(batch * seq, hidden);
    for _ in 0..layers {
        g = g
            .op(Op::MatMul { n: hidden }) // QKV projection (simplified to one)
            .op(Op::Attention { heads, seq })
            .op(Op::MatMul { n: hidden }) // attention output projection
            .op(Op::BiasAdd)
            .op(Op::Layernorm)
            .op(Op::MatMul { n: ffn })
            .op(Op::BiasAdd)
            .op(Op::Activation(UnaryOp::Gelu))
            .op(Op::MatMul { n: hidden })
            .op(Op::BiasAdd)
            .op(Op::Layernorm);
    }
    g
}

/// Counts consecutive `MatMul(h->h) + BiasAdd + ReLU` triples starting
/// at `i` where the hidden size stays `h`.
fn count_mlp_layers(ops: &[Op], mut i: usize, h: i64) -> i64 {
    let mut layers = 0;
    loop {
        match (ops.get(i), ops.get(i + 1), ops.get(i + 2)) {
            (Some(Op::MatMul { n }), Some(Op::BiasAdd), Some(Op::Activation(UnaryOp::Relu)))
                if *n == h =>
            {
                layers += 1;
                i += 3;
            }
            _ => return layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_graph(rows: i64, h: i64, layers: i64) -> Graph {
        let mut g = Graph::new(rows, h);
        for _ in 0..layers {
            g = g.op(Op::MatMul { n: h }).op(Op::BiasAdd).op(Op::Activation(UnaryOp::Relu));
        }
        g
    }

    #[test]
    fn shape_inference_and_validation() {
        let g = Graph::new(128, 768)
            .op(Op::MatMul { n: 3072 })
            .op(Op::Activation(UnaryOp::Gelu))
            .op(Op::MatMul { n: 768 })
            .op(Op::Layernorm);
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes, vec![(128, 3072), (128, 3072), (128, 768), (128, 768)]);

        let bad = Graph::new(100, 768).op(Op::Attention { heads: 12, seq: 384 });
        assert!(bad.infer_shapes().unwrap_err().contains("not divisible by seq"));
    }

    #[test]
    fn infer_shapes_rejects_non_positive_matmul() {
        for n in [0, -64] {
            let g = Graph::new(128, 128).op(Op::MatMul { n });
            let err = g.infer_shapes().unwrap_err();
            assert!(err.contains("op 0: MatMul with non-positive n"), "{err}");
        }
        // The index names the offending op, not the graph start.
        let g = Graph::new(128, 128).op(Op::BiasAdd).op(Op::MatMul { n: -1 });
        assert!(g.infer_shapes().unwrap_err().starts_with("op 1:"));
    }

    #[test]
    fn infer_shapes_rejects_indivisible_heads() {
        let g = Graph::new(384, 100).op(Op::Attention { heads: 12, seq: 384 });
        let err = g.infer_shapes().unwrap_err();
        assert!(err.contains("hidden 100 not divisible by 12 heads"), "{err}");
        // Divisibility is checked against the *current* width: after a
        // projection to 96 cols, 12 heads become legal.
        let g =
            Graph::new(384, 100).op(Op::MatMul { n: 96 }).op(Op::Attention { heads: 12, seq: 384 });
        assert!(g.infer_shapes().is_ok());
    }

    #[test]
    fn encoder_graph_shapes_are_well_formed() {
        let g = encoder_graph(2, 4, 128, 256, 4, 1024);
        assert_eq!(g.ops.len(), 22);
        let shapes = g.infer_shapes().expect("encoder validates");
        assert_eq!(shapes.last(), Some(&(4 * 128, 256)));
        // FFN expansion shows up mid-layer.
        assert!(shapes.iter().any(|&(_, c)| c == 1024));
    }

    #[test]
    fn mlp_chain_lowers_to_one_fused_kernel() {
        let g = mlp_graph(4096, 128, 6);
        let fused = lower_fused(&g, Arch::Sm86);
        assert_eq!(
            fused.launches(),
            1,
            "{:?}",
            fused.kernels.iter().map(Planned::describe).collect::<Vec<_>>()
        );
        assert!(fused.kernels[0].describe().contains("fused_mlp_6l"));
        let unfused = lower_unfused(&g);
        assert_eq!(unfused.launches(), 18); // 3 kernels per layer
    }

    #[test]
    fn fused_plan_is_faster() {
        let g = mlp_graph(4096, 128, 8);
        let fused = lower_fused(&g, Arch::Sm86).time_s(Arch::Sm86);
        let unfused = lower_unfused(&g).time_s(Arch::Sm86);
        assert!(unfused > fused * 2.0, "fusion should win clearly: {unfused} vs {fused}");
    }

    #[test]
    fn gemm_epilogue_absorption() {
        let g = Graph::new(1024, 1024)
            .op(Op::MatMul { n: 1024 })
            .op(Op::BiasAdd)
            .op(Op::Activation(UnaryOp::Gelu));
        let plan = lower_fused(&g, Arch::Sm86);
        assert_eq!(plan.launches(), 1);
        assert!(plan.kernels[0].describe().contains("bias_gelu"));
    }

    #[test]
    fn attention_lowers_to_fmha_on_ampere_library_on_volta() {
        let g = Graph::new(32 * 384, 768).op(Op::Attention { heads: 12, seq: 384 });
        let amp = lower_fused(&g, Arch::Sm86);
        assert_eq!(amp.launches(), 1);
        assert!(amp.kernels[0].describe().contains("fmha"));
        let volta = lower_fused(&g, Arch::Sm70);
        assert_eq!(volta.launches(), 3, "unfused attention on Volta");
    }

    #[test]
    fn odd_shapes_fall_back_to_library() {
        let g = Graph::new(100, 100).op(Op::MatMul { n: 100 });
        let plan = lower_fused(&g, Arch::Sm86);
        assert_eq!(plan.launches(), 1);
        assert!(plan.kernels[0].describe().contains("library:cublas"));
    }

    #[test]
    fn transformer_layer_lowering() {
        // A full encoder layer: attention + projections + FFN + norms.
        let g = Graph::new(32 * 384, 768)
            .op(Op::MatMul { n: 768 }) // QKV projection (simplified to one)
            .op(Op::Attention { heads: 12, seq: 384 })
            .op(Op::MatMul { n: 768 })
            .op(Op::BiasAdd)
            .op(Op::Layernorm)
            .op(Op::MatMul { n: 3072 })
            .op(Op::BiasAdd)
            .op(Op::Activation(UnaryOp::Gelu))
            .op(Op::MatMul { n: 768 })
            .op(Op::BiasAdd)
            .op(Op::Layernorm);
        let fused = lower_fused(&g, Arch::Sm86);
        let unfused = lower_unfused(&g);
        assert!(fused.launches() < unfused.launches());
        assert!(fused.time_s(Arch::Sm86) < unfused.time_s(Arch::Sm86));
    }
}
