//! Library baselines: analytical models of the kernels the paper
//! compares against.
//!
//! The paper's baselines — cuBLAS, cuBLASLt, cuDNN, the PyTorch
//! Layernorm family, and NVIDIA's MLPerf BERT FMHA kernels — are closed
//! binaries. We model each as the counters (FLOPs per pipe, DRAM/L2/
//! shared-memory traffic, launches) of the implementation strategy it is
//! known to use, evaluated on the same machine model as the Graphene
//! kernels. Speedup *shapes* then come from structural differences
//! (extra global-memory round-trips, extra launches, bank conflicts),
//! not from tuned constants.

use graphene_sim::{time_kernel, Counters, KernelProfile, MachineDesc};

/// An analytically modelled library kernel.
#[derive(Debug, Clone)]
pub struct LibraryKernel {
    /// Kernel label (for reports).
    pub name: String,
    /// Modelled execution counters.
    pub counters: Counters,
    /// Launched blocks (0 = skip wave quantisation).
    pub blocks: i64,
}

impl LibraryKernel {
    /// Times this kernel on a machine.
    pub fn profile(&self, m: &MachineDesc) -> KernelProfile {
        time_kernel(&self.counters, m, self.blocks)
    }
}

/// Bytes of an `r × c` fp16 tensor.
fn f16(r: i64, c: i64) -> u64 {
    (r * c) as u64 * 2
}

/// Ceiling division for positive i64 (i64::div_ceil is unstable).
fn div_ceil(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// A cuBLAS-class fp16 tensor-core GEMM (`C = A×B`) with 128×128×32
/// thread-block tiles: A re-read once per column of blocks through L2,
/// B once per row of blocks; unique DRAM footprint read once.
pub fn cublas_gemm(m: i64, n: i64, k: i64) -> LibraryKernel {
    let (bm, bn) = (128.min(m), 128.min(n));
    let (grid_m, grid_n) = (div_ceil(m, bm), div_ceil(n, bn));
    let l2_read = f16(m, k) * grid_n as u64 + f16(k, n) * grid_m as u64;
    let smem_bytes = l2_read; // staged once
    LibraryKernel {
        name: format!("cublas_gemm_{m}x{n}x{k}"),
        counters: Counters {
            flops_tc: 2 * (m * n * k) as u64,
            unique_global_read_bytes: f16(m, k) + f16(k, n),
            unique_global_write_bytes: f16(m, n),
            global_read_bytes: l2_read,
            global_write_bytes: f16(m, n),
            smem_write_bytes: smem_bytes,
            smem_read_bytes: smem_bytes * 2, // fragment re-reads
            smem_accesses: smem_bytes * 3 / 128,
            smem_transactions: smem_bytes * 3 / 128, // conflict-free
            ..Default::default()
        },
        blocks: grid_m * grid_n,
    }
}

/// A cuBLASLt fused GEMM + pointwise epilogue (bias and/or activation,
/// paper Figure 10): the GEMM plus a bias read per block row and a few
/// FMA-pipe pointwise FLOPs folded into the store.
pub fn cublaslt_gemm_epilogue(m: i64, n: i64, k: i64, bias: bool, act: bool) -> LibraryKernel {
    let mut base = cublas_gemm(m, n, k);
    base.name = format!(
        "cublaslt_gemm_{m}x{n}x{k}{}{}",
        if bias { "_bias" } else { "" },
        if act { "_act" } else { "" }
    );
    if bias {
        let grid_m = div_ceil(m, 128).max(1) as u64;
        base.counters.global_read_bytes += f16(1, n) * grid_m;
        base.counters.unique_global_read_bytes += f16(1, n);
        base.counters.flops_fma += (m * n) as u64;
    }
    if act {
        base.counters.flops_fma += (m * n) as u64;
    }
    base
}

/// A cuBLASLt GEMM that additionally *accumulates into* an existing `C`
/// (reads C once more — the optimised 2-kernel LSTM lowering of
/// Figure 12).
pub fn cublaslt_gemm_accumulate(m: i64, n: i64, k: i64, bias: bool, act: bool) -> LibraryKernel {
    let mut base = cublaslt_gemm_epilogue(m, n, k, bias, act);
    base.name += "_acc";
    base.counters.global_read_bytes += f16(m, n);
    base.counters.unique_global_read_bytes += f16(m, n);
    base.counters.flops_fma += (m * n) as u64;
    base
}

/// A cuDNN-style standalone pointwise kernel over an `m × n` fp16
/// tensor: `out = op(in₁, ..)` — reads `inputs` tensors, writes one.
pub fn cudnn_pointwise(m: i64, n: i64, inputs: u64, name: &str) -> LibraryKernel {
    LibraryKernel {
        name: format!("cudnn_{name}_{m}x{n}"),
        counters: Counters {
            global_read_bytes: f16(m, n) * inputs,
            global_write_bytes: f16(m, n),
            unique_global_read_bytes: f16(m, n) * inputs,
            unique_global_write_bytes: f16(m, n),
            flops_fma: (m * n) as u64,
            ..Default::default()
        },
        blocks: (m * n / 1024).max(1),
    }
}

/// PyTorch Layernorm implementation strategies (paper Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayernormImpl {
    /// Eager: separate reduction and pointwise kernels — the activation
    /// is read three times and three kernels launch.
    Eager,
    /// TorchScript JIT: pointwise fused, stats separate — two kernels,
    /// two activation reads.
    Jit,
    /// The built-in fused CUDA kernel: one launch, two in-kernel passes.
    Fused,
    /// NVIDIA Apex: one launch, single Welford pass with vectorised
    /// loads.
    Apex,
}

impl LayernormImpl {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            LayernormImpl::Eager => "PyTorch Eager",
            LayernormImpl::Jit => "PyTorch JIT",
            LayernormImpl::Fused => "PyTorch Fused",
            LayernormImpl::Apex => "NVIDIA Apex",
        }
    }
}

/// The kernel sequence of a PyTorch-style Layernorm over
/// `rows × hidden`.
pub fn pytorch_layernorm(rows: i64, hidden: i64, imp: LayernormImpl) -> Vec<LibraryKernel> {
    let x = f16(rows, hidden);
    let params = f16(2, hidden);
    let stats = (rows * 4) as u64 * 2; // fp32 mean + rstd per row
    let flops = (rows * hidden) as u64;
    let blocks = div_ceil(rows, 4);
    let k = |name: &str, reads: u64, writes: u64, f: u64| LibraryKernel {
        name: name.to_string(),
        counters: Counters {
            global_read_bytes: reads,
            global_write_bytes: writes,
            unique_global_read_bytes: reads,
            unique_global_write_bytes: writes,
            flops_fma: f,
            ..Default::default()
        },
        blocks,
    };
    match imp {
        LayernormImpl::Eager => vec![
            k("eager_mean", x, stats, flops),
            k("eager_var", x + stats, stats, 2 * flops),
            k("eager_normalize", x + 2 * stats + params, x, 4 * flops),
        ],
        LayernormImpl::Jit => vec![
            k("jit_stats", x, 2 * stats, 3 * flops),
            k("jit_normalize", x + 2 * stats + params, x, 4 * flops),
        ],
        LayernormImpl::Fused => vec![k("fused_layernorm", 2 * x + params, x, 7 * flops)],
        LayernormImpl::Apex => vec![k("apex_layernorm", x + params, x, 8 * flops)],
    }
}

/// The straightforward softmax CUDA kernel of the paper's FMHA baseline:
/// reads the scores twice (max+sum pass, normalise pass), writes once.
pub fn naive_softmax(rows: i64, cols: i64) -> LibraryKernel {
    let s = f16(rows, cols);
    LibraryKernel {
        name: format!("naive_softmax_{rows}x{cols}"),
        counters: Counters {
            global_read_bytes: 2 * s,
            global_write_bytes: s,
            unique_global_read_bytes: s,
            unique_global_write_bytes: s,
            flops_fma: 4 * (rows * cols) as u64,
            ..Default::default()
        },
        blocks: div_ceil(rows, 4),
    }
}

/// The paper's unfused FMHA baseline: "the cumulative execution time for
/// two cuBLAS GEMM invocations and a custom softmax CUDA kernel" —
/// the `heads` batched instances share each launch.
pub fn unfused_fmha(heads: i64, seq: i64, d: i64) -> Vec<LibraryKernel> {
    let mut qk = cublas_gemm(seq, seq, d);
    scale_batched(&mut qk, heads);
    qk.name = "cublas_batched_qk".into();
    let mut sm = naive_softmax(heads * seq, seq);
    sm.name = "custom_softmax".into();
    let mut pv = cublas_gemm(seq, d, seq);
    scale_batched(&mut pv, heads);
    pv.name = "cublas_batched_pv".into();
    vec![qk, sm, pv]
}

/// Scales a modelled GEMM to a batch of `b` independent instances in one
/// launch.
fn scale_batched(kernel: &mut LibraryKernel, b: i64) {
    let c = &mut kernel.counters;
    *c = Counters {
        unique_global_read_bytes: c.unique_global_read_bytes * b as u64,
        unique_global_write_bytes: c.unique_global_write_bytes * b as u64,
        ..c.scaled(b as u64)
    };
    kernel.blocks *= b;
}

/// NVIDIA's MLPerf BERT FMHA kernel (TensorRT): the same fused
/// register-resident strategy as the Graphene kernel, but with the
/// *unswizzled* shared-memory layout the paper credits its small win to:
/// the transposed-operand accesses suffer 2-way bank conflicts.
pub fn mlperf_fmha(heads: i64, seq: i64, d: i64) -> LibraryKernel {
    let q = f16(heads * seq, d);
    let flops = 2 * (heads * seq * seq * d) as u64 * 2; // two GEMMs
    let softmax_flops = 5 * (heads * seq * seq) as u64; // max/exp/sum/div
    let smem = q * 2 * 3; // Q, K, V staged + re-read
    LibraryKernel {
        name: "mlperf_fmha".into(),
        counters: Counters {
            flops_tc: flops,
            flops_fma: softmax_flops,
            unique_global_read_bytes: 3 * q,
            unique_global_write_bytes: q,
            global_read_bytes: 3 * q * (seq / 128).max(1) as u64,
            global_write_bytes: q,
            smem_write_bytes: smem,
            smem_read_bytes: 2 * smem,
            smem_accesses: smem * 3 / 128,
            smem_transactions: smem * 3 / 128 * 2, // 2-way conflicts
            ..Default::default()
        },
        blocks: heads * (seq / 128).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_sim::{AMPERE_A6000, VOLTA_V100};

    #[test]
    fn cublas_gemm_is_compute_bound_at_paper_sizes() {
        let k = cublas_gemm(5376, 5376, 2048);
        let p = k.profile(&AMPERE_A6000);
        assert!(p.tensor_time_s >= p.dram_time_s, "{p:?}");
        assert!(p.compute_util > 0.8, "{}", p.compute_util);
        let k = cublas_gemm(5120, 5120, 2048);
        let p = k.profile(&VOLTA_V100);
        assert!(p.compute_util > 0.8, "{}", p.compute_util);
    }

    #[test]
    fn epilogue_fusion_adds_little() {
        let plain = cublas_gemm(4096, 4096, 1024).profile(&AMPERE_A6000);
        let fused = cublaslt_gemm_epilogue(4096, 4096, 1024, true, true).profile(&AMPERE_A6000);
        assert!(fused.time_s < plain.time_s * 1.1);
    }

    #[test]
    fn layernorm_impls_are_ordered() {
        let m = &AMPERE_A6000;
        let t = |imp| {
            graphene_sim::time_sequence(
                &pytorch_layernorm(16384, 1024, imp)
                    .iter()
                    .map(|k| k.profile(m))
                    .collect::<Vec<_>>(),
            )
        };
        let (eager, jit, fused, apex) = (
            t(LayernormImpl::Eager),
            t(LayernormImpl::Jit),
            t(LayernormImpl::Fused),
            t(LayernormImpl::Apex),
        );
        assert!(eager > jit, "{eager} vs {jit}");
        assert!(jit > fused, "{jit} vs {fused}");
        assert!(fused > apex, "{fused} vs {apex}");
    }

    #[test]
    fn unfused_fmha_has_three_launches() {
        let seq = unfused_fmha(512, 384, 64);
        assert_eq!(seq.len(), 3);
        // The softmax kernel moves the full S matrix through DRAM.
        assert!(seq[1].counters.dram_bytes() > 2 * 512 * 384 * 384);
    }

    #[test]
    fn batched_scaling_multiplies_work() {
        let one = cublas_gemm(384, 384, 64);
        let mut many = cublas_gemm(384, 384, 64);
        scale_batched(&mut many, 8);
        assert_eq!(many.counters.flops_tc, 8 * one.counters.flops_tc);
        assert_eq!(many.blocks, 8 * one.blocks);
    }
}
