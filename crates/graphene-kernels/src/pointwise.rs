//! Standalone pointwise and data-movement kernels for the *default*
//! graph lowering.
//!
//! The fused lowering absorbs bias-add and activations into GEMM
//! epilogues; the default lowering launches one kernel per graph node,
//! so it needs real executable kernels for the nodes the library
//! models only *time* (`cudnn_pointwise` has no IR). These builders
//! fill that gap with the simplest competent schedule: 128 threads per
//! block, one 8-wide vectorised load/store per thread (1024 scalars
//! per block), grid sized to cover the tensor.
//!
//! Bit-identicality with the fused epilogue falls out of the
//! simulator's f32-everywhere value model: the epilogue computes
//! `act(acc + bias)` in f32, and the unfused chain stores `acc`,
//! reloads the identical f32 bits, and applies the same `Add` and
//! activation specs — same operations on same values, same bits.
//!
//! [`build_head_split`] / [`build_head_merge`] reshape `[batch*seq,
//! hidden]` activations to and from the `[batch*heads*seq, d]`
//! head-major layout the fused FMHA kernel expects — pure global→
//! global vectorised moves, the transpose-free layout change a real
//! stack does with a strided copy kernel.

use crate::common::reg_vec;
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::{BinaryOp, Kernel, ScalarType, UnaryOp};

/// Threads per block for all pointwise kernels.
const THREADS: i64 = 128;
/// Scalars covered per block (8-wide vectors per thread).
const PER_BLOCK: i64 = THREADS * 8;

fn check_grid(total: i64, cols: i64) -> i64 {
    assert_eq!(cols % 8, 0, "cols must be a multiple of 8 for vectorised access");
    assert_eq!(total % PER_BLOCK, 0, "tensor scalars must be a multiple of {PER_BLOCK}");
    total / PER_BLOCK
}

/// Builds `Y[rows,cols] = X[rows,cols] + bias[cols]` (row broadcast).
///
/// Parameter order matches the GEMM epilogue's operand order
/// (activation first, bias second), so the `Add` spec sees the same
/// operand sequence the fused kernel uses.
pub fn build_bias_add(rows: i64, cols: i64) -> Kernel {
    let blocks = check_grid(rows * cols, cols);
    let mut kb = KernelBuilder::new("graphene_bias_add", &[blocks], &[THREADS]);
    let x = kb.param("X", &[rows, cols], ScalarType::F16);
    let bias = kb.param("bias", &[cols], ScalarType::F16);
    let y = kb.param("Y", &[rows, cols], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let v = bid * THREADS + tid; // this thread's vec8 index
    let cols8 = cols / 8;
    let row = v.clone() / cols8;
    let col8 = v % cols8;

    let x8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    let b8 = kb.tile_c(bias, &[Some(8)]).expect("bias vectors");
    let y8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    let xr = kb.alloc_reg("x8", reg_vec(8, ScalarType::F32));
    let br = kb.alloc_reg("b8", reg_vec(8, ScalarType::F32));

    let src = kb.index(x8, &[row.clone(), col8.clone()]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![xr]);
    let bsrc = kb.index(b8, std::slice::from_ref(&col8));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![bsrc], vec![br]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::BinaryPointwise(BinaryOp::Add), vec![grid, ts], vec![xr, br], vec![xr]);
    let dst = kb.index(y8, &[row, col8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xr], vec![dst]);

    kb.build()
}

/// Builds `Y[rows,cols] = op(X[rows,cols])` elementwise.
///
/// The op is folded into the kernel name (`graphene_unary_relu`, …) so
/// two different activations never share a trace-cache key.
pub fn build_unary(rows: i64, cols: i64, op: UnaryOp) -> Kernel {
    let blocks = check_grid(rows * cols, cols);
    let name = match op {
        UnaryOp::Relu => "graphene_unary_relu".to_string(),
        UnaryOp::Gelu => "graphene_unary_gelu".to_string(),
        other => format!("graphene_unary_{}", format!("{other:?}").to_lowercase()),
    };
    let mut kb = KernelBuilder::new(&name, &[blocks], &[THREADS]);
    let x = kb.param("X", &[rows, cols], ScalarType::F16);
    let y = kb.param("Y", &[rows, cols], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let v = bid * THREADS + tid;
    let cols8 = cols / 8;
    let row = v.clone() / cols8;
    let col8 = v % cols8;

    let x8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    let y8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    let xr = kb.alloc_reg("x8", reg_vec(8, ScalarType::F32));

    let src = kb.index(x8, &[row.clone(), col8.clone()]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![xr]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::UnaryPointwise(op), vec![grid, ts], vec![xr], vec![xr]);
    let dst = kb.index(y8, &[row, col8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xr], vec![dst]);

    kb.build()
}

/// Builds the `[batch*seq, hidden] → [batch*heads*seq, d]` head-major
/// reshape feeding the fused FMHA kernel (`d = hidden/heads`).
///
/// Output row `(b*heads + h)*seq + s` column `j` reads input row
/// `b*seq + s` column `h*d + j` — a strided gather expressed as one
/// vectorised global→global move per thread.
pub fn build_head_split(rows: i64, cols: i64, heads: i64, seq: i64) -> Kernel {
    assert_eq!(cols % heads, 0, "hidden must divide by heads");
    assert_eq!(rows % seq, 0, "rows must divide by seq");
    let d = cols / heads;
    assert_eq!(d % 8, 0, "head dim must be a multiple of 8");
    let blocks = check_grid(rows * cols, d);
    let mut kb = KernelBuilder::new("graphene_head_split", &[blocks], &[THREADS]);
    let x = kb.param("X", &[rows, cols], ScalarType::F16);
    let y = kb.param("Y", &[rows / seq * heads * seq, d], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let v = bid * THREADS + tid; // vec8 index over the *output*
    let d8 = d / 8;
    let r = v.clone() / d8;
    let j8 = v % d8;
    let s = r.clone() % seq;
    let bh = r.clone() / seq;
    let h = bh.clone() % heads;
    let b = bh / heads;

    let x8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    let y8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    let xr = kb.alloc_reg("x8", reg_vec(8, ScalarType::F32));
    let src = kb.index(x8, &[b * seq + s, h * d8 + j8.clone()]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![xr]);
    let dst = kb.index(y8, &[r, j8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xr], vec![dst]);

    kb.build()
}

/// Builds the inverse reshape `[batch*heads*seq, d] → [batch*seq,
/// hidden]` gathering FMHA output back to row-major activations.
pub fn build_head_merge(rows: i64, cols: i64, heads: i64, seq: i64) -> Kernel {
    assert_eq!(cols % heads, 0, "hidden must divide by heads");
    assert_eq!(rows % seq, 0, "rows must divide by seq");
    let d = cols / heads;
    assert_eq!(d % 8, 0, "head dim must be a multiple of 8");
    let blocks = check_grid(rows * cols, d);
    let mut kb = KernelBuilder::new("graphene_head_merge", &[blocks], &[THREADS]);
    let x = kb.param("X", &[rows / seq * heads * seq, d], ScalarType::F16);
    let y = kb.param("Y", &[rows, cols], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let v = bid * THREADS + tid; // vec8 index over the *output*
    let cols8 = cols / 8;
    let d8 = d / 8;
    let rr = v.clone() / cols8;
    let c8 = v % cols8;
    let h = c8.clone() / d8;
    let j8 = c8.clone() % d8;
    let b = rr.clone() / seq;
    let s = rr.clone() % seq;

    let x8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    let y8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    let xr = kb.alloc_reg("x8", reg_vec(8, ScalarType::F32));
    let src = kb.index(x8, &[(b * heads + h) * seq + s, j8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![xr]);
    let dst = kb.index(y8, &[rr, c8]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![xr], vec![dst]);

    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_ir::Arch;
    use graphene_sim::HostTensor;
    use std::collections::HashMap;

    #[test]
    fn bias_add_matches_reference_bitwise() {
        let (rows, cols) = (8, 128);
        let kernel = build_bias_add(rows, cols);
        validate(&kernel, Arch::Sm86).expect("validates");
        let x = HostTensor::random(&[rows as usize, cols as usize], 3);
        let bias: Vec<f32> = (0..cols).map(|i| (i % 11) as f32 * 0.25 - 1.0).collect();
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        inputs.insert(kernel.params[1], bias.clone());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let got = &out.globals[&kernel.params[2]];
        for (i, g) in got.iter().enumerate() {
            let want = x.as_slice()[i] + bias[i % cols as usize];
            assert_eq!(g.to_bits(), want.to_bits(), "scalar {i}");
        }
    }

    #[test]
    fn unary_relu_matches_reference_bitwise() {
        let (rows, cols) = (4, 256);
        let kernel = build_unary(rows, cols, UnaryOp::Relu);
        assert_eq!(kernel.name, "graphene_unary_relu");
        validate(&kernel, Arch::Sm86).expect("validates");
        let x = HostTensor::random(&[rows as usize, cols as usize], 7);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let got = &out.globals[&kernel.params[1]];
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g.to_bits(), x.as_slice()[i].max(0.0).to_bits(), "scalar {i}");
        }
    }

    #[test]
    fn head_split_merge_roundtrip() {
        let (rows, cols, heads, seq) = (64, 64, 4, 32); // batch 2, d 16
        let split = build_head_split(rows, cols, heads, seq);
        let merge = build_head_merge(rows, cols, heads, seq);
        validate(&split, Arch::Sm86).expect("split validates");
        validate(&merge, Arch::Sm86).expect("merge validates");

        let x = HostTensor::random(&[rows as usize, cols as usize], 11);
        let mut inputs = HashMap::new();
        inputs.insert(split.params[0], x.as_slice().to_vec());
        let mid = graphene_sim::execute(&split, Arch::Sm86, &inputs).expect("split");

        // Check the head-major layout directly on one element:
        // out[(b*heads+h)*seq+s, j] == in[b*seq+s, h*d+j].
        let d = (cols / heads) as usize;
        let q = &mid.globals[&split.params[1]];
        let (b, h, s, j) = (1usize, 2usize, 5usize, 3usize);
        let out_idx = ((b * heads as usize + h) * seq as usize + s) * d + j;
        let in_idx = (b * seq as usize + s) * cols as usize + h * d + j;
        assert_eq!(q[out_idx].to_bits(), x.as_slice()[in_idx].to_bits());

        let mut inputs2 = HashMap::new();
        inputs2.insert(merge.params[0], q.clone());
        let back = graphene_sim::execute(&merge, Arch::Sm86, &inputs2).expect("merge");
        let y = &back.globals[&merge.params[1]];
        for (i, (a, b)) in x.as_slice().iter().zip(y.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "scalar {i}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn rejects_narrow_head_dim() {
        build_head_split(64, 64, 16, 32); // d = 4
    }
}
