//! Executable lowering: from the front-end [`Graph`] to a runnable
//! [`ExecGraph`] over compiled kernel plans.
//!
//! [`crate::graph`]'s `lower_fused` / `lower_unfused` produce *timing*
//! plans — library kernels there are roofline models with no IR. This
//! module produces the *execution* form: every node becomes a real
//! Graphene kernel with a compiled [`KernelPlan`], its parameters
//! bound to named externals (input `"x"`, weights `"n{i}.W"`, biases
//! `"n{i}.bias"`, layernorm `"n{i}.gamma"`/`"n{i}.beta"`) or to
//! workspace temps the graph executor plans into one arena.
//!
//! Two lowering modes mirror the paper's comparison:
//!
//! - [`ExecLowering::Default`] — one kernel per graph node: GEMMs with
//!   no epilogue, then standalone [`crate::pointwise`] bias-add and
//!   activation kernels. The cumulative-library baseline, executable.
//! - [`ExecLowering::Fused`] — `MatMul (+BiasAdd) (+ReLU/GeLU)` chains
//!   absorb into the GEMM epilogue (paper Figure 10), dropping the
//!   intermediate activations entirely.
//!
//! Both modes share kernels for `Layernorm` (Figure 13) and
//! `Attention` (head-split reshape → fused FMHA, Figure 14 →
//! head-merge), and both name externals by the *original* op index, so
//! one weight map drives either lowering. The simulator computes in
//! f32 everywhere and the fused epilogue applies the same `Add`/
//! activation specs to the same accumulator values the unfused chain
//! stores and reloads — so the two lowerings execute bit-identically,
//! which the equivalence suite asserts.

use crate::fmha::FmhaConfig;
use crate::gemm::{build_gemm, Epilogue, GemmConfig};
use crate::graph::{Graph, Op};
use crate::layernorm::{build_layernorm, LayernormConfig};
use crate::pointwise::{build_bias_add, build_head_merge, build_head_split, build_unary};
use graphene_ir::{Arch, Kernel, UnaryOp};
use graphene_sim::{ArgBinding, ExecGraph, ExecNode, KernelPlan};
use std::sync::Arc;

/// Which lowering strategy to make executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecLowering {
    /// One kernel per graph node (the library-baseline shape).
    Default,
    /// GEMM-epilogue absorption of bias/activation nodes.
    Fused,
}

impl ExecLowering {
    /// Short label for signatures and reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecLowering::Default => "default",
            ExecLowering::Fused => "fused",
        }
    }
}

/// FNV-1a over a canonical graph description — the graph-trace cache
/// identity. Stable across runs; changes with ops, dims, lowering
/// mode, or arch.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The GEMM tile ladder: the cuBLAS-like tile first, then smaller
/// tiles for problems it cannot divide. All entries are legal on both
/// architectures when they divide the problem.
const GEMM_TILES: &[(i64, i64, i64, i64, i64)] =
    &[(128, 128, 32, 64, 64), (64, 64, 32, 32, 32), (64, 64, 16, 32, 32), (32, 32, 16, 32, 32)];

fn pick_gemm(m: i64, n: i64, k: i64, arch: Arch) -> Result<GemmConfig, String> {
    for &(bm, bn, bk, wm, wn) in GEMM_TILES {
        let cfg = GemmConfig { m, n, k, bm, bn, bk, wm, wn, swizzle: true };
        if cfg.validate(arch).is_ok() {
            return Ok(cfg);
        }
    }
    Err(format!("no GEMM tile divides {m}x{n}x{k} on {arch}"))
}

/// Builder state threaded through the lowering.
struct Lowerer {
    arch: Arch,
    nodes: Vec<ExecNode>,
    temps: Vec<usize>,
}

impl Lowerer {
    fn temp(&mut self, scalars: usize) -> usize {
        self.temps.push(scalars);
        self.temps.len() - 1
    }

    fn push(
        &mut self,
        kernel: &Kernel,
        problem: String,
        args: Vec<ArgBinding>,
    ) -> Result<(), String> {
        let plan = KernelPlan::compile(kernel, self.arch)
            .map_err(|e| format!("compiling `{}`: {e}", kernel.name))?;
        self.nodes.push(ExecNode {
            kernel: kernel.name.clone(),
            problem,
            plan: Arc::new(plan),
            args,
        });
        Ok(())
    }
}

/// Lowers a front-end graph to an executable kernel chain.
///
/// The input activation binds to external `"x"`; per-op parameters
/// bind to `"n{i}.W"` / `"n{i}.bias"` / `"n{i}.gamma"` / `"n{i}.beta"`
/// where `i` is the op's index in `graph.ops` — identical names in
/// both lowering modes, so one input map drives either. The final
/// activation is the graph's only output temp.
///
/// # Errors
///
/// A description of the first op the executable kernel set cannot
/// cover: an ill-formed graph, a GEMM no tile ladder entry divides, a
/// layernorm off the fused kernel's alignment, attention off Ampere or
/// with an untileable `seq`/`d`, or misaligned pointwise shapes.
pub fn lower_executable(
    graph: &Graph,
    arch: Arch,
    lowering: ExecLowering,
) -> Result<ExecGraph, String> {
    let shapes = graph.infer_shapes()?;
    let rows = graph.rows;
    let mut lw = Lowerer { arch, nodes: Vec::new(), temps: Vec::new() };
    let mut cur = ArgBinding::External("x".to_string());
    let mut cols = graph.cols;
    let ops = &graph.ops;
    let mut i = 0usize;

    while i < ops.len() {
        match &ops[i] {
            Op::MatMul { n } => {
                // Fused mode: absorb a following BiasAdd (+ReLU/GeLU)
                // or bare ReLU into the epilogue, exactly like the
                // timing lowering in `crate::graph`.
                let mut epilogue = Epilogue::None;
                let mut bias_op = None;
                let mut consumed = 1;
                if lowering == ExecLowering::Fused {
                    if matches!(ops.get(i + 1), Some(Op::BiasAdd)) {
                        epilogue = Epilogue::Bias;
                        bias_op = Some(i + 1);
                        consumed = 2;
                        match ops.get(i + 2) {
                            Some(Op::Activation(UnaryOp::Relu)) => {
                                epilogue = Epilogue::BiasRelu;
                                consumed = 3;
                            }
                            Some(Op::Activation(UnaryOp::Gelu)) => {
                                epilogue = Epilogue::BiasGelu;
                                consumed = 3;
                            }
                            _ => {}
                        }
                    } else if matches!(ops.get(i + 1), Some(Op::Activation(UnaryOp::Relu))) {
                        epilogue = Epilogue::Relu;
                        consumed = 2;
                    }
                }
                let cfg = pick_gemm(rows, *n, cols, arch)?;
                let kernel = build_gemm(arch, &cfg, epilogue);
                let out = lw.temp((rows * n) as usize);
                let mut args = vec![
                    cur.clone(),
                    ArgBinding::External(format!("n{i}.W")),
                    ArgBinding::TempOut(out),
                ];
                if let Some(b) = bias_op {
                    args.push(ArgBinding::External(format!("n{b}.bias")));
                }
                lw.push(
                    &kernel,
                    format!("m={rows} n={n} k={cols} epi={}", epilogue.label()),
                    args,
                )?;
                cur = ArgBinding::TempIn(out);
                cols = *n;
                i += consumed;
            }
            Op::BiasAdd => {
                let kernel = build_bias_add(rows, cols);
                let out = lw.temp((rows * cols) as usize);
                lw.push(
                    &kernel,
                    format!("rows={rows} cols={cols}"),
                    vec![
                        cur.clone(),
                        ArgBinding::External(format!("n{i}.bias")),
                        ArgBinding::TempOut(out),
                    ],
                )?;
                cur = ArgBinding::TempIn(out);
                i += 1;
            }
            Op::Activation(op) => {
                let kernel = build_unary(rows, cols, *op);
                let out = lw.temp((rows * cols) as usize);
                lw.push(
                    &kernel,
                    format!("rows={rows} cols={cols}"),
                    vec![cur.clone(), ArgBinding::TempOut(out)],
                )?;
                cur = ArgBinding::TempIn(out);
                i += 1;
            }
            Op::Layernorm => {
                if cols % 256 != 0 || rows % 4 != 0 {
                    return Err(format!(
                        "op {i}: layernorm needs cols%256==0 and rows%4==0, got {rows}x{cols}"
                    ));
                }
                let kernel = build_layernorm(arch, &LayernormConfig::new(rows, cols));
                let out = lw.temp((rows * cols) as usize);
                lw.push(
                    &kernel,
                    format!("rows={rows} hidden={cols}"),
                    vec![
                        cur.clone(),
                        ArgBinding::External(format!("n{i}.gamma")),
                        ArgBinding::External(format!("n{i}.beta")),
                        ArgBinding::TempOut(out),
                    ],
                )?;
                cur = ArgBinding::TempIn(out);
                i += 1;
            }
            Op::Attention { heads, seq } => {
                if arch != Arch::Sm86 {
                    return Err(format!(
                        "op {i}: executable attention needs the Ampere fused FMHA kernel"
                    ));
                }
                let d = cols / heads;
                let batch = rows / seq;
                if d % 16 != 0 || seq % 16 != 0 {
                    return Err(format!(
                        "op {i}: FMHA needs d%16==0 and seq%16==0, got d={d} seq={seq}"
                    ));
                }
                let Some(&bq) = [128, 64, 32].iter().find(|&&b| seq % b == 0) else {
                    return Err(format!("op {i}: no query tile divides seq={seq}"));
                };
                let instances = batch * heads;
                let len = (rows * cols) as usize;

                let split = build_head_split(rows, cols, *heads, *seq);
                let q = lw.temp(len);
                lw.push(
                    &split,
                    format!("rows={rows} cols={cols} heads={heads} seq={seq}"),
                    vec![cur.clone(), ArgBinding::TempOut(q)],
                )?;

                let cfg = FmhaConfig { heads: instances, seq: *seq, d, bq, wm: 32 };
                let fmha = crate::fmha::build_fused_fmha(arch, &cfg);
                let o = lw.temp(len);
                lw.push(
                    &fmha,
                    format!("inst={instances} seq={seq} d={d} bq={bq}"),
                    vec![
                        ArgBinding::TempIn(q),
                        ArgBinding::TempIn(q),
                        ArgBinding::TempIn(q),
                        ArgBinding::TempOut(o),
                    ],
                )?;

                let merge = build_head_merge(rows, cols, *heads, *seq);
                let out = lw.temp(len);
                lw.push(
                    &merge,
                    format!("rows={rows} cols={cols} heads={heads} seq={seq}"),
                    vec![ArgBinding::TempIn(o), ArgBinding::TempOut(out)],
                )?;
                cur = ArgBinding::TempIn(out);
                i += 1;
            }
        }
    }

    let ArgBinding::TempIn(result) = cur else {
        return Err("graph has no ops: nothing to execute".to_string());
    };
    let desc = format!("{rows}x{}:{:?}:{}:{arch}", graph.cols, ops, lowering.label());
    let _ = &shapes; // shapes validated above; dims tracked inline
    Ok(ExecGraph {
        signature: format!("g{:016x}-{}", fnv1a(&desc), lowering.label()),
        problem: format!("rows={rows} cols={} ops={}", graph.cols, ops.len()),
        arch,
        nodes: lw.nodes,
        temps: lw.temps,
        outputs: vec![result],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::encoder_graph;

    #[test]
    fn fused_lowering_launches_fewer_kernels() {
        let g = encoder_graph(1, 1, 64, 256, 4, 256);
        let fused = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).expect("fused lowers");
        let default =
            lower_executable(&g, Arch::Sm86, ExecLowering::Default).expect("default lowers");
        assert!(fused.nodes.len() < default.nodes.len());
        fused.validate().expect("fused graph is well-formed");
        default.validate().expect("default graph is well-formed");
        // Same externals in both modes: one weight map drives either.
        assert_eq!(fused.externals(), default.externals());
    }

    #[test]
    fn signatures_distinguish_modes_and_problems() {
        let g = encoder_graph(1, 1, 64, 256, 4, 256);
        let a = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).unwrap();
        let b = lower_executable(&g, Arch::Sm86, ExecLowering::Default).unwrap();
        let g2 = encoder_graph(2, 1, 64, 256, 4, 256);
        let c = lower_executable(&g2, Arch::Sm86, ExecLowering::Fused).unwrap();
        assert_ne!(a.signature, b.signature);
        assert_ne!(a.signature, c.signature);
    }

    #[test]
    fn volta_attention_is_rejected() {
        let g = encoder_graph(1, 1, 64, 256, 4, 256);
        let err = lower_executable(&g, Arch::Sm70, ExecLowering::Fused).unwrap_err();
        assert!(err.contains("Ampere"), "{err}");
    }

    #[test]
    fn untileable_gemm_is_rejected() {
        let g = Graph::new(40, 40).op(Op::MatMul { n: 40 });
        let err = lower_executable(&g, Arch::Sm86, ExecLowering::Fused).unwrap_err();
        assert!(err.contains("no GEMM tile"), "{err}");
    }
}
