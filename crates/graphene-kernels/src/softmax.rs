//! A standalone row-wise softmax kernel.
//!
//! Softmax is the glue of attention (paper §6, FMHA: "two reductions and
//! several pointwise operations"). This schedule assigns one warp per
//! row, with both reductions (max for numerical stability, then the
//! denominator sum) expressed as per-thread `Reduction` specs combined
//! warp-wide through butterfly `Shfl` specs — the same pattern the fused
//! FMHA kernel applies to register-resident fragments.

use crate::common::{reg_scalar, reg_vec, warp_allreduce};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::{Arch, BinaryOp, Kernel, ReduceOp, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sym::IntExpr;

/// Softmax problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftmaxConfig {
    /// Number of independent rows.
    pub rows: i64,
    /// Row width. Must be a multiple of 256 (32 lanes × 8-wide loads).
    pub cols: i64,
    /// Rows per block (one warp each).
    pub rows_per_block: i64,
}

impl SoftmaxConfig {
    /// Default: 4 warps per block.
    pub fn new(rows: i64, cols: i64) -> Self {
        SoftmaxConfig { rows, cols, rows_per_block: 4 }
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.rows_per_block * 32
    }

    /// Grid blocks.
    pub fn blocks(&self) -> i64 {
        self.rows / self.rows_per_block
    }
}

/// Builds the fused row-softmax kernel `Y[r] = softmax(X[r])`.
///
/// Parameters: `X:[rows,cols]`, `Y:[rows,cols]`, fp16 storage with fp32
/// compute. Architecture-independent (validated on both).
pub fn build_softmax(arch: Arch, cfg: &SoftmaxConfig) -> Kernel {
    let _ = arch;
    assert_eq!(cfg.cols % 256, 0, "cols must be a multiple of 256");
    assert_eq!(cfg.rows % cfg.rows_per_block, 0, "row tiling");
    let per_thread = cfg.cols / 32;
    let chunks = per_thread / 8;

    let mut kb = KernelBuilder::new("graphene_softmax", &[cfg.blocks()], &[cfg.threads()]);
    let x = kb.param("X", &[cfg.rows, cfg.cols], ScalarType::F16);
    let y = kb.param("Y", &[cfg.rows, cfg.cols], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let lane = tid.clone() % 32;
    let warp_id = tid / 32;
    let row = bid * cfg.rows_per_block + warp_id;
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");

    let x_regs = kb.alloc_reg("xv", reg_vec(per_thread, ScalarType::F32));
    let mx = kb.alloc_reg("mx", reg_scalar(ScalarType::F32));
    let denom = kb.alloc_reg("denom", reg_scalar(ScalarType::F32));

    kb.comment("load the row slice (8-wide converting loads)");
    let x_vec8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    for u in 0..chunks {
        let col8 = lane.clone() * chunks + u;
        let src = kb.index(x_vec8, &[row.clone(), col8]);
        let dst = kb.view_as(x_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
    }

    kb.comment("row max (stability) then exp(x - max)");
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::Reduction { op: ReduceOp::Max, axes: vec![0] },
        vec![grid, ts],
        vec![x_regs],
        vec![mx],
    );
    warp_allreduce(&mut kb, &[grid], warp, block, mx, ReduceOp::Max);
    let mx8 = kb.alloc_reg("mx8", reg_vec(8, ScalarType::F32));
    for i in 0..8 {
        let slot = kb.view_as(mx8, reg_scalar(ScalarType::F32), IntExpr::constant(i));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![mx], vec![slot]);
    }
    for u in 0..chunks {
        let chunk = kb.view_as(x_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Sub),
            vec![grid, ts],
            vec![chunk, mx8],
            vec![chunk],
        );
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::UnaryPointwise(UnaryOp::Exp), vec![grid, ts], vec![chunk], vec![chunk]);
    }

    kb.comment("denominator and normalisation");
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] },
        vec![grid, ts],
        vec![x_regs],
        vec![denom],
    );
    warp_allreduce(&mut kb, &[grid], warp, block, denom, ReduceOp::Sum);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::UnaryPointwise(UnaryOp::Recip), vec![grid, ts], vec![denom], vec![denom]);
    let d8 = kb.alloc_reg("d8", reg_vec(8, ScalarType::F32));
    for i in 0..8 {
        let slot = kb.view_as(d8, reg_scalar(ScalarType::F32), IntExpr::constant(i));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![denom], vec![slot]);
    }
    let y_vec8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    for u in 0..chunks {
        let col8 = lane.clone() * chunks + u;
        let chunk = kb.view_as(x_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Mul),
            vec![grid, ts],
            vec![chunk, d8],
            vec![chunk],
        );
        let dst = kb.index(y_vec8, &[row.clone(), col8]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![chunk], vec![dst]);
    }
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{softmax_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn softmax_matches_reference() {
        let cfg = SoftmaxConfig::new(8, 256);
        let kernel = build_softmax(Arch::Sm86, &cfg);
        validate(&kernel, Arch::Sm86).expect("validates on Ampere");
        validate(&kernel, Arch::Sm70).expect("validates on Volta");

        let x = HostTensor::random(&[8, 256], 91);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let expect = softmax_ref(&x);
        let got = HostTensor::from_vec(&[8, 256], out.globals[&kernel.params[1]].clone());
        got.assert_close(&expect, 1e-4);
    }

    #[test]
    fn softmax_rows_sum_to_one_in_simulation() {
        let cfg = SoftmaxConfig::new(4, 512);
        let kernel = build_softmax(Arch::Sm86, &cfg);
        let x = HostTensor::random(&[4, 512], 92);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let y = &out.globals[&kernel.params[1]];
        for r in 0..4 {
            let sum: f32 = y[r * 512..(r + 1) * 512].iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_codegen_contains_reductions_and_shuffles() {
        let cfg = SoftmaxConfig::new(8, 256);
        let kernel = build_softmax(Arch::Sm86, &cfg);
        let cuda = graphene_codegen::generate(&kernel, Arch::Sm86).expect("codegen");
        assert!(cuda.contains("__shfl_xor_sync"));
        assert!(cuda.contains("expf("));
        assert!(cuda.contains("max("));
    }
}
