//! The fused Layernorm kernel (paper Figure 13).
//!
//! Layernorm "does not perform any GEMM computations but instead
//! consists only of a combination of pointwise and reduction
//! computations" (§6). The fused single-pass schedule assigns one warp
//! per row: each thread loads `hidden/32` elements with vectorised
//! converting loads, produces per-thread partial sums of `x` and `x²`
//! (`Reduction` specs), combines them warp-wide with butterfly `Shfl`
//! specs, and normalises + stores in the same pass — one kernel, one
//! read and one write of the activation.

use crate::common::{reg_scalar, reg_vec, warp_allreduce};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::{Arch, BinaryOp, Kernel, ReduceOp, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sym::IntExpr;

/// Layernorm problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayernormConfig {
    /// Number of independent rows (batch × sequence).
    pub rows: i64,
    /// Normalised (hidden) dimension. Must be a multiple of 256
    /// (32 lanes × 8-wide vector loads).
    pub hidden: i64,
    /// Rows handled per block (one warp each).
    pub rows_per_block: i64,
}

impl LayernormConfig {
    /// A BERT-style configuration.
    pub fn new(rows: i64, hidden: i64) -> Self {
        LayernormConfig { rows, hidden, rows_per_block: 4 }
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.rows_per_block * 32
    }

    /// Grid size.
    pub fn blocks(&self) -> i64 {
        self.rows / self.rows_per_block
    }
}

/// Builds the fused single-pass Layernorm kernel
/// `Y[r] = (X[r] - mean) * rstd * gamma + beta`.
///
/// Parameters: `X:[rows,hidden]`, `gamma:[hidden]`, `beta:[hidden]`,
/// `Y:[rows,hidden]`, all fp16 with fp32 compute.
///
/// The schedule is architecture-independent (no tensor instructions);
/// `arch` only selects the atomic-spec registry used for validation.
pub fn build_layernorm(arch: Arch, cfg: &LayernormConfig) -> Kernel {
    let _ = arch;
    assert_eq!(cfg.hidden % 256, 0, "hidden must be a multiple of 256");
    assert_eq!(cfg.rows % cfg.rows_per_block, 0, "rows per block must divide rows");
    let per_thread = cfg.hidden / 32; // f32 values each thread owns
    let chunks = per_thread / 8;

    let mut kb = KernelBuilder::new("graphene_layernorm", &[cfg.blocks()], &[cfg.threads()]);
    let x = kb.param("X", &[cfg.rows, cfg.hidden], ScalarType::F16);
    let gamma = kb.param("gamma", &[cfg.hidden], ScalarType::F16);
    let beta = kb.param("beta", &[cfg.hidden], ScalarType::F16);
    let y = kb.param("Y", &[cfg.rows, cfg.hidden], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let tid = kb.module()[block].hw_var();
    let lane = tid.clone() % 32;
    let warp_id = tid.clone() / 32;
    let row = bid * cfg.rows_per_block + warp_id;
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warp tiling");

    // Per-thread working set: its slice of the row in fp32.
    let x_regs = kb.alloc_reg("xv", reg_vec(per_thread, ScalarType::F32));
    let sq_regs = kb.alloc_reg("sq", reg_vec(per_thread, ScalarType::F32));
    let sum = kb.alloc_reg("sum", reg_scalar(ScalarType::F32));
    let sumsq = kb.alloc_reg("sumsq", reg_scalar(ScalarType::F32));

    kb.comment("vectorised converting loads: each lane owns hidden/32 values");
    let x_vec8 = kb.tile_c(x, &[Some(1), Some(8)]).expect("X vectors");
    for u in 0..chunks {
        let col8 = lane.clone() * chunks + u;
        let src = kb.index(x_vec8, &[row.clone(), col8]);
        let dst = kb.view_as(x_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
        // Squares computed chunk-wise alongside the load.
        let sq = kb.view_as(sq_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::BinaryPointwise(BinaryOp::Mul), vec![grid, ts], vec![dst, dst], vec![sq]);
    }

    kb.comment("per-thread partial sum and sum of squares, then warp allreduce");
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] },
        vec![grid, ts],
        vec![x_regs],
        vec![sum],
    );
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] },
        vec![grid, ts],
        vec![sq_regs],
        vec![sumsq],
    );
    warp_allreduce(&mut kb, &[grid], warp, block, sum, ReduceOp::Sum);
    warp_allreduce(&mut kb, &[grid], warp, block, sumsq, ReduceOp::Sum);

    kb.comment("mean = sum/h; rstd = rsqrt(sumsq/h - mean^2 + eps)");
    let h_reg = kb.alloc_reg("hconst", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: cfg.hidden as f64 }, vec![grid, ts], vec![], vec![h_reg]);
    let mean = kb.alloc_reg("mean", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::BinaryPointwise(BinaryOp::Div), vec![grid, ts], vec![sum, h_reg], vec![mean]);
    let var = kb.alloc_reg("var", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::BinaryPointwise(BinaryOp::Div),
        vec![grid, ts],
        vec![sumsq, h_reg],
        vec![var],
    );
    let mean_sq = kb.alloc_reg("mean2", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::BinaryPointwise(BinaryOp::Mul),
        vec![grid, ts],
        vec![mean, mean],
        vec![mean_sq],
    );
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::BinaryPointwise(BinaryOp::Sub),
        vec![grid, ts],
        vec![var, mean_sq],
        vec![var],
    );
    let eps = kb.alloc_reg("eps", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 1e-5 }, vec![grid, ts], vec![], vec![eps]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::BinaryPointwise(BinaryOp::Add), vec![grid, ts], vec![var, eps], vec![var]);
    let rstd = kb.alloc_reg("rstd", reg_scalar(ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::UnaryPointwise(UnaryOp::Rsqrt), vec![grid, ts], vec![var], vec![rstd]);

    kb.comment("broadcast mean/rstd to vector registers");
    let mean8 = kb.alloc_reg("mean8", reg_vec(8, ScalarType::F32));
    let rstd8 = kb.alloc_reg("rstd8", reg_vec(8, ScalarType::F32));
    for i in 0..8 {
        for (s, d) in [(mean, mean8), (rstd, rstd8)] {
            let slot = kb.view_as(d, reg_scalar(ScalarType::F32), IntExpr::constant(i));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Move, vec![grid, ts], vec![s], vec![slot]);
        }
    }

    kb.comment("normalise, scale/shift, and store");
    let g_vec8 = kb.tile_c(gamma, &[Some(8)]).expect("gamma vectors");
    let b_vec8 = kb.tile_c(beta, &[Some(8)]).expect("beta vectors");
    let y_vec8 = kb.tile_c(y, &[Some(1), Some(8)]).expect("Y vectors");
    let g_regs = kb.alloc_reg("g8", reg_vec(8, ScalarType::F32));
    let b_regs = kb.alloc_reg("b8", reg_vec(8, ScalarType::F32));
    for u in 0..chunks {
        let col8 = lane.clone() * chunks + u;
        let chunk = kb.view_as(x_regs, reg_vec(8, ScalarType::F32), IntExpr::constant(u * 8));
        let g_src = kb.index(g_vec8, std::slice::from_ref(&col8));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![g_src], vec![g_regs]);
        let b_src = kb.index(b_vec8, std::slice::from_ref(&col8));
        let ts2 = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts2], vec![b_src], vec![b_regs]);
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Sub),
            vec![grid, ts],
            vec![chunk, mean8],
            vec![chunk],
        );
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Mul),
            vec![grid, ts],
            vec![chunk, rstd8],
            vec![chunk],
        );
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Mul),
            vec![grid, ts],
            vec![chunk, g_regs],
            vec![chunk],
        );
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::BinaryPointwise(BinaryOp::Add),
            vec![grid, ts],
            vec![chunk, b_regs],
            vec![chunk],
        );
        let dst = kb.index(y_vec8, &[row.clone(), col8]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![chunk], vec![dst]);
    }

    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{layernorm_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn layernorm_matches_reference() {
        let cfg = LayernormConfig::new(8, 256);
        let kernel = build_layernorm(Arch::Sm86, &cfg);
        validate(&kernel, Arch::Sm86).expect("validates on Ampere");
        validate(&kernel, Arch::Sm70).expect("validates on Volta");

        let x = HostTensor::random(&[8, 256], 21);
        let gamma: Vec<f32> = (0..256).map(|i| 0.5 + (i % 7) as f32 * 0.1).collect();
        let beta: Vec<f32> = (0..256).map(|i| (i % 5) as f32 * 0.2 - 0.4).collect();
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        inputs.insert(kernel.params[1], gamma.clone());
        inputs.insert(kernel.params[2], beta.clone());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");

        let expect = layernorm_ref(&x, &gamma, &beta, 1e-5);
        let got = HostTensor::from_vec(&[8, 256], out.globals[&kernel.params[3]].clone());
        got.assert_close(&expect, 2e-3);
    }

    #[test]
    fn layernorm_reads_and_writes_activation_once() {
        let cfg = LayernormConfig::new(64, 512);
        let kernel = build_layernorm(Arch::Sm86, &cfg);
        let c = graphene_sim::analyze(&kernel, Arch::Sm86).expect("analyze");
        let activation_bytes = 64 * 512 * 2;
        // One read of X, one write of Y, plus gamma/beta per row-warp.
        assert_eq!(c.global_write_bytes, activation_bytes);
        let gamma_beta = 2 * 512 * 2 * 64; // re-read per row
        assert_eq!(c.global_read_bytes, activation_bytes + gamma_beta);
        // DRAM footprint counts parameters once.
        assert_eq!(c.unique_global_read_bytes, (64 * 512 * 2) + 2 * 512 * 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 256")]
    fn rejects_unaligned_hidden() {
        build_layernorm(Arch::Sm86, &LayernormConfig::new(8, 100));
    }
}
