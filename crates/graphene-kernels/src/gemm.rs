//! Tensor-core GEMM schedules.
//!
//! The optimized GEMM decompositions of the paper's Hypothesis A
//! (Figure 9): a kernel-level `MatMul` spec decomposed hierarchically —
//! grid → thread-block tiles staged through (swizzled) shared memory →
//! warp tiles → the architecture's tensor instructions. The same tile
//! sizes as cuBLAS are used for the evaluation configs (128×128×32
//! thread-block tiles, paper footnote 1).
//!
//! Two architecture paths:
//! - **Ampere** (SM86): `cp.async` staging, `ldmatrix`(.trans) fragment
//!   loads, `mma.m16n8k16` (warp-wide),
//! - **Volta** (SM70): register staging, per-thread shared-memory
//!   fragment loads, quad-pair `mma.m8n8k4` (paper Figure 6).
//!
//! GEMM epilogues (bias / ReLU, Figure 10) fuse into the accumulator
//! store.

use crate::common::{
    a_frags_type, acc_root_type, b_frags_type, reg_vec, smem_swizzle, stage_tile, stage_transposed,
};
use crate::mma::{
    emit_epilogue_store_ampere, emit_epilogue_store_volta, emit_warp_mma_ampere,
    emit_warp_mma_volta, volta_acc_ty, EpilogueOps, MmaGeom, StoreTarget, WarpCtx,
};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, Kernel, ScalarType, UnaryOp};
use graphene_layout::{Layout, Swizzle};
use graphene_sym::IntExpr;

/// Epilogue fused into the GEMM store (paper Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Epilogue {
    /// Plain GEMM.
    None,
    /// `C += bias` (row-broadcast).
    Bias,
    /// `C = relu(C)`.
    Relu,
    /// `C = relu(C + bias)` — one MLP layer's epilogue.
    BiasRelu,
    /// `C = gelu(C + bias)`.
    BiasGelu,
}

impl Epilogue {
    /// Does this epilogue read a bias vector?
    pub fn has_bias(self) -> bool {
        matches!(self, Epilogue::Bias | Epilogue::BiasRelu | Epilogue::BiasGelu)
    }

    /// The activation applied, if any.
    pub fn activation(self) -> Option<UnaryOp> {
        match self {
            Epilogue::Relu | Epilogue::BiasRelu => Some(UnaryOp::Relu),
            Epilogue::BiasGelu => Some(UnaryOp::Gelu),
            _ => None,
        }
    }

    /// Label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Epilogue::None => "gemm",
            Epilogue::Bias => "bias",
            Epilogue::Relu => "relu",
            Epilogue::BiasRelu => "bias+relu",
            Epilogue::BiasGelu => "bias+gelu",
        }
    }
}

/// Tile configuration of a GEMM schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Problem rows.
    pub m: i64,
    /// Problem columns.
    pub n: i64,
    /// Reduction depth.
    pub k: i64,
    /// Thread-block tile rows.
    pub bm: i64,
    /// Thread-block tile columns.
    pub bn: i64,
    /// Thread-block K step.
    pub bk: i64,
    /// Warp tile rows.
    pub wm: i64,
    /// Warp tile columns.
    pub wn: i64,
    /// Swizzle shared-memory stages (bank-conflict avoidance).
    pub swizzle: bool,
}

impl GemmConfig {
    /// The cuBLAS-matching configuration the paper uses (footnote 1):
    /// 128×128×32 thread-block tiles, 64×64 warp tiles.
    pub fn cublas_like(m: i64, n: i64, k: i64) -> Self {
        GemmConfig { m, n, k, bm: 128, bn: 128, bk: 32, wm: 64, wn: 64, swizzle: true }
    }

    /// A small configuration for functional tests.
    pub fn small(m: i64, n: i64, k: i64) -> Self {
        GemmConfig { m, n, k, bm: 32, bn: 32, bk: 16, wm: 32, wn: 32, swizzle: true }
    }

    /// Number of warps per block.
    pub fn warps(&self) -> i64 {
        (self.bm / self.wm) * (self.bn / self.wn)
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.warps() * 32
    }

    /// Grid blocks.
    pub fn blocks(&self) -> i64 {
        (self.m / self.bm) * (self.n / self.bn)
    }

    /// Single-buffered shared-memory footprint in bytes (two fp16
    /// stages: `As:[bm,bk]` and `Bs:[bk,bn]`).
    pub fn smem_bytes(&self) -> u64 {
        2 * (self.bm * self.bk + self.bk * self.bn) as u64
    }

    /// Checks every validity rule a GEMM schedule must satisfy on
    /// `arch` — tiling divisibility, warp-tile vs tensor-instruction
    /// shape, warp count, staging granularity, and the shared-memory
    /// budget. This is the *single* source of truth shared by the
    /// kernel builders (which panic on violation) and the tuner's
    /// candidate filters (which skip the point).
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a human-readable message.
    pub fn validate(&self, arch: Arch) -> Result<(), String> {
        if self.m % self.bm != 0 || self.n % self.bn != 0 {
            return Err(format!(
                "partial block tiles: {}x{} does not tile by {}x{}",
                self.m, self.n, self.bm, self.bn
            ));
        }
        if self.bm % self.wm != 0 || self.bn % self.wn != 0 {
            return Err(format!(
                "warp tiling: {}x{} block tile does not tile by {}x{} warp tiles",
                self.bm, self.bn, self.wm, self.wn
            ));
        }
        if self.k % self.bk != 0 {
            return Err(format!("K tiling: k={} does not tile by bk={}", self.k, self.bk));
        }
        match arch {
            Arch::Sm86 => {
                if self.bk % 16 != 0 {
                    return Err(format!("K tiling (Ampere): bk={} not a multiple of 16", self.bk));
                }
                if self.wm % 16 != 0 || self.wn % 8 != 0 {
                    return Err(format!(
                        "warp tile {}x{} vs mma.m16n8k16 (wm%16, wn%8)",
                        self.wm, self.wn
                    ));
                }
            }
            Arch::Sm70 => {
                if self.bk % 4 != 0 {
                    return Err(format!("K tiling (Volta): bk={} not a multiple of 4", self.bk));
                }
                if self.wm % 16 != 0 || self.wn % 16 != 0 {
                    return Err(format!(
                        "warp tile {}x{} vs quad-pairs (wm%16, wn%16)",
                        self.wm, self.wn
                    ));
                }
            }
        }
        let warps = self.warps();
        if !(1..=8).contains(&warps) {
            return Err(format!("{warps} warps per block (1..=8 supported)"));
        }
        let threads = self.threads();
        if (self.bm * self.bk) % threads != 0 || (self.bk * self.bn) % threads != 0 {
            return Err(format!(
                "staging granularity: {}x{} / {}x{} tiles not divisible by {} threads",
                self.bm, self.bk, self.bk, self.bn, threads
            ));
        }
        let limit = arch.smem_limit_bytes();
        if self.smem_bytes() > limit {
            return Err(format!(
                "shared-memory budget: {} B single-buffered stages exceed the {arch} limit {limit} B",
                self.smem_bytes()
            ));
        }
        Ok(())
    }
}

/// Builds the optimized GEMM kernel `C = epilogue(A × B [+ bias])` for an
/// architecture. `A:[m,k]`, `B:[k,n]`, `C:[m,n]`, all fp16 row-major with
/// fp32 tensor-core accumulation (the paper's evaluation setting).
///
/// Returned kernel parameters: `A, B, C` and, when the epilogue needs
/// it, `bias:[n]`.
pub fn build_gemm(arch: Arch, cfg: &GemmConfig, epilogue: Epilogue) -> Kernel {
    cfg.validate(arch).unwrap_or_else(|e| panic!("invalid GEMM configuration: {e}"));
    let name = format!(
        "graphene_gemm_{}_{}",
        match arch {
            Arch::Sm70 => "sm70",
            Arch::Sm86 => "sm86",
        },
        epilogue.label().replace('+', "_")
    );
    let mut kb = KernelBuilder::new(name, &[cfg.m / cfg.bm, cfg.n / cfg.bn], &[cfg.threads()]);
    let a = kb.param("A", &[cfg.m, cfg.k], ScalarType::F16);
    let b = kb.param("B", &[cfg.k, cfg.n], ScalarType::F16);
    let c = kb.param("C", &[cfg.m, cfg.n], ScalarType::F16);
    let bias = epilogue.has_bias().then(|| kb.param("bias", &[cfg.n], ScalarType::F16));

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let (bm_id, bn_id) = (bids[0].clone(), bids[1].clone());

    let sw = if cfg.swizzle { smem_swizzle() } else { Swizzle::identity() };
    // Volta consumes A column-major (transposed stage) so quad-pair
    // fragments are vectorised loads; Ampere's ldmatrix reads rows.
    let a_s = match arch {
        Arch::Sm86 => kb.alloc_shared(
            "As",
            TensorType::row_major(&[cfg.bm, cfg.bk], ScalarType::F16).with_swizzle(sw),
        ),
        Arch::Sm70 => kb.alloc_shared(
            "Ast",
            TensorType::row_major(&[cfg.bk, cfg.bm], ScalarType::F16).with_swizzle(sw),
        ),
    };
    let b_s = kb.alloc_shared(
        "Bs",
        TensorType::row_major(&[cfg.bk, cfg.bn], ScalarType::F16).with_swizzle(sw),
    );

    let body = GemmBody {
        cfg: *cfg,
        a,
        b,
        c,
        bias,
        epilogue,
        bm_row0: bm_id.clone() * cfg.bm,
        bn_col0: bn_id.clone() * cfg.bn,
        a_s,
        b_s,
    };

    match arch {
        Arch::Sm86 => body.emit_ampere(&mut kb, grid, block),
        Arch::Sm70 => body.emit_volta(&mut kb, grid, block),
    }
    kb.build()
}

/// Internal context for emitting the GEMM body on top of the reusable
/// warp-level MMA emitters in [`crate::mma`].
struct GemmBody {
    cfg: GemmConfig,
    a: graphene_ir::TensorId,
    b: graphene_ir::TensorId,
    c: graphene_ir::TensorId,
    bias: Option<graphene_ir::TensorId>,
    epilogue: Epilogue,
    bm_row0: IntExpr,
    bn_col0: IntExpr,
    a_s: graphene_ir::TensorId,
    b_s: graphene_ir::TensorId,
}

impl GemmBody {
    fn geom(&self) -> MmaGeom {
        MmaGeom {
            bm: self.cfg.bm,
            bn: self.cfg.bn,
            wm: self.cfg.wm,
            wn: self.cfg.wn,
            k_cols: self.cfg.bk,
        }
    }

    fn epilogue_ops(&self) -> EpilogueOps {
        EpilogueOps {
            // The bias is indexed by the *global* column: block offset
            // plus the in-block column computed by the store emitters.
            bias: self.bias.map(|b| (b, self.bn_col0.clone())),
            activation: self.epilogue.activation(),
            scale: None,
        }
    }

    fn emit_ampere(
        &self,
        kb: &mut KernelBuilder,
        grid: graphene_ir::ThreadId,
        block: graphene_ir::ThreadId,
    ) {
        let cfg = &self.cfg;
        let geom = self.geom();
        let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
        let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warp tiling");
        let ctx = WarpCtx::new(kb, block, &geom);

        let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
        let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
        let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));

        kb.comment("main K loop: stage block tiles, then warp-level tensor core MMAs");
        kb.for_loop("ks", cfg.k / cfg.bk, false, |kb, ks| {
            stage_tile(
                kb,
                Arch::Sm86,
                &[grid],
                block,
                self.a,
                self.a_s,
                self.bm_row0.clone(),
                ks.clone() * cfg.bk,
                cfg.bm,
                cfg.bk,
                cfg.threads(),
            );
            stage_tile(
                kb,
                Arch::Sm86,
                &[grid],
                block,
                self.b,
                self.b_s,
                ks.clone() * cfg.bk,
                self.bn_col0.clone(),
                cfg.bk,
                cfg.bn,
                cfg.threads(),
            );
            kb.sync();
            emit_warp_mma_ampere(
                kb, grid, warp, &ctx, self.a_s, self.b_s, acc, a_frags, b_frags, &geom,
            );
            kb.sync();
        });

        kb.comment("epilogue + accumulator store (fp32 -> fp16)");
        let target = StoreTarget::Global {
            tensor: self.c,
            row0: self.bm_row0.clone(),
            col0: self.bn_col0.clone(),
        };
        emit_epilogue_store_ampere(
            kb,
            grid,
            block,
            &ctx,
            acc,
            &geom,
            &self.epilogue_ops(),
            &target,
        );
    }

    fn emit_volta(
        &self,
        kb: &mut KernelBuilder,
        grid: graphene_ir::ThreadId,
        block: graphene_ir::ThreadId,
    ) {
        let cfg = &self.cfg;
        let geom = self.geom();
        let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 16);
        let qp = kb
            .thread_tile(block, &graphene_ir::atomic::quad_pair_layout())
            .expect("quad-pair tiling");
        let ctx = WarpCtx::new(kb, block, &geom);

        let acc = kb.alloc_reg("acc", volta_acc_ty(mi_cnt, ni_cnt));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
        let a_regs = kb.alloc_reg("areg", reg_vec(4 * mi_cnt, ScalarType::F16));
        let b_regs = kb.alloc_reg("breg", reg_vec(4 * ni_cnt, ScalarType::F16));

        kb.comment("main K loop: transposed A staging, quad-pair MMAs");
        kb.for_loop("ks", cfg.k / cfg.bk, false, |kb, ks| {
            stage_transposed(
                kb,
                &[grid],
                block,
                self.a,
                self.a_s,
                self.bm_row0.clone(),
                ks.clone() * cfg.bk,
                cfg.bm,
                cfg.bk,
                cfg.threads(),
            );
            stage_tile(
                kb,
                Arch::Sm70,
                &[grid],
                block,
                self.b,
                self.b_s,
                ks.clone() * cfg.bk,
                self.bn_col0.clone(),
                cfg.bk,
                cfg.bn,
                cfg.threads(),
            );
            kb.sync();
            emit_warp_mma_volta(
                kb, grid, block, qp, &ctx, self.a_s, self.b_s, acc, a_regs, b_regs, &geom,
            );
            kb.sync();
        });

        kb.comment("epilogue + accumulator store (fp32 -> fp16)");
        let target = StoreTarget::Global {
            tensor: self.c,
            row0: self.bm_row0.clone(),
            col0: self.bn_col0.clone(),
        };
        emit_epilogue_store_volta(kb, grid, block, &ctx, acc, &geom, &self.epilogue_ops(), &target);
    }
}

/// Builds an Ampere GEMM whose `m` need **not** divide the block tile:
/// the grid is over-approximated to `ceil(m / bm)` row-blocks and
/// out-of-bounds rows are *predicated* — guarded staging loads and
/// guarded accumulator stores — exactly the paper's partial-tile
/// strategy (§3.4: "subsequent accesses to tensors with potentially
/// partial tiles must be predicated to prevent out-of-bounds accesses").
///
/// `cfg.m` is the true row count; all other divisibility requirements of
/// [`GemmConfig::validate`] still apply to `n`/`k` and the tiles.
pub fn build_gemm_partial_m(cfg: &GemmConfig, epilogue: Epilogue) -> Kernel {
    build_gemm_predicated_m(cfg, epilogue, IntExpr::constant(cfg.m), "graphene_gemm_sm86_partial_m")
}

/// A GEMM *parametric* in `m` (paper §3.4: "parametric shapes lead to
/// additional kernel parameters during code generation"): `cfg.m` is the
/// *capacity* the grid is sized for; the true row count is the symbolic
/// kernel parameter `M`, supplied at launch (simulation:
/// [`graphene_sim::execute_bound`] / [`graphene_sim::analyze_bound`]).
/// The generated CUDA gains a `const int M` parameter and predicates all
/// row-dependent accesses against it.
pub fn build_gemm_parametric_m(cfg: &GemmConfig, epilogue: Epilogue) -> Kernel {
    build_gemm_predicated_m(cfg, epilogue, IntExpr::var("M"), "graphene_gemm_sm86_parametric_m")
}

fn build_gemm_predicated_m(
    cfg: &GemmConfig,
    epilogue: Epilogue,
    m_bound_expr: IntExpr,
    name: &str,
) -> Kernel {
    let arch = Arch::Sm86;
    let grid_m = (cfg.m + cfg.bm - 1) / cfg.bm;
    let padded = GemmConfig { m: grid_m * cfg.bm, ..*cfg };
    padded.validate(arch).unwrap_or_else(|e| panic!("invalid GEMM configuration: {e}"));
    let geom = MmaGeom { bm: cfg.bm, bn: cfg.bn, wm: cfg.wm, wn: cfg.wn, k_cols: cfg.bk };
    let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);

    let mut kb = KernelBuilder::new(name, &[grid_m, cfg.n / cfg.bn], &[cfg.threads()]);
    let a = kb.param("A", &[cfg.m, cfg.k], ScalarType::F16);
    let b = kb.param("B", &[cfg.k, cfg.n], ScalarType::F16);
    let c = kb.param("C", &[cfg.m, cfg.n], ScalarType::F16);
    let bias = epilogue.has_bias().then(|| kb.param("bias", &[cfg.n], ScalarType::F16));

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let (bm_row0, bn_col0) = (bids[0].clone() * cfg.bm, bids[1].clone() * cfg.bn);
    let m_bound = m_bound_expr;

    let sw = if cfg.swizzle { smem_swizzle() } else { Swizzle::identity() };
    let a_s = kb.alloc_shared(
        "As",
        TensorType::row_major(&[cfg.bm, cfg.bk], ScalarType::F16).with_swizzle(sw),
    );
    let b_s = kb.alloc_shared(
        "Bs",
        TensorType::row_major(&[cfg.bk, cfg.bn], ScalarType::F16).with_swizzle(sw),
    );

    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
    let ctx = WarpCtx::new(&kb, block, &geom);
    let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
    let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
    let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));

    let tid = kb.module()[block].hw_var();
    kb.comment("K loop with predicated A staging (partial row tiles)");
    kb.for_loop("ks", cfg.k / cfg.bk, false, |kb, ks| {
        // Guarded A staging: each 8-wide chunk loads only if its row is
        // within the true m. Unloaded rows contribute garbage only to
        // unstored accumulator rows.
        let chunks = cfg.bm * cfg.bk / cfg.threads() / 8;
        assert!(chunks >= 1, "partial staging needs >= 8 elems per thread");
        let a_vec8 = kb.tile_c(a, &[Some(1), Some(8)]).expect("A vectors");
        let as_vec8 = kb.tile_c(a_s, &[Some(1), Some(8)]).expect("As vectors");
        for u in 0..chunks {
            let e = (tid.clone() * chunks + u) * 8;
            let r = e.clone() / cfg.bk;
            let cc = e % cfg.bk;
            let row = bm_row0.clone() + r.clone();
            kb.if_lt(row.clone(), m_bound.clone(), |kb| {
                let sv = kb.index(a_vec8, &[row.clone(), (ks.clone() * cfg.bk + cc.clone()) / 8]);
                let dv = kb.index(as_vec8, &[r.clone(), cc.clone() / 8]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![sv], vec![dv]);
            });
        }
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            b,
            b_s,
            ks.clone() * cfg.bk,
            bn_col0.clone(),
            cfg.bk,
            cfg.bn,
            cfg.threads(),
        );
        kb.sync();
        emit_warp_mma_ampere(kb, grid, warp, &ctx, a_s, b_s, acc, a_frags, b_frags, &geom);
        kb.sync();
    });

    kb.comment("predicated epilogue store");
    let lane = ctx.lane.clone();
    let c_vec2 = kb.tile_c(c, &[Some(1), Some(2)]).expect("C pairs");
    let bias_vec2 = bias.map(|bt| kb.tile_c(bt, &[Some(2)]).expect("bias pairs"));
    for ni in 0..ni_cnt {
        for vp in 0..2i64 {
            let col =
                bn_col0.clone() + ctx.wn_id.clone() * cfg.wn + ni * 8 + (lane.clone() % 4) * 2;
            let bias_reg = bias.map(|_| {
                let r = kb.alloc_reg(format!("biasr_{ni}_{vp}"), reg_vec(2, ScalarType::F32));
                let bsrc = kb.index(bias_vec2.unwrap(), &[col.clone() / 2]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![bsrc], vec![r]);
                r
            });
            for mi in 0..mi_cnt {
                let pair = kb.view_as(
                    acc,
                    reg_vec(2, ScalarType::F32),
                    IntExpr::constant(mi * ni_cnt * 4 + ni * 4 + vp * 2),
                );
                if let Some(br) = bias_reg {
                    let ts = kb.thread_scalar(block);
                    kb.spec(
                        SpecKind::BinaryPointwise(graphene_ir::BinaryOp::Add),
                        vec![grid, ts],
                        vec![pair, br],
                        vec![pair],
                    );
                }
                if let Some(act) = epilogue.activation() {
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::UnaryPointwise(act), vec![grid, ts], vec![pair], vec![pair]);
                }
                let row = bm_row0.clone()
                    + ctx.wm_id.clone() * cfg.wm
                    + mi * 16
                    + lane.clone() / 4
                    + vp * 8;
                kb.if_lt(row.clone(), m_bound.clone(), |kb| {
                    let dst = kb.index(c_vec2, &[row.clone(), col.clone() / 2]);
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::Move, vec![grid, ts], vec![pair], vec![dst]);
                });
            }
        }
    }
    kb.build()
}

/// The §2 ablation: the Ampere GEMM with `ldmatrix` replaced by
/// per-thread scalar shared-memory loads ("equivalent but simpler data
/// movements"). The paper reports this costs up to 17% of GEMM
/// performance; the `ldmatrix_ablation` bench measures our equivalent.
pub fn build_gemm_no_ldmatrix(cfg: &GemmConfig, epilogue: Epilogue) -> Kernel {
    let arch = Arch::Sm86;
    cfg.validate(arch).unwrap_or_else(|e| panic!("invalid GEMM configuration: {e}"));
    let mut kb = KernelBuilder::new(
        "graphene_gemm_sm86_no_ldmatrix",
        &[cfg.m / cfg.bm, cfg.n / cfg.bn],
        &[cfg.threads()],
    );
    let a = kb.param("A", &[cfg.m, cfg.k], ScalarType::F16);
    let b = kb.param("B", &[cfg.k, cfg.n], ScalarType::F16);
    let c = kb.param("C", &[cfg.m, cfg.n], ScalarType::F16);
    let bias = epilogue.has_bias().then(|| kb.param("bias", &[cfg.n], ScalarType::F16));

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let (bm_row0, bn_col0) = (bids[0].clone() * cfg.bm, bids[1].clone() * cfg.bn);
    let sw = if cfg.swizzle { smem_swizzle() } else { Swizzle::identity() };
    let a_s = kb.alloc_shared(
        "As",
        TensorType::row_major(&[cfg.bm, cfg.bk], ScalarType::F16).with_swizzle(sw),
    );
    let b_s = kb.alloc_shared(
        "Bs",
        TensorType::row_major(&[cfg.bk, cfg.bn], ScalarType::F16).with_swizzle(sw),
    );
    let geom = MmaGeom { bm: cfg.bm, bn: cfg.bn, wm: cfg.wm, wn: cfg.wn, k_cols: cfg.bk };
    let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
    let ctx = WarpCtx::new(&kb, block, &geom);
    let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
    let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
    let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));

    kb.comment("ablation: scalar ld.shared fragment loads instead of ldmatrix");
    kb.for_loop("ks", cfg.k / cfg.bk, false, |kb, ks| {
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            a,
            a_s,
            bm_row0.clone(),
            ks.clone() * cfg.bk,
            cfg.bm,
            cfg.bk,
            cfg.threads(),
        );
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            b,
            b_s,
            ks.clone() * cfg.bk,
            bn_col0.clone(),
            cfg.bk,
            cfg.bn,
            cfg.threads(),
        );
        kb.sync();
        crate::mma::emit_warp_mma_ampere_scalar_loads(
            kb, grid, block, warp, &ctx, a_s, b_s, acc, a_frags, b_frags, &geom,
        );
        kb.sync();
    });
    let ops = EpilogueOps {
        bias: bias.map(|bt| (bt, bn_col0.clone())),
        activation: epilogue.activation(),
        scale: None,
    };
    let target = StoreTarget::Global { tensor: c, row0: bm_row0, col0: bn_col0 };
    emit_epilogue_store_ampere(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
    kb.build()
}

/// A strided-batched GEMM (the `cublasGemmStridedBatchedEx` shape used
/// by attention lowerings): `batch` independent `m x n x k` products,
/// with the batch index folded into the grid — one launch for the whole
/// batch.
///
/// Parameters: `A:[batch*m, k]`, `B:[batch*k, n]`, `C:[batch*m, n]`.
pub fn build_batched_gemm(arch: Arch, cfg: &GemmConfig, batch: i64) -> Kernel {
    cfg.validate(arch).unwrap_or_else(|e| panic!("invalid GEMM configuration: {e}"));
    assert!(batch >= 1, "batch must be positive");
    assert_eq!(arch, Arch::Sm86, "the batched schedule targets Ampere");
    let name = format!("graphene_batched_gemm_sm86_x{batch}");
    let grid_mn = (cfg.m / cfg.bm) * (cfg.n / cfg.bn);
    let mut kb =
        KernelBuilder::new(name, &[batch, cfg.m / cfg.bm, cfg.n / cfg.bn], &[cfg.threads()]);
    let a = kb.param("A", &[batch * cfg.m, cfg.k], ScalarType::F16);
    let b = kb.param("B", &[batch * cfg.k, cfg.n], ScalarType::F16);
    let c = kb.param("C", &[batch * cfg.m, cfg.n], ScalarType::F16);
    let _ = grid_mn;

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let (batch_id, bm_id, bn_id) = (bids[0].clone(), bids[1].clone(), bids[2].clone());

    let sw = if cfg.swizzle { smem_swizzle() } else { Swizzle::identity() };
    let a_s = kb.alloc_shared(
        "As",
        TensorType::row_major(&[cfg.bm, cfg.bk], ScalarType::F16).with_swizzle(sw),
    );
    let b_s = kb.alloc_shared(
        "Bs",
        TensorType::row_major(&[cfg.bk, cfg.bn], ScalarType::F16).with_swizzle(sw),
    );
    let geom = MmaGeom { bm: cfg.bm, bn: cfg.bn, wm: cfg.wm, wn: cfg.wn, k_cols: cfg.bk };
    let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
    let ctx = WarpCtx::new(&kb, block, &geom);
    let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
    let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
    let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));

    // Per-instance base rows: the batch stride folded into the row offset.
    let a_row0 = batch_id.clone() * cfg.m + bm_id.clone() * cfg.bm;
    let b_row_base = batch_id.clone() * cfg.k;
    let c_row0 = a_row0.clone();
    let bn_col0 = bn_id * cfg.bn;

    kb.for_loop("ks", cfg.k / cfg.bk, false, |kb, ks| {
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            a,
            a_s,
            a_row0.clone(),
            ks.clone() * cfg.bk,
            cfg.bm,
            cfg.bk,
            cfg.threads(),
        );
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            b,
            b_s,
            b_row_base.clone() + ks.clone() * cfg.bk,
            bn_col0.clone(),
            cfg.bk,
            cfg.bn,
            cfg.threads(),
        );
        kb.sync();
        emit_warp_mma_ampere(kb, grid, warp, &ctx, a_s, b_s, acc, a_frags, b_frags, &geom);
        kb.sync();
    });
    let target = StoreTarget::Global { tensor: c, row0: c_row0, col0: bn_col0 };
    emit_epilogue_store_ampere(
        &mut kb,
        grid,
        block,
        &ctx,
        acc,
        &geom,
        &EpilogueOps::none(),
        &target,
    );
    kb.build()
}

/// The software-pipelined (double-buffered) Ampere GEMM: two
/// shared-memory stages per operand, with the next K-slice staged while
/// the current one is consumed. This is the mechanism that lets real
/// kernels overlap `cp.async` staging with tensor-core math (the
/// roofline timing model assumes such overlap; this schedule makes the
/// mechanism explicit in the IR — and doubles the shared-memory
/// footprint, which [`graphene_ir::validate::validate`] checks).
pub fn build_gemm_double_buffered(cfg: &GemmConfig, epilogue: Epilogue) -> Kernel {
    let arch = Arch::Sm86;
    cfg.validate(arch).unwrap_or_else(|e| panic!("invalid GEMM configuration: {e}"));
    let t = cfg.k / cfg.bk; // K slices
    let mut kb = KernelBuilder::new(
        "graphene_gemm_sm86_double_buffered",
        &[cfg.m / cfg.bm, cfg.n / cfg.bn],
        &[cfg.threads()],
    );
    let a = kb.param("A", &[cfg.m, cfg.k], ScalarType::F16);
    let b = kb.param("B", &[cfg.k, cfg.n], ScalarType::F16);
    let c = kb.param("C", &[cfg.m, cfg.n], ScalarType::F16);
    let bias = epilogue.has_bias().then(|| kb.param("bias", &[cfg.n], ScalarType::F16));

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let (bm_row0, bn_col0) = (bids[0].clone() * cfg.bm, bids[1].clone() * cfg.bn);
    let sw = if cfg.swizzle { smem_swizzle() } else { Swizzle::identity() };
    let smem_a = |kb: &mut KernelBuilder, name: &str| {
        kb.alloc_shared(
            name.to_string(),
            TensorType::row_major(&[cfg.bm, cfg.bk], ScalarType::F16).with_swizzle(sw),
        )
    };
    let smem_b = |kb: &mut KernelBuilder, name: &str| {
        kb.alloc_shared(
            name.to_string(),
            TensorType::row_major(&[cfg.bk, cfg.bn], ScalarType::F16).with_swizzle(sw),
        )
    };
    let a_s = [smem_a(&mut kb, "As0"), smem_a(&mut kb, "As1")];
    let b_s = [smem_b(&mut kb, "Bs0"), smem_b(&mut kb, "Bs1")];

    let geom = MmaGeom { bm: cfg.bm, bn: cfg.bn, wm: cfg.wm, wn: cfg.wn, k_cols: cfg.bk };
    let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
    let ctx = WarpCtx::new(&kb, block, &geom);
    let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
    let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
    let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));

    let stage = |kb: &mut KernelBuilder, buf: usize, k_slice: IntExpr| {
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            a,
            a_s[buf],
            bm_row0.clone(),
            k_slice.clone() * cfg.bk,
            cfg.bm,
            cfg.bk,
            cfg.threads(),
        );
        stage_tile(
            kb,
            arch,
            &[grid],
            block,
            b,
            b_s[buf],
            k_slice * cfg.bk,
            bn_col0.clone(),
            cfg.bk,
            cfg.bn,
            cfg.threads(),
        );
    };

    kb.comment("prologue: stage the first K slice into buffer 0");
    stage(&mut kb, 0, IntExpr::zero());

    kb.comment("pipelined main loop: stage the next slice while consuming the current");
    kb.for_loop("ks2", (t + 1) / 2, false, |kb, ks2| {
        kb.sync();
        // Stage slice 2*ks2+1 into buffer 1 (cp.async runs ahead of the
        // consuming math on real hardware).
        kb.if_lt(ks2.clone() * 2 + 1, IntExpr::constant(t), |kb| {
            stage(kb, 1, ks2.clone() * 2 + 1);
        });
        emit_warp_mma_ampere(kb, grid, warp, &ctx, a_s[0], b_s[0], acc, a_frags, b_frags, &geom);
        kb.sync();
        // Stage slice 2*ks2+2 back into buffer 0, consume buffer 1.
        kb.if_lt(ks2.clone() * 2 + 2, IntExpr::constant(t), |kb| {
            stage(kb, 0, ks2.clone() * 2 + 2);
        });
        kb.if_lt(ks2.clone() * 2 + 1, IntExpr::constant(t), |kb| {
            emit_warp_mma_ampere(
                kb, grid, warp, &ctx, a_s[1], b_s[1], acc, a_frags, b_frags, &geom,
            );
        });
        // No trailing barrier: the consume of buffer 1 is ordered against
        // the next iteration's re-stage of buffer 1 by that iteration's
        // leading sync, so two barriers per iteration suffice.
    });

    let ops = EpilogueOps {
        bias: bias.map(|bt| (bt, bn_col0.clone())),
        activation: epilogue.activation(),
        scale: None,
    };
    let target = StoreTarget::Global { tensor: c, row0: bm_row0, col0: bn_col0 };
    emit_epilogue_store_ampere(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    fn run_gemm(arch: Arch, cfg: &GemmConfig, epilogue: Epilogue, tol: f32) {
        let kernel = build_gemm(arch, cfg, epilogue);
        validate(&kernel, arch).expect("kernel validates");

        let (m, n, k) = (cfg.m as usize, cfg.n as usize, cfg.k as usize);
        let a = HostTensor::random(&[m, k], 11);
        let b = HostTensor::random(&[k, n], 12);
        let bias: Vec<f32> = (0..n).map(|j| (j as f32 * 0.01) - 0.3).collect();

        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        if epilogue.has_bias() {
            inputs.insert(kernel.params[3], bias.clone());
        }
        let out = graphene_sim::execute(&kernel, arch, &inputs).expect("execute");

        let mut expect = matmul_ref(&a, &b);
        if epilogue.has_bias() {
            graphene_sim::host::bias_add_ref(&mut expect, &bias);
        }
        if matches!(epilogue, Epilogue::Relu | Epilogue::BiasRelu) {
            graphene_sim::host::relu_ref(&mut expect);
        }
        let got = HostTensor::from_vec(&[m, n], out.globals[&kernel.params[2]].clone());
        got.assert_close(&expect, tol);

        // Tensor-core FLOPs accounted.
        assert_eq!(out.counters.flops_tc, 2 * (m * n * k) as u64);
    }

    #[test]
    fn ampere_gemm_matches_reference() {
        run_gemm(Arch::Sm86, &GemmConfig::small(32, 32, 32), Epilogue::None, 1e-3);
    }

    #[test]
    fn ampere_gemm_multi_block_multi_warp() {
        // 2x2 grid, 2x2 warps per block.
        let cfg = GemmConfig {
            m: 64,
            n: 64,
            k: 32,
            bm: 32,
            bn: 32,
            bk: 16,
            wm: 16,
            wn: 16,
            swizzle: true,
        };
        run_gemm(Arch::Sm86, &cfg, Epilogue::None, 1e-3);
    }

    #[test]
    fn ampere_gemm_bias_relu() {
        run_gemm(Arch::Sm86, &GemmConfig::small(32, 32, 16), Epilogue::BiasRelu, 1e-3);
    }

    #[test]
    fn volta_gemm_matches_reference() {
        let cfg = GemmConfig {
            m: 32,
            n: 32,
            k: 16,
            bm: 32,
            bn: 32,
            bk: 8,
            wm: 32,
            wn: 32,
            swizzle: true,
        };
        run_gemm(Arch::Sm70, &cfg, Epilogue::None, 1e-3);
    }

    #[test]
    fn volta_gemm_bias_relu() {
        let cfg = GemmConfig {
            m: 32,
            n: 32,
            k: 16,
            bm: 32,
            bn: 32,
            bk: 8,
            wm: 32,
            wn: 32,
            swizzle: true,
        };
        run_gemm(Arch::Sm70, &cfg, Epilogue::BiasRelu, 1e-3);
    }

    #[test]
    fn cublas_like_config_is_valid() {
        let cfg = GemmConfig::cublas_like(5376, 5376, 2048);
        cfg.validate(Arch::Sm86).expect("cublas-like config is valid");
        assert_eq!(cfg.warps(), 4);
        assert_eq!(cfg.threads(), 128);
        assert_eq!(cfg.blocks(), 42 * 42);
    }

    #[test]
    fn validate_names_the_violated_rule() {
        let ok = GemmConfig::cublas_like(1024, 1024, 512);
        assert_eq!(ok.validate(Arch::Sm86), Ok(()));
        let partial = GemmConfig { m: 100, ..ok };
        assert!(partial.validate(Arch::Sm86).unwrap_err().contains("partial block tiles"));
        let warp = GemmConfig { wn: 48, ..ok };
        assert!(warp.validate(Arch::Sm86).unwrap_err().contains("warp tiling"));
        let mma = GemmConfig { wn: 4, ..ok };
        assert!(mma.validate(Arch::Sm86).unwrap_err().contains("mma.m16n8k16"));
        let too_many = GemmConfig { wm: 16, wn: 8, ..ok };
        assert!(too_many.validate(Arch::Sm86).unwrap_err().contains("warps per block"));
        let smem = GemmConfig { bm: 256, bn: 256, bk: 128, wm: 64, wn: 128, ..ok };
        assert!(smem.validate(Arch::Sm86).unwrap_err().contains("shared-memory budget"));
        let volta_bk = GemmConfig { bk: 6, ..ok };
        assert!(volta_bk.validate(Arch::Sm70).unwrap_err().contains("K tiling"));
    }
}

#[cfg(test)]
mod partial_tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn partial_m_gemm_predicates_correctly() {
        // m = 40 with 32-row blocks: the second block has 8 live rows.
        let cfg = GemmConfig {
            m: 40,
            n: 32,
            k: 32,
            bm: 32,
            bn: 32,
            bk: 16,
            wm: 32,
            wn: 32,
            swizzle: true,
        };
        let kernel = build_gemm_partial_m(&cfg, Epilogue::None);
        validate(&kernel, Arch::Sm86).expect("validates");
        assert_eq!(kernel.grid_size(), 2);

        let (m, n, k) = (40usize, 32, 32);
        let a = HostTensor::random(&[m, k], 71);
        let b = HostTensor::random(&[k, n], 72);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let expect = matmul_ref(&a, &b);
        let got = HostTensor::from_vec(&[m, n], out.globals[&kernel.params[2]].clone());
        got.assert_close(&expect, 1e-3);
    }

    #[test]
    fn partial_m_generates_guarded_cuda() {
        let cfg = GemmConfig {
            m: 40,
            n: 32,
            k: 16,
            bm: 32,
            bn: 32,
            bk: 16,
            wm: 32,
            wn: 32,
            swizzle: true,
        };
        let kernel = build_gemm_partial_m(&cfg, Epilogue::None);
        let cuda = graphene_codegen::generate(&kernel, Arch::Sm86).expect("codegen");
        assert!(cuda.contains("< 40) {"), "predicates against the true m:\n{cuda}");
    }

    #[test]
    fn partial_m_with_exact_m_matches_dense_kernel_results() {
        let cfg = GemmConfig::small(32, 32, 16);
        let kernel_p = build_gemm_partial_m(&cfg, Epilogue::None);
        let kernel_d = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
        let a = HostTensor::random(&[32, 16], 81);
        let b = HostTensor::random(&[16, 32], 82);
        let run = |kernel: &graphene_ir::Kernel| {
            let mut inputs = HashMap::new();
            inputs.insert(kernel.params[0], a.as_slice().to_vec());
            inputs.insert(kernel.params[1], b.as_slice().to_vec());
            graphene_sim::execute(kernel, Arch::Sm86, &inputs).unwrap().globals[&kernel.params[2]]
                .clone()
        };
        assert_eq!(run(&kernel_p), run(&kernel_d));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn scalar_load_gemm_matches_reference() {
        let cfg = GemmConfig::small(32, 32, 32);
        let kernel = build_gemm_no_ldmatrix(&cfg, Epilogue::None);
        graphene_ir::validate::validate(&kernel, Arch::Sm86).expect("validates");
        let a = HostTensor::random(&[32, 32], 201);
        let b = HostTensor::random(&[32, 32], 202);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let expect = matmul_ref(&a, &b);
        let got = HostTensor::from_vec(&[32, 32], out.globals[&kernel.params[2]].clone());
        got.assert_close(&expect, 1e-3);
    }

    #[test]
    fn scalar_loads_cost_more_smem_transactions_and_instructions() {
        // The §2 claim, mechanistically: same math, more shared-memory
        // work without ldmatrix.
        let cfg = GemmConfig::cublas_like(1024, 1024, 512);
        let with = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
        let without = build_gemm_no_ldmatrix(&cfg, Epilogue::None);
        let cw = graphene_sim::analyze(&with, Arch::Sm86).unwrap();
        let co = graphene_sim::analyze(&without, Arch::Sm86).unwrap();
        assert_eq!(cw.flops_tc, co.flops_tc, "identical math");
        assert!(co.instructions > cw.instructions, "more instructions without ldmatrix");
        assert!(
            co.smem_transactions > cw.smem_transactions,
            "more smem transactions without ldmatrix: {} vs {}",
            co.smem_transactions,
            cw.smem_transactions
        );
    }
}

#[cfg(test)]
mod parametric_tests {
    use super::*;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn parametric_m_kernel_gains_an_int_parameter() {
        let cfg = GemmConfig::small(64, 32, 16); // capacity 64 rows
        let kernel = build_gemm_parametric_m(&cfg, Epilogue::None);
        let cuda = graphene_codegen::generate(&kernel, Arch::Sm86).expect("codegen");
        assert!(cuda.contains("const int M)"), "symbolic M becomes a parameter:\n{cuda}");
        assert!(cuda.contains("< M) {"), "accesses predicated on M");
    }

    #[test]
    fn parametric_m_executes_for_multiple_bindings() {
        // One kernel, capacity 64 rows; run it for M = 40 and M = 64.
        let cfg = GemmConfig::small(64, 32, 16);
        let kernel = build_gemm_parametric_m(&cfg, Epilogue::None);
        let (cap, n, k) = (64usize, 32usize, 16usize);
        let a = HostTensor::random(&[cap, k], 301);
        let b = HostTensor::random(&[k, n], 302);
        for m in [40usize, 64] {
            let mut inputs = HashMap::new();
            inputs.insert(kernel.params[0], a.as_slice().to_vec());
            inputs.insert(kernel.params[1], b.as_slice().to_vec());
            let bindings: HashMap<String, i64> = [("M".to_string(), m as i64)].into();
            let out = graphene_sim::execute_bound(&kernel, Arch::Sm86, &inputs, &bindings)
                .expect("execute");
            let got = &out.globals[&kernel.params[2]];
            let a_m = HostTensor::from_vec(&[m, k], a.as_slice()[..m * k].to_vec());
            let expect = matmul_ref(&a_m, &b);
            for r in 0..m {
                for cidx in 0..n {
                    let g = got[r * n + cidx];
                    let e = expect.at(r, cidx);
                    assert!((g - e).abs() < 1e-3, "M={m} ({r},{cidx}): {g} vs {e}");
                }
            }
            // Rows beyond M stay untouched (zero).
            for r in m..cap {
                for cidx in 0..n {
                    assert_eq!(got[r * n + cidx], 0.0, "row {r} must be unwritten");
                }
            }
        }
    }

    #[test]
    fn parametric_m_analysis_with_bindings() {
        let cfg = GemmConfig::small(64, 32, 16);
        let kernel = build_gemm_parametric_m(&cfg, Epilogue::None);
        let bindings: HashMap<String, i64> = [("M".to_string(), 40i64)].into();
        let c = graphene_sim::analyze_bound(&kernel, Arch::Sm86, &bindings).expect("analyze");
        assert!(c.flops_tc > 0);
    }
}

#[cfg(test)]
mod batched_tests {
    use super::*;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn batched_gemm_computes_independent_products() {
        let cfg = GemmConfig::small(32, 32, 16);
        let batch = 3i64;
        let kernel = build_batched_gemm(Arch::Sm86, &cfg, batch);
        graphene_ir::validate::validate(&kernel, Arch::Sm86).expect("validates");
        assert_eq!(kernel.grid_size(), 3);

        let (m, n, k, bsz) = (32usize, 32usize, 16usize, 3usize);
        let a = HostTensor::random(&[bsz * m, k], 401);
        let b = HostTensor::random(&[bsz * k, n], 402);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let got = &out.globals[&kernel.params[2]];
        for i in 0..bsz {
            let ai =
                HostTensor::from_vec(&[m, k], a.as_slice()[i * m * k..(i + 1) * m * k].to_vec());
            let bi =
                HostTensor::from_vec(&[k, n], b.as_slice()[i * k * n..(i + 1) * k * n].to_vec());
            let expect = matmul_ref(&ai, &bi);
            let gi = HostTensor::from_vec(&[m, n], got[i * m * n..(i + 1) * m * n].to_vec());
            gi.assert_close(&expect, 1e-3);
        }
    }

    #[test]
    fn batched_gemm_single_launch_counts_whole_batch() {
        let cfg = GemmConfig::cublas_like(384, 384, 128);
        let kernel = build_batched_gemm(Arch::Sm86, &cfg, 8);
        let c = graphene_sim::analyze(&kernel, Arch::Sm86).unwrap();
        assert_eq!(c.flops_tc, 8 * 2 * 384 * 384 * 128);
    }
}

#[cfg(test)]
mod double_buffer_tests {
    use super::*;
    use graphene_sim::host::{matmul_ref, HostTensor};
    use std::collections::HashMap;

    fn run_db(m: i64, n: i64, k: i64, bk: i64) {
        let cfg = GemmConfig { m, n, k, bm: 32, bn: 32, bk, wm: 32, wn: 32, swizzle: true };
        let kernel = build_gemm_double_buffered(&cfg, Epilogue::None);
        graphene_ir::validate::validate(&kernel, Arch::Sm86).expect("validates");
        // Double the single-buffer shared footprint.
        assert_eq!(kernel.shared_bytes(), 2 * ((32 * bk + bk * 32) as u64 * 2));
        let (mu, nu, ku) = (m as usize, n as usize, k as usize);
        let a = HostTensor::random(&[mu, ku], 501);
        let b = HostTensor::random(&[ku, nu], 502);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], a.as_slice().to_vec());
        inputs.insert(kernel.params[1], b.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let expect = matmul_ref(&a, &b);
        let got = HostTensor::from_vec(&[mu, nu], out.globals[&kernel.params[2]].clone());
        got.assert_close(&expect, 1e-3);
    }

    #[test]
    fn double_buffered_even_slices() {
        run_db(32, 32, 64, 16); // 4 K-slices
    }

    #[test]
    fn double_buffered_odd_slices() {
        run_db(32, 32, 48, 16); // 3 K-slices: the tail guard path
    }

    #[test]
    fn double_buffered_counters_match_single_buffer() {
        // Same math and traffic; only the buffering differs. Measured
        // via execution (the static analysis over-approximates guarded
        // pipeline stages, paper §3.4 over-approximation).
        let cfg = GemmConfig {
            m: 64,
            n: 64,
            k: 64,
            bm: 32,
            bn: 32,
            bk: 16,
            wm: 32,
            wn: 32,
            swizzle: true,
        };
        let single = build_gemm(Arch::Sm86, &cfg, Epilogue::None);
        let double = build_gemm_double_buffered(&cfg, Epilogue::None);
        let run = |k: &graphene_ir::Kernel| {
            graphene_sim::execute(k, Arch::Sm86, &HashMap::new()).unwrap().counters
        };
        let (cs, cd) = (run(&single), run(&double));
        assert_eq!(cs.flops_tc, cd.flops_tc);
        assert_eq!(cs.global_read_bytes, cd.global_read_bytes);
        assert_eq!(cs.smem_read_bytes, cd.smem_read_bytes);
        assert_eq!(cs.smem_write_bytes, cd.smem_write_bytes);
    }
}
