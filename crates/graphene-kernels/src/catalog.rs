//! The named-kernel catalog: one shared front door for every surface
//! that builds a paper kernel from *stringly* options — the CLI
//! sub-commands and the serve daemon's wire requests both delegate
//! here, so a kernel built from `graphene run gemm --m 256` and one
//! built from `{"cmd":"run","kernel":"gemm","m":256}` are the same
//! kernel by construction (and therefore execute bit-identically).
//!
//! Besides the kernel itself, [`build_named`] returns a canonical
//! *problem key* summarizing every size option that shaped the build.
//! Resident caches (the daemon's plan/trace caches) must key on it:
//! grid/block dimensions alone are not injective — two different GEMM
//! problems can share a launch shape — so a cache keyed only on the
//! launch would serve the wrong trace.

use crate::fmha::FmhaConfig;
use crate::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use crate::layernorm::{build_layernorm, LayernormConfig};
use crate::lstm::{build_fused_lstm, LstmConfig};
use crate::mlp::{build_fused_mlp, MlpConfig};
use crate::softmax::{build_softmax, SoftmaxConfig};
use graphene_ir::{Arch, Kernel};
use std::collections::HashMap;

/// A catalog-built kernel plus its canonical problem key.
#[derive(Debug)]
pub struct NamedKernel {
    /// The built kernel.
    pub kernel: Kernel,
    /// Canonical problem key: every consumed size option, in a fixed
    /// order (e.g. `m256_n256_k64_none`). Cache keys include it.
    pub problem: String,
}

/// Reads `--key` as an integer with a default.
///
/// # Errors
///
/// Non-integer values report the offending key and value.
pub fn opt_int(opts: &HashMap<String, String>, key: &str, default: i64) -> Result<i64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

/// Parses an `--epilogue` option value.
///
/// # Errors
///
/// Unknown epilogue names.
pub fn parse_epilogue(value: Option<&str>) -> Result<Epilogue, String> {
    match value {
        None | Some("none") => Ok(Epilogue::None),
        Some("bias") => Ok(Epilogue::Bias),
        Some("relu") => Ok(Epilogue::Relu),
        Some("bias+relu") => Ok(Epilogue::BiasRelu),
        Some("bias+gelu") => Ok(Epilogue::BiasGelu),
        Some(other) => Err(format!("unknown epilogue `{other}`")),
    }
}

/// Short label of an epilogue, for problem keys.
fn epilogue_label(e: Epilogue) -> &'static str {
    match e {
        Epilogue::None => "none",
        Epilogue::Bias => "bias",
        Epilogue::Relu => "relu",
        Epilogue::BiasRelu => "bias+relu",
        Epilogue::BiasGelu => "bias+gelu",
    }
}

/// Builds the kernel `name` names from string options, applying the
/// same defaults and validity checks for every caller.
///
/// Recognized names: `gemm`, `gemm-db`, `mlp`, `lstm`, `layernorm`,
/// `softmax`, `fmha`.
///
/// # Errors
///
/// A user-facing message for unknown names, malformed options, or
/// shape/arch combinations the schedule cannot lower.
pub fn build_named(
    name: &str,
    arch: Arch,
    opts: &HashMap<String, String>,
) -> Result<NamedKernel, String> {
    let int = |key: &str, default: i64| opt_int(opts, key, default);
    match name {
        "gemm" | "gemm-db" => {
            let (m, n, k) = (int("m", 1024)?, int("n", 1024)?, int("k", 1024)?);
            let epilogue = parse_epilogue(opts.get("epilogue").map(String::as_str))?;
            let cfg = GemmConfig::cublas_like(m, n, k);
            if m % cfg.bm != 0 || n % cfg.bn != 0 || k % cfg.bk != 0 {
                return Err(format!("gemm sizes must tile by {}x{}x{}", cfg.bm, cfg.bn, cfg.bk));
            }
            let problem = format!("m{m}_n{n}_k{k}_{}", epilogue_label(epilogue));
            if name == "gemm-db" {
                if arch != Arch::Sm86 {
                    return Err(
                        "the double-buffered GEMM schedule targets Ampere (use --arch sm86)".into(),
                    );
                }
                Ok(NamedKernel { kernel: build_gemm_double_buffered(&cfg, epilogue), problem })
            } else {
                Ok(NamedKernel { kernel: build_gemm(arch, &cfg, epilogue), problem })
            }
        }
        "mlp" => {
            let cfg = MlpConfig::paper(int("m", 4096)?, int("layers", 4)?);
            let cfg = MlpConfig { hidden: int("hidden", 128)?, ..cfg };
            let problem = format!("m{}_hidden{}_layers{}", cfg.m, cfg.hidden, cfg.layers);
            Ok(NamedKernel { kernel: build_fused_mlp(arch, &cfg), problem })
        }
        "lstm" => {
            let cfg = LstmConfig::paper(int("m", 4096)?);
            let cfg = LstmConfig { hidden: int("hidden", 128)?, ..cfg };
            let problem = format!("m{}_hidden{}", cfg.m, cfg.hidden);
            Ok(NamedKernel { kernel: build_fused_lstm(arch, &cfg), problem })
        }
        "layernorm" => {
            let (rows, hidden) = (int("rows", 4096)?, int("hidden", 1024)?);
            if hidden % 256 != 0 {
                return Err(format!("layernorm --hidden must be a multiple of 256, got {hidden}"));
            }
            if rows % 4 != 0 {
                return Err(format!("layernorm --rows must be a multiple of 4, got {rows}"));
            }
            let cfg = LayernormConfig::new(rows, hidden);
            let problem = format!("rows{rows}_hidden{hidden}");
            Ok(NamedKernel { kernel: build_layernorm(arch, &cfg), problem })
        }
        "softmax" => {
            let (rows, cols) = (int("rows", 4096)?, int("cols", 1024)?);
            if cols % 256 != 0 {
                return Err(format!("softmax --cols must be a multiple of 256, got {cols}"));
            }
            if rows % 4 != 0 {
                return Err(format!("softmax --rows must be a multiple of 4, got {rows}"));
            }
            let cfg = SoftmaxConfig::new(rows, cols);
            let problem = format!("rows{rows}_cols{cols}");
            Ok(NamedKernel { kernel: build_softmax(arch, &cfg), problem })
        }
        "fmha" => {
            if arch != Arch::Sm86 {
                return Err("the fused FMHA schedule targets Ampere (use --arch sm86)".into());
            }
            let base = FmhaConfig::mlperf_bert();
            let cfg = FmhaConfig {
                heads: int("heads", base.heads)?,
                seq: int("seq", base.seq)?,
                d: int("d", base.d)?,
                ..base
            };
            if cfg.seq % cfg.bq != 0 || cfg.d % 16 != 0 || cfg.seq % 16 != 0 {
                return Err(format!(
                    "fmha requires seq % {} == 0 and d % 16 == 0 (got seq {}, d {})",
                    cfg.bq, cfg.seq, cfg.d
                ));
            }
            let problem = format!("heads{}_seq{}_d{}", cfg.heads, cfg.seq, cfg.d);
            Ok(NamedKernel { kernel: crate::fmha::build_fused_fmha(Arch::Sm86, &cfg), problem })
        }
        other => {
            Err(format!("unknown kernel `{other}` (gemm|gemm-db|mlp|lstm|layernorm|softmax|fmha)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn problem_keys_distinguish_same_launch_shapes() {
        // Same grid/block for both, different problems: the key must
        // differ or a resident trace cache would serve the wrong trace.
        let a = build_named("gemm", Arch::Sm86, &opts(&[("m", "1024"), ("n", "256"), ("k", "64")]))
            .unwrap();
        let b = build_named("gemm", Arch::Sm86, &opts(&[("m", "256"), ("n", "1024"), ("k", "64")]))
            .unwrap();
        assert_eq!(a.kernel.grid_size(), b.kernel.grid_size());
        assert_ne!(a.problem, b.problem);
    }

    #[test]
    fn epilogue_is_part_of_the_problem_key() {
        let o = opts(&[("m", "256"), ("n", "256"), ("k", "64")]);
        let mut oe = o.clone();
        oe.insert("epilogue".into(), "bias+relu".into());
        let plain = build_named("gemm", Arch::Sm86, &o).unwrap();
        let fused = build_named("gemm", Arch::Sm86, &oe).unwrap();
        assert_ne!(plain.problem, fused.problem);
    }

    #[test]
    fn errors_match_the_cli_contract() {
        assert!(build_named("frobnicate", Arch::Sm86, &opts(&[]))
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(build_named("gemm", Arch::Sm86, &opts(&[("m", "100")]))
            .unwrap_err()
            .contains("must tile by"));
        assert!(build_named("fmha", Arch::Sm70, &opts(&[])).unwrap_err().contains("Ampere"));
        assert!(build_named("layernorm", Arch::Sm86, &opts(&[("hidden", "100")]))
            .unwrap_err()
            .contains("multiple of 256"));
        assert!(build_named("gemm", Arch::Sm86, &opts(&[("m", "abc")]))
            .unwrap_err()
            .contains("expects an integer"));
    }

    #[test]
    fn every_catalog_kernel_builds() {
        let cases: &[(&str, &[(&str, &str)])] = &[
            ("gemm", &[("m", "256"), ("n", "256"), ("k", "64")]),
            ("gemm-db", &[("m", "256"), ("n", "256"), ("k", "64")]),
            ("mlp", &[("m", "256"), ("layers", "2")]),
            ("lstm", &[("m", "256")]),
            ("layernorm", &[("rows", "64"), ("hidden", "512")]),
            ("softmax", &[("rows", "64"), ("cols", "512")]),
            ("fmha", &[]),
        ];
        for (name, o) in cases {
            let nk = build_named(name, Arch::Sm86, &opts(o))
                .unwrap_or_else(|e| panic!("{name} failed: {e}"));
            assert!(!nk.problem.is_empty());
        }
    }
}
