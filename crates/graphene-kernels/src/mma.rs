//! Reusable warp-level MMA building blocks.
//!
//! The inner machinery of the optimized GEMM — fragment loads from
//! shared memory plus tensor-core MMAs, and the epilogue/store of the
//! fp32 accumulators — factored out so the fused kernels (MLP, LSTM,
//! FMHA; paper Figures 11/12/14) can run *block-level GEMMs between
//! shared-memory tensors* inside a single kernel. This is precisely what
//! makes Graphene's fusions expressible: the same decomposable specs
//! compose whether their operands live in global or shared memory.

use crate::common::{reg_scalar, reg_vec};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::{Elem, TensorId, TensorType};
use graphene_ir::threads::ThreadId;
use graphene_ir::{BinaryOp, ScalarType, UnaryOp};
use graphene_layout::{it, Layout, Swizzle};
use graphene_sym::IntExpr;

/// Geometry of a block-level `bm × bn × k_cols` MMA over shared tiles.
#[derive(Debug, Clone, Copy)]
pub struct MmaGeom {
    /// Block tile rows (As has `bm` rows).
    pub bm: i64,
    /// Block tile columns (Bs has `bn` columns).
    pub bn: i64,
    /// Warp tile rows.
    pub wm: i64,
    /// Warp tile columns.
    pub wn: i64,
    /// K extent held in shared memory (As is `[bm, k_cols]`, Bs is
    /// `[k_cols, bn]`).
    pub k_cols: i64,
}

impl MmaGeom {
    /// Warps per block for this geometry.
    pub fn warps(&self) -> i64 {
        (self.bm / self.wm) * (self.bn / self.wn)
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.warps() * 32
    }
}

/// Per-warp index expressions shared by the emitters.
pub struct WarpCtx {
    /// Lane within the warp.
    pub lane: IntExpr,
    /// Warp-row id.
    pub wm_id: IntExpr,
    /// Warp-column id.
    pub wn_id: IntExpr,
}

impl WarpCtx {
    /// Computes the warp decomposition of the block's threads.
    pub fn new(kb: &KernelBuilder, block: ThreadId, geom: &MmaGeom) -> Self {
        let tid = kb.module()[block].hw_var();
        let lane = tid.clone() % 32;
        let warp_id = tid / 32;
        let wn_cnt = geom.bn / geom.wn;
        WarpCtx { lane, wm_id: warp_id.clone() / wn_cnt, wn_id: warp_id % wn_cnt }
    }
}

/// Emits the Ampere fragment-load + `mma.m16n8k16` sequence computing
/// `acc += As × Bs` over the full `k_cols` of the shared tiles.
///
/// `a_frags`/`b_frags` are reusable per-thread fragment registers
/// (allocated by the caller with [`crate::common::a_frags_type`] /
/// [`crate::common::b_frags_type`] for `wm/16` and `wn/8` fragments).
#[allow(clippy::too_many_arguments)]
pub fn emit_warp_mma_ampere(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    warp: ThreadId,
    ctx: &WarpCtx,
    a_s: TensorId,
    b_s: TensorId,
    acc: TensorId,
    a_frags: TensorId,
    b_frags: TensorId,
    geom: &MmaGeom,
) {
    let (mi_cnt, ni_cnt, kf_cnt) = (geom.wm / 16, geom.wn / 8, geom.k_cols / 16);
    let as_vec8 = kb.tile_c(a_s, &[Some(1), Some(8)]).expect("As rows");
    let bs_vec8 = kb.tile_c(b_s, &[Some(1), Some(8)]).expect("Bs rows");
    let lane = &ctx.lane;

    for kf in 0..kf_cnt {
        for mi in 0..mi_cnt {
            // ldmatrix.x4: 2x2 logical groups arranged column-major over
            // the 16x16 A tile so register pairs line up with the mma
            // A fragment.
            let row = ctx.wm_id.clone() * geom.wm
                + mi * 16
                + ((lane.clone() / 8) % 2) * 8
                + lane.clone() % 8;
            let colgrp = IntExpr::constant(kf * 2) + lane.clone() / 16;
            let src = kb.index(as_vec8, &[row, colgrp]);
            let dst = kb.index(a_frags, &[IntExpr::constant(mi)]);
            kb.spec(SpecKind::Move, vec![grid, warp], vec![src], vec![dst]);
        }
        // B fragments: ldmatrix.x4.trans loads two adjacent 8-column
        // tiles per instruction (all 32 lane addresses useful); an odd
        // trailing tile falls back to ldmatrix.x2.trans.
        let mut ni = 0;
        while ni < ni_cnt {
            if ni + 1 < ni_cnt {
                let row =
                    IntExpr::constant(kf * 16) + ((lane.clone() / 8) % 2) * 8 + lane.clone() % 8;
                let colgrp = ctx.wn_id.clone() * (geom.wn / 8) + ni + lane.clone() / 16;
                let src = kb.index(bs_vec8, &[row, colgrp]);
                let dst = kb.view_as(
                    b_frags,
                    crate::common::frag_b_pair_type(),
                    IntExpr::constant(ni * 4),
                );
                kb.spec(SpecKind::Move, vec![grid, warp], vec![src], vec![dst]);
                ni += 2;
            } else {
                let row = IntExpr::constant(kf * 16) + lane.clone() % 16;
                let colgrp = ctx.wn_id.clone() * (geom.wn / 8) + ni;
                let src = kb.index(bs_vec8, &[row, colgrp]);
                let dst = kb.index(b_frags, &[IntExpr::constant(ni)]);
                kb.spec(SpecKind::Move, vec![grid, warp], vec![src], vec![dst]);
                ni += 1;
            }
        }
        for mi in 0..mi_cnt {
            for ni in 0..ni_cnt {
                let af = kb.index(a_frags, &[IntExpr::constant(mi)]);
                let bf = kb.index(b_frags, &[IntExpr::constant(ni)]);
                let cf = kb.index(acc, &[IntExpr::constant(mi), IntExpr::constant(ni)]);
                kb.spec(SpecKind::MatMul, vec![grid, warp], vec![af, bf], vec![cf]);
            }
        }
    }
}

/// The ablation variant of [`emit_warp_mma_ampere`]: fragment loads use
/// per-thread scalar `ld.shared` instructions instead of the collective
/// `ldmatrix` — the "equivalent but simpler data movements" of the
/// paper's §2, which reports GEMM slowdowns of up to 17% from this
/// substitution. Used by the `ldmatrix_ablation` bench.
#[allow(clippy::too_many_arguments)]
pub fn emit_warp_mma_ampere_scalar_loads(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    warp: ThreadId,
    ctx: &WarpCtx,
    a_s: TensorId,
    b_s: TensorId,
    acc: TensorId,
    a_frags: TensorId,
    b_frags: TensorId,
    geom: &MmaGeom,
) {
    use graphene_ir::atomic::fragments as frag;
    let (mi_cnt, ni_cnt, kf_cnt) = (geom.wm / 16, geom.wn / 8, geom.k_cols / 16);
    let lane = &ctx.lane;

    for kf in 0..kf_cnt {
        for mi in 0..mi_cnt {
            // Eight scalar loads per thread, one per fragment value, at
            // the exact positions the mma A fragment prescribes.
            for v in 0..8usize {
                // Fragment position for a generic lane: express row/col
                // as lane expressions mirroring fragments::mma_16816_a.
                let (r0, c0) = frag::mma_16816_a(0, v);
                let row = ctx.wm_id.clone() * geom.wm
                    + mi * 16
                    + lane.clone() / 4
                    + IntExpr::constant(r0 as i64);
                let col = IntExpr::constant(kf * 16)
                    + (lane.clone() % 4) * 2
                    + IntExpr::constant(c0 as i64);
                let src = kb.index(a_s, &[row, col]);
                let dst = kb.view_as(
                    a_frags,
                    reg_scalar(ScalarType::F16),
                    IntExpr::constant(mi * 8 + v as i64),
                );
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
            }
        }
        for ni in 0..ni_cnt {
            for v in 0..4usize {
                let (k0, _n0) = frag::mma_16816_b(0, v);
                let row = IntExpr::constant(kf * 16)
                    + (lane.clone() % 4) * 2
                    + IntExpr::constant(k0 as i64);
                let col = ctx.wn_id.clone() * geom.wn + ni * 8 + lane.clone() / 4;
                let src = kb.index(b_s, &[row, col]);
                let dst = kb.view_as(
                    b_frags,
                    reg_scalar(ScalarType::F16),
                    IntExpr::constant(ni * 4 + v as i64),
                );
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
            }
        }
        for mi in 0..mi_cnt {
            for ni in 0..ni_cnt {
                let af = kb.index(a_frags, &[IntExpr::constant(mi)]);
                let bf = kb.index(b_frags, &[IntExpr::constant(ni)]);
                let cf = kb.index(acc, &[IntExpr::constant(mi), IntExpr::constant(ni)]);
                kb.spec(SpecKind::MatMul, vec![grid, warp], vec![af, bf], vec![cf]);
            }
        }
    }
}

/// Where the epilogue writes the accumulator.
#[derive(Debug, Clone)]
pub enum StoreTarget {
    /// Into a global fp16 tensor at `(row0 + r, col0 + c)`.
    Global {
        /// The destination tensor.
        tensor: TensorId,
        /// Row offset of the block tile.
        row0: IntExpr,
        /// Column offset of the block tile.
        col0: IntExpr,
    },
    /// Into a `[bm, bn]` fp16 shared tensor (fused kernels keep
    /// intermediate activations on-chip — the heart of Figures 11/12/14).
    Shared {
        /// The destination tensor.
        tensor: TensorId,
    },
}

/// Optional pointwise epilogue applied to the accumulator before the
/// store.
#[derive(Debug, Clone)]
pub struct EpilogueOps {
    /// Row-broadcast bias (a 1-D fp16 global tensor) with a column
    /// offset: element `bias[bias_col0 + c]` is added to column `c`.
    pub bias: Option<(TensorId, IntExpr)>,
    /// Activation applied after the bias.
    pub activation: Option<UnaryOp>,
    /// Scale every element by a constant before bias/activation
    /// (attention's `1/sqrt(d)`).
    pub scale: Option<f64>,
}

impl EpilogueOps {
    /// No epilogue.
    pub fn none() -> Self {
        EpilogueOps { bias: None, activation: None, scale: None }
    }
}

/// Emits the Ampere epilogue + store of a `wm/16 × wn/8` accumulator:
/// per fragment row-half, a `[2]`-wide fp32 pair is (optionally) scaled,
/// biased and activated, then stored converted to fp16.
#[allow(clippy::too_many_arguments)]
pub fn emit_epilogue_store_ampere(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    ctx: &WarpCtx,
    acc: TensorId,
    geom: &MmaGeom,
    ops: &EpilogueOps,
    target: &StoreTarget,
) {
    let (mi_cnt, ni_cnt) = (geom.wm / 16, geom.wn / 8);
    let lane = &ctx.lane;
    let dst_vec2 = match target {
        StoreTarget::Global { tensor, .. } | StoreTarget::Shared { tensor } => {
            kb.tile_c(*tensor, &[Some(1), Some(2)]).expect("dst pairs")
        }
    };
    let bias_vec2 = ops.bias.as_ref().map(|(b, _)| kb.tile_c(*b, &[Some(2)]).expect("bias pairs"));

    for ni in 0..ni_cnt {
        for vp in 0..2i64 {
            let col_in_block = ctx.wn_id.clone() * geom.wn + ni * 8 + (lane.clone() % 4) * 2;
            let bias_reg = ops.bias.as_ref().map(|(_, bias_col0)| {
                let r = kb.alloc_reg(format!("biasr_{ni}_{vp}"), reg_vec(2, ScalarType::F32));
                let bsrc =
                    kb.index(bias_vec2.unwrap(), &[(bias_col0.clone() + col_in_block.clone()) / 2]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![bsrc], vec![r]);
                r
            });
            for mi in 0..mi_cnt {
                let pair = kb.view_as(
                    acc,
                    reg_vec(2, ScalarType::F32),
                    IntExpr::constant(mi * ni_cnt * 4 + ni * 4 + vp * 2),
                );
                if let Some(s) = ops.scale {
                    let sreg =
                        kb.alloc_reg(format!("scale_{ni}_{vp}_{mi}"), reg_vec(2, ScalarType::F32));
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::Init { value: s }, vec![grid, ts], vec![], vec![sreg]);
                    let ts = kb.thread_scalar(block);
                    kb.spec(
                        SpecKind::BinaryPointwise(BinaryOp::Mul),
                        vec![grid, ts],
                        vec![pair, sreg],
                        vec![pair],
                    );
                }
                if let Some(br) = bias_reg {
                    let ts = kb.thread_scalar(block);
                    kb.spec(
                        SpecKind::BinaryPointwise(BinaryOp::Add),
                        vec![grid, ts],
                        vec![pair, br],
                        vec![pair],
                    );
                }
                if let Some(act) = ops.activation {
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::UnaryPointwise(act), vec![grid, ts], vec![pair], vec![pair]);
                }
                let row_in_block =
                    ctx.wm_id.clone() * geom.wm + mi * 16 + lane.clone() / 4 + vp * 8;
                let (row, col) = match target {
                    StoreTarget::Global { row0, col0, .. } => {
                        (row0.clone() + row_in_block, col0.clone() + col_in_block.clone())
                    }
                    StoreTarget::Shared { .. } => (row_in_block, col_in_block.clone()),
                };
                let dst = kb.index(dst_vec2, &[row, col / 2]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![pair], vec![dst]);
            }
        }
    }
}

/// Emits the Volta fragment-load + quad-pair `mma.m8n8k4` sequence
/// computing `acc += Asᵀ × Bs` over `k_cols` (paper Figure 6 quad-pairs).
///
/// `a_s` holds the A tile **transposed** (`[k_cols, bm]`) so each
/// thread's 4-row A fragment is one vectorised shared-memory load —
/// the standard Volta-era layout trick. Fragments are loaded once per
/// `(mi, kf)` / `(ni, kf)` and reused across the warp tile; the caller
/// allocates `a_regs`/`b_regs` with `4 * wm/16` and `4 * wn/16`
/// fp16 values.
#[allow(clippy::too_many_arguments)]
pub fn emit_warp_mma_volta(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    qp: ThreadId,
    ctx: &WarpCtx,
    a_s: TensorId,
    b_s: TensorId,
    acc: TensorId,
    a_regs: TensorId,
    b_regs: TensorId,
    geom: &MmaGeom,
) {
    let (mi_cnt, ni_cnt, kf_cnt) = (geom.wm / 16, geom.wn / 16, geom.k_cols / 4);
    let lane = &ctx.lane;
    let qp_id = (lane.clone() % 16) / 4;
    let (qpm, qpn) = (qp_id.clone() % 2, qp_id / 2);
    let as_vec4 = kb.tile_c(a_s, &[Some(1), Some(4)]).expect("As^T quads");
    let bs_vec4 = kb.tile_c(b_s, &[Some(1), Some(4)]).expect("Bs quads");

    for kf in 0..kf_cnt {
        // A fragments: one [4]-wide load per (mi, kf), reused over ni.
        for mi in 0..mi_cnt {
            let m_base = ctx.wm_id.clone() * geom.wm + mi * 16 + qpm.clone() * 8;
            let colk = IntExpr::constant(kf * 4) + lane.clone() % 4;
            let mcol4 = (m_base.clone() + (lane.clone() / 16) * 4) / 4;
            let src = kb.index(as_vec4, &[colk, mcol4]);
            let dst = kb.view_as(a_regs, reg_vec(4, ScalarType::F16), IntExpr::constant(mi * 4));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
        }
        // B fragments: one [4]-wide load per (ni, kf), reused over mi.
        for ni in 0..ni_cnt {
            let n_base = ctx.wn_id.clone() * geom.wn + ni * 16 + qpn.clone() * 8;
            let brow = IntExpr::constant(kf * 4) + lane.clone() % 4;
            let bcol4 = (n_base.clone() + (lane.clone() / 16) * 4) / 4;
            let src = kb.index(bs_vec4, &[brow, bcol4]);
            let dst = kb.view_as(b_regs, reg_vec(4, ScalarType::F16), IntExpr::constant(ni * 4));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
        }
        for mi in 0..mi_cnt {
            for ni in 0..ni_cnt {
                let a_op = kb.view_as(a_regs, volta_a_ty(), IntExpr::constant(mi * 4));
                let b_op = kb.view_as(b_regs, volta_b_ty(), IntExpr::constant(ni * 4));
                let cf = kb.index(acc, &[IntExpr::constant(mi), IntExpr::constant(ni)]);
                kb.spec(SpecKind::MatMul, vec![grid, qp], vec![a_op, b_op], vec![cf]);
            }
        }
    }
}

/// The `[4,1].fp16` A-operand view of `mma.m8n8k4` (Table 2).
pub fn volta_a_ty() -> TensorType {
    TensorType {
        layout: Layout::new(it![4, 1], it![1, 0]),
        elem: Elem::Scalar(ScalarType::F16),
        swizzle: Swizzle::identity(),
    }
}

/// The `[1,4].fp16` B-operand view of `mma.m8n8k4` (Table 2).
pub fn volta_b_ty() -> TensorType {
    TensorType {
        layout: Layout::new(it![1, 4], it![0, 1]),
        elem: Elem::Scalar(ScalarType::F16),
        swizzle: Swizzle::identity(),
    }
}

/// The per-thread `[2,4].fp32` C fragment of `mma.m8n8k4` (Table 2).
pub fn volta_frag_c_ty() -> TensorType {
    TensorType::row_major(&[2, 4], ScalarType::F32)
}

/// An accumulator root of `mi × ni` Volta C fragments (8 fp32 each).
pub fn volta_acc_ty(mi: i64, ni: i64) -> TensorType {
    use graphene_layout::IntTuple;
    TensorType {
        layout: Layout::new(
            IntTuple::Tuple(vec![IntTuple::Int(mi), IntTuple::Int(ni)]),
            IntTuple::Tuple(vec![IntTuple::Int(ni * 8), IntTuple::Int(8)]),
        ),
        elem: Elem::Tile(Box::new(volta_frag_c_ty())),
        swizzle: Swizzle::identity(),
    }
}

/// Emits the Volta epilogue + store (each thread owns 2 rows × 4
/// contiguous columns per fragment).
#[allow(clippy::too_many_arguments)]
pub fn emit_epilogue_store_volta(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    ctx: &WarpCtx,
    acc: TensorId,
    geom: &MmaGeom,
    ops: &EpilogueOps,
    target: &StoreTarget,
) {
    let (mi_cnt, ni_cnt) = (geom.wm / 16, geom.wn / 16);
    let lane = &ctx.lane;
    let qp_id = (lane.clone() % 16) / 4;
    let (qpm, qpn) = (qp_id.clone() % 2, qp_id / 2);
    // Global stores are 4-wide row segments; shared stores write the
    // tile *transposed* ([bn, bm], scalar stores) so the next fused GEMM
    // pass can consume it as a Volta A operand.
    let dst_vec4 = match target {
        StoreTarget::Global { tensor, .. } => {
            Some(kb.tile_c(*tensor, &[Some(1), Some(4)]).expect("dst quads"))
        }
        StoreTarget::Shared { .. } => None,
    };
    let bias_vec4 = ops.bias.as_ref().map(|(b, _)| kb.tile_c(*b, &[Some(4)]).expect("bias quads"));

    for mi in 0..mi_cnt {
        for ni in 0..ni_cnt {
            let m_base = ctx.wm_id.clone() * geom.wm + mi * 16 + qpm.clone() * 8;
            let n_base = ctx.wn_id.clone() * geom.wn + ni * 16 + qpn.clone() * 8;
            let col_base = n_base.clone() + (lane.clone() / 16) * 4;
            let bias_reg = ops.bias.as_ref().map(|(_, bias_col0)| {
                let r = kb.alloc_reg(format!("biasr_{mi}_{ni}"), reg_vec(4, ScalarType::F32));
                let bsrc =
                    kb.index(bias_vec4.unwrap(), &[(bias_col0.clone() + col_base.clone()) / 4]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![bsrc], vec![r]);
                r
            });
            for h in 0..2i64 {
                let quad = kb.view_as(
                    acc,
                    reg_vec(4, ScalarType::F32),
                    IntExpr::constant(mi * ni_cnt * 8 + ni * 8 + h * 4),
                );
                if let Some(s) = ops.scale {
                    let sreg =
                        kb.alloc_reg(format!("scale_{mi}_{ni}_{h}"), reg_vec(4, ScalarType::F32));
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::Init { value: s }, vec![grid, ts], vec![], vec![sreg]);
                    let ts = kb.thread_scalar(block);
                    kb.spec(
                        SpecKind::BinaryPointwise(BinaryOp::Mul),
                        vec![grid, ts],
                        vec![quad, sreg],
                        vec![quad],
                    );
                }
                if let Some(br) = bias_reg {
                    let ts = kb.thread_scalar(block);
                    kb.spec(
                        SpecKind::BinaryPointwise(BinaryOp::Add),
                        vec![grid, ts],
                        vec![quad, br],
                        vec![quad],
                    );
                }
                if let Some(act) = ops.activation {
                    let ts = kb.thread_scalar(block);
                    kb.spec(SpecKind::UnaryPointwise(act), vec![grid, ts], vec![quad], vec![quad]);
                }
                let row_in_block = m_base.clone() + (lane.clone() % 4) * 2 + h;
                match target {
                    StoreTarget::Global { tensor: _, row0, col0 } => {
                        let row = row0.clone() + row_in_block;
                        let col = col0.clone() + col_base.clone();
                        let dst = kb.index(dst_vec4.unwrap(), &[row, col / 4]);
                        let ts = kb.thread_scalar(block);
                        kb.spec(SpecKind::Move, vec![grid, ts], vec![quad], vec![dst]);
                    }
                    StoreTarget::Shared { tensor } => {
                        for j in 0..4i64 {
                            let slot =
                                kb.view_as(quad, reg_scalar(ScalarType::F32), IntExpr::constant(j));
                            let dst =
                                kb.index(*tensor, &[col_base.clone() + j, row_in_block.clone()]);
                            let ts = kb.thread_scalar(block);
                            kb.spec(SpecKind::Move, vec![grid, ts], vec![slot], vec![dst]);
                        }
                    }
                }
            }
        }
    }
}
