//! Shared schedule-building helpers: fragment register types, staging of
//! global tiles into shared memory, and warp-level reductions.

use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::{Elem, TensorId, TensorType};
use graphene_ir::threads::ThreadId;
use graphene_ir::{Arch, BinaryOp, ReduceOp, ScalarType};
use graphene_layout::{it, IntTuple, Layout, Swizzle};
use graphene_sym::IntExpr;

/// The per-thread A fragment of `mma.m16n8k16`: `[2,2].[1,2].fp16.RF`
/// (Table 2) — 8 contiguous fp16 register values.
pub fn frag_a_type() -> TensorType {
    TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![1, 2], it![0, 1]),
            elem: Elem::Scalar(ScalarType::F16),
            swizzle: Swizzle::identity(),
        })),
        swizzle: Swizzle::identity(),
    }
}

/// The per-thread B fragment of `mma.m16n8k16`: `[2,1].[2,1].fp16.RF` —
/// 4 contiguous fp16 values (also the destination fragment of
/// `ldmatrix.x2.trans`).
pub fn frag_b_type() -> TensorType {
    TensorType {
        layout: Layout::new(it![2, 1], it![2, 0]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![2, 1], it![1, 0]),
            elem: Elem::Scalar(ScalarType::F16),
            swizzle: Swizzle::identity(),
        })),
        swizzle: Swizzle::identity(),
    }
}

/// The destination fragment of `ldmatrix.x4.trans`: two adjacent B
/// fragments (`[2,2].[2,1].fp16.RF`, 8 contiguous fp16 values).
pub fn frag_b_pair_type() -> TensorType {
    TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![2, 1], it![1, 0]),
            elem: Elem::Scalar(ScalarType::F16),
            swizzle: Swizzle::identity(),
        })),
        swizzle: Swizzle::identity(),
    }
}

/// The per-thread C/D accumulator fragment of `mma.m16n8k16`:
/// `[2,1].[1,2].fp32.RF` — 4 contiguous fp32 values.
pub fn frag_c_type() -> TensorType {
    TensorType {
        layout: Layout::new(it![2, 1], it![2, 0]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![1, 2], it![0, 1]),
            elem: Elem::Scalar(ScalarType::F32),
            swizzle: Swizzle::identity(),
        })),
        swizzle: Swizzle::identity(),
    }
}

/// An accumulator root holding an `mi × ni` arrangement of C fragments
/// (4 fp32 each).
pub fn acc_root_type(mi: i64, ni: i64) -> TensorType {
    let shape = IntTuple::Tuple(vec![IntTuple::Int(mi), IntTuple::Int(ni)]);
    let stride = IntTuple::Tuple(vec![IntTuple::Int(ni * 4), IntTuple::Int(4)]);
    TensorType {
        layout: Layout::new(shape, stride),
        elem: Elem::Tile(Box::new(frag_c_type())),
        swizzle: Swizzle::identity(),
    }
}

/// A root holding `n` A fragments (8 fp16 each).
pub fn a_frags_type(n: i64) -> TensorType {
    TensorType {
        layout: Layout::strided(n, 8),
        elem: Elem::Tile(Box::new(frag_a_type())),
        swizzle: Swizzle::identity(),
    }
}

/// A root holding `n` B fragments (4 fp16 each).
pub fn b_frags_type(n: i64) -> TensorType {
    TensorType {
        layout: Layout::strided(n, 4),
        elem: Elem::Tile(Box::new(frag_b_type())),
        swizzle: Swizzle::identity(),
    }
}

/// A plain `[n]` register vector type.
pub fn reg_vec(n: i64, st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(n), st)
}

/// A scalar register type.
pub fn reg_scalar(st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(1), st)
}

/// The canonical bank-conflict-avoiding swizzle for fp16 shared-memory
/// tiles whose rows are a multiple of 64 elements (128 bytes).
pub fn smem_swizzle() -> Swizzle {
    Swizzle::new(3, 3, 3)
}

/// Stages a `rows × cols` fp16 tile of `src` (a 2-D row-major global
/// tensor) starting at `(row0, col0)` into the shared tensor `smem`
/// (shape `[rows, cols]`), using all `threads` block threads with
/// 8-element vectorised moves.
///
/// On Ampere the global→shared move lowers to `cp.async`; on Volta it
/// round-trips through a register (`ld.global.v4.u32` +
/// `st.shared.v4.u32`).
///
/// # Panics
///
/// Panics unless `rows*cols` is divisible by `threads*8`.
#[allow(clippy::too_many_arguments)]
pub fn stage_tile(
    kb: &mut KernelBuilder,
    arch: Arch,
    exec: &[ThreadId],
    threads_ts: ThreadId,
    src: TensorId,
    smem: TensorId,
    row0: IntExpr,
    col0: IntExpr,
    rows: i64,
    cols: i64,
    threads: i64,
) {
    let total = rows * cols;
    assert_eq!(total % threads, 0, "stage_tile: {rows}x{cols} not divisible by {threads} threads");
    let per_thread = total / threads;
    // Widest vectorisation the per-thread share and the row width allow.
    let w = [8i64, 4, 2, 1]
        .into_iter()
        .find(|w| per_thread % w == 0 && cols % w == 0)
        .expect("width 1 always divides");
    let chunks = per_thread / w;
    let tid = kb.module()[threads_ts].hw_var();

    // Views: both sides tiled into [1,w] vectors.
    let src_vec = kb.tile_c(src, &[Some(1), Some(w)]).expect("src vec tile");
    let dst_vec = kb.tile_c(smem, &[Some(1), Some(w)]).expect("smem vec tile");

    for u in 0..chunks {
        let e = (tid.clone() * chunks + u) * w;
        let r = e.clone() / cols;
        let c = e % cols;
        let s = kb.index(src_vec, &[row0.clone() + r.clone(), (col0.clone() + c.clone()) / w]);
        let d = kb.index(dst_vec, &[r, c / w]);
        let mut ex = exec.to_vec();
        let ts = kb.thread_scalar(threads_ts);
        ex.push(ts);
        match arch {
            Arch::Sm86 => {
                kb.spec(SpecKind::Move, ex, vec![s], vec![d]);
            }
            Arch::Sm70 => {
                // No cp.async on Volta: go through a register.
                let tmp = kb.alloc_reg(format!("stg{u}"), reg_vec(w, ScalarType::F16));
                kb.spec(SpecKind::Move, ex.clone(), vec![s], vec![tmp]);
                kb.spec(SpecKind::Move, ex, vec![tmp], vec![d]);
            }
        }
    }
}

/// Copies a `rows × cols` fp16 shared tensor out to a region of a 2-D
/// global tensor (register round-trip: `ld.shared` + `st.global`),
/// vectorised across all block threads.
///
/// # Panics
///
/// Panics unless `rows*cols` is divisible by `threads`.
#[allow(clippy::too_many_arguments)]
pub fn unstage_tile(
    kb: &mut KernelBuilder,
    exec: &[ThreadId],
    threads_ts: ThreadId,
    smem: TensorId,
    dst: TensorId,
    row0: IntExpr,
    col0: IntExpr,
    rows: i64,
    cols: i64,
    threads: i64,
) {
    let total = rows * cols;
    assert_eq!(total % threads, 0, "unstage_tile: {rows}x{cols} vs {threads} threads");
    let per_thread = total / threads;
    let w = [8i64, 4, 2, 1]
        .into_iter()
        .find(|w| per_thread % w == 0 && cols % w == 0)
        .expect("width 1 always divides");
    let chunks = per_thread / w;
    let tid = kb.module()[threads_ts].hw_var();
    let src_vec = kb.tile_c(smem, &[Some(1), Some(w)]).expect("smem vec tile");
    let dst_vec = kb.tile_c(dst, &[Some(1), Some(w)]).expect("dst vec tile");
    for u in 0..chunks {
        let e = (tid.clone() * chunks + u) * w;
        let r = e.clone() / cols;
        let c = e % cols;
        let s = kb.index(src_vec, &[r.clone(), c.clone() / w]);
        let d = kb.index(dst_vec, &[row0.clone() + r, (col0.clone() + c) / w]);
        let tmp = kb.alloc_reg(format!("ustg{u}"), reg_vec(w, ScalarType::F16));
        let mut ex = exec.to_vec();
        let ts = kb.thread_scalar(threads_ts);
        ex.push(ts);
        kb.spec(SpecKind::Move, ex.clone(), vec![s], vec![tmp]);
        kb.spec(SpecKind::Move, ex, vec![tmp], vec![d]);
    }
}

/// Transposed staging: `dst[c][r] = src[row0 + r, col0 + c]` for an
/// `rows × cols` region — vectorised global reads, scalar shared writes.
/// Used where a GEMM operand must be consumed column-major (Volta A
/// fragments, attention `Kᵀ`).
///
/// # Panics
///
/// Panics unless `rows*cols` is divisible by `threads*8`.
#[allow(clippy::too_many_arguments)]
pub fn stage_transposed(
    kb: &mut KernelBuilder,
    exec: &[ThreadId],
    threads_ts: ThreadId,
    src: TensorId,
    dst_view: TensorId,
    row0: IntExpr,
    col0: IntExpr,
    rows: i64,
    cols: i64,
    threads: i64,
) {
    let total = rows * cols;
    assert_eq!(total % (threads * 8), 0, "transposed staging granularity");
    let chunks = total / threads / 8;
    let tid = kb.module()[threads_ts].hw_var();
    let src_vec8 = kb.tile_c(src, &[Some(1), Some(8)]).expect("src vectors");
    for u in 0..chunks {
        let e = (tid.clone() * chunks + u) * 8;
        let r = e.clone() / cols;
        let c = e % cols;
        let s = kb.index(src_vec8, &[row0.clone() + r.clone(), (col0.clone() + c.clone()) / 8]);
        let tmp = kb.alloc_reg(format!("tr{u}"), reg_vec(8, ScalarType::F16));
        let mut ex = exec.to_vec();
        let ts = kb.thread_scalar(threads_ts);
        ex.push(ts);
        kb.spec(SpecKind::Move, ex, vec![s], vec![tmp]);
        for j in 0..8i64 {
            let slot = kb.view_as(tmp, reg_scalar(ScalarType::F16), IntExpr::constant(j));
            let d = kb.index(dst_view, &[c.clone() + j, r.clone()]);
            let mut ex = exec.to_vec();
            let ts = kb.thread_scalar(threads_ts);
            ex.push(ts);
            kb.spec(SpecKind::Move, ex, vec![slot], vec![d]);
        }
    }
}

/// Emits a warp-wide all-reduce of a scalar f32 register using butterfly
/// shuffles (5 `shfl.sync.bfly` + combine steps): afterwards every lane
/// of each warp holds the reduction of its warp's 32 values.
pub fn warp_allreduce(
    kb: &mut KernelBuilder,
    exec: &[ThreadId],
    warp_exec: ThreadId,
    threads_ts: ThreadId,
    val: TensorId,
    op: ReduceOp,
) {
    let tmp = kb.alloc_reg("shfl_tmp", reg_scalar(ScalarType::F32));
    for step in [16u32, 8, 4, 2, 1] {
        let mut ex = exec.to_vec();
        ex.push(warp_exec);
        kb.spec(SpecKind::Shfl { mask: step }, ex, vec![val], vec![tmp]);
        let bop = match op {
            ReduceOp::Sum => BinaryOp::Add,
            ReduceOp::Max => BinaryOp::Max,
        };
        let mut ex = exec.to_vec();
        let ts = kb.thread_scalar(threads_ts);
        ex.push(ts);
        kb.spec(SpecKind::BinaryPointwise(bop), ex, vec![val, tmp], vec![val]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::atomic::type_signature;

    #[test]
    fn fragment_types_have_table2_signatures() {
        assert_eq!(type_signature(&frag_a_type()), vec![vec![2, 2], vec![1, 2]]);
        assert_eq!(type_signature(&frag_b_type()), vec![vec![2, 1], vec![2, 1]]);
        assert_eq!(type_signature(&frag_c_type()), vec![vec![2, 1], vec![1, 2]]);
        assert_eq!(frag_a_type().num_scalars(), 8);
        assert_eq!(frag_b_type().num_scalars(), 4);
        assert_eq!(frag_c_type().num_scalars(), 4);
    }

    #[test]
    fn fragments_are_contiguous_registers() {
        use graphene_sim::exec::rel_offsets;
        assert_eq!(rel_offsets(&frag_a_type()), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(rel_offsets(&frag_b_type()), vec![0, 1, 2, 3]);
        assert_eq!(rel_offsets(&frag_c_type()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn acc_root_addresses_fragments() {
        let ty = acc_root_type(4, 8);
        assert_eq!(ty.num_scalars(), 4 * 8 * 4);
        let off = ty.offset_of(&[IntExpr::constant(2), IntExpr::constant(3)]);
        assert_eq!(off.as_const(), Some(2 * 32 + 3 * 4));
    }
}
