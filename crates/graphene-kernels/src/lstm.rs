//! The fused LSTM-cell kernel (paper Figure 12).
//!
//! The paper's simplified LSTM cell computes
//! `Out = relu(X×Wx + H×Wh + bias)` — "two independent GEMMs followed by
//! an addition and two more pointwise operations", with ReLU standing in
//! for tanh so CUDA libraries can be compared. Graphene "fuses all nodes
//! into a single kernel and therefore again avoids round-trips to global
//! memory for computing intermediate results": the second GEMM
//! accumulates straight into the first GEMM's register accumulators, and
//! the bias + activation fold into the store.

use crate::common::{
    a_frags_type, acc_root_type, b_frags_type, reg_vec, stage_tile, stage_transposed,
};
use crate::mma::{
    emit_epilogue_store_ampere, emit_epilogue_store_volta, emit_warp_mma_ampere,
    emit_warp_mma_volta, volta_acc_ty, EpilogueOps, MmaGeom, StoreTarget, WarpCtx,
};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, Kernel, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sym::IntExpr;

/// LSTM-cell configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmConfig {
    /// Batch rows.
    pub m: i64,
    /// Hidden size (`≤ 128` keeps both weight tiles stageable).
    pub hidden: i64,
    /// Rows per thread-block.
    pub bm: i64,
    /// Warp tile rows.
    pub wm: i64,
    /// Warp tile cols.
    pub wn: i64,
}

impl LstmConfig {
    /// The evaluation shape: hidden 128, 128-row blocks.
    pub fn paper(m: i64) -> Self {
        LstmConfig { m, hidden: 128, bm: 128, wm: 64, wn: 64 }
    }

    fn geom(&self) -> MmaGeom {
        MmaGeom { bm: self.bm, bn: self.hidden, wm: self.wm, wn: self.wn, k_cols: self.hidden }
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.geom().threads()
    }

    /// Grid blocks.
    pub fn blocks(&self) -> i64 {
        self.m / self.bm
    }
}

/// Builds the fully fused LSTM-cell kernel
/// `Out = relu(X×Wx + H×Wh + bias)`.
///
/// Parameters: `X:[m,h]`, `Wx:[h,h]`, `H:[m,h]`, `Wh:[h,h]`, `bias:[h]`,
/// `Out:[m,h]`, all fp16 with fp32 accumulation.
pub fn build_fused_lstm(arch: Arch, cfg: &LstmConfig) -> Kernel {
    assert!(cfg.hidden <= 128, "weight tiles must fit in shared memory");
    assert_eq!(cfg.m % cfg.bm, 0, "row tiling");
    let geom = cfg.geom();

    let mut kb = KernelBuilder::new("graphene_fused_lstm", &[cfg.blocks()], &[cfg.threads()]);
    let x = kb.param("X", &[cfg.m, cfg.hidden], ScalarType::F16);
    let wx = kb.param("Wx", &[cfg.hidden, cfg.hidden], ScalarType::F16);
    let h = kb.param("H", &[cfg.m, cfg.hidden], ScalarType::F16);
    let wh = kb.param("Wh", &[cfg.hidden, cfg.hidden], ScalarType::F16);
    let bias = kb.param("bias", &[cfg.hidden], ScalarType::F16);
    let out = kb.param("Out", &[cfg.m, cfg.hidden], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let row0 = bid * cfg.bm;

    // One activation stage and one weight stage, reused for both GEMMs
    // (swizzled; Volta keeps the activation transposed for vectorised
    // quad-pair A-fragment loads).
    let sw = crate::common::smem_swizzle();
    let act_dims = match arch {
        Arch::Sm86 => [cfg.bm, cfg.hidden],
        Arch::Sm70 => [cfg.hidden, cfg.bm],
    };
    let act_s =
        kb.alloc_shared("Act", TensorType::row_major(&act_dims, ScalarType::F16).with_swizzle(sw));
    let w_s = kb.alloc_shared(
        "Wt",
        TensorType::row_major(&[cfg.hidden, cfg.hidden], ScalarType::F16).with_swizzle(sw),
    );

    let ctx = WarpCtx::new(&kb, block, &geom);
    let ops = EpilogueOps {
        bias: Some((bias, IntExpr::zero())),
        activation: Some(UnaryOp::Relu),
        scale: None,
    };
    let target = StoreTarget::Global { tensor: out, row0: row0.clone(), col0: IntExpr::zero() };

    // The two (activation, weight) GEMM passes, accumulating into the
    // same registers — the add-node of the dataflow graph is free.
    let passes = [(x, wx, "X x Wx"), (h, wh, "H x Wh")];

    match arch {
        Arch::Sm86 => {
            let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
            let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 8);
            let acc = kb.alloc_reg("acc", acc_root_type(mi_cnt, ni_cnt));
            let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
            let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_cnt));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
            for (act, wt, label) in passes {
                kb.comment(format!("GEMM pass: {label} (accumulating)"));
                stage_tile(
                    &mut kb,
                    arch,
                    &[grid],
                    block,
                    act,
                    act_s,
                    row0.clone(),
                    IntExpr::zero(),
                    cfg.bm,
                    cfg.hidden,
                    cfg.threads(),
                );
                stage_tile(
                    &mut kb,
                    arch,
                    &[grid],
                    block,
                    wt,
                    w_s,
                    IntExpr::zero(),
                    IntExpr::zero(),
                    cfg.hidden,
                    cfg.hidden,
                    cfg.threads(),
                );
                kb.sync();
                emit_warp_mma_ampere(
                    &mut kb, grid, warp, &ctx, act_s, w_s, acc, a_frags, b_frags, &geom,
                );
                kb.sync();
            }
            kb.comment("bias + relu epilogue, store");
            emit_epilogue_store_ampere(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
        }
        Arch::Sm70 => {
            let qp = kb
                .thread_tile(block, &graphene_ir::atomic::quad_pair_layout())
                .expect("quad pairs");
            let (mi_cnt, ni_cnt) = (cfg.wm / 16, cfg.wn / 16);
            let acc = kb.alloc_reg("acc", volta_acc_ty(mi_cnt, ni_cnt));
            let a_regs = kb.alloc_reg("areg", reg_vec(4 * mi_cnt, ScalarType::F16));
            let b_regs = kb.alloc_reg("breg", reg_vec(4 * ni_cnt, ScalarType::F16));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc]);
            for (act, wt, label) in passes {
                kb.comment(format!("GEMM pass: {label} (accumulating)"));
                stage_transposed(
                    &mut kb,
                    &[grid],
                    block,
                    act,
                    act_s,
                    row0.clone(),
                    IntExpr::zero(),
                    cfg.bm,
                    cfg.hidden,
                    cfg.threads(),
                );
                stage_tile(
                    &mut kb,
                    arch,
                    &[grid],
                    block,
                    wt,
                    w_s,
                    IntExpr::zero(),
                    IntExpr::zero(),
                    cfg.hidden,
                    cfg.hidden,
                    cfg.threads(),
                );
                kb.sync();
                emit_warp_mma_volta(
                    &mut kb, grid, block, qp, &ctx, act_s, w_s, acc, a_regs, b_regs, &geom,
                );
                kb.sync();
            }
            kb.comment("bias + relu epilogue, store");
            emit_epilogue_store_volta(&mut kb, grid, block, &ctx, acc, &geom, &ops, &target);
        }
    }
    kb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{lstm_cell_ref, HostTensor};
    use std::collections::HashMap;

    fn run(arch: Arch, cfg: &LstmConfig) {
        let kernel = build_fused_lstm(arch, cfg);
        validate(&kernel, arch).expect("validates");
        let (m, h) = (cfg.m as usize, cfg.hidden as usize);
        let x = HostTensor::random(&[m, h], 41);
        let wx = HostTensor::random(&[h, h], 42);
        let hh = HostTensor::random(&[m, h], 43);
        let wh = HostTensor::random(&[h, h], 44);
        let bias: Vec<f32> = (0..h).map(|j| (j % 3) as f32 * 0.1 - 0.1).collect();

        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], x.as_slice().to_vec());
        inputs.insert(kernel.params[1], wx.as_slice().to_vec());
        inputs.insert(kernel.params[2], hh.as_slice().to_vec());
        inputs.insert(kernel.params[3], wh.as_slice().to_vec());
        inputs.insert(kernel.params[4], bias.clone());
        let outr = graphene_sim::execute(&kernel, arch, &inputs).expect("execute");

        let expect = lstm_cell_ref(&x, &wx, &hh, &wh, &bias);
        let got = HostTensor::from_vec(&[m, h], outr.globals[&kernel.params[5]].clone());
        got.assert_close(&expect, 2e-3);
    }

    #[test]
    fn fused_lstm_matches_reference_ampere() {
        run(Arch::Sm86, &LstmConfig { m: 32, hidden: 32, bm: 32, wm: 32, wn: 32 });
    }

    #[test]
    fn fused_lstm_matches_reference_volta() {
        run(Arch::Sm70, &LstmConfig { m: 32, hidden: 32, bm: 32, wm: 32, wn: 32 });
    }

    #[test]
    fn paper_config_validates() {
        let cfg = LstmConfig::paper(4096);
        let kernel = build_fused_lstm(Arch::Sm86, &cfg);
        validate(&kernel, Arch::Sm86).expect("validates");
        assert_eq!(kernel.shared_bytes(), 2 * 128 * 128 * 2);
    }
}
