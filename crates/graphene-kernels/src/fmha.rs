//! The fused multi-head attention kernel (paper Figure 14).
//!
//! FMHA is "two back-to-back GEMMs with a softmax computation in
//! between". The fused kernel assigns one (head, query-tile) pair per
//! thread-block and never spills the `S = QKᵀ` scores to global memory:
//!
//! 1. `Q` tile and `Kᵀ` are staged to shared memory; a warp-level
//!    tensor-core GEMM leaves the full score tile **in registers**
//!    (one fragment row-block per warp — the register-resident strategy
//!    of NVIDIA's MLPerf BERT kernels the paper compares against);
//! 2. softmax runs directly on the register fragments: per-thread
//!    partial row reductions + butterfly shuffles across the four lanes
//!    sharing each fragment row;
//! 3. the probabilities are converted in-register into `mma` A-fragments
//!    and multiplied with the staged `V` tile (which reuses the `Kᵀ`
//!    shared-memory buffer), producing the output tile.
//!
//! The kernel is specialised for the paper's MLPerf BERT inference shape
//! (16 heads, batch 32, head size 64, sequence length 384) but
//! parameterised for tests. Ampere only — the paper injects its
//! "Ampere FMHA kernels" into the end-to-end networks of Figure 15.

use crate::common::{
    a_frags_type, acc_root_type, b_frags_type, frag_a_type, reg_scalar, reg_vec, stage_tile,
};
use crate::mma::{
    emit_epilogue_store_ampere, emit_warp_mma_ampere, EpilogueOps, MmaGeom, StoreTarget, WarpCtx,
};
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::{Elem, TensorId, TensorType};
use graphene_ir::threads::ThreadId;
use graphene_ir::{Arch, BinaryOp, Kernel, ReduceOp, ScalarType, UnaryOp};
use graphene_layout::{it, IntTuple, Layout, Swizzle};
use graphene_sym::IntExpr;

/// FMHA problem configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FmhaConfig {
    /// Number of (batch × head) attention instances.
    pub heads: i64,
    /// Sequence length.
    pub seq: i64,
    /// Head dimension.
    pub d: i64,
    /// Query rows per thread-block.
    pub bq: i64,
    /// Warp tile rows (each warp owns `wm` query rows end-to-end).
    pub wm: i64,
}

impl FmhaConfig {
    /// The paper's MLPerf BERT inference shape: 16 heads, batch 32,
    /// hidden size 64, sequence length 384 (§6).
    pub fn mlperf_bert() -> Self {
        FmhaConfig { heads: 16 * 32, seq: 384, d: 64, bq: 128, wm: 32 }
    }

    /// Warps (= `bq / wm`) per block.
    pub fn warps(&self) -> i64 {
        self.bq / self.wm
    }

    /// Threads per block.
    pub fn threads(&self) -> i64 {
        self.warps() * 32
    }

    /// Grid blocks: one per (head, query tile).
    pub fn blocks(&self) -> i64 {
        self.heads * (self.seq / self.bq)
    }

    fn geom_s(&self) -> MmaGeom {
        MmaGeom { bm: self.bq, bn: self.seq, wm: self.wm, wn: self.seq, k_cols: self.d }
    }

    fn geom_o(&self) -> MmaGeom {
        MmaGeom { bm: self.bq, bn: self.d, wm: self.wm, wn: self.d, k_cols: self.seq }
    }
}

/// Builds the fused FMHA kernel `O = softmax(QKᵀ/√d) × V` per head.
///
/// Parameters: `Q, K, V, O : [heads*seq, d]` fp16 row-major
/// (head-major). Ampere (SM86) only.
pub fn build_fused_fmha(arch: Arch, cfg: &FmhaConfig) -> Kernel {
    assert_eq!(arch, Arch::Sm86, "the fused FMHA schedule targets Ampere (paper Figure 15)");
    assert_eq!(cfg.seq % cfg.bq, 0, "query tiling");
    assert_eq!(cfg.d % 16, 0, "head dim vs mma K");
    assert_eq!(cfg.seq % 16, 0, "seq vs mma K");
    let geom_s = cfg.geom_s();
    let geom_o = cfg.geom_o();
    let (mi_cnt, ni_s) = (cfg.wm / 16, cfg.seq / 8);
    let kk_cnt = cfg.seq / 16; // P fragments along the kv dimension

    let rows = cfg.heads * cfg.seq;
    let mut kb = KernelBuilder::new("graphene_fused_fmha", &[cfg.blocks()], &[cfg.threads()]);
    let q = kb.param("Q", &[rows, cfg.d], ScalarType::F16);
    let k = kb.param("K", &[rows, cfg.d], ScalarType::F16);
    let v = kb.param("V", &[rows, cfg.d], ScalarType::F16);
    let o = kb.param("O", &[rows, cfg.d], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bid = kb.module()[grid].group_coords()[0].clone();
    let q_tiles = cfg.seq / cfg.bq;
    let head = bid.clone() / q_tiles;
    let q_tile = bid.clone() % q_tiles;
    let head_row0 = head.clone() * cfg.seq;
    let q_row0 = head_row0.clone() + q_tile * cfg.bq;

    // Shared memory: the Q tile, and one buffer shared (sequentially) by
    // Kᵀ and V — the "optimized shared memory layouts" the paper credits
    // for its win over the MLPerf kernels.
    let sw = crate::common::smem_swizzle();
    let qs = kb.alloc_shared(
        "Qs",
        TensorType::row_major(&[cfg.bq, cfg.d], ScalarType::F16).with_swizzle(sw),
    );
    let kv = kb.alloc_shared(
        "KV",
        TensorType::scalar(Layout::contiguous(cfg.seq * cfg.d), ScalarType::F16).with_swizzle(sw),
    );
    let kt_view =
        kb.view_as(kv, TensorType::row_major(&[cfg.d, cfg.seq], ScalarType::F16), IntExpr::zero());
    let v_view =
        kb.view_as(kv, TensorType::row_major(&[cfg.seq, cfg.d], ScalarType::F16), IntExpr::zero());

    let warp = kb.thread_tile(block, &Layout::contiguous(32)).expect("warps");
    let ctx = WarpCtx::new(&kb, block, &geom_s);
    let lane = ctx.lane.clone();

    kb.comment("stage Q tile and K^T (transposed staging)");
    stage_tile(
        &mut kb,
        arch,
        &[grid],
        block,
        q,
        qs,
        q_row0.clone(),
        IntExpr::zero(),
        cfg.bq,
        cfg.d,
        cfg.threads(),
    );
    stage_transposed(
        &mut kb,
        grid,
        block,
        k,
        kt_view,
        head_row0.clone(),
        cfg.seq,
        cfg.d,
        cfg.threads(),
    );
    kb.sync();

    kb.comment("S = Q x K^T into register fragments (full score tile resident)");
    let acc_s = kb.alloc_reg("accS", acc_root_type(mi_cnt, ni_s));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc_s]);
    let a_frags = kb.alloc_reg("afrag", a_frags_type(mi_cnt));
    let b_frags = kb.alloc_reg("bfrag", b_frags_type(ni_s));
    emit_warp_mma_ampere(&mut kb, grid, warp, &ctx, qs, kt_view, acc_s, a_frags, b_frags, &geom_s);
    kb.sync();

    kb.comment("softmax on the register-resident score fragments");
    let scale = 1.0 / (cfg.d as f64).sqrt();
    emit_register_softmax(&mut kb, grid, block, warp, acc_s, mi_cnt, ni_s, scale);

    kb.comment("convert P to mma A-fragments in registers");
    let p_frags = kb.alloc_reg(
        "pfrag",
        TensorType {
            layout: Layout::new(
                IntTuple::Tuple(vec![IntTuple::Int(mi_cnt), IntTuple::Int(kk_cnt)]),
                IntTuple::Tuple(vec![IntTuple::Int(kk_cnt * 8), IntTuple::Int(8)]),
            ),
            elem: Elem::Tile(Box::new(frag_a_type())),
            swizzle: Swizzle::identity(),
        },
    );
    for mi in 0..mi_cnt {
        for kk in 0..kk_cnt {
            for vv in 0..8i64 {
                // S value owned by this thread that becomes A-fragment
                // value vv of P tile (mi, kk).
                let s_off = mi * (ni_s * 4) + (2 * kk + vv / 4) * 4 + ((vv / 2) % 2) * 2 + vv % 2;
                let src = kb.view_as(acc_s, reg_scalar(ScalarType::F32), IntExpr::constant(s_off));
                let dst = kb.view_as(
                    p_frags,
                    reg_scalar(ScalarType::F16),
                    IntExpr::constant((mi * kk_cnt + kk) * 8 + vv),
                );
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![src], vec![dst]);
            }
        }
    }

    kb.comment("stage V (reusing the K^T buffer) and compute O = P x V");
    stage_tile(
        &mut kb,
        arch,
        &[grid],
        block,
        v,
        v_view,
        head_row0.clone(),
        IntExpr::zero(),
        cfg.seq,
        cfg.d,
        cfg.threads(),
    );
    kb.sync();

    let ni_o = cfg.d / 8;
    let acc_o = kb.alloc_reg("accO", acc_root_type(mi_cnt, ni_o));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![acc_o]);
    let vb_frags = kb.alloc_reg("vbfrag", b_frags_type(ni_o));
    let vs_vec8 = kb.tile_c(v_view, &[Some(1), Some(8)]).expect("V rows");
    for kf in 0..kk_cnt {
        // ldmatrix.x4.trans: two adjacent 8-column V tiles per load.
        let mut ni = 0;
        while ni < ni_o {
            if ni + 1 < ni_o {
                let row =
                    IntExpr::constant(kf * 16) + ((lane.clone() / 8) % 2) * 8 + lane.clone() % 8;
                let colgrp = IntExpr::constant(ni) + lane.clone() / 16;
                let src = kb.index(vs_vec8, &[row, colgrp]);
                let dst = kb.view_as(
                    vb_frags,
                    crate::common::frag_b_pair_type(),
                    IntExpr::constant(ni * 4),
                );
                kb.spec(SpecKind::Move, vec![grid, warp], vec![src], vec![dst]);
                ni += 2;
            } else {
                let row = IntExpr::constant(kf * 16) + lane.clone() % 16;
                let colgrp = IntExpr::constant(ni); // wn == d: single warp column
                let src = kb.index(vs_vec8, &[row, colgrp]);
                let dst = kb.index(vb_frags, &[IntExpr::constant(ni)]);
                kb.spec(SpecKind::Move, vec![grid, warp], vec![src], vec![dst]);
                ni += 1;
            }
        }
        for mi in 0..mi_cnt {
            for ni in 0..ni_o {
                let pf = kb.index(p_frags, &[IntExpr::constant(mi), IntExpr::constant(kf)]);
                let bf = kb.index(vb_frags, &[IntExpr::constant(ni)]);
                let cf = kb.index(acc_o, &[IntExpr::constant(mi), IntExpr::constant(ni)]);
                kb.spec(SpecKind::MatMul, vec![grid, warp], vec![pf, bf], vec![cf]);
            }
        }
    }

    kb.comment("store the output tile");
    let target = StoreTarget::Global { tensor: o, row0: q_row0, col0: IntExpr::zero() };
    emit_epilogue_store_ampere(
        &mut kb,
        grid,
        block,
        &ctx,
        acc_o,
        &geom_o,
        &EpilogueOps::none(),
        &target,
    );

    kb.build()
}

/// Transposed staging: `dst[dd][si] = src[row0 + si][dd]` — vectorised
/// global reads, scalar shared writes.
#[allow(clippy::too_many_arguments)]
fn stage_transposed(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    src: TensorId,
    dst_view: TensorId,
    row0: IntExpr,
    rows: i64,
    cols: i64,
    threads: i64,
) {
    let total = rows * cols;
    assert_eq!(total % (threads * 8), 0, "transposed staging granularity");
    let chunks = total / threads / 8;
    let tid = kb.module()[block].hw_var();
    let src_vec8 = kb.tile_c(src, &[Some(1), Some(8)]).expect("src vectors");
    for u in 0..chunks {
        let e = (tid.clone() * chunks + u) * 8;
        let si = e.clone() / cols;
        let dd = e % cols;
        let s = kb.index(src_vec8, &[row0.clone() + si.clone(), dd.clone() / 8]);
        let tmp = kb.alloc_reg(format!("tr{u}"), reg_vec(8, ScalarType::F16));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![s], vec![tmp]);
        for j in 0..8i64 {
            let slot = kb.view_as(tmp, reg_scalar(ScalarType::F16), IntExpr::constant(j));
            let d = kb.index(dst_view, &[dd.clone() + j, si.clone()]);
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Move, vec![grid, ts], vec![slot], vec![d]);
        }
    }
}

/// Softmax over register-resident score fragments: scale, per-row max,
/// exp, per-row sum, normalise. Each thread owns 2 values per row in
/// `ni` fragments; rows are shared with the 3 other lanes of the same
/// `lane/4` quad, combined with butterfly shuffles.
#[allow(clippy::too_many_arguments)]
fn emit_register_softmax(
    kb: &mut KernelBuilder,
    grid: ThreadId,
    block: ThreadId,
    warp: ThreadId,
    acc: TensorId,
    mi_cnt: i64,
    ni_cnt: i64,
    scale: f64,
) {
    // Scale all fragments by 1/sqrt(d) ([4]-wide per fragment).
    let scale4 = kb.alloc_reg("scale4", reg_vec(4, ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: scale }, vec![grid, ts], vec![], vec![scale4]);
    for mi in 0..mi_cnt {
        for ni in 0..ni_cnt {
            let frag = kb.view_as(
                acc,
                reg_vec(4, ScalarType::F32),
                IntExpr::constant(mi * ni_cnt * 4 + ni * 4),
            );
            let ts = kb.thread_scalar(block);
            kb.spec(
                SpecKind::BinaryPointwise(BinaryOp::Mul),
                vec![grid, ts],
                vec![frag, scale4],
                vec![frag],
            );
        }
    }

    // The per-thread view of one row-slot (mi, vp): ni fragments x 2
    // adjacent values, strides (4, 1).
    let row_view = |kb: &mut KernelBuilder, mi: i64, vp: i64| {
        kb.view_as(
            acc,
            TensorType {
                layout: Layout::new(it![2, ni_cnt], it![1, 4]),
                elem: Elem::Scalar(ScalarType::F32),
                swizzle: Swizzle::identity(),
            },
            IntExpr::constant(mi * ni_cnt * 4 + vp * 2),
        )
    };

    for mi in 0..mi_cnt {
        for vp in 0..2i64 {
            let row = row_view(kb, mi, vp);
            // Per-thread partial row max, then across the 4 lanes of the
            // quad (shfl masks 1 and 2).
            let mx = kb.alloc_reg(format!("mx_{mi}_{vp}"), reg_scalar(ScalarType::F32));
            let ts = kb.thread_scalar(block);
            kb.spec(
                SpecKind::Reduction { op: ReduceOp::Max, axes: vec![0] },
                vec![grid, ts],
                vec![row],
                vec![mx],
            );
            let tmp = kb.alloc_reg(format!("mxs_{mi}_{vp}"), reg_scalar(ScalarType::F32));
            for mask in [1u32, 2] {
                kb.spec(SpecKind::Shfl { mask }, vec![grid, warp], vec![mx], vec![tmp]);
                let ts = kb.thread_scalar(block);
                kb.spec(
                    SpecKind::BinaryPointwise(BinaryOp::Max),
                    vec![grid, ts],
                    vec![mx, tmp],
                    vec![mx],
                );
            }
            // exp(x - max) per pair.
            let mx2 = kb.alloc_reg(format!("mx2_{mi}_{vp}"), reg_vec(2, ScalarType::F32));
            for i in 0..2 {
                let slot = kb.view_as(mx2, reg_scalar(ScalarType::F32), IntExpr::constant(i));
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![mx], vec![slot]);
            }
            for ni in 0..ni_cnt {
                let pair = kb.view_as(
                    acc,
                    reg_vec(2, ScalarType::F32),
                    IntExpr::constant(mi * ni_cnt * 4 + ni * 4 + vp * 2),
                );
                let ts = kb.thread_scalar(block);
                kb.spec(
                    SpecKind::BinaryPointwise(BinaryOp::Sub),
                    vec![grid, ts],
                    vec![pair, mx2],
                    vec![pair],
                );
                let ts = kb.thread_scalar(block);
                kb.spec(
                    SpecKind::UnaryPointwise(UnaryOp::Exp),
                    vec![grid, ts],
                    vec![pair],
                    vec![pair],
                );
            }
            // Row sum, quad-combined, reciprocal, normalise.
            let row = row_view(kb, mi, vp);
            let sm = kb.alloc_reg(format!("sm_{mi}_{vp}"), reg_scalar(ScalarType::F32));
            let ts = kb.thread_scalar(block);
            kb.spec(
                SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] },
                vec![grid, ts],
                vec![row],
                vec![sm],
            );
            for mask in [1u32, 2] {
                kb.spec(SpecKind::Shfl { mask }, vec![grid, warp], vec![sm], vec![tmp]);
                let ts = kb.thread_scalar(block);
                kb.spec(
                    SpecKind::BinaryPointwise(BinaryOp::Add),
                    vec![grid, ts],
                    vec![sm, tmp],
                    vec![sm],
                );
            }
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::UnaryPointwise(UnaryOp::Recip), vec![grid, ts], vec![sm], vec![sm]);
            let sm2 = kb.alloc_reg(format!("sm2_{mi}_{vp}"), reg_vec(2, ScalarType::F32));
            for i in 0..2 {
                let slot = kb.view_as(sm2, reg_scalar(ScalarType::F32), IntExpr::constant(i));
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::Move, vec![grid, ts], vec![sm], vec![slot]);
            }
            for ni in 0..ni_cnt {
                let pair = kb.view_as(
                    acc,
                    reg_vec(2, ScalarType::F32),
                    IntExpr::constant(mi * ni_cnt * 4 + ni * 4 + vp * 2),
                );
                let ts = kb.thread_scalar(block);
                kb.spec(
                    SpecKind::BinaryPointwise(BinaryOp::Mul),
                    vec![grid, ts],
                    vec![pair, sm2],
                    vec![pair],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::validate::validate;
    use graphene_sim::host::{attention_ref, HostTensor};
    use std::collections::HashMap;

    #[test]
    fn fused_fmha_matches_reference() {
        let cfg = FmhaConfig { heads: 2, seq: 64, d: 32, bq: 32, wm: 32 };
        let kernel = build_fused_fmha(Arch::Sm86, &cfg);
        validate(&kernel, Arch::Sm86).expect("validates");

        let rows = (cfg.heads * cfg.seq) as usize;
        let d = cfg.d as usize;
        let s = cfg.seq as usize;
        let q = HostTensor::random(&[rows, d], 51);
        let k = HostTensor::random(&[rows, d], 52);
        let v = HostTensor::random(&[rows, d], 53);
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], q.as_slice().to_vec());
        inputs.insert(kernel.params[1], k.as_slice().to_vec());
        inputs.insert(kernel.params[2], v.as_slice().to_vec());
        let out = graphene_sim::execute(&kernel, Arch::Sm86, &inputs).expect("execute");
        let o = &out.globals[&kernel.params[3]];

        for h in 0..cfg.heads as usize {
            let slice = |t: &HostTensor| {
                HostTensor::from_vec(&[s, d], t.as_slice()[h * s * d..(h + 1) * s * d].to_vec())
            };
            let expect = attention_ref(&slice(&q), &slice(&k), &slice(&v));
            let got = HostTensor::from_vec(&[s, d], o[h * s * d..(h + 1) * s * d].to_vec());
            got.assert_close(&expect, 2e-3);
        }
    }

    #[test]
    fn mlperf_config_validates() {
        let cfg = FmhaConfig::mlperf_bert();
        assert_eq!(cfg.blocks(), 512 * 3);
        assert_eq!(cfg.threads(), 128);
        let kernel = build_fused_fmha(Arch::Sm86, &cfg);
        validate(&kernel, Arch::Sm86).expect("validates");
        // Q tile + one K^T/V buffer.
        assert_eq!(kernel.shared_bytes(), (128 * 64 + 384 * 64) as u64 * 2);
    }

    #[test]
    #[should_panic(expected = "targets Ampere")]
    fn volta_rejected() {
        build_fused_fmha(Arch::Sm70, &FmhaConfig::mlperf_bert());
    }
}
