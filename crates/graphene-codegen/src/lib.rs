//! # graphene-codegen
//!
//! The CUDA C++ backend of the Graphene IR (ASPLOS '23 reproduction).
//!
//! Graphene's code generation is deliberately simple (paper §5.5):
//! because the IR precisely describes the implementation, generating
//! CUDA C++ "boils down to printing the IR". This crate provides:
//!
//! - [`generate`] — emits a `__global__` kernel for a
//!   [`graphene_ir::Kernel`] on a target [`graphene_ir::Arch`]:
//!   loops/conditionals/barriers print directly; tensor views compile to
//!   simplified scalar index expressions (with the recurring thread-index
//!   computations hoisted to named temporaries, as in the paper's
//!   Figures 1c and 8); undecomposed specs are matched against the
//!   architecture's atomic specs and lowered to plain CUDA C++ or inline
//!   PTX `asm volatile` blocks (`ldmatrix`, `mma`).
//!
//! Since this reproduction runs without `nvcc` or a GPU, the generated
//! source is validated structurally (golden tests against the paper's
//! listings) while the *semantics* of the same IR are validated by the
//! `graphene-sim` interpreter.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emit;
mod expr;
mod writer;

pub use emit::{generate, CodegenError};
pub use expr::{hoistable_subexprs, ExprRenderer};
pub use writer::CodeWriter;
