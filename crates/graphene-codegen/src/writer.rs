//! Indented source-code writer.

use std::fmt::Write as _;

/// Accumulates generated CUDA C++ with automatic indentation.
#[derive(Debug, Default)]
pub struct CodeWriter {
    buf: String,
    indent: usize,
}

impl CodeWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        CodeWriter::default()
    }

    /// Writes one line at the current indentation.
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        if s.is_empty() {
            self.buf.push('\n');
            return;
        }
        for _ in 0..self.indent {
            self.buf.push_str("  ");
        }
        let _ = writeln!(self.buf, "{s}");
    }

    /// Writes a line and increases indentation (e.g. `... {`).
    pub fn open(&mut self, s: impl AsRef<str>) {
        self.line(s);
        self.indent += 1;
    }

    /// Decreases indentation and writes a line (e.g. `}`).
    pub fn close(&mut self, s: impl AsRef<str>) {
        self.indent = self.indent.saturating_sub(1);
        self.line(s);
    }

    /// Current indentation depth.
    pub fn depth(&self) -> usize {
        self.indent
    }

    /// Finishes and returns the accumulated source.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indentation_tracks_blocks() {
        let mut w = CodeWriter::new();
        w.line("int main() {");
        w.open("{");
        w.line("x = 1;");
        w.close("}");
        let out = w.finish();
        assert_eq!(out, "int main() {\n{\n  x = 1;\n}\n");
    }

    #[test]
    fn empty_lines_have_no_indent() {
        let mut w = CodeWriter::new();
        w.open("{");
        w.line("");
        w.close("}");
        assert_eq!(w.finish(), "{\n\n}\n");
    }

    #[test]
    fn close_never_underflows() {
        let mut w = CodeWriter::new();
        w.close("}");
        assert_eq!(w.depth(), 0);
    }
}
