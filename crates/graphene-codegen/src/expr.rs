//! Rendering index expressions as C, with hoisting of common
//! subexpressions into named temporaries.
//!
//! The paper's generated kernels (Figure 1c, Figure 8 bottom) name the
//! recurring thread-index computations (`bid_m`, `tid_n`, ...) before the
//! loop nest. We reproduce that: maximal subexpressions over hardware
//! indices that appear in more than one place are hoisted to `const int`
//! temporaries.

use graphene_sym::{BinOp, IntExpr};
use std::collections::HashMap;

/// Renders expressions, substituting hoisted temporaries.
#[derive(Debug, Default)]
pub struct ExprRenderer {
    names: HashMap<IntExpr, String>,
}

impl ExprRenderer {
    /// A renderer with no hoisted names.
    pub fn new() -> Self {
        ExprRenderer::default()
    }

    /// Registers a hoisted temporary for `expr`.
    pub fn bind(&mut self, expr: IntExpr, name: impl Into<String>) {
        self.names.insert(expr, name.into());
    }

    /// Renders an expression as C source.
    pub fn render(&self, e: &IntExpr) -> String {
        self.render_prec(e, 0)
    }

    fn render_prec(&self, e: &IntExpr, parent: u8) -> String {
        if let Some(name) = self.names.get(e) {
            return name.clone();
        }
        match e {
            IntExpr::Const(v) => v.to_string(),
            IntExpr::Var(info) => info.name.clone(),
            IntExpr::Bin(op, a, b) => {
                let (prec, rhs_bump) = match op {
                    BinOp::Add | BinOp::Sub => (1, matches!(op, BinOp::Sub)),
                    // `*` must also parenthesise a same-precedence right
                    // child: integer x * (y / z) != (x * y) / z.
                    BinOp::Mul | BinOp::Div | BinOp::Mod => (2, true),
                    BinOp::Min | BinOp::Max => {
                        let f = if matches!(op, BinOp::Min) { "min" } else { "max" };
                        return format!(
                            "{f}({}, {})",
                            self.render_prec(a, 0),
                            self.render_prec(b, 0)
                        );
                    }
                };
                let tok = op.c_token().expect("min/max handled above");
                let lhs = self.render_prec(a, prec);
                let rhs = self.render_prec(b, prec + u8::from(rhs_bump));
                let s = format!("{lhs} {tok} {rhs}");
                if prec < parent {
                    format!("({s})")
                } else {
                    s
                }
            }
        }
    }
}

/// Collects hoistable subexpressions from `exprs`: maximal `Bin` nodes
/// that involve only hardware-index variables (`threadIdx.x`,
/// `blockIdx.x`) and constants, returned in deterministic order.
pub fn hoistable_subexprs(exprs: &[&IntExpr]) -> Vec<IntExpr> {
    fn only_hw_vars(e: &IntExpr) -> bool {
        e.free_vars().iter().all(|v| v == "threadIdx.x" || v == "blockIdx.x")
    }
    fn collect(e: &IntExpr, out: &mut Vec<IntExpr>) {
        // Hoist `/`- and `%`-rooted computations over hardware ids —
        // exactly the `bid_m = blockIdx.x / 8`-style temporaries of the
        // paper's generated kernels.
        if let IntExpr::Bin(op, a, b) = e {
            if matches!(op, BinOp::Div | BinOp::Mod) && only_hw_vars(e) && !e.free_vars().is_empty()
            {
                if !out.contains(e) {
                    out.push(e.clone());
                }
            } else {
                collect(a, out);
                collect(b, out);
            }
        }
    }
    let mut out = Vec::new();
    for e in exprs {
        collect(e, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_minimal_parens() {
        let r = ExprRenderer::new();
        let x = IntExpr::var("x");
        let y = IntExpr::var("y");
        assert_eq!(r.render(&(x.clone() * 4 + y.clone())), "x * 4 + y");
        assert_eq!(r.render(&((x.clone() + y.clone()) * 4)), "(x + y) * 4");
        assert_eq!(r.render(&((x.clone() / 8) % 2)), "x / 8 % 2");
    }

    #[test]
    fn substitutes_bound_names() {
        let mut r = ExprRenderer::new();
        let tid = IntExpr::var_bounded("threadIdx.x", 256);
        let sub = tid.clone() / 16;
        r.bind(sub.clone(), "tid_m");
        let e = sub.clone() * 8 + IntExpr::var("n");
        assert_eq!(r.render(&e), "tid_m * 8 + n");
    }

    #[test]
    fn hoists_hw_only_subexpressions() {
        let tid = IntExpr::var_bounded("threadIdx.x", 256);
        let m = IntExpr::var("m");
        let e1 = (tid.clone() / 16) * 8 + m.clone();
        let e2 = (tid.clone() % 16) * 2;
        let hoisted = hoistable_subexprs(&[&e1, &e2]);
        assert_eq!(hoisted.len(), 2);
        assert!(hoisted.contains(&(tid.clone() / 16)));
        assert!(hoisted.contains(&(tid.clone() % 16)));
    }

    #[test]
    fn does_not_hoist_loop_var_expressions() {
        let m = IntExpr::var("m");
        let e = (m.clone() * 1024) + 3;
        assert!(hoistable_subexprs(&[&e]).is_empty());
    }

    #[test]
    fn dedupes_repeated_subexpressions() {
        let tid = IntExpr::var_bounded("threadIdx.x", 256);
        let s = tid.clone() / 16;
        let e1 = s.clone() * 2;
        let e2 = s.clone() * 4;
        let hoisted = hoistable_subexprs(&[&e1, &e2]);
        assert_eq!(hoisted.len(), 1);
    }

    #[test]
    fn min_max_render_as_calls() {
        let r = ExprRenderer::new();
        let x = IntExpr::var("x");
        let e = x.clone().min(IntExpr::constant(5));
        assert_eq!(r.render(&e), "min(x, 5)");
    }
}
