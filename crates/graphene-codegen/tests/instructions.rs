//! Per-instruction-family emission tests: each atomic-spec semantics
//! class must lower to the expected CUDA C++ / inline PTX shape.

use graphene_codegen::generate;
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, BinaryOp, ReduceOp, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sym::IntExpr;

fn reg(n: i64, st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(n), st)
}

/// Builds a tiny kernel around `f` and generates its CUDA.
fn gen(f: impl FnOnce(&mut KernelBuilder)) -> String {
    let mut kb = KernelBuilder::new("k", &[1], &[32]);
    f(&mut kb);
    let kernel = kb.build();
    generate(&kernel, Arch::Sm86).expect("codegen")
}

#[test]
fn vectorized_global_load_uses_uint4() {
    let cuda = gen(|kb| {
        let g = kb.param("g", &[256], ScalarType::F16);
        let (grid, block) = (kb.grid(), kb.block());
        let tid = kb.module()[block].group_coords()[0].clone();
        let r = kb.alloc_reg("r", reg(8, ScalarType::F16));
        let gv = kb.tile_c(g, &[Some(8)]).unwrap();
        let ge = kb.index(gv, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![ge], vec![r]);
    });
    assert!(cuda.contains("*reinterpret_cast<uint4 *>"), "{cuda}");
    assert!(cuda.contains("// ld.global.v4.u32"), "{cuda}");
}

#[test]
fn converting_move_emits_casts() {
    let cuda = gen(|kb| {
        let g = kb.param("g", &[256], ScalarType::F16);
        let y = kb.param("y", &[256], ScalarType::F16);
        let (grid, block) = (kb.grid(), kb.block());
        let tid = kb.module()[block].group_coords()[0].clone();
        let r = kb.alloc_reg("r", reg(8, ScalarType::F32));
        let gv = kb.tile_c(g, &[Some(8)]).unwrap();
        let ge = kb.index(gv, std::slice::from_ref(&tid));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![ge], vec![r]);
        let yv = kb.tile_c(y, &[Some(8)]).unwrap();
        let ye = kb.index(yv, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![r], vec![ye]);
    });
    assert!(cuda.contains("= (float)g["), "f16 -> f32 loads cast: {cuda}");
    assert!(cuda.contains("= (half)r["), "f32 -> f16 stores cast: {cuda}");
}

#[test]
fn shfl_emits_intrinsic() {
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let warp = kb.thread_tile(block, &Layout::contiguous(32)).unwrap();
        let a = kb.alloc_reg("a", reg(1, ScalarType::F32));
        let b = kb.alloc_reg("b", reg(1, ScalarType::F32));
        kb.spec(SpecKind::Shfl { mask: 4 }, vec![grid, warp], vec![a], vec![b]);
    });
    assert!(cuda.contains("__shfl_xor_sync(0xffffffff, a[0], 4)"), "{cuda}");
}

#[test]
fn init_small_unrolls_large_loops() {
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let small = kb.alloc_reg("s", reg(2, ScalarType::F32));
        let big = kb.alloc_reg("b", reg(64, ScalarType::F32));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 1.0 }, vec![grid, ts], vec![], vec![small]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![big]);
    });
    assert!(cuda.contains("s[0] = 1.0f;"), "{cuda}");
    assert!(cuda.contains("s[1] = 1.0f;"), "{cuda}");
    assert!(cuda.contains("for (int _i = 0; _i < 64; _i += 1)"), "{cuda}");
}

#[test]
fn reduction_unrolls_with_op() {
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let v = kb.alloc_reg("v", reg(4, ScalarType::F32));
        let acc = kb.alloc_reg("acc", reg(1, ScalarType::F32));
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::Reduction { op: ReduceOp::Max, axes: vec![0] },
            vec![grid, ts],
            vec![v],
            vec![acc],
        );
    });
    assert!(cuda.contains("acc[0] = v[0];"), "{cuda}");
    assert!(cuda.contains("acc[0] = max(acc[0], v[3]);"), "{cuda}");
}

#[test]
fn binary_ops_emit_operators_and_intrinsics() {
    for (op, needle) in [
        (BinaryOp::Add, " + "),
        (BinaryOp::Sub, " - "),
        (BinaryOp::Mul, " * "),
        (BinaryOp::Div, " / "),
        (BinaryOp::Max, "max("),
        (BinaryOp::Min, "min("),
    ] {
        let cuda = gen(|kb| {
            let (grid, block) = (kb.grid(), kb.block());
            let a = kb.alloc_reg("a", reg(1, ScalarType::F32));
            let b = kb.alloc_reg("b", reg(1, ScalarType::F32));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::BinaryPointwise(op), vec![grid, ts], vec![a, b], vec![b]);
        });
        assert!(cuda.contains(needle), "{op:?}: {cuda}");
    }
}

#[test]
fn unary_ops_emit_cuda_math() {
    for (op, needle) in [
        (UnaryOp::Exp, "expf("),
        (UnaryOp::Relu, "max(a[0], 0.0f)"),
        (UnaryOp::Rsqrt, "rsqrtf("),
        (UnaryOp::Tanh, "tanhf("),
        (UnaryOp::Sigmoid, "1.0f / (1.0f + expf("),
    ] {
        let cuda = gen(|kb| {
            let (grid, block) = (kb.grid(), kb.block());
            let a = kb.alloc_reg("a", reg(1, ScalarType::F32));
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::UnaryPointwise(op), vec![grid, ts], vec![a], vec![a]);
        });
        assert!(cuda.contains(needle), "{op:?}: {cuda}");
    }
}

#[test]
fn ampere_mma_asm_block() {
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let warp = kb.thread_tile(block, &Layout::contiguous(32)).unwrap();
        let a = kb.alloc_reg("a", graphene_kernels_frag_a());
        let b = kb.alloc_reg("b", graphene_kernels_frag_b());
        let c = kb.alloc_reg("c", graphene_kernels_frag_c());
        kb.spec(SpecKind::MatMul, vec![grid, warp], vec![a, b], vec![c]);
    });
    assert!(cuda.contains("mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32"), "{cuda}");
    assert!(cuda.contains("\"+f\"(c[0])"), "{cuda}");
    assert!(cuda.contains("\"r\"(a[0])"), "{cuda}");
}

#[test]
fn predicated_block_renders_guard() {
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let tid = kb.module()[block].group_coords()[0].clone();
        let r = kb.alloc_reg("r", reg(1, ScalarType::F32));
        kb.if_lt(tid, IntExpr::constant(7), |kb| {
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Init { value: 0.0 }, vec![grid, ts], vec![], vec![r]);
        });
    });
    assert!(cuda.contains("if (threadIdx.x < 7) {"), "{cuda}");
}

// Local copies of the fragment types (graphene-codegen cannot depend on
// graphene-kernels without a cycle).
fn graphene_kernels_frag_a() -> TensorType {
    use graphene_ir::tensor::Elem;
    use graphene_layout::it;
    TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![1, 2], it![0, 1]),
            elem: Elem::Scalar(ScalarType::F16),
            swizzle: Default::default(),
        })),
        swizzle: Default::default(),
    }
}

fn graphene_kernels_frag_b() -> TensorType {
    use graphene_ir::tensor::Elem;
    use graphene_layout::it;
    TensorType {
        layout: Layout::new(it![2, 1], it![2, 0]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![2, 1], it![1, 0]),
            elem: Elem::Scalar(ScalarType::F16),
            swizzle: Default::default(),
        })),
        swizzle: Default::default(),
    }
}

fn graphene_kernels_frag_c() -> TensorType {
    use graphene_ir::tensor::Elem;
    use graphene_layout::it;
    TensorType {
        layout: Layout::new(it![2, 1], it![2, 0]),
        elem: Elem::Tile(Box::new(TensorType {
            layout: Layout::new(it![1, 2], it![0, 1]),
            elem: Elem::Scalar(ScalarType::F32),
            swizzle: Default::default(),
        })),
        swizzle: Default::default(),
    }
}

#[test]
fn strided_views_emit_real_offsets() {
    // A Reduction over a strided [4:2] register view must read the
    // view's actual elements (0, 2, 4, 6), not base+0..4.
    let cuda = gen(|kb| {
        let (grid, block) = (kb.grid(), kb.block());
        let v = kb.alloc_reg("v", reg(8, ScalarType::F32));
        let evens = kb.view_as(
            v,
            TensorType::scalar(Layout::strided(4, 2), ScalarType::F32),
            IntExpr::zero(),
        );
        let acc = kb.alloc_reg("acc", reg(1, ScalarType::F32));
        let ts = kb.thread_scalar(block);
        kb.spec(
            SpecKind::Reduction { op: ReduceOp::Sum, axes: vec![0] },
            vec![grid, ts],
            vec![evens],
            vec![acc],
        );
    });
    assert!(cuda.contains("acc[0] = acc[0] + v[2];"), "{cuda}");
    assert!(cuda.contains("acc[0] = acc[0] + v[6];"), "{cuda}");
    assert!(!cuda.contains("v[1]"), "must not touch odd registers:\n{cuda}");
}
