//! Golden tests: generated CUDA C++ for the paper's listings.
//!
//! - Figure 8: the simplest complete GEMM decomposition and its generated
//!   kernel (index arithmetic checked against the paper's constants).
//! - Figure 1c/d: the warp-level `ldmatrix` data movement with its
//!   inline-PTX lowering.

use graphene_codegen::generate;
use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, ScalarType};
use graphene_layout::{it, IntTuple, Layout};
use graphene_sym::IntExpr;

/// Builds the naive GEMM of the paper's Figure 8.
fn figure8_kernel() -> graphene_ir::Kernel {
    let mut kb = KernelBuilder::new("graphene_kernel", &[8, 8], &[16, 16]);
    let a = kb.param("A", &[1024, 1024], ScalarType::F16);
    let b = kb.param("B", &[1024, 1024], ScalarType::F16);
    let c = kb.param("C", &[1024, 1024], ScalarType::F16);

    let grid = kb.grid();
    let block = kb.block();
    let bids = kb.module()[grid].group_coords();
    let tids = kb.module()[block].group_coords();

    // Tiling happens once, outside the loops (views are compile-time).
    let a_blk = kb.tile_c(a, &[Some(128), None]).unwrap();
    let b_blk = kb.tile_c(b, &[None, Some(128)]).unwrap();
    let c_blk = kb.tile_c(c, &[Some(128), Some(128)]).unwrap();
    let a_v = kb.index(a_blk, &[bids[0].clone(), IntExpr::zero()]);
    let b_v = kb.index(b_blk, &[IntExpr::zero(), bids[1].clone()]);
    let c_v = kb.index(c_blk, &[bids[0].clone(), bids[1].clone()]);

    let a_t = kb.tile_c(a_v, &[Some(8), None]).unwrap();
    let b_t = kb.tile_c(b_v, &[None, Some(8)]).unwrap();
    let c_t = kb.tile_c(c_v, &[Some(8), Some(8)]).unwrap();
    let a_tv = kb.index(a_t, &[tids[0].clone(), IntExpr::zero()]);
    let b_tv = kb.index(b_t, &[IntExpr::zero(), tids[1].clone()]);
    let c_tv = kb.index(c_t, &[tids[0].clone(), tids[1].clone()]);

    kb.for_loop("k", 1024, true, |kb, k| {
        kb.for_loop("m", 8, true, |kb, m| {
            kb.for_loop("n", 8, true, |kb, n| {
                let a_s = kb.index(a_tv, &[m.clone(), k.clone()]);
                let b_s = kb.index(b_tv, &[k.clone(), n.clone()]);
                let c_s = kb.index(c_tv, &[m.clone(), n.clone()]);
                let ts = kb.thread_scalar(block);
                kb.spec(SpecKind::MatMul, vec![ts], vec![a_s, b_s], vec![c_s]);
            });
        });
    });
    kb.build()
}

#[test]
fn figure8_generates_valid_gemm() {
    let kernel = figure8_kernel();
    graphene_ir::validate::validate(&kernel, Arch::Sm86).expect("valid kernel");
    let cuda = generate(&kernel, Arch::Sm86).expect("codegen");

    // Signature: C written, A/B const (paper Figure 8 bottom).
    assert!(cuda.contains("__global__ void graphene_kernel("));
    assert!(cuda.contains("const half *__restrict__ A"));
    assert!(cuda.contains("const half *__restrict__ B"));
    assert!(cuda.contains("half *__restrict__ C"));

    // Hoisted thread-index temporaries over blockIdx/threadIdx.
    assert!(cuda.contains("blockIdx.x / 8"));
    assert!(cuda.contains("blockIdx.x % 8"));
    assert!(cuda.contains("threadIdx.x / 16"));
    assert!(cuda.contains("threadIdx.x % 16"));

    // The unrolled triple loop nest.
    assert!(cuda.contains("#pragma unroll"));
    assert!(cuda.contains("for (int k = 0; k < 1024; k += 1)"));
    assert!(cuda.contains("for (int m = 0; m < 8; m += 1)"));
    assert!(cuda.contains("for (int n = 0; n < 8; n += 1)"));

    // Paper's index constants: C tile strides 131072 (bid_m) and 8192
    // (tid_m), A row stride 1024.
    assert!(cuda.contains("131072"), "missing bid_m stride:\n{cuda}");
    assert!(cuda.contains("8192"), "missing tid_m stride:\n{cuda}");
    assert!(cuda.contains("1024"), "missing row stride");

    // The scalar hfma.
    assert!(cuda.contains("__hfma("));
    assert!(cuda.contains("// fma.rn.f16"));
}

#[test]
fn figure8_volta_and_ampere_agree_for_scalar_code() {
    let kernel = figure8_kernel();
    let sm70 = generate(&kernel, Arch::Sm70).expect("volta codegen");
    let sm86 = generate(&kernel, Arch::Sm86).expect("ampere codegen");
    // Scalar GEMM uses no architecture-specific instructions; only the
    // header comment differs.
    let strip = |s: &str| {
        s.lines().filter(|l| !l.starts_with("// Generated")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(&sm70), strip(&sm86));
}

/// Builds the `ldmatrix` data movement of the paper's Figure 1d: a warp
/// moves a 16×16 fp16 shared-memory tile into 2×4 registers per thread.
fn figure1_kernel() -> graphene_ir::Kernel {
    let mut kb = KernelBuilder::new("ldmatrix_move", &[1], &[32]);
    let block = kb.block();

    // %1:[16,16].fp16.SH and %2:[2,4].fp16.RF
    let smem = kb.alloc_shared("smem", TensorType::row_major(&[16, 16], ScalarType::F16));
    // Destination registers typed as the ldmatrix fragment [2,2].[1,2].
    let frag_inner = TensorType::row_major(&[1, 2], ScalarType::F16);
    let frag = TensorType {
        layout: Layout::new(it![2, 2], it![2, 4]),
        elem: graphene_ir::Elem::Tile(Box::new(frag_inner)),
        swizzle: Default::default(),
    };
    let regs = kb.alloc_reg("regs", frag);

    // Move <<<#3, #4>>> (%1) -> (%2) { ... } — the decomposition applies
    // the mapping of Figures 1a/b.
    kb.spec_decomposed(SpecKind::Move, vec![block], vec![smem], vec![regs], |kb| {
        // Tile the warp into 4 groups of 8, arranged 2×2 (Figure 5).
        let warp = kb.block();
        let grp8 = kb.thread_tile(warp, &Layout::contiguous(8)).unwrap();
        let grps = kb.thread_reshape(grp8, &[2, 2]).unwrap();
        let gcoords = kb.module()[grps].group_coords();
        let glocal = kb.module()[grps].local_coord();

        // Tile the source into 4 8×8 tiles, one per group (Figure 1a);
        // each thread addresses one row of its group's tile.
        let tiles = kb.tile_c(smem, &[Some(8), Some(8)]).unwrap();
        let per_grp = kb.index(tiles, &[gcoords[0].clone(), gcoords[1].clone()]);
        let rows = kb.tile_c(per_grp, &[Some(1), None]).unwrap();
        let per_thr = kb.index(rows, &[glocal, IntExpr::zero()]);

        // The warp-collective atomic Move — matches ldmatrix.x4.
        kb.spec(SpecKind::Move, vec![warp], vec![per_thr], vec![regs]);
    });
    kb.build()
}

#[test]
fn figure1_ldmatrix_lowering() {
    let kernel = figure1_kernel();
    graphene_ir::validate::validate(&kernel, Arch::Sm86).expect("valid on Ampere");
    let cuda = generate(&kernel, Arch::Sm86).expect("codegen");

    // Shared memory declaration and register fragment.
    assert!(cuda.contains("__shared__ half smem[256];"));
    assert!(cuda.contains("half regs[8];"));

    // Figure 1c's thread-index computations: groups of 8 within the warp,
    // arranged 2x2: tid/16, (tid/8)%2, tid%8.
    assert!(cuda.contains("threadIdx.x / 16"));
    assert!(cuda.contains("threadIdx.x / 8 % 2"));
    assert!(cuda.contains("threadIdx.x % 8"));

    // The shared-memory pointer conversion and the ldmatrix PTX.
    assert!(cuda.contains("__cvta_generic_to_shared"));
    assert!(cuda.contains("ldmatrix.sync.aligned.m8n8.x4.shared.b16"));
    assert!(cuda.contains("asm volatile"));
}

#[test]
fn figure1_fails_on_volta() {
    // Volta has no ldmatrix: the same IR must be rejected.
    let kernel = figure1_kernel();
    let err = generate(&kernel, Arch::Sm70).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("matches no Volta atomic spec"), "{msg}");
}

#[test]
fn swizzled_smem_emits_macro() {
    let mut kb = KernelBuilder::new("swz", &[1], &[32]);
    let block = kb.block();
    let smem_ty = TensorType::row_major(&[8, 64], ScalarType::F16)
        .with_swizzle(graphene_layout::Swizzle::new(3, 3, 3));
    let smem = kb.alloc_shared("stage", smem_ty);
    let reg = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F16));
    let tid = kb.module()[block].group_coords()[0].clone();
    let elem = kb.index(smem, &[IntExpr::zero(), tid]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![ts], vec![elem], vec![reg]);
    let kernel = kb.build();
    let cuda = generate(&kernel, Arch::Sm86).expect("codegen");
    assert!(cuda.contains("#define SWZ_stage(i)"), "{cuda}");
    assert!(cuda.contains("SWZ_stage("), "{cuda}");
}

#[test]
fn generated_code_is_deterministic() {
    let k1 = figure8_kernel();
    let k2 = figure8_kernel();
    assert_eq!(generate(&k1, Arch::Sm86).unwrap(), generate(&k2, Arch::Sm86).unwrap());
}

// Silence unused-import warnings for items used conditionally above.
#[allow(unused_imports)]
use IntTuple as _;
