//! End-to-end tuner tests: the acceptance criteria of the subsystem.
//!
//! - For every paper kernel with a space, the tuner finds a schedule
//!   whose simulated time is at most the hand-picked default's.
//! - The winner is lint-clean (no error diagnostics) — guaranteed by
//!   construction (analysis-rejected candidates never reach costing)
//!   and re-checked here from scratch.
//! - A second run with the same key is served entirely from the
//!   tuning database: zero candidate simulations, verified by the
//!   pipeline counters.

use graphene_analysis::{analyze_kernel, error_count};
use graphene_ir::Arch;
use graphene_kernels::gemm::Epilogue;
use graphene_sim::{analyze, machine_for, time_kernel};
use graphene_tune::{
    tune, tuner::run_search, tuner::run_search_cached, CostCache, FmhaSpace, GemmSpace,
    LayernormSpace, MlpSpace, Search, SearchSpace, TuneDb, TuneOptions,
};

/// Simulated time of the space's hand-picked default.
fn default_time(space: &dyn SearchSpace) -> f64 {
    let kernel = space.build(&space.default_point());
    let counters = analyze(&kernel, space.arch()).expect("default analyzes");
    time_kernel(&counters, machine_for(space.arch()), kernel.grid_size()).time_s
}

fn assert_tuned_beats_default(space: &dyn SearchSpace, opts: &TuneOptions) {
    let report = run_search(space, opts).expect("search finds a candidate");
    let default_t = default_time(space);
    assert!(
        report.best_time_s <= default_t * (1.0 + 1e-9),
        "{}: tuned {} ({}) worse than default {}",
        space.name(),
        report.best_time_s,
        report.best_desc,
        default_t
    );
    assert!(report.stats.simulated > 0);
    // The winner must be lint-clean, rebuilt from scratch.
    let kernel = space.build(&report.best_point);
    let diags = analyze_kernel(&kernel, space.arch());
    assert_eq!(
        error_count(&diags),
        0,
        "{}: winner {} has error diagnostics",
        space.name(),
        report.best_desc
    );
}

#[test]
fn exhaustive_gemm_matches_or_beats_default_and_accounts_for_every_point() {
    // The one full-exhaustive run of this suite; every other test caps
    // its budget (a budgeted run still evaluates the default first, so
    // the <= default guarantee is unaffected).
    let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
    let report = run_search(&space, &TuneOptions::default()).unwrap();

    let default_t = default_time(&space);
    assert!(
        report.best_time_s <= default_t * (1.0 + 1e-9),
        "tuned {} ({}) worse than default {}",
        report.best_time_s,
        report.best_desc,
        default_t
    );

    // Pipeline accounting: every proposed point lands in exactly one
    // bucket, and the cartesian space is mostly illegal (untileable
    // warp shapes, over-budget smem, >8 warps) — the constraint gate
    // must absorb it before anything is built.
    let s = &report.stats;
    assert_eq!(s.proposed, space.total_points(), "exhaustive covers the space");
    assert_eq!(s.proposed, s.pruned_constraint + s.pruned_analysis + s.simulated, "stats: {s:?}");
    assert!(s.pruned_constraint > s.simulated, "stats: {s:?}");
    assert!(!s.db_hit);

    // Swizzle is no longer a searched axis: the builder decides it by
    // proof, so every candidate — the winner included — ships with
    // provably conflict-free shared-memory staging.
    assert_eq!(report.leaderboard[0].conflict_warnings, 0);

    // And the winner is lint-clean, rebuilt from scratch, with every
    // shared-memory site *proven* (not sampled) conflict-free.
    let kernel = space.build(&report.best_point);
    assert_eq!(error_count(&analyze_kernel(&kernel, space.arch())), 0);
    let sites = graphene_analysis::banks::grade_sites(&kernel, space.arch());
    assert!(sites.iter().all(|s| s.conflict_free() && s.provenance.is_proven()));
}

#[test]
fn budgeted_gemm_volta_matches_or_beats_default() {
    let space = GemmSpace::new(Arch::Sm70, 512, 512, 256, Epilogue::None);
    assert_tuned_beats_default(&space, &TuneOptions { budget: Some(24), ..TuneOptions::default() });
}

#[test]
fn fmha_matches_or_beats_default() {
    // A reduced BERT shape keeps each candidate build fast.
    let space = FmhaSpace::new(8, 128, 64);
    assert_tuned_beats_default(&space, &TuneOptions::default());
}

#[test]
fn layernorm_matches_or_beats_default() {
    let space = LayernormSpace::new(Arch::Sm86, 512, 1024);
    assert_tuned_beats_default(&space, &TuneOptions::default());
}

#[test]
fn mlp_matches_or_beats_default() {
    let space = MlpSpace::new(Arch::Sm86, 512, 128, 2);
    assert_tuned_beats_default(&space, &TuneOptions::default());
}

#[test]
fn beam_and_random_match_or_beat_default_too() {
    let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
    assert_tuned_beats_default(
        &space,
        &TuneOptions {
            search: Search::Beam { seed: 7, width: 3, patience: 1 },
            budget: Some(24),
            ..TuneOptions::default()
        },
    );
    assert_tuned_beats_default(
        &space,
        &TuneOptions { search: Search::Random { seed: 7, samples: 24 }, ..TuneOptions::default() },
    );
}

#[test]
fn budget_caps_simulation_count() {
    let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
    let opts = TuneOptions { budget: Some(5), ..TuneOptions::default() };
    let report = run_search(&space, &opts).unwrap();
    // The budget is checked between batches of 64 proposals, so the
    // overshoot is bounded by one batch's worth of survivors.
    assert!(report.stats.simulated >= 5);
    assert!(report.stats.simulated <= 5 + 64, "stats: {:?}", report.stats);
}

#[test]
fn strategies_are_deterministic() {
    let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
    for search in
        [Search::Random { seed: 3, samples: 30 }, Search::Beam { seed: 3, width: 3, patience: 1 }]
    {
        let opts = TuneOptions { search, budget: Some(16), ..TuneOptions::default() };
        let a = run_search(&space, &opts).unwrap();
        let b = run_search(&space, &opts).unwrap();
        assert_eq!(a.best_point, b.best_point, "{search:?}");
        assert_eq!(a.best_time_s, b.best_time_s, "{search:?}");
        assert_eq!(a.stats, b.stats, "{search:?}");
    }
}

#[test]
fn second_run_is_served_from_the_database_with_zero_simulations() {
    let path =
        std::env::temp_dir().join(format!("graphene-tune-itest-{}.json", std::process::id()));
    std::fs::remove_file(&path).ok();

    let space = LayernormSpace::new(Arch::Sm86, 512, 1024);
    let opts = TuneOptions::default();

    let mut db = TuneDb::load(&path);
    let cold = tune(&space, &opts, Some(&mut db)).unwrap();
    assert!(!cold.stats.db_hit);
    assert!(cold.stats.simulated > 0);

    // Reload from disk — a genuinely separate process would do this.
    let mut db2 = TuneDb::load(&path);
    assert_eq!(db2.len(), 1);
    let warm = tune(&space, &opts, Some(&mut db2)).unwrap();
    assert!(warm.stats.db_hit);
    assert_eq!(warm.stats.simulated, 0, "warm run must not simulate");
    assert_eq!(warm.stats.proposed, 0, "warm run must not even propose");
    assert_eq!(warm.best_point, cold.best_point);
    assert_eq!(warm.best_time_s, cold.best_time_s);

    // A different problem size under the same kernel misses the cache.
    let other = LayernormSpace::new(Arch::Sm86, 1024, 1024);
    let mut db3 = TuneDb::load(&path);
    let miss = tune(&other, &opts, Some(&mut db3)).unwrap();
    assert!(!miss.stats.db_hit);
    assert_eq!(TuneDb::load(&path).len(), 2);

    std::fs::remove_file(&path).ok();
}

/// The cost cache records every post-constraint pipeline run on the
/// first search and replays all of them on the second — identical
/// report, zero fresh simulations.
#[test]
fn second_search_replays_every_costing_from_the_cost_cache() {
    let space = GemmSpace::new(Arch::Sm86, 256, 256, 128, Epilogue::None);
    let opts = TuneOptions::default();
    let costs = CostCache::new();

    let cold = run_search_cached(&space, &opts, Some(&costs)).unwrap();
    assert!(cold.stats.simulated > 0);
    assert_eq!(cold.stats.cost_replayed, 0, "first search has nothing to replay");
    let built_cold = cold.stats.pruned_analysis + cold.stats.simulated;
    assert_eq!(costs.recordings() as usize, built_cold, "every pipeline run recorded");
    assert_eq!(costs.replays(), 0);

    let warm = run_search_cached(&space, &opts, Some(&costs)).unwrap();
    assert_eq!(warm.stats.simulated, 0, "warm search must not simulate");
    assert_eq!(warm.stats.cost_replayed, built_cold, "every built point replays");
    assert_eq!(costs.replays() as usize, built_cold);
    assert_eq!(warm.best_point, cold.best_point);
    assert_eq!(warm.best_time_s, cold.best_time_s);
    assert_eq!(warm.stats.proposed, cold.stats.proposed);
    assert_eq!(warm.stats.pruned_constraint, cold.stats.pruned_constraint);
    // Leaderboards agree candidate-for-candidate, including counters.
    assert_eq!(warm.leaderboard.len(), cold.leaderboard.len());
    for (w, c) in warm.leaderboard.iter().zip(&cold.leaderboard) {
        assert_eq!(w.point, c.point);
        assert_eq!(w.counters, c.counters);
        assert_eq!(w.conflict_warnings, c.conflict_warnings);
    }

    // A different problem size misses: keys fold in the problem.
    let other = GemmSpace::new(Arch::Sm86, 128, 128, 128, Epilogue::None);
    let miss = run_search_cached(&other, &opts, Some(&costs)).unwrap();
    assert_eq!(miss.stats.cost_replayed, 0, "other problem must not replay");
    assert!(miss.stats.simulated > 0);
}

#[test]
fn impossible_problems_report_no_legal_candidate() {
    // A 17x17 GEMM tiles by nothing in the space.
    let space = GemmSpace::new(Arch::Sm86, 17, 17, 17, Epilogue::None);
    let err = run_search(&space, &TuneOptions::default()).unwrap_err();
    match err {
        graphene_tune::TuneError::NoLegalCandidate { proposed, last_reason } => {
            assert!(proposed > 0);
            assert!(last_reason.is_some());
        }
        other => panic!("unexpected error: {other:?}"),
    }
}
