//! GEMM-space searches covering the ground the old
//! `graphene_kernels::tune` compatibility shim's tests held: the
//! search adapts tiles to problem shape and never loses to the
//! default (cuBLAS-like) configuration, and reports are ranked.

use graphene_ir::Arch;
use graphene_kernels::gemm::{build_gemm, Epilogue, GemmConfig};
use graphene_sim::{analyze, machine_for, time_kernel};
use graphene_tune::{tune, GemmSpace, Search, SearchSpace, TuneOptions};

fn param_value(space: &GemmSpace, point: &graphene_tune::Point, name: &str) -> i64 {
    let idx = space.params().iter().position(|p| p.name == name).expect("param exists");
    point.0[idx]
}

/// Simulated time of a concrete config, the way the shim computed its
/// baseline.
fn config_time(cfg: &GemmConfig, arch: Arch) -> f64 {
    let kernel = build_gemm(arch, cfg, Epilogue::None);
    let c = analyze(&kernel, arch).expect("analyzes");
    time_kernel(&c, machine_for(arch), kernel.grid_size()).time_s
}

#[test]
fn skinny_problem_prefers_narrow_tiles_and_beats_default() {
    // A tall-skinny GEMM (n = 128) leaves 128x256-class tiles starved:
    // every legal candidate must pick bn <= 128, and the winner must
    // not lose to the default 128x128x32 tile (which the pipeline
    // always costs first).
    let (m, n, k) = (8192, 128, 256);
    let space = GemmSpace::new(Arch::Sm86, m, n, k, Epilogue::None);
    let opts = TuneOptions {
        search: Search::Beam { seed: 7, width: 4, patience: 2 },
        budget: Some(32),
        top: 8,
        ..TuneOptions::default()
    };
    let report = tune(&space, &opts, None).expect("search succeeds");
    assert!(report.stats.simulated > 0);
    assert!(param_value(&space, &report.best_point, "bn") <= 128);
    let default_t = config_time(&GemmConfig::cublas_like(m, n, k), Arch::Sm86);
    assert!(report.best_time_s <= default_t, "tuned {} vs default {default_t}", report.best_time_s);
}

#[test]
fn leaderboard_is_sorted_fastest_first() {
    let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
    let opts = TuneOptions {
        search: Search::Random { seed: 3, samples: 12 },
        top: 16,
        ..TuneOptions::default()
    };
    let report = tune(&space, &opts, None).expect("search succeeds");
    assert!(report.leaderboard.len() >= 2, "need a real leaderboard");
    for pair in report.leaderboard.windows(2) {
        assert!(pair[0].profile.time_s <= pair[1].profile.time_s);
    }
}
