//! The tunable-space catalog: builds [`SearchSpace`]s, [`Search`]
//! strategies, and [`TuneOptions`] from *stringly* options, shared by
//! the CLI `tune` sub-command and the serve daemon's `tune` requests —
//! one parsing/validation path, so a search requested over the wire is
//! the same search the one-shot CLI would run.

use crate::space::{FmhaSpace, GemmSpace, LayernormSpace, MlpSpace, SearchSpace};
use crate::tuner::{Search, TuneOptions};
use graphene_ir::Arch;
use graphene_kernels::catalog::{opt_int, parse_epilogue};
use graphene_kernels::fmha::FmhaConfig;
use std::collections::HashMap;

/// Builds the search space `kernel` names from string options.
///
/// Recognized names: `gemm`, `fmha`, `layernorm`, `mlp`.
///
/// # Errors
///
/// A user-facing message for unknown names or malformed options.
pub fn space_from_options(
    kernel: &str,
    arch: Arch,
    opts: &HashMap<String, String>,
) -> Result<Box<dyn SearchSpace>, String> {
    let int = |key: &str, default: i64| opt_int(opts, key, default);
    match kernel {
        "gemm" => {
            let (m, n, k) = (int("m", 4096)?, int("n", 4096)?, int("k", 1024)?);
            let epilogue = parse_epilogue(opts.get("epilogue").map(String::as_str))?;
            Ok(Box::new(GemmSpace::new(arch, m, n, k, epilogue)))
        }
        "fmha" => {
            let base = FmhaConfig::mlperf_bert();
            Ok(Box::new(FmhaSpace::new(
                int("heads", base.heads)?,
                int("seq", base.seq)?,
                int("d", base.d)?,
            )))
        }
        "layernorm" => {
            Ok(Box::new(LayernormSpace::new(arch, int("rows", 4096)?, int("hidden", 1024)?)))
        }
        "mlp" => Ok(Box::new(MlpSpace::new(
            arch,
            int("m", 4096)?,
            int("hidden", 128)?,
            int("layers", 4)?,
        ))),
        other => Err(format!("unknown tunable kernel `{other}` (gemm|fmha|layernorm|mlp)")),
    }
}

/// Parses the strategy options (`--search`, `--seed`, `--samples`,
/// `--width`, `--patience`) into a [`Search`], rejecting non-positive
/// counts (a negative value would wrap to an astronomical `usize`).
///
/// # Errors
///
/// A user-facing message for unknown strategies or bad knob values.
pub fn search_from_options(opts: &HashMap<String, String>) -> Result<Search, String> {
    let positive = |name: &str, default: i64| -> Result<usize, String> {
        match opt_int(opts, name, default)? {
            v if v >= 1 => Ok(v as usize),
            v => Err(format!("--{name} must be at least 1, got {v}")),
        }
    };
    let seed = match opt_int(opts, "seed", 0)? {
        v if v >= 0 => v as u64,
        v => return Err(format!("--seed must be non-negative, got {v}")),
    };
    match opts.get("search").map(String::as_str) {
        None | Some("exhaustive") => Ok(Search::Exhaustive),
        Some("random") => Ok(Search::Random { seed, samples: positive("samples", 64)? }),
        Some("beam") => Ok(Search::Beam {
            seed,
            width: positive("width", 4)?,
            patience: positive("patience", 3)?,
        }),
        Some(other) => Err(format!("unknown search `{other}` (exhaustive|random|beam)")),
    }
}

/// Parses `--budget` and `--top` (with the strategy) into full
/// [`TuneOptions`].
///
/// # Errors
///
/// As [`search_from_options`], plus bad budget/top values.
pub fn options_from_options(opts: &HashMap<String, String>) -> Result<TuneOptions, String> {
    let search = search_from_options(opts)?;
    let top = opt_int(opts, "top", 5)?;
    if top < 1 {
        return Err(format!("--top must be at least 1, got {top}"));
    }
    let budget = match opt_int(opts, "budget", 0)? {
        0 => None,
        b if b > 0 => Some(b as usize),
        b => return Err(format!("--budget must be non-negative, got {b}")),
    };
    Ok(TuneOptions { search, budget, threads: 0, top: top as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn builds_every_space() {
        for kernel in ["gemm", "fmha", "layernorm", "mlp"] {
            let s = space_from_options(kernel, Arch::Sm86, &opts(&[]))
                .unwrap_or_else(|e| panic!("{kernel}: {e}"));
            assert!(s.total_points() > 0);
        }
        let err = space_from_options("frobnicate", Arch::Sm86, &opts(&[]))
            .err()
            .expect("unknown kernel must error");
        assert!(err.contains("unknown tunable"));
    }

    #[test]
    fn strategy_knob_validation_matches_the_cli_contract() {
        assert_eq!(search_from_options(&opts(&[])).unwrap(), Search::Exhaustive);
        assert!(search_from_options(&opts(&[("search", "random"), ("samples", "-1")]))
            .unwrap_err()
            .contains("--samples must be at least 1"));
        assert!(search_from_options(&opts(&[("search", "beam"), ("width", "-2")]))
            .unwrap_err()
            .contains("--width must be at least 1"));
        assert!(search_from_options(&opts(&[("seed", "-7")]))
            .unwrap_err()
            .contains("--seed must be non-negative"));
        assert!(search_from_options(&opts(&[("search", "quantum")]))
            .unwrap_err()
            .contains("unknown search"));
        assert!(options_from_options(&opts(&[("budget", "-3")]))
            .unwrap_err()
            .contains("non-negative"));
        assert!(options_from_options(&opts(&[("top", "0")])).unwrap_err().contains("--top"));
    }
}
