//! The persistent tuning database (`tune-cache.json`).
//!
//! Winning schedules are expensive to find and cheap to store: the
//! database maps `(kernel, problem, arch, space hash)` to the winning
//! point so a later run of the same search is served *without a single
//! candidate simulation*. The schema is versioned; a version or
//! space-hash mismatch (the space's parameters changed since the entry
//! was written) silently invalidates the entry — stale winners are
//! re-searched, never trusted.
//!
//! Format (version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     {
//!       "kernel": "gemm",
//!       "problem": "m1024_n1024_k512_gemm",
//!       "arch": "Sm86",
//!       "space_hash": "89ab…",
//!       "point": {"bm": 128, "bn": 128, "bk": 32, "wm": 64, "wn": 64,
//!                 "stages": 2},
//!       "time_s": 0.000123,
//!       "simulated": 87
//!     }
//!   ]
//! }
//! ```
//!
//! Writes are atomic (temp file + rename), so a crashed run never
//! leaves a torn cache.

use crate::json::{self, Json};
use crate::space::{Point, SearchSpace};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Current schema version.
pub const TUNE_DB_VERSION: i64 = 1;

/// One stored winner.
#[derive(Debug, Clone, PartialEq)]
pub struct DbEntry {
    /// Space name.
    pub kernel: String,
    /// Problem key.
    pub problem: String,
    /// `{:?}` of the [`graphene_ir::Arch`].
    pub arch: String,
    /// Hex [`SearchSpace::space_hash`] at write time.
    pub space_hash: String,
    /// Winning point as `(param, value)` pairs, parameter order.
    pub point: Vec<(String, i64)>,
    /// Simulated time of the winner, seconds.
    pub time_s: f64,
    /// How many candidates were simulated to find it (provenance).
    pub simulated: i64,
}

/// A loaded tuning database.
#[derive(Debug, Clone)]
pub struct TuneDb {
    path: PathBuf,
    entries: Vec<DbEntry>,
}

impl TuneDb {
    /// Loads the database at `path`. A missing, unparsable, or
    /// wrong-version file yields an empty database (the cache is a pure
    /// accelerator — never an error source).
    pub fn load(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let entries = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_entries(&text))
            .unwrap_or_default();
        TuneDb { path, entries }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the stored winner for a space, validating the space
    /// hash and resolving the stored pairs into a [`Point`] of the
    /// *current* space. Any mismatch — absent entry, changed space,
    /// value no longer enumerated — is a miss.
    pub fn lookup(&self, space: &dyn SearchSpace) -> Option<(Point, &DbEntry)> {
        let hash = format!("{:016x}", space.space_hash());
        let arch = format!("{:?}", space.arch());
        let entry = self.entries.iter().find(|e| {
            e.kernel == space.name()
                && e.problem == space.problem_key()
                && e.arch == arch
                && e.space_hash == hash
        })?;
        let point = space.point_from_pairs(&entry.point)?;
        Some((point, entry))
    }

    /// Upserts the winner for a space (keyed by kernel/problem/arch;
    /// a changed space hash overwrites the stale entry).
    pub fn record(
        &mut self,
        space: &dyn SearchSpace,
        point: &Point,
        time_s: f64,
        simulated: usize,
    ) {
        let arch = format!("{:?}", space.arch());
        let entry = DbEntry {
            kernel: space.name().to_string(),
            problem: space.problem_key(),
            arch: arch.clone(),
            space_hash: format!("{:016x}", space.space_hash()),
            point: space
                .params()
                .iter()
                .zip(&point.0)
                .map(|(d, &v)| (d.name.to_string(), v))
                .collect(),
            time_s,
            simulated: simulated as i64,
        };
        match self.entries.iter_mut().find(|e| {
            e.kernel == entry.kernel && e.problem == entry.problem && e.arch == entry.arch
        }) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// An in-memory database with no backing file: lookups and records
    /// work, [`Self::save`]/[`Self::save_merged`] are no-ops. Used by
    /// the serve daemon when no `--cache` path is configured.
    pub fn in_memory() -> Self {
        TuneDb { path: PathBuf::new(), entries: Vec::new() }
    }

    /// Whether this database persists to disk (a non-empty path).
    pub fn is_persistent(&self) -> bool {
        !self.path.as_os_str().is_empty()
    }

    /// Merges entries currently on disk into this database, then saves
    /// atomically: *load-merge-save*. Disk entries whose
    /// `(kernel, problem, arch)` key this instance does not hold are
    /// adopted, so two writers with disjoint keys cannot lose each
    /// other's entries (this instance's entries win on key collision).
    ///
    /// Within one process, serialize callers through [`SharedTuneDb`];
    /// the merge narrows (but cannot fully close — there is no file
    /// lock) the lost-update window between independent *processes*.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::save`] I/O errors.
    pub fn save_merged(&mut self) -> std::io::Result<()> {
        if !self.is_persistent() {
            return Ok(());
        }
        let on_disk = std::fs::read_to_string(&self.path)
            .ok()
            .and_then(|text| parse_entries(&text))
            .unwrap_or_default();
        for e in on_disk {
            let held = self
                .entries
                .iter()
                .any(|m| m.kernel == e.kernel && m.problem == e.problem && m.arch == e.arch);
            if !held {
                self.entries.push(e);
            }
        }
        self.save()
    }

    /// Writes the database atomically (temp file + rename). A failed
    /// write never leaves the temp file behind. No-op for an
    /// [in-memory database](Self::in_memory).
    pub fn save(&self) -> std::io::Result<()> {
        if !self.is_persistent() {
            return Ok(());
        }
        let tmp = self.path.with_extension("json.tmp");
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, &self.path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    /// Renders the version-1 document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"version\": {TUNE_DB_VERSION},\n  \"entries\": [\n"));
        for (i, e) in self.entries.iter().enumerate() {
            let point = e
                .point
                .iter()
                .map(|(n, v)| format!("\"{}\": {v}", json::escape(n)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"problem\": \"{}\", \"arch\": \"{}\", \
                 \"space_hash\": \"{}\", \"point\": {{{point}}}, \"time_s\": {}, \
                 \"simulated\": {}}}{}\n",
                json::escape(&e.kernel),
                json::escape(&e.problem),
                json::escape(&e.arch),
                json::escape(&e.space_hash),
                e.time_s,
                e.simulated,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A [`TuneDb`] behind interior locking, safe for concurrent use from
/// one process: the serve daemon's request threads and tune-job
/// workers all share one `Arc<SharedTuneDb>`. Every write goes through
/// [load-merge-save](TuneDb::save_merged) under the lock, so a tune
/// job finishing during another thread's save cannot lose entries.
#[derive(Debug)]
pub struct SharedTuneDb {
    inner: Mutex<TuneDb>,
}

impl SharedTuneDb {
    /// Loads (or creates) the shared database at `path`.
    pub fn load(path: impl Into<PathBuf>) -> Self {
        SharedTuneDb { inner: Mutex::new(TuneDb::load(path)) }
    }

    /// An in-memory shared database ([`TuneDb::in_memory`]).
    pub fn in_memory() -> Self {
        SharedTuneDb { inner: Mutex::new(TuneDb::in_memory()) }
    }

    /// Locked [`TuneDb::lookup`]; the entry is cloned out so the lock
    /// is released before the caller acts on it.
    pub fn lookup(&self, space: &dyn SearchSpace) -> Option<(Point, DbEntry)> {
        let db = self.inner.lock().expect("tune db poisoned");
        db.lookup(space).map(|(p, e)| (p, e.clone()))
    }

    /// Locked [`TuneDb::record`] followed by
    /// [`TuneDb::save_merged`] — the whole read-modify-write is one
    /// critical section.
    ///
    /// # Errors
    ///
    /// Propagates save I/O errors (the in-memory record still took).
    pub fn record_and_save(
        &self,
        space: &dyn SearchSpace,
        point: &Point,
        time_s: f64,
        simulated: usize,
    ) -> std::io::Result<()> {
        let mut db = self.inner.lock().expect("tune db poisoned");
        db.record(space, point, time_s, simulated);
        db.save_merged()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("tune db poisoned").len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the database persists to disk.
    pub fn is_persistent(&self) -> bool {
        self.inner.lock().expect("tune db poisoned").is_persistent()
    }
}

fn parse_entries(text: &str) -> Option<Vec<DbEntry>> {
    let doc = json::parse(text).ok()?;
    if doc.get("version")?.as_i64()? != TUNE_DB_VERSION {
        return None;
    }
    let mut out = Vec::new();
    for e in doc.get("entries")?.as_arr()? {
        let point = match e.get("point")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(n, v)| Some((n.clone(), v.as_i64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        out.push(DbEntry {
            kernel: e.get("kernel")?.as_str()?.to_string(),
            problem: e.get("problem")?.as_str()?.to_string(),
            arch: e.get("arch")?.as_str()?.to_string(),
            space_hash: e.get("space_hash")?.as_str()?.to_string(),
            point,
            time_s: e.get("time_s")?.as_f64()?,
            simulated: e.get("simulated").and_then(Json::as_i64).unwrap_or(0),
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::LayernormSpace;
    use graphene_ir::Arch;

    /// A unique-per-call temp path (pid + global counter, so parallel
    /// test binaries *and* repeated calls within one process never
    /// collide) that removes the file and its `.json.tmp` sibling on
    /// drop — even when the test's assertions fail.
    struct TmpFile(PathBuf);

    impl TmpFile {
        fn new(name: &str) -> Self {
            use std::sync::atomic::{AtomicUsize, Ordering};
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            TmpFile(
                std::env::temp_dir()
                    .join(format!("graphene-tune-dbtest-{name}-{}-{n}.json", std::process::id())),
            )
        }
    }

    impl Drop for TmpFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
            std::fs::remove_file(self.0.with_extension("json.tmp")).ok();
        }
    }

    fn tmp(name: &str) -> TmpFile {
        TmpFile::new(name)
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp("roundtrip");
        let space = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let point = space.default_point();
        let mut db = TuneDb::load(&path.0);
        assert!(db.is_empty());
        db.record(&space, &point, 1.25e-5, 7);
        db.save().unwrap();

        let reloaded = TuneDb::load(&path.0);
        assert_eq!(reloaded.len(), 1);
        let (p, entry) = reloaded.lookup(&space).expect("hit");
        assert_eq!(p, point);
        assert_eq!(entry.time_s, 1.25e-5);
        assert_eq!(entry.simulated, 7);
    }

    #[test]
    fn wrong_version_and_garbage_yield_empty() {
        let path = tmp("version");
        std::fs::write(&path.0, "{\"version\": 999, \"entries\": []}").unwrap();
        assert!(TuneDb::load(&path.0).is_empty());
        std::fs::write(&path.0, "not json at all").unwrap();
        assert!(TuneDb::load(&path.0).is_empty());
    }

    #[test]
    fn changed_space_shape_misses() {
        let path = tmp("shape");
        let space = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let mut db = TuneDb::load(&path.0);
        db.record(&space, &space.default_point(), 1.0e-5, 3);
        // Tamper with the stored hash, as if the space had changed.
        db.entries[0].space_hash = "deadbeefdeadbeef".into();
        assert!(db.lookup(&space).is_none());
        // A different problem of the same kernel also misses.
        let other = LayernormSpace::new(Arch::Sm86, 8192, 1024);
        db.record(&space, &space.default_point(), 1.0e-5, 3);
        assert!(db.lookup(&other).is_none());
    }

    #[test]
    fn upsert_replaces_same_key() {
        let space = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let path = tmp("upsert");
        let mut db = TuneDb::load(&path.0);
        db.record(&space, &space.default_point(), 2.0e-5, 3);
        db.record(&space, &space.default_point(), 1.0e-5, 9);
        assert_eq!(db.len(), 1);
        assert_eq!(db.lookup(&space).unwrap().1.time_s, 1.0e-5);
    }

    /// Two threads recording *disjoint* keys through one
    /// [`SharedTuneDb`] must both survive to disk — the regression the
    /// load-merge-save write discipline exists for.
    #[test]
    fn concurrent_disjoint_inserts_lose_nothing() {
        let path = tmp("concurrent");
        let shared = SharedTuneDb::load(&path.0);
        let a = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let b = LayernormSpace::new(Arch::Sm86, 8192, 1024);
        std::thread::scope(|s| {
            s.spawn(|| shared.record_and_save(&a, &a.default_point(), 1.0e-5, 3).unwrap());
            s.spawn(|| shared.record_and_save(&b, &b.default_point(), 2.0e-5, 4).unwrap());
        });
        let reloaded = TuneDb::load(&path.0);
        assert_eq!(reloaded.len(), 2, "an entry was lost: {}", reloaded.render());
        assert!(reloaded.lookup(&a).is_some());
        assert!(reloaded.lookup(&b).is_some());
    }

    /// Two *independent* handles on the same file (e.g. a one-shot CLI
    /// tune racing the daemon): the second save merges the first
    /// writer's entry instead of clobbering the whole file.
    #[test]
    fn save_merged_adopts_foreign_entries() {
        let path = tmp("merge");
        let a = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let b = LayernormSpace::new(Arch::Sm86, 8192, 1024);
        // Both handles loaded before either write exists.
        let mut h1 = TuneDb::load(&path.0);
        let mut h2 = TuneDb::load(&path.0);
        h1.record(&a, &a.default_point(), 1.0e-5, 3);
        h1.save_merged().unwrap();
        h2.record(&b, &b.default_point(), 2.0e-5, 4);
        h2.save_merged().unwrap();
        let reloaded = TuneDb::load(&path.0);
        assert_eq!(reloaded.len(), 2, "plain save would have dropped h1's entry");
        assert!(reloaded.lookup(&a).is_some());
        assert!(reloaded.lookup(&b).is_some());
        // Key collision: this instance's entry wins over the disk's.
        let mut h3 = TuneDb::load(&path.0);
        h3.record(&a, &a.default_point(), 9.0e-5, 11);
        h3.save_merged().unwrap();
        let final_db = TuneDb::load(&path.0);
        assert_eq!(final_db.len(), 2);
        assert_eq!(final_db.lookup(&a).unwrap().1.time_s, 9.0e-5);
    }

    /// In-memory databases look up and record but never touch disk.
    #[test]
    fn in_memory_db_never_persists() {
        let space = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let shared = SharedTuneDb::in_memory();
        assert!(!shared.is_persistent());
        shared.record_and_save(&space, &space.default_point(), 1.0e-5, 3).unwrap();
        assert_eq!(shared.len(), 1);
        assert!(shared.lookup(&space).is_some());
    }

    /// A failed save must not leave `tune-cache.json.tmp` behind: make
    /// the target path a *directory* so the final rename fails after
    /// the temp file was fully written.
    #[test]
    fn failed_save_removes_temp_file() {
        let path = tmp("failedsave");
        std::fs::create_dir_all(&path.0).unwrap();
        let space = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let mut db = TuneDb::load(&path.0);
        db.record(&space, &space.default_point(), 1.0e-5, 3);
        assert!(db.save().is_err(), "rename onto a directory must fail");
        let tmp_sibling = path.0.with_extension("json.tmp");
        assert!(!tmp_sibling.exists(), "stale temp file left at {}", tmp_sibling.display());
        std::fs::remove_dir_all(&path.0).ok();
    }
}
