//! # graphene-tune
//!
//! Search-based schedule autotuning for Graphene kernels.
//!
//! The paper's schedules (GEMM tiles, FMHA query tiles, layernorm row
//! grouping, fused-MLP warp tiles) are hand-picked; this crate turns
//! that choice into a search problem over the same IR:
//!
//! - **[`space`]** — a [`SearchSpace`] names the tunable parameters of
//!   a kernel family, constrains which combinations are buildable, and
//!   builds the kernel for a point. Spaces ship for every paper kernel
//!   with a meaningful schedule choice.
//! - **[`tuner`]** — pluggable [`Search`] strategies (exhaustive,
//!   seeded random, beam hill-climb) drive a candidate pipeline that
//!   prunes illegal schedules *statically* with the full
//!   `graphene-analysis` diagnostics before any costing, then costs
//!   survivors in parallel with the simulator's counter analysis and
//!   roofline timing model. Ranking is deterministic (time, then
//!   counter tie-breaks). A [`CostCache`] records each point's
//!   pipeline outcome so overlapping or repeated searches replay
//!   instead of re-simulating ([`tune_cached`]).
//! - **[`db`]** — a versioned persistent database (`tune-cache.json`)
//!   keyed by `(kernel, problem, arch, space hash)`; a warm second run
//!   of the same search is served without a single candidate
//!   simulation.
//!
//! The `graphene-cli tune` subcommand is a thin veneer over [`tune`].
//! (The historical GEMM-only `graphene_kernels::tune` compatibility
//! shim has been removed; this crate is the only tuning entry point.)
//!
//! ```
//! use graphene_ir::Arch;
//! use graphene_kernels::gemm::Epilogue;
//! use graphene_tune::{tune, GemmSpace, Search, TuneOptions};
//!
//! let space = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
//! let opts = TuneOptions {
//!     search: Search::Random { seed: 0, samples: 20 },
//!     ..TuneOptions::default()
//! };
//! let report = tune(&space, &opts, None).unwrap();
//! assert!(report.stats.simulated > 0);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod db;
pub mod json;
pub mod space;
pub mod tuner;

pub use db::{DbEntry, SharedTuneDb, TuneDb, TUNE_DB_VERSION};
pub use space::{FmhaSpace, GemmSpace, LayernormSpace, MlpSpace, ParamDef, Point, SearchSpace};
pub use tuner::{
    planned_proposals, rank, Candidate, CostCache, Search, TuneError, TuneOptions, TuneProgress,
    TuneReport, TuneStats,
};

/// Tunes a space: consult the database (if given), otherwise run the
/// search and record the winner back.
///
/// On a database hit the returned report carries the stored point and
/// time with `stats.db_hit = true` and **zero** simulations — the
/// candidate pipeline never runs.
///
/// # Errors
///
/// [`TuneError::NoLegalCandidate`] when every proposed point is pruned;
/// [`TuneError::Db`] when the winner cannot be persisted.
pub fn tune(
    space: &dyn SearchSpace,
    opts: &TuneOptions,
    db: Option<&mut TuneDb>,
) -> Result<TuneReport, TuneError> {
    tune_cached(space, opts, db, None)
}

/// [`tune`] with an optional [`CostCache`]: candidate outcomes recorded
/// by earlier searches replay without re-building or re-simulating,
/// and this search's pipeline runs are recorded for the next one. The
/// database still takes precedence — a `tune-cache.json` hit never
/// consults the cost cache at all.
///
/// # Errors
///
/// Same as [`tune`].
pub fn tune_cached(
    space: &dyn SearchSpace,
    opts: &TuneOptions,
    mut db: Option<&mut TuneDb>,
    costs: Option<&CostCache>,
) -> Result<TuneReport, TuneError> {
    if let Some(db) = db.as_deref_mut() {
        if let Some((point, entry)) = db.lookup(space) {
            return Ok(TuneReport {
                space: space.name().to_string(),
                problem: space.problem_key(),
                best_desc: space.describe(&point),
                best_point: point,
                best_time_s: entry.time_s,
                leaderboard: Vec::new(),
                stats: TuneStats { db_hit: true, ..TuneStats::default() },
            });
        }
    }
    let report = tuner::run_search_cached(space, opts, costs)?;
    if let Some(db) = db {
        db.record(space, &report.best_point, report.best_time_s, report.stats.simulated);
        db.save().map_err(|e| TuneError::Db(e.to_string()))?;
    }
    Ok(report)
}

/// [`tune_cached`] against a [`SharedTuneDb`] with an optional
/// [`TuneProgress`] observer — the serve daemon's entry point. The
/// database lookup, the (observable, cancellable) search, and the
/// merged write-back all go through the shared handle, so concurrent
/// tunes from many request threads neither race the file nor lose
/// each other's entries.
///
/// # Errors
///
/// As [`tune`], plus [`TuneError::Cancelled`] when the observer
/// cancelled the search.
pub fn tune_observed(
    space: &dyn SearchSpace,
    opts: &TuneOptions,
    db: Option<&SharedTuneDb>,
    costs: Option<&CostCache>,
    progress: Option<&dyn TuneProgress>,
) -> Result<TuneReport, TuneError> {
    if let Some(db) = db {
        if let Some((point, entry)) = db.lookup(space) {
            return Ok(TuneReport {
                space: space.name().to_string(),
                problem: space.problem_key(),
                best_desc: space.describe(&point),
                best_point: point,
                best_time_s: entry.time_s,
                leaderboard: Vec::new(),
                stats: TuneStats { db_hit: true, ..TuneStats::default() },
            });
        }
    }
    let report = tuner::run_search_observed(space, opts, costs, progress)?;
    if let Some(db) = db {
        db.record_and_save(space, &report.best_point, report.best_time_s, report.stats.simulated)
            .map_err(|e| TuneError::Db(e.to_string()))?;
    }
    Ok(report)
}
