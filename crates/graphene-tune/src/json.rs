//! A minimal JSON reader/writer for the tuning database.
//!
//! The workspace is built offline (no crates.io), so `serde_json` is
//! not available; the tuning cache needs only a small, strict subset of
//! JSON — objects, arrays, strings, finite numbers, booleans, null —
//! which this hand-rolled recursive-descent parser covers. Emission is
//! done by the database itself ([`crate::db`]); [`escape`] is the
//! shared string escaper.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("malformed number `{s}` at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the full sequence.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && b[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"version": 1, "entries": [{"kernel": "gemm", "time_s": 1.5e-4,
                      "point": {"bm": 128, "swizzle": true}, "note": null}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("version").and_then(Json::as_i64), Some(1));
        let entries = v.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries[0].get("kernel").and_then(Json::as_str), Some("gemm"));
        assert_eq!(entries[0].get("time_s").and_then(Json::as_f64), Some(1.5e-4));
        assert_eq!(entries[0].get("point").unwrap().get("bm").and_then(Json::as_i64), Some(128));
        assert_eq!(entries[0].get("note"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(&format!("\"{}\"", escape("a\"b\\c\nd"))).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nope").is_err());
    }
}
