//! Search spaces: what the tuner explores.
//!
//! A [`SearchSpace`] is a named set of integer parameters (each with a
//! finite value list), a *constraint* telling which combinations are
//! even buildable, a *builder* turning a legal [`Point`] into a
//! [`Kernel`], and a *default* point — the hand-picked schedule the
//! paper (and the kernel library) ships. The tuner never has to know
//! what the parameters mean; everything kernel-specific lives here.
//!
//! Concrete spaces are provided for every paper kernel with a
//! meaningful schedule choice: [`GemmSpace`] (block/warp/K tiles,
//! swizzling, pipeline depth), [`FmhaSpace`] (query tile and warp
//! rows), [`LayernormSpace`] (rows per block), and [`MlpSpace`]
//! (row tile and warp tiles of the fused layers).
//!
//! Constraints are *conservative*: every point they accept must build
//! without panicking (the builders assert their own preconditions).
//! They intentionally do **not** try to predict deeper legality —
//! races, bank conflicts, shared-memory overflow of exotic variants —
//! that is the static-analysis pruning stage of
//! [`crate::tuner`], which runs the full `graphene-analysis` pipeline
//! over each built candidate.

use graphene_ir::{Arch, Kernel};
use graphene_kernels::fmha::{build_fused_fmha, FmhaConfig};
use graphene_kernels::gemm::{build_gemm, build_gemm_double_buffered, Epilogue, GemmConfig};
use graphene_kernels::layernorm::{build_layernorm, LayernormConfig};
use graphene_kernels::mlp::{build_fused_mlp, MlpConfig};

/// One tunable parameter: a name and the finite list of values the
/// space enumerates for it.
#[derive(Debug, Clone)]
pub struct ParamDef {
    /// Parameter name (stable; part of the tuning-database schema).
    pub name: &'static str,
    /// Candidate values, in ascending order.
    pub values: Vec<i64>,
}

/// A concrete assignment of every parameter of a space, in
/// [`SearchSpace::params`] order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point(pub Vec<i64>);

/// A tunable kernel family.
///
/// `Sync` is required so the tuner can fan candidate evaluation out
/// across `std::thread::scope` workers sharing `&dyn SearchSpace`.
pub trait SearchSpace: Sync {
    /// Stable space name (part of the tuning-database key).
    fn name(&self) -> &'static str;

    /// Target architecture.
    fn arch(&self) -> Arch;

    /// The tunable parameters.
    fn params(&self) -> &[ParamDef];

    /// Stable description of the *problem* (sizes, epilogue, …) this
    /// space instance tunes — part of the tuning-database key.
    fn problem_key(&self) -> String;

    /// The hand-picked default schedule (must satisfy
    /// [`SearchSpace::constraint`]).
    fn default_point(&self) -> Point;

    /// Cheap static legality: `Err(reason)` for combinations that the
    /// builder would reject. Every accepted point must build without
    /// panicking.
    fn constraint(&self, p: &Point) -> Result<(), String>;

    /// Builds the kernel for a constraint-passing point.
    fn build(&self, p: &Point) -> Kernel;

    // ---- provided ----------------------------------------------------

    /// Value of parameter `name` in `p`.
    fn get(&self, p: &Point, name: &str) -> i64 {
        let i = self
            .params()
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("no parameter `{name}` in space `{}`", self.name()));
        p.0[i]
    }

    /// Size of the full cartesian space (before constraints).
    fn total_points(&self) -> usize {
        self.params().iter().map(|d| d.values.len()).product()
    }

    /// Mixed-radix decode: the `idx`-th point of the cartesian
    /// enumeration (`idx < total_points()`), last parameter fastest.
    fn point_at(&self, mut idx: usize) -> Point {
        let defs = self.params();
        let mut vals = vec![0i64; defs.len()];
        for (slot, d) in vals.iter_mut().zip(defs).rev() {
            *slot = d.values[idx % d.values.len()];
            idx /= d.values.len();
        }
        Point(vals)
    }

    /// `name=value` rendering of a point, parameter order.
    fn describe(&self, p: &Point) -> String {
        self.params()
            .iter()
            .zip(&p.0)
            .map(|(d, v)| format!("{}={v}", d.name))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Reconstructs a [`Point`] from stored `(name, value)` pairs (the
    /// tuning-database representation). `None` when a parameter is
    /// missing or its value is no longer in the space.
    fn point_from_pairs(&self, pairs: &[(String, i64)]) -> Option<Point> {
        let mut vals = Vec::with_capacity(self.params().len());
        for d in self.params() {
            let (_, v) = pairs.iter().find(|(n, _)| n == d.name)?;
            if !d.values.contains(v) {
                return None;
            }
            vals.push(*v);
        }
        Some(Point(vals))
    }

    /// FNV-1a hash of the space *shape* (name, arch, parameter names
    /// and value lists). A stored tuning-database entry is only valid
    /// while this hash matches — growing a value list invalidates it.
    fn space_hash(&self) -> u64 {
        let mut h = fnv(FNV_OFFSET, self.name().as_bytes());
        h = fnv(h, format!("{:?}", self.arch()).as_bytes());
        for d in self.params() {
            h = fnv(h, d.name.as_bytes());
            for v in &d.values {
                h = fnv(h, &v.to_le_bytes());
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

/// The GEMM schedule space: thread-block tile (`bm`, `bn`), K step
/// (`bk`), warp tile (`wm`, `wn`), and pipeline depth (`stages`; 2 =
/// double-buffered `cp.async` pipeline, Ampere only).
///
/// Shared-memory swizzling is **not** a searched axis: [`Self::build`]
/// decides it by proof. The unswizzled candidate's staging layouts are
/// graded symbolically ([`graphene_analysis::banks::grade_sites`]);
/// only when some site is provably conflicted does the builder apply
/// the swizzle. This halves the space versus searching a `swizzle`
/// parameter and replaces per-candidate conflict simulation with one
/// F₂ rank check.
pub struct GemmSpace {
    arch: Arch,
    m: i64,
    n: i64,
    k: i64,
    epilogue: Epilogue,
    params: Vec<ParamDef>,
}

impl GemmSpace {
    /// A space over an `m×n×k` problem.
    pub fn new(arch: Arch, m: i64, n: i64, k: i64, epilogue: Epilogue) -> Self {
        let bks: Vec<i64> = match arch {
            Arch::Sm86 => vec![16, 32, 64],
            Arch::Sm70 => vec![8, 16, 32],
        };
        let params = vec![
            ParamDef { name: "bm", values: vec![32, 64, 128, 256] },
            ParamDef { name: "bn", values: vec![32, 64, 128, 256] },
            ParamDef { name: "bk", values: bks },
            ParamDef { name: "wm", values: vec![16, 32, 64] },
            ParamDef { name: "wn", values: vec![16, 32, 64] },
            ParamDef { name: "stages", values: vec![1, 2] },
        ];
        GemmSpace { arch, m, n, k, epilogue, params }
    }

    /// The config for a point, *before* the proof-driven swizzle
    /// decision (swizzle off).
    fn config(&self, p: &Point) -> GemmConfig {
        GemmConfig {
            m: self.m,
            n: self.n,
            k: self.k,
            bm: self.get(p, "bm"),
            bn: self.get(p, "bn"),
            bk: self.get(p, "bk"),
            wm: self.get(p, "wm"),
            wn: self.get(p, "wn"),
            swizzle: false,
        }
    }

    fn build_config(&self, cfg: &GemmConfig, stages: i64) -> Kernel {
        if stages == 2 {
            build_gemm_double_buffered(cfg, self.epilogue)
        } else {
            build_gemm(self.arch, cfg, self.epilogue)
        }
    }
}

impl SearchSpace for GemmSpace {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn params(&self) -> &[ParamDef] {
        &self.params
    }

    fn problem_key(&self) -> String {
        format!("m{}_n{}_k{}_{}", self.m, self.n, self.k, self.epilogue.label())
    }

    fn default_point(&self) -> Point {
        // The paper's cuBLAS-matching hand pick (footnote 1), single
        // buffered.
        let d = GemmConfig::cublas_like(self.m, self.n, self.k);
        Point(vec![d.bm, d.bn, d.bk, d.wm, d.wn, 1])
    }

    fn constraint(&self, p: &Point) -> Result<(), String> {
        let cfg = self.config(p);
        cfg.validate(self.arch)?;
        if self.get(p, "stages") == 2 {
            if self.arch != Arch::Sm86 {
                return Err("double-buffered pipeline requires cp.async (Ampere)".into());
            }
            let need = 2 * cfg.smem_bytes();
            let limit = self.arch.smem_limit_bytes();
            if need > limit {
                return Err(format!(
                    "shared-memory budget: {need} B double-buffered stages exceed {limit} B"
                ));
            }
        }
        Ok(())
    }

    fn build(&self, p: &Point) -> Kernel {
        let mut cfg = self.config(p);
        let stages = self.get(p, "stages");
        // Proof-driven swizzle: grade the unswizzled candidate's
        // shared-memory staging symbolically; swizzle only if some
        // site is provably conflicted.
        let candidate = self.build_config(&cfg, stages);
        let clean = graphene_analysis::banks::grade_sites(&candidate, self.arch)
            .iter()
            .all(|s| s.conflict_free());
        if clean {
            return candidate;
        }
        cfg.swizzle = true;
        self.build_config(&cfg, stages)
    }
}

// ---------------------------------------------------------------------
// FMHA
// ---------------------------------------------------------------------

/// The fused-attention schedule space: query rows per block (`bq`) and
/// warp tile rows (`wm`). Ampere only, like the kernel.
pub struct FmhaSpace {
    heads: i64,
    seq: i64,
    d: i64,
    params: Vec<ParamDef>,
}

impl FmhaSpace {
    /// A space over a (heads, seq, d) attention problem.
    pub fn new(heads: i64, seq: i64, d: i64) -> Self {
        let params = vec![
            ParamDef { name: "bq", values: vec![32, 64, 128] },
            ParamDef { name: "wm", values: vec![16, 32, 64] },
        ];
        FmhaSpace { heads, seq, d, params }
    }

    /// The paper's MLPerf BERT inference shape.
    pub fn mlperf_bert() -> Self {
        let c = FmhaConfig::mlperf_bert();
        FmhaSpace::new(c.heads, c.seq, c.d)
    }

    fn config(&self, p: &Point) -> FmhaConfig {
        FmhaConfig {
            heads: self.heads,
            seq: self.seq,
            d: self.d,
            bq: self.get(p, "bq"),
            wm: self.get(p, "wm"),
        }
    }
}

impl SearchSpace for FmhaSpace {
    fn name(&self) -> &'static str {
        "fmha"
    }

    fn arch(&self) -> Arch {
        Arch::Sm86
    }

    fn params(&self) -> &[ParamDef] {
        &self.params
    }

    fn problem_key(&self) -> String {
        format!("heads{}_seq{}_d{}", self.heads, self.seq, self.d)
    }

    fn default_point(&self) -> Point {
        let d = FmhaConfig::mlperf_bert();
        Point(vec![d.bq, d.wm])
    }

    fn constraint(&self, p: &Point) -> Result<(), String> {
        let c = self.config(p);
        if self.d % 16 != 0 || self.seq % 16 != 0 {
            return Err("head dim and seq must be multiples of 16 (mma K)".into());
        }
        if self.seq % c.bq != 0 {
            return Err(format!("query tiling: seq={} not divisible by bq={}", self.seq, c.bq));
        }
        if c.bq % c.wm != 0 || c.wm % 16 != 0 {
            return Err(format!("warp tiling: bq={} vs wm={} (bq%wm, wm%16)", c.bq, c.wm));
        }
        let warps = c.warps();
        if !(1..=8).contains(&warps) {
            return Err(format!("{warps} warps per block (1..=8 supported)"));
        }
        let threads = c.threads();
        if (c.bq * self.d) % threads != 0 {
            return Err(format!("Q staging: {}x{} tile vs {threads} threads", c.bq, self.d));
        }
        if (self.seq * self.d) % (threads * 8) != 0 {
            return Err(format!(
                "transposed K staging: {}x{} vs {threads} threads x8 vectors",
                self.seq, self.d
            ));
        }
        let smem = ((c.bq + self.seq) * self.d * 2) as u64;
        let limit = Arch::Sm86.smem_limit_bytes();
        if smem > limit {
            return Err(format!("shared-memory budget: {smem} B exceeds {limit} B"));
        }
        Ok(())
    }

    fn build(&self, p: &Point) -> Kernel {
        build_fused_fmha(Arch::Sm86, &self.config(p))
    }
}

// ---------------------------------------------------------------------
// Layernorm
// ---------------------------------------------------------------------

/// The layernorm schedule space: rows handled per block (one warp
/// each). More rows per block amortise launch and wave quantisation;
/// fewer increase the grid for small row counts.
pub struct LayernormSpace {
    arch: Arch,
    rows: i64,
    hidden: i64,
    params: Vec<ParamDef>,
}

impl LayernormSpace {
    /// A space over a `[rows, hidden]` normalisation problem.
    pub fn new(arch: Arch, rows: i64, hidden: i64) -> Self {
        let params = vec![ParamDef { name: "rows_per_block", values: vec![1, 2, 4, 8, 16] }];
        LayernormSpace { arch, rows, hidden, params }
    }

    fn config(&self, p: &Point) -> LayernormConfig {
        LayernormConfig {
            rows: self.rows,
            hidden: self.hidden,
            rows_per_block: self.get(p, "rows_per_block"),
        }
    }
}

impl SearchSpace for LayernormSpace {
    fn name(&self) -> &'static str {
        "layernorm"
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn params(&self) -> &[ParamDef] {
        &self.params
    }

    fn problem_key(&self) -> String {
        format!("rows{}_hidden{}", self.rows, self.hidden)
    }

    fn default_point(&self) -> Point {
        Point(vec![LayernormConfig::new(self.rows, self.hidden).rows_per_block])
    }

    fn constraint(&self, p: &Point) -> Result<(), String> {
        let c = self.config(p);
        if self.hidden % 256 != 0 {
            return Err(format!(
                "hidden={} not a multiple of 256 (32 lanes x8 vectors)",
                self.hidden
            ));
        }
        if self.rows % c.rows_per_block != 0 {
            return Err(format!(
                "row tiling: rows={} not divisible by rows_per_block={}",
                self.rows, c.rows_per_block
            ));
        }
        Ok(())
    }

    fn build(&self, p: &Point) -> Kernel {
        build_layernorm(self.arch, &self.config(p))
    }
}

// ---------------------------------------------------------------------
// Fused MLP
// ---------------------------------------------------------------------

/// The fused-MLP schedule space: activation rows per block (`bm`) and
/// warp tile (`wm`, `wn`) of the per-layer GEMMs.
pub struct MlpSpace {
    arch: Arch,
    m: i64,
    hidden: i64,
    layers: i64,
    params: Vec<ParamDef>,
}

impl MlpSpace {
    /// A space over an `m×hidden`, `layers`-deep fused MLP.
    pub fn new(arch: Arch, m: i64, hidden: i64, layers: i64) -> Self {
        let params = vec![
            ParamDef { name: "bm", values: vec![32, 64, 128, 256] },
            ParamDef { name: "wm", values: vec![16, 32, 64] },
            ParamDef { name: "wn", values: vec![16, 32, 64] },
        ];
        MlpSpace { arch, m, hidden, layers, params }
    }

    fn config(&self, p: &Point) -> MlpConfig {
        MlpConfig {
            m: self.m,
            hidden: self.hidden,
            layers: self.layers,
            bm: self.get(p, "bm"),
            wm: self.get(p, "wm"),
            wn: self.get(p, "wn"),
        }
    }
}

impl SearchSpace for MlpSpace {
    fn name(&self) -> &'static str {
        "fused-mlp"
    }

    fn arch(&self) -> Arch {
        self.arch
    }

    fn params(&self) -> &[ParamDef] {
        &self.params
    }

    fn problem_key(&self) -> String {
        format!("m{}_hidden{}_layers{}", self.m, self.hidden, self.layers)
    }

    fn default_point(&self) -> Point {
        let d = MlpConfig::paper(self.m, self.layers);
        Point(vec![d.bm, d.wm, d.wn])
    }

    fn constraint(&self, p: &Point) -> Result<(), String> {
        let c = self.config(p);
        if self.hidden > 128 || self.hidden % 16 != 0 {
            return Err(format!("fusibility: hidden={} (N=K<=128, %16)", self.hidden));
        }
        if self.m % c.bm != 0 {
            return Err(format!("row tiling: m={} not divisible by bm={}", self.m, c.bm));
        }
        if c.bm % c.wm != 0 || self.hidden % c.wn != 0 {
            return Err(format!(
                "warp tiling: {}x{} does not tile by {}x{}",
                c.bm, self.hidden, c.wm, c.wn
            ));
        }
        match self.arch {
            Arch::Sm86 if c.wm % 16 != 0 || c.wn % 8 != 0 => {
                return Err(format!("warp tile {}x{} vs mma.m16n8k16 (wm%16, wn%8)", c.wm, c.wn));
            }
            Arch::Sm70 if c.wm % 16 != 0 || c.wn % 16 != 0 => {
                return Err(format!("warp tile {}x{} vs quad-pairs (wm%16, wn%16)", c.wm, c.wn));
            }
            _ => {}
        }
        let warps = (c.bm / c.wm) * (self.hidden / c.wn);
        if !(1..=8).contains(&warps) {
            return Err(format!("{warps} warps per block (1..=8 supported)"));
        }
        let threads = warps * 32;
        if (c.bm * self.hidden) % (threads * 8) != 0 {
            return Err(format!(
                "activation staging: {}x{} tile vs {threads} threads x8 vectors",
                c.bm, self.hidden
            ));
        }
        if (self.hidden * self.hidden) % (threads * 8) != 0 {
            return Err(format!(
                "weight staging: {0}x{0} tile vs {threads} threads x8 vectors",
                self.hidden
            ));
        }
        // Ping-pong activations + the weight stage, fp16.
        let smem = ((2 * c.bm * self.hidden + self.hidden * self.hidden) * 2) as u64;
        let limit = self.arch.smem_limit_bytes();
        if smem > limit {
            return Err(format!("shared-memory budget: {smem} B exceeds {limit} B"));
        }
        Ok(())
    }

    fn build(&self, p: &Point) -> Kernel {
        build_fused_mlp(self.arch, &self.config(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_satisfy_their_own_constraints() {
        let spaces: Vec<Box<dyn SearchSpace>> = vec![
            Box::new(GemmSpace::new(Arch::Sm86, 1024, 1024, 512, Epilogue::None)),
            Box::new(GemmSpace::new(Arch::Sm70, 1024, 1024, 512, Epilogue::None)),
            Box::new(FmhaSpace::mlperf_bert()),
            Box::new(LayernormSpace::new(Arch::Sm86, 4096, 1024)),
            Box::new(MlpSpace::new(Arch::Sm86, 1024, 128, 4)),
            Box::new(MlpSpace::new(Arch::Sm70, 1024, 128, 4)),
        ];
        for s in &spaces {
            let d = s.default_point();
            s.constraint(&d)
                .unwrap_or_else(|e| panic!("{} default {} illegal: {e}", s.name(), s.describe(&d)));
        }
    }

    #[test]
    fn point_enumeration_round_trips() {
        let s = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
        assert_eq!(s.total_points(), 4 * 4 * 3 * 3 * 3 * 2);
        // First point: every parameter at its first value.
        let first = s.point_at(0);
        assert_eq!(first.0, vec![32, 32, 16, 16, 16, 1]);
        // Last point: every parameter at its last value.
        let last = s.point_at(s.total_points() - 1);
        assert_eq!(last.0, vec![256, 256, 64, 64, 64, 2]);
        // All points distinct.
        let mut seen = std::collections::HashSet::new();
        for i in 0..s.total_points() {
            assert!(seen.insert(s.point_at(i)));
        }
    }

    #[test]
    fn pairs_round_trip_and_reject_foreign_values() {
        let s = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        let p = s.default_point();
        let pairs: Vec<(String, i64)> =
            s.params().iter().zip(&p.0).map(|(d, &v)| (d.name.to_string(), v)).collect();
        assert_eq!(s.point_from_pairs(&pairs), Some(p));
        assert_eq!(s.point_from_pairs(&[("rows_per_block".into(), 7)]), None);
        assert_eq!(s.point_from_pairs(&[]), None);
    }

    #[test]
    fn space_hash_tracks_shape() {
        let a = GemmSpace::new(Arch::Sm86, 512, 512, 256, Epilogue::None);
        let b = GemmSpace::new(Arch::Sm86, 1024, 256, 512, Epilogue::None);
        // Problem sizes are NOT part of the shape hash (they key the DB
        // separately)…
        assert_eq!(a.space_hash(), b.space_hash());
        // …but the arch is (its bk list differs too).
        let c = GemmSpace::new(Arch::Sm70, 512, 512, 256, Epilogue::None);
        assert_ne!(a.space_hash(), c.space_hash());
        let d = LayernormSpace::new(Arch::Sm86, 4096, 1024);
        assert_ne!(a.space_hash(), d.space_hash());
    }

    #[test]
    fn legal_gemm_points_build_and_default_is_cublas_like() {
        let s = GemmSpace::new(Arch::Sm86, 256, 256, 64, Epilogue::None);
        let d = s.default_point();
        assert_eq!(s.get(&d, "bm"), 128);
        // Constraint must reject what the builder would reject: probe a
        // sample of the space and build every survivor.
        let mut built = 0;
        for i in (0..s.total_points()).step_by(7) {
            let p = s.point_at(i);
            if s.constraint(&p).is_ok() {
                let k = s.build(&p);
                assert!(k.grid_size() > 0);
                built += 1;
            }
        }
        assert!(built > 0, "sampled space produced no legal point");
    }

    #[test]
    fn gemm_build_swizzles_exactly_when_proof_demands_it() {
        let s = GemmSpace::new(Arch::Sm86, 256, 256, 64, Epilogue::None);
        let d = s.default_point();
        // The unswizzled cublas-like build has provably conflicted
        // shared-memory staging, so the proof-driven builder must
        // apply the swizzle…
        let built = s.build(&d);
        let sites = graphene_analysis::banks::grade_sites(&built, Arch::Sm86);
        assert!(!sites.is_empty());
        assert!(
            sites.iter().all(|site| site.conflict_free()),
            "proof-driven build left a conflicted site"
        );
        // …and every grade of the shipped kernel is a proof, not a
        // sample.
        assert!(sites.iter().all(|site| site.provenance.is_proven()));
    }
}
