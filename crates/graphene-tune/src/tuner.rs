//! The candidate pipeline: propose → prune → cost → rank.
//!
//! Every proposed [`Point`] flows through three gates:
//!
//! 1. **Constraint prune** — [`SearchSpace::constraint`], pure
//!    arithmetic, rejects untileable/unbuildable combinations without
//!    constructing anything.
//! 2. **Static-analysis prune** — the candidate is built and run
//!    through the full `graphene-analysis` pipeline
//!    ([`analyze_kernel_cached`]); any *error* diagnostic (race,
//!    shared-memory overflow, memory-space violation, …) rejects it.
//!    Schedules that merely *warn* (e.g. `GRA014` bank conflicts)
//!    survive — the timing model charges them for the conflicts
//!    instead. (GEMM candidates rarely warn any more: the builder
//!    resolves swizzling by proof before the candidate is graded.)
//! 3. **Costing** — the simulator's static counter analysis
//!    ([`analyze_cached`]) plus the roofline timing model
//!    ([`time_kernel`]). Both analysis and costing share one
//!    per-candidate [`PlanCache`], so each tensor's address plan is
//!    compiled once and reused across all passes (plans are keyed by
//!    tensor id, which is only meaningful within one kernel — the
//!    cache is deliberately *not* shared between candidates).
//!
//! A [`CostCache`] sits across the whole pipeline after the constraint
//! gate: the first evaluation of a point *records* its outcome
//! (rejection reason, or profile + counters), and every later
//! evaluation of the same `(space, problem, arch, point)` *replays* the
//! recording — the tuner-side analog of the simulator's trace cache.
//!
//! Candidates are evaluated in parallel with `std::thread::scope`
//! workers pulling from a shared index; results keep submission order,
//! so reports are deterministic regardless of thread interleaving.
//! Ranking is by simulated `time_s` with deterministic tie-breaks on
//! counters (shared-memory transactions, DRAM bytes, instructions) and
//! finally the point itself.

use crate::space::{Point, SearchSpace};
use graphene_analysis::{analyze_kernel_cached, error_count, Severity};
use graphene_sim::{analyze_cached, machine_for, time_kernel, Counters, KernelProfile, PlanCache};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// A search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Search {
    /// Enumerate the whole space (default point first).
    Exhaustive,
    /// `samples` seeded-random distinct points (plus the default).
    Random {
        /// RNG seed (deterministic across runs).
        seed: u64,
        /// Number of random points to propose.
        samples: usize,
    },
    /// Beam hill-climb: keep the best `width` candidates, expand their
    /// one-step parameter neighbourhoods, stop after `patience` rounds
    /// without improving the global best.
    Beam {
        /// RNG seed for the initial frontier.
        seed: u64,
        /// Beam width (candidates kept per round).
        width: usize,
        /// Rounds without improvement before terminating early.
        patience: usize,
    },
}

/// Tuner options.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// The strategy.
    pub search: Search,
    /// Maximum number of candidates to *cost* (simulate). Pruned
    /// candidates are free. Checked between parallel batches, so a
    /// batch in flight may finish. `None` = unlimited.
    pub budget: Option<usize>,
    /// Worker threads for candidate evaluation (0 = one per available
    /// core).
    pub threads: usize,
    /// Leaderboard length retained in the report.
    pub top: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { search: Search::Exhaustive, budget: None, threads: 0, top: 5 }
    }
}

/// One fully costed candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Its point in the space.
    pub point: Point,
    /// Simulated timing profile.
    pub profile: KernelProfile,
    /// The static counters behind the profile.
    pub counters: Counters,
    /// `GRA014` bank-conflict warnings the analysis pipeline issued.
    pub conflict_warnings: usize,
}

/// What happened to the candidates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TuneStats {
    /// Points proposed by the strategy.
    pub proposed: usize,
    /// Rejected by [`SearchSpace::constraint`] (never built).
    pub pruned_constraint: usize,
    /// Built but rejected by static analysis (error diagnostics).
    pub pruned_analysis: usize,
    /// Candidates costed through the simulator.
    pub simulated: usize,
    /// Outcomes replayed from a [`CostCache`] recording — the point was
    /// neither rebuilt nor re-analysed nor re-simulated.
    pub cost_replayed: usize,
    /// Served from the tuning database without any simulation.
    pub db_hit: bool,
}

/// The tuner's result.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Space name.
    pub space: String,
    /// Problem key.
    pub problem: String,
    /// `name=value` rendering of the winning point.
    pub best_desc: String,
    /// The winning point.
    pub best_point: Point,
    /// Simulated time of the winner, seconds.
    pub best_time_s: f64,
    /// Top candidates, best first (empty on a database hit).
    pub leaderboard: Vec<Candidate>,
    /// Pipeline accounting.
    pub stats: TuneStats,
}

/// Why tuning produced nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// Every proposed point was pruned; carries the last prune reason.
    NoLegalCandidate {
        /// Points the strategy proposed.
        proposed: usize,
        /// The last rejection reason observed, if any.
        last_reason: Option<String>,
    },
    /// The tuning database could not be written.
    Db(String),
    /// The search was cancelled by its [`TuneProgress`] observer
    /// before a winner was decided (partial results are discarded).
    Cancelled,
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoLegalCandidate { proposed, last_reason } => {
                write!(f, "no legal candidate among {proposed} proposed points")?;
                if let Some(r) = last_reason {
                    write!(f, " (last rejection: {r})")?;
                }
                Ok(())
            }
            TuneError::Db(e) => write!(f, "tuning database: {e}"),
            TuneError::Cancelled => write!(f, "search cancelled"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Observer of a running search: batch-granular progress plus
/// cooperative cancellation. Implementations must be `Sync` — the
/// daemon's job queue polls one observer from its request threads
/// while the search runs on a worker.
///
/// Progress is reported as `(proposed, planned)` where `planned` is
/// the strategy's *a-priori* proposal estimate (exact for exhaustive
/// and random searches, an upper-ish heuristic for beam search, whose
/// round count is data-dependent). Consumers should clamp the derived
/// fraction below 1.0 until the search actually returns.
pub trait TuneProgress: Sync {
    /// Called after every evaluated batch.
    fn on_progress(&self, proposed: usize, planned: usize) {
        let _ = (proposed, planned);
    }

    /// Polled between batches; returning `true` aborts the search with
    /// [`TuneError::Cancelled`].
    fn cancelled(&self) -> bool {
        false
    }
}

/// Deterministic candidate ranking: simulated time, then cheaper
/// counters, then the point itself.
pub fn rank(a: &Candidate, b: &Candidate) -> Ordering {
    a.profile
        .time_s
        .partial_cmp(&b.profile.time_s)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.counters.smem_transactions.cmp(&b.counters.smem_transactions))
        .then_with(|| a.counters.dram_bytes().cmp(&b.counters.dram_bytes()))
        .then_with(|| a.counters.instructions.cmp(&b.counters.instructions))
        .then_with(|| a.point.cmp(&b.point))
}

enum Outcome {
    Pruned(String),
    Rejected(String),
    Costed(Box<Candidate>),
}

/// What one recorded evaluation replays to. Mirrors the non-prune arms
/// of `Outcome` (constraint prunes are pure arithmetic — cheaper to
/// redo than to cache).
#[derive(Clone)]
enum CostRecord {
    Rejected(String),
    Costed { profile: KernelProfile, counters: Counters, conflict_warnings: usize },
}

/// Record-once/replay-many at the *costing* layer — the tuner-side
/// analog of the simulator's trace cache. The first time a point
/// survives its constraint gate, the full build → lint → counter →
/// roofline pipeline runs and its outcome is recorded; every later
/// evaluation of the same `(space, problem, arch, point)` replays the
/// recording without constructing a kernel, compiling an address plan,
/// or touching the simulator.
///
/// Keys include the space hash, so editing a space's parameter table
/// invalidates its recordings by construction. The cache is `Sync`:
/// batch workers consult it concurrently, and it can be shared across
/// whole tuning runs (e.g. re-tuning after a database wipe, or
/// overlapping beam/random searches of one space).
#[derive(Default)]
pub struct CostCache {
    entries: Mutex<HashMap<String, CostRecord>>,
    replays: AtomicU64,
    recordings: AtomicU64,
}

impl CostCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        CostCache::default()
    }

    /// Evaluations served by replaying a recording.
    #[must_use]
    pub fn replays(&self) -> u64 {
        self.replays.load(AtomicOrdering::Relaxed)
    }

    /// Pipeline runs recorded into the cache.
    #[must_use]
    pub fn recordings(&self) -> u64 {
        self.recordings.load(AtomicOrdering::Relaxed)
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn key(space: &dyn SearchSpace, point: &Point) -> String {
        format!(
            "{}|{}|{:?}|{:016x}|{:?}",
            space.name(),
            space.problem_key(),
            space.arch(),
            space.space_hash(),
            point.0
        )
    }

    fn lookup(&self, key: &str) -> Option<CostRecord> {
        let rec = self.entries.lock().unwrap().get(key).cloned();
        if rec.is_some() {
            self.replays.fetch_add(1, AtomicOrdering::Relaxed);
        }
        rec
    }

    fn record(&self, key: String, rec: CostRecord) {
        self.recordings.fetch_add(1, AtomicOrdering::Relaxed);
        self.entries.lock().unwrap().insert(key, rec);
    }
}

/// Evaluates one point through the full pipeline. The boolean is true
/// when the outcome was replayed from `costs` instead of recomputed.
fn evaluate(space: &dyn SearchSpace, point: &Point, costs: Option<&CostCache>) -> (Outcome, bool) {
    if let Err(reason) = space.constraint(point) {
        return (Outcome::Pruned(reason), false);
    }
    let key = costs.map(|_| CostCache::key(space, point));
    if let (Some(cache), Some(key)) = (costs, key.as_deref()) {
        if let Some(rec) = cache.lookup(key) {
            let out = match rec {
                CostRecord::Rejected(r) => Outcome::Rejected(r),
                CostRecord::Costed { profile, counters, conflict_warnings } => {
                    Outcome::Costed(Box::new(Candidate {
                        point: point.clone(),
                        profile,
                        counters,
                        conflict_warnings,
                    }))
                }
            };
            return (out, true);
        }
    }
    let kernel = match catch_unwind(AssertUnwindSafe(|| space.build(point))) {
        Ok(k) => k,
        // A panic here means the space's constraint is not conservative
        // enough; treat it as a prune so the search survives.
        Err(_) => return (Outcome::Pruned("builder rejected the point (panic)".into()), false),
    };
    let arch = space.arch();
    // One plan cache per candidate: analysis and costing reuse each
    // tensor's compiled address plan.
    let mut plans = PlanCache::new();
    let diags = analyze_kernel_cached(&kernel, arch, &mut plans);
    if error_count(&diags) > 0 {
        let first = diags
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(|d| format!("{}: {}", d.code, d.message))
            .unwrap_or_default();
        if let (Some(cache), Some(key)) = (costs, key) {
            cache.record(key, CostRecord::Rejected(first.clone()));
        }
        return (Outcome::Rejected(first), false);
    }
    let conflict_warnings = diags.iter().filter(|d| d.code == "GRA014").count();
    match analyze_cached(&kernel, arch, &HashMap::new(), &mut plans) {
        Ok(counters) => {
            let profile = time_kernel(&counters, machine_for(arch), kernel.grid_size());
            if let (Some(cache), Some(key)) = (costs, key) {
                cache.record(key, CostRecord::Costed { profile, counters, conflict_warnings });
            }
            let out = Outcome::Costed(Box::new(Candidate {
                point: point.clone(),
                profile,
                counters,
                conflict_warnings,
            }));
            (out, false)
        }
        Err(e) => {
            let reason = format!("counter analysis failed: {e:?}");
            if let (Some(cache), Some(key)) = (costs, key) {
                cache.record(key, CostRecord::Rejected(reason.clone()));
            }
            (Outcome::Rejected(reason), false)
        }
    }
}

/// Evaluates a batch in parallel, preserving input order.
fn evaluate_batch(
    space: &dyn SearchSpace,
    points: &[Point],
    threads: usize,
    costs: Option<&CostCache>,
) -> Vec<(Outcome, bool)> {
    let workers = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(points.len().max(1));
    if workers <= 1 {
        return points.iter().map(|p| evaluate(space, p, costs)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(Outcome, bool)>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let out = evaluate(space, &points[i], costs);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots.into_iter().map(|m| m.into_inner().unwrap().expect("every slot evaluated")).collect()
}

/// Incremental accumulator over evaluated batches.
struct Session<'s> {
    space: &'s dyn SearchSpace,
    opts: &'s TuneOptions,
    costs: Option<&'s CostCache>,
    progress: Option<&'s dyn TuneProgress>,
    /// Strategy's a-priori proposal estimate, for progress fractions.
    planned: usize,
    stats: TuneStats,
    costed: Vec<Candidate>,
    last_reason: Option<String>,
    seen: HashSet<Point>,
}

impl<'s> Session<'s> {
    fn new(
        space: &'s dyn SearchSpace,
        opts: &'s TuneOptions,
        costs: Option<&'s CostCache>,
        progress: Option<&'s dyn TuneProgress>,
        planned: usize,
    ) -> Self {
        Session {
            space,
            opts,
            costs,
            progress,
            planned,
            stats: TuneStats::default(),
            costed: Vec::new(),
            last_reason: None,
            seen: HashSet::new(),
        }
    }

    fn budget_left(&self) -> bool {
        self.opts.budget.is_none_or(|b| self.stats.simulated < b)
    }

    /// Polled between batches; a cancelled session stops proposing.
    fn cancelled(&self) -> bool {
        self.progress.is_some_and(|p| p.cancelled())
    }

    /// Proposes a batch (dropping points already seen), evaluates it,
    /// and folds the outcomes in. Returns the candidates this batch
    /// costed.
    fn run_batch(&mut self, batch: Vec<Point>) -> Vec<Candidate> {
        let fresh: Vec<Point> = batch.into_iter().filter(|p| self.seen.insert(p.clone())).collect();
        if fresh.is_empty() {
            return Vec::new();
        }
        if self.cancelled() {
            return Vec::new();
        }
        self.stats.proposed += fresh.len();
        let mut new = Vec::new();
        for (out, replayed) in evaluate_batch(self.space, &fresh, self.opts.threads, self.costs) {
            if replayed {
                self.stats.cost_replayed += 1;
            }
            match out {
                Outcome::Pruned(r) => {
                    self.stats.pruned_constraint += 1;
                    self.last_reason = Some(r);
                }
                Outcome::Rejected(r) => {
                    self.stats.pruned_analysis += 1;
                    self.last_reason = Some(r);
                }
                Outcome::Costed(c) => {
                    // A replayed candidate costs nothing: it does not
                    // consume the simulation budget.
                    if !replayed {
                        self.stats.simulated += 1;
                    }
                    new.push((*c).clone());
                    self.costed.push(*c);
                }
            }
        }
        if let Some(p) = self.progress {
            p.on_progress(self.stats.proposed, self.planned);
        }
        new
    }

    fn finish(mut self) -> Result<TuneReport, TuneError> {
        if self.costed.is_empty() {
            return Err(TuneError::NoLegalCandidate {
                proposed: self.stats.proposed,
                last_reason: self.last_reason,
            });
        }
        self.costed.sort_by(rank);
        self.costed.truncate(self.opts.top.max(1));
        let best = self.costed[0].clone();
        Ok(TuneReport {
            space: self.space.name().to_string(),
            problem: self.space.problem_key(),
            best_desc: self.space.describe(&best.point),
            best_point: best.point.clone(),
            best_time_s: best.profile.time_s,
            leaderboard: self.costed,
            stats: self.stats,
        })
    }
}

/// Batch size between budget checks: big enough to keep every worker
/// busy, small enough that a budget overshoot stays bounded.
const BATCH: usize = 64;

/// Runs a search over a space. This is the strategy driver; the
/// database-aware entry point is [`crate::tune`].
pub fn run_search(space: &dyn SearchSpace, opts: &TuneOptions) -> Result<TuneReport, TuneError> {
    run_search_cached(space, opts, None)
}

/// [`run_search`] with an optional [`CostCache`]: points already
/// recorded in `costs` replay their outcomes instead of re-running the
/// build/lint/cost pipeline, and fresh pipeline runs are recorded for
/// the next search. Replays are reported in
/// [`TuneStats::cost_replayed`] and are budget-free.
pub fn run_search_cached(
    space: &dyn SearchSpace,
    opts: &TuneOptions,
    costs: Option<&CostCache>,
) -> Result<TuneReport, TuneError> {
    run_search_observed(space, opts, costs, None)
}

/// The strategy's a-priori proposal count: exact for exhaustive and
/// random searches, a round-count heuristic for beam search (whose
/// actual length is data-dependent). Used for progress fractions.
pub fn planned_proposals(space: &dyn SearchSpace, search: &Search) -> usize {
    let total = space.total_points();
    match *search {
        Search::Exhaustive => total + 1,
        Search::Random { samples, .. } => samples + 1,
        Search::Beam { width, patience, .. } => {
            // Initial frontier plus an assumed `4 * patience` rounds of
            // one-step neighbourhoods, capped by the space itself.
            let per_round = width * space.params().len() * 2;
            ((width * 4 + 1) + per_round * patience * 4).min(total + 1)
        }
    }
}

/// [`run_search_cached`] with an optional [`TuneProgress`] observer:
/// batch-granular progress callbacks and cooperative cancellation.
///
/// # Errors
///
/// [`TuneError::Cancelled`] when the observer requested cancellation;
/// otherwise as [`run_search`].
pub fn run_search_observed(
    space: &dyn SearchSpace,
    opts: &TuneOptions,
    costs: Option<&CostCache>,
    progress: Option<&dyn TuneProgress>,
) -> Result<TuneReport, TuneError> {
    let planned = planned_proposals(space, &opts.search);
    let mut sess = Session::new(space, opts, costs, progress, planned);
    match opts.search {
        Search::Exhaustive => {
            // Default first so a budget-capped run still covers it.
            sess.run_batch(vec![space.default_point()]);
            let total = space.total_points();
            let mut i = 0;
            while i < total && sess.budget_left() && !sess.cancelled() {
                let end = (i + BATCH).min(total);
                sess.run_batch((i..end).map(|j| space.point_at(j)).collect());
                i = end;
            }
        }
        Search::Random { seed, samples } => {
            sess.run_batch(vec![space.default_point()]);
            let mut rng = StdRng::seed_from_u64(seed);
            let total = space.total_points();
            let mut proposed = 0;
            // Distinct sampling with a bounded number of redraws.
            let mut attempts = 0;
            let mut batch = Vec::new();
            while proposed < samples
                && attempts < samples * 20
                && sess.budget_left()
                && !sess.cancelled()
            {
                attempts += 1;
                let p = space.point_at(rng.gen_range(0..total));
                if sess.seen.contains(&p) || batch.contains(&p) {
                    continue;
                }
                batch.push(p);
                proposed += 1;
                if batch.len() >= BATCH {
                    sess.run_batch(std::mem::take(&mut batch));
                }
            }
            sess.run_batch(batch);
        }
        Search::Beam { seed, width, patience } => {
            let width = width.max(1);
            // Initial frontier: the default plus random seeds.
            let mut rng = StdRng::seed_from_u64(seed);
            let total = space.total_points();
            let mut init = vec![space.default_point()];
            for _ in 0..(width * 4).min(total) {
                init.push(space.point_at(rng.gen_range(0..total)));
            }
            sess.run_batch(init);
            let mut beam = sess.costed.clone();
            beam.sort_by(rank);
            beam.truncate(width);
            let mut best_t = beam.first().map(|c| c.profile.time_s);
            let mut stale = 0;
            while stale < patience && sess.budget_left() && !sess.cancelled() && !beam.is_empty() {
                let frontier: Vec<Point> = beam
                    .iter()
                    .flat_map(|c| neighbours(space, &c.point))
                    .filter(|p| !sess.seen.contains(p))
                    .collect();
                if frontier.is_empty() {
                    break;
                }
                let new = sess.run_batch(frontier);
                beam.extend(new);
                beam.sort_by(rank);
                beam.dedup_by(|a, b| a.point == b.point);
                beam.truncate(width);
                let now = beam[0].profile.time_s;
                if best_t.is_none_or(|t| now < t) {
                    best_t = Some(now);
                    stale = 0;
                } else {
                    stale += 1;
                }
            }
        }
    }
    if sess.cancelled() {
        return Err(TuneError::Cancelled);
    }
    sess.finish()
}

/// One-step neighbourhood of a point: each parameter moved to its
/// adjacent value (both directions), one at a time.
fn neighbours(space: &dyn SearchSpace, p: &Point) -> Vec<Point> {
    let defs = space.params();
    let mut out = Vec::new();
    for (i, d) in defs.iter().enumerate() {
        let idx = d.values.iter().position(|&v| v == p.0[i]).expect("point value in space");
        for j in [idx.wrapping_sub(1), idx + 1] {
            if let Some(&v) = d.values.get(j) {
                let mut q = p.clone();
                q.0[i] = v;
                out.push(q);
            }
        }
    }
    out
}
