//! Algebraic simplification of index expressions.
//!
//! The paper (§3.4, §5.5) requires generated index expressions to be
//! "arithmetically simplified", giving `(M % 256) → M iff M < 256` as the
//! canonical example. This module implements a two-stage simplifier:
//!
//! 1. **Local rules** applied bottom-up: bound-based `%`/`/` elimination,
//!    constant re-association, distribution of exact divisions.
//! 2. **Linear normal form**: expressions are flattened into
//!    `Σ coeffᵢ·atomᵢ + c`, like terms are collected, and div/mod pairs
//!    (`(x/c)*c + x%c → x`) are recombined.
//!
//! Soundness (equal evaluation under every environment) is property-tested
//! in the crate's test suite.

use crate::expr::{BinOp, IntExpr};
use std::collections::HashMap;

/// Simplifies an expression.
///
/// The result evaluates identically to the input for every assignment of
/// non-negative values (respecting declared bounds) to its free variables.
///
/// # Examples
///
/// ```
/// use graphene_sym::{simplify, IntExpr};
/// // The paper's rule: (M % 256) → M iff M < 256.
/// let m = IntExpr::var_bounded("M", 256);
/// assert_eq!(simplify(&(m.clone() % 256)), m);
///
/// // Div/mod recombination from tiling round-trips:
/// let t = IntExpr::var_bounded("tid", 32);
/// let e = (t.clone() / 8) * 8 + t.clone() % 8;
/// assert_eq!(simplify(&e), t);
/// ```
pub fn simplify(expr: &IntExpr) -> IntExpr {
    let local = simplify_node(expr);
    let linear = Linear::from_expr(&local);
    let rebuilt = linear.into_expr();
    // Keep whichever is smaller (the linear form occasionally expands
    // expressions that were already compact).
    if rebuilt.node_count() <= local.node_count() {
        rebuilt
    } else {
        local
    }
}

/// Bottom-up application of local rewrite rules.
fn simplify_node(expr: &IntExpr) -> IntExpr {
    match expr {
        IntExpr::Const(_) | IntExpr::Var(_) => expr.clone(),
        IntExpr::Bin(op, a, b) => {
            let a = simplify_node(a);
            let b = simplify_node(b);
            rewrite(*op, a, b)
        }
    }
}

fn rewrite(op: BinOp, a: IntExpr, b: IntExpr) -> IntExpr {
    // `IntExpr::bin` already constant-folds and applies identities.
    let e = IntExpr::bin(op, a, b);
    let IntExpr::Bin(op, ref a, ref b) = e else { return e };
    let (a, b) = (a.as_ref().clone(), b.as_ref().clone());
    match (op, b.as_const()) {
        // x % m  ->  x        iff 0 <= x < m  (the paper's rule)
        (BinOp::Mod, Some(m))
            if m > 0 && a.is_nonneg() && a.upper_bound().is_some_and(|ub| ub <= m) =>
        {
            a
        }
        // x / m  ->  0        iff 0 <= x < m
        (BinOp::Div, Some(m))
            if m > 0 && a.is_nonneg() && a.upper_bound().is_some_and(|ub| ub <= m) =>
        {
            IntExpr::zero()
        }
        // (x * c) % m -> 0                 iff c % m == 0
        (BinOp::Mod, Some(m)) if m > 0 && multiple_of(&a, m) => IntExpr::zero(),
        // (x * c) / m -> x * (c/m)         iff c % m == 0
        (BinOp::Div, Some(m)) if m > 0 => match divide_exact(&a, m) {
            Some(q) => q,
            None => e,
        },
        // (x * c1) * c2 -> x * (c1*c2)
        (BinOp::Mul, Some(c2)) => match &a {
            IntExpr::Bin(BinOp::Mul, x, c1) if c1.as_const().is_some() => IntExpr::bin(
                BinOp::Mul,
                x.as_ref().clone(),
                IntExpr::constant(c1.as_const().unwrap() * c2),
            ),
            _ => e,
        },
        // min/max with known bounds
        (BinOp::Min, Some(m)) if a.upper_bound().is_some_and(|ub| ub <= m + 1) => a,
        _ => e,
    }
}

/// Is `e` provably a multiple of `m` (syntactically)?
fn multiple_of(e: &IntExpr, m: i64) -> bool {
    match e {
        IntExpr::Const(v) => v % m == 0,
        IntExpr::Var(_) => false,
        IntExpr::Bin(BinOp::Mul, a, b) => {
            a.as_const().is_some_and(|c| c % m == 0)
                || b.as_const().is_some_and(|c| c % m == 0)
                || multiple_of(a, m)
                || multiple_of(b, m)
        }
        IntExpr::Bin(BinOp::Add | BinOp::Sub, a, b) => multiple_of(a, m) && multiple_of(b, m),
        _ => false,
    }
}

/// Divides `e` by `m` exactly when provably possible.
fn divide_exact(e: &IntExpr, m: i64) -> Option<IntExpr> {
    match e {
        IntExpr::Const(v) if v % m == 0 => Some(IntExpr::constant(v / m)),
        IntExpr::Bin(BinOp::Mul, a, b) => {
            if let Some(c) = b.as_const() {
                if c % m == 0 {
                    return Some(IntExpr::bin(
                        BinOp::Mul,
                        a.as_ref().clone(),
                        IntExpr::constant(c / m),
                    ));
                }
            }
            if let Some(c) = a.as_const() {
                if c % m == 0 {
                    return Some(IntExpr::bin(
                        BinOp::Mul,
                        IntExpr::constant(c / m),
                        b.as_ref().clone(),
                    ));
                }
            }
            None
        }
        IntExpr::Bin(BinOp::Add, a, b) => {
            let qa = divide_exact(a, m)?;
            let qb = divide_exact(b, m)?;
            Some(IntExpr::bin(BinOp::Add, qa, qb))
        }
        _ => None,
    }
}

/// Linear normal form: `Σ coeffᵢ·atomᵢ + constant`, with atoms being
/// variables or opaque non-linear subexpressions.
struct Linear {
    terms: HashMap<IntExpr, i64>,
    constant: i64,
}

impl Linear {
    fn from_expr(e: &IntExpr) -> Linear {
        let mut lin = Linear { terms: HashMap::new(), constant: 0 };
        lin.accumulate(e, 1);
        lin.recombine_div_mod();
        lin
    }

    fn accumulate(&mut self, e: &IntExpr, coeff: i64) {
        if coeff == 0 {
            return;
        }
        match e {
            IntExpr::Const(v) => self.constant += coeff * v,
            IntExpr::Var(_) => *self.terms.entry(e.clone()).or_insert(0) += coeff,
            IntExpr::Bin(BinOp::Add, a, b) => {
                self.accumulate(a, coeff);
                self.accumulate(b, coeff);
            }
            IntExpr::Bin(BinOp::Sub, a, b) => {
                self.accumulate(a, coeff);
                self.accumulate(b, -coeff);
            }
            IntExpr::Bin(BinOp::Mul, a, b) => {
                if let Some(c) = b.as_const() {
                    self.accumulate(a, coeff * c);
                } else if let Some(c) = a.as_const() {
                    self.accumulate(b, coeff * c);
                } else {
                    *self.terms.entry(e.clone()).or_insert(0) += coeff;
                }
            }
            _ => *self.terms.entry(e.clone()).or_insert(0) += coeff,
        }
    }

    /// Recombines `(x/c)*c + x%c -> x` patterns in the linear form.
    fn recombine_div_mod(&mut self) {
        loop {
            let mut found: Option<(IntExpr, IntExpr, IntExpr, i64, i64)> = None;
            'search: for (atom, &coeff) in &self.terms {
                if coeff == 0 {
                    continue;
                }
                if let IntExpr::Bin(BinOp::Div, x, c) = atom {
                    let Some(cv) = c.as_const() else { continue };
                    if cv <= 0 || coeff % cv != 0 {
                        continue;
                    }
                    // Look for a matching `x % c` term with coeff/cv.
                    let want = IntExpr::Bin(BinOp::Mod, x.clone(), c.clone());
                    if let Some(&mc) = self.terms.get(&want) {
                        let k = coeff / cv;
                        if mc == k && k != 0 {
                            found =
                                Some((atom.clone(), want.clone(), x.as_ref().clone(), coeff, k));
                            break 'search;
                        }
                    }
                }
            }
            match found {
                Some((div_atom, mod_atom, x, div_coeff, k)) => {
                    *self.terms.get_mut(&div_atom).unwrap() -= div_coeff;
                    *self.terms.get_mut(&mod_atom).unwrap() -= k;
                    self.accumulate(&x, k);
                }
                None => break,
            }
        }
    }

    fn into_expr(self) -> IntExpr {
        // Deterministic ordering: sort by rendered form.
        let mut terms: Vec<(IntExpr, i64)> =
            self.terms.into_iter().filter(|&(_, c)| c != 0).collect();
        terms.sort_by_key(|(e, _)| e.to_string());
        let mut acc: Option<IntExpr> = None;
        let push = |acc: &mut Option<IntExpr>, term: IntExpr, negate: bool| {
            *acc = Some(match acc.take() {
                None => {
                    if negate {
                        IntExpr::bin(BinOp::Sub, IntExpr::zero(), term)
                    } else {
                        term
                    }
                }
                Some(prev) => {
                    IntExpr::bin(if negate { BinOp::Sub } else { BinOp::Add }, prev, term)
                }
            });
        };
        for (atom, coeff) in terms {
            let (mag, neg) = (coeff.abs(), coeff < 0);
            let term = if mag == 1 {
                atom
            } else {
                IntExpr::bin(BinOp::Mul, atom, IntExpr::constant(mag))
            };
            push(&mut acc, term, neg);
        }
        if self.constant != 0 || acc.is_none() {
            push(&mut acc, IntExpr::constant(self.constant.abs()), self.constant < 0);
        }
        acc.unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_mod_elimination() {
        let m = IntExpr::var_bounded("M", 256);
        assert_eq!(simplify(&(m.clone() % 256)), m);
        // Not eliminated when the bound does not justify it.
        let n = IntExpr::var_bounded("N", 512);
        let e = n.clone() % 256;
        assert_eq!(simplify(&e).to_string(), "N % 256");
    }

    #[test]
    fn div_elimination_by_bound() {
        let t = IntExpr::var_bounded("tid", 8);
        assert_eq!(simplify(&(t / 8)), IntExpr::zero());
    }

    #[test]
    fn mul_mod_cancellation() {
        let x = IntExpr::var("x");
        assert_eq!(simplify(&((x.clone() * 64) % 8)), IntExpr::zero());
        let q = simplify(&((x.clone() * 64) / 8));
        assert_eq!(q.to_string(), "x * 8");
    }

    #[test]
    fn constant_reassociation() {
        let x = IntExpr::var("x");
        let e = (x.clone() * 4) * 8;
        assert_eq!(simplify(&e).to_string(), "x * 32");
    }

    #[test]
    fn like_terms_collected() {
        let x = IntExpr::var("x");
        let e = x.clone() * 3 + x.clone() * 5 + 2;
        assert_eq!(simplify(&e).to_string(), "x * 8 + 2");
        let e2 = x.clone() * 3 - x.clone() * 3;
        assert_eq!(simplify(&e2), IntExpr::zero());
    }

    #[test]
    fn div_mod_recombination() {
        let t = IntExpr::var_bounded("tid", 32);
        let e = (t.clone() / 8) * 8 + t.clone() % 8;
        assert_eq!(simplify(&e), t);
    }

    #[test]
    fn div_mod_recombination_scaled() {
        // k*( (x/c)*c + x%c ) for k = 4, c = 16.
        let t = IntExpr::var("x");
        let e = (t.clone() / 16) * 64 + (t.clone() % 16) * 4;
        assert_eq!(simplify(&e).to_string(), "x * 4");
    }

    #[test]
    fn nested_simplification() {
        // ((tid % 8) % 8) -> tid % 8 (inner bound is 8)
        let t = IntExpr::var_bounded("tid", 32);
        let e = (t.clone() % 8) % 8;
        assert_eq!(simplify(&e).to_string(), "tid % 8");
    }

    #[test]
    fn add_of_exact_divisions() {
        let x = IntExpr::var("x");
        let y = IntExpr::var("y");
        let e = (x.clone() * 8 + y.clone() * 16) / 8;
        assert_eq!(simplify(&e).to_string(), "x + y * 2");
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn zero_result_renders() {
        let e = IntExpr::var("x") * 0;
        assert_eq!(simplify(&e).to_string(), "0");
    }

    #[test]
    fn negative_constant_rendering() {
        let x = IntExpr::var("x");
        let e = x.clone() - 5;
        assert_eq!(simplify(&e).to_string(), "x - 5");
    }

    #[test]
    fn simplify_is_deterministic() {
        let x = IntExpr::var("x");
        let y = IntExpr::var("y");
        let e = y.clone() + x.clone() * 2 + y.clone() * 3 + x.clone();
        let a = simplify(&e).to_string();
        let b = simplify(&e).to_string();
        assert_eq!(a, b);
        assert_eq!(a, "x * 3 + y * 4");
    }
}
