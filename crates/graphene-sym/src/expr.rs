//! Symbolic integer expressions.
//!
//! The paper's `IntExpr` production (§3.1, Figure 2):
//!
//! ```text
//! IntExpr = int | var | (IntExpr BinOp IntExpr)
//! BinOp   = + | - | * | / | ...
//! ```
//!
//! These appear in two roles: *parametric shapes* (`[M, N].fp32`, §3.4)
//! and the scalar index expressions Graphene's code generation produces
//! for tensor accesses and thread groups (§5.5), which must be
//! arithmetically simplified before printing.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A symbolic integer expression.
///
/// Expressions are immutable trees shared via [`Rc`]. Construction through
/// the operator impls and [`IntExpr`] constructors performs light
/// *eager* constant folding; full simplification lives in
/// [`crate::simplify`].
///
/// # Examples
///
/// ```
/// use graphene_sym::IntExpr;
/// let m = IntExpr::var("M");
/// let e = (m.clone() * 4 + 2) % 1; // folds to 0
/// assert_eq!(e, IntExpr::constant(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum IntExpr {
    /// An integer constant.
    Const(i64),
    /// A named variable, optionally with a known exclusive upper bound
    /// (e.g. `threadIdx.x < 1024`), used by simplification rules such as
    /// the paper's `(M % 256) → M iff M < 256`.
    Var(Rc<VarInfo>),
    /// A binary operation.
    Bin(BinOp, Rc<IntExpr>, Rc<IntExpr>),
}

/// Metadata for a symbolic variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VarInfo {
    /// The variable's name as it will be printed (e.g. `threadIdx.x`).
    pub name: String,
    /// Known exclusive upper bound, if any. Variables are assumed
    /// non-negative (they model sizes and hardware indices).
    pub bound: Option<i64>,
}

/// Binary operators over integer expressions.
///
/// `Div` and `Mod` follow C semantics on non-negative operands (the only
/// ones Graphene index expressions produce), i.e. truncating division.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Remainder.
    Mod,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// Applies the operator to two concrete values.
    ///
    /// # Panics
    ///
    /// Panics on division or remainder by zero.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Mod => a % b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    /// The C operator token, if the operator has one.
    pub fn c_token(self) -> Option<&'static str> {
        match self {
            BinOp::Add => Some("+"),
            BinOp::Sub => Some("-"),
            BinOp::Mul => Some("*"),
            BinOp::Div => Some("/"),
            BinOp::Mod => Some("%"),
            BinOp::Min | BinOp::Max => None,
        }
    }

    /// Binding strength for printing with minimal parentheses.
    fn precedence(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
            BinOp::Min | BinOp::Max => 3,
        }
    }
}

impl IntExpr {
    /// An integer constant.
    pub fn constant(v: i64) -> Self {
        IntExpr::Const(v)
    }

    /// The constant zero.
    pub fn zero() -> Self {
        IntExpr::Const(0)
    }

    /// The constant one.
    pub fn one() -> Self {
        IntExpr::Const(1)
    }

    /// An unbounded variable.
    pub fn var(name: impl Into<String>) -> Self {
        IntExpr::Var(Rc::new(VarInfo { name: name.into(), bound: None }))
    }

    /// A variable with a known exclusive upper bound.
    pub fn var_bounded(name: impl Into<String>, bound: i64) -> Self {
        IntExpr::Var(Rc::new(VarInfo { name: name.into(), bound: Some(bound) }))
    }

    /// Returns the constant value if this expression is a constant.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if this expression is the constant `v`.
    pub fn is_const(&self, v: i64) -> bool {
        self.as_const() == Some(v)
    }

    /// Builds a binary expression with eager constant folding and the
    /// cheap identity rules (`x+0`, `x*1`, `x*0`, `x/1`, `x%1`, `0/x`).
    pub fn bin(op: BinOp, lhs: IntExpr, rhs: IntExpr) -> IntExpr {
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            if !(matches!(op, BinOp::Div | BinOp::Mod) && b == 0) {
                return IntExpr::Const(op.apply(a, b));
            }
        }
        match op {
            BinOp::Add if lhs.is_const(0) => return rhs,
            BinOp::Add | BinOp::Sub if rhs.is_const(0) => return lhs,
            BinOp::Mul if lhs.is_const(1) => return rhs,
            BinOp::Mul if rhs.is_const(1) => return lhs,
            BinOp::Mul if lhs.is_const(0) || rhs.is_const(0) => return IntExpr::Const(0),
            BinOp::Div if rhs.is_const(1) => return lhs,
            BinOp::Div if lhs.is_const(0) => return IntExpr::Const(0),
            BinOp::Mod if rhs.is_const(1) => return IntExpr::Const(0),
            BinOp::Mod if lhs.is_const(0) => return IntExpr::Const(0),
            _ => {}
        }
        IntExpr::Bin(op, Rc::new(lhs), Rc::new(rhs))
    }

    /// Minimum of two expressions.
    pub fn min(self, other: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Min, self, other)
    }

    /// Maximum of two expressions.
    pub fn max(self, other: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Max, self, other)
    }

    /// Evaluates the expression under a variable assignment.
    ///
    /// # Errors
    ///
    /// Returns the name of the first unbound variable encountered, or a
    /// division-by-zero description.
    pub fn eval(&self, env: &HashMap<String, i64>) -> Result<i64, EvalError> {
        match self {
            IntExpr::Const(v) => Ok(*v),
            IntExpr::Var(info) => {
                env.get(&info.name).copied().ok_or_else(|| EvalError::UnboundVar(info.name.clone()))
            }
            IntExpr::Bin(op, a, b) => {
                let a = a.eval(env)?;
                let b = b.eval(env)?;
                if matches!(op, BinOp::Div | BinOp::Mod) && b == 0 {
                    return Err(EvalError::DivisionByZero);
                }
                Ok(op.apply(a, b))
            }
        }
    }

    /// Returns `true` if this expression provably evaluates to a
    /// non-negative value. Variables are assumed non-negative (they model
    /// sizes and hardware indices); subtraction is conservatively treated
    /// as possibly negative.
    pub fn is_nonneg(&self) -> bool {
        match self {
            IntExpr::Const(v) => *v >= 0,
            IntExpr::Var(_) => true,
            IntExpr::Bin(BinOp::Sub, _, _) => false,
            IntExpr::Bin(_, a, b) => a.is_nonneg() && b.is_nonneg(),
        }
    }

    /// An *exclusive* upper bound on the value of this expression, when one
    /// can be derived: constants bound themselves, bounded variables carry
    /// a bound, and bounds propagate through `+`, `*`, `%`, `/`, `min`.
    /// All variables are assumed to be non-negative.
    pub fn upper_bound(&self) -> Option<i64> {
        self.upper_bound_with(&HashMap::new())
    }

    /// Like [`upper_bound`](Self::upper_bound), additionally tightening
    /// variables with the *exclusive* bounds in `tighter` (e.g. derived
    /// from dominating `var < c` guards); a variable's effective bound
    /// is the minimum of its declared bound and its entry here.
    pub fn upper_bound_with(&self, tighter: &HashMap<String, i64>) -> Option<i64> {
        match self {
            IntExpr::Const(v) => Some(v + 1),
            IntExpr::Var(info) => match (info.bound, tighter.get(&info.name)) {
                (Some(b), Some(&t)) => Some(b.min(t)),
                (Some(b), None) => Some(b),
                (None, Some(&t)) => Some(t),
                (None, None) => None,
            },
            IntExpr::Bin(op, a, b) => {
                let (ba, bb) = (a.upper_bound_with(tighter), b.upper_bound_with(tighter));
                match op {
                    BinOp::Add => Some(ba? + bb? - 1),
                    BinOp::Mul => {
                        // Only sound when neither factor can be negative
                        // (two large negatives multiply to a large positive).
                        if a.is_nonneg() && b.is_nonneg() {
                            Some((ba? - 1) * (bb? - 1) + 1)
                        } else {
                            None
                        }
                    }
                    BinOp::Mod => {
                        // a % b < b whenever b > 0 (C remainder magnitude
                        // is below |b|); additionally a % b <= a when a is
                        // provably non-negative.
                        let via_b = b.as_const().filter(|&bv| bv > 0);
                        let via_a = if a.is_nonneg() { ba } else { None };
                        match (via_b, via_a) {
                            (Some(bv), Some(av)) => Some(bv.min(av)),
                            (Some(bv), None) => Some(bv),
                            (None, av) => av,
                        }
                    }
                    BinOp::Div => {
                        let bv = b.as_const()?;
                        if bv <= 0 {
                            return None;
                        }
                        Some((ba? - 1) / bv + 1)
                    }
                    BinOp::Min => match (ba, bb) {
                        (Some(x), Some(y)) => Some(x.min(y)),
                        (Some(x), None) | (None, Some(x)) => Some(x),
                        (None, None) => None,
                    },
                    BinOp::Max => Some(ba?.max(bb?)),
                    // a - b < bound(a) only when b cannot be negative.
                    BinOp::Sub => {
                        if b.is_nonneg() {
                            ba
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Collects the free variable names in this expression, in first-use
    /// order without duplicates.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            IntExpr::Const(_) => {}
            IntExpr::Var(info) => {
                if !out.contains(&info.name) {
                    out.push(info.name.clone());
                }
            }
            IntExpr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The number of nodes in the expression tree (a cost metric for the
    /// simplifier).
    pub fn node_count(&self) -> usize {
        match self {
            IntExpr::Const(_) | IntExpr::Var(_) => 1,
            IntExpr::Bin(_, a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            IntExpr::Const(v) => write!(f, "{v}"),
            IntExpr::Var(info) => write!(f, "{}", info.name),
            IntExpr::Bin(op, a, b) => match op.c_token() {
                Some(tok) => {
                    let prec = op.precedence();
                    let need_parens = prec < parent_prec;
                    if need_parens {
                        write!(f, "(")?;
                    }
                    a.fmt_prec(f, prec)?;
                    write!(f, " {tok} ")?;
                    // The right side needs stricter parens whenever C's
                    // left-associativity would re-group it: x - (y - z),
                    // x / (y / z), and also x * (y / z) — integer `*` and
                    // `/` do not associate.
                    let rhs_prec = match op {
                        BinOp::Sub | BinOp::Div | BinOp::Mod | BinOp::Mul => prec + 1,
                        BinOp::Add => prec,
                        BinOp::Min | BinOp::Max => unreachable!("handled above"),
                    };
                    b.fmt_prec(f, rhs_prec)?;
                    if need_parens {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                None => {
                    let name = if matches!(op, BinOp::Min) { "min" } else { "max" };
                    write!(f, "{name}(")?;
                    a.fmt_prec(f, 0)?;
                    write!(f, ", ")?;
                    b.fmt_prec(f, 0)?;
                    write!(f, ")")
                }
            },
        }
    }
}

/// Errors from [`IntExpr::eval`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no value in the environment.
    UnboundVar(String),
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(n) => write!(f, "unbound variable `{n}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl fmt::Debug for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        IntExpr::Const(v)
    }
}

impl From<i32> for IntExpr {
    fn from(v: i32) -> Self {
        IntExpr::Const(v as i64)
    }
}

macro_rules! impl_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<IntExpr>> std::ops::$trait<R> for IntExpr {
            type Output = IntExpr;
            fn $method(self, rhs: R) -> IntExpr {
                IntExpr::bin($op, self, rhs.into())
            }
        }
    };
}

impl_op!(Add, add, BinOp::Add);
impl_op!(Sub, sub, BinOp::Sub);
impl_op!(Mul, mul, BinOp::Mul);
impl_op!(Div, div, BinOp::Div);
impl_op!(Rem, rem, BinOp::Mod);

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn constant_folding() {
        let e = IntExpr::constant(3) * 4 + 2;
        assert_eq!(e, IntExpr::Const(14));
    }

    #[test]
    #[allow(clippy::modulo_one, clippy::erasing_op, clippy::identity_op)]
    fn identity_rules() {
        let x = IntExpr::var("x");
        assert_eq!(x.clone() + 0, x);
        assert_eq!(x.clone() * 1, x);
        assert_eq!(x.clone() * 0, IntExpr::Const(0));
        assert_eq!(x.clone() / 1, x);
        assert_eq!(x.clone() % 1, IntExpr::Const(0));
        assert_eq!(IntExpr::zero() + x.clone(), x);
    }

    #[test]
    fn no_fold_division_by_zero() {
        let e = IntExpr::bin(BinOp::Div, IntExpr::constant(4), IntExpr::constant(0));
        assert!(matches!(e, IntExpr::Bin(..)));
        assert_eq!(e.eval(&env(&[])), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn eval_with_env() {
        let e = IntExpr::var("M") * 8 + IntExpr::var("N");
        assert_eq!(e.eval(&env(&[("M", 3), ("N", 2)])), Ok(26));
        assert_eq!(e.eval(&env(&[("M", 3)])), Err(EvalError::UnboundVar("N".into())));
    }

    #[test]
    fn display_with_minimal_parens() {
        let x = IntExpr::var("x");
        let y = IntExpr::var("y");
        assert_eq!((x.clone() + y.clone()).to_string(), "x + y");
        assert_eq!(((x.clone() + y.clone()) * 2).to_string(), "(x + y) * 2");
        assert_eq!((x.clone() * y.clone() + 2).to_string(), "x * y + 2");
        assert_eq!((x.clone() % 8).to_string(), "x % 8");
        assert_eq!(((x.clone() / 8) % 2).to_string(), "x / 8 % 2");
        // Right-associativity parens for subtraction.
        let e = IntExpr::bin(
            BinOp::Sub,
            x.clone(),
            IntExpr::bin(BinOp::Sub, y.clone(), IntExpr::constant(1)),
        );
        assert_eq!(e.to_string(), "x - (y - 1)");
    }

    #[test]
    fn min_max_display() {
        let x = IntExpr::var("x");
        assert_eq!(x.clone().min(IntExpr::constant(4)).to_string(), "min(x, 4)");
        assert_eq!(x.max(IntExpr::constant(4)).to_string(), "max(x, 4)");
    }

    #[test]
    fn upper_bound_propagation() {
        let tid = IntExpr::var_bounded("tid", 32);
        assert_eq!(tid.upper_bound(), Some(32));
        assert_eq!((tid.clone() % 8).upper_bound(), Some(8));
        assert_eq!((tid.clone() / 8).upper_bound(), Some(4));
        assert_eq!((tid.clone() * 2).upper_bound(), Some(63));
        assert_eq!((tid.clone() + tid.clone()).upper_bound(), Some(63));
        assert_eq!(IntExpr::var("m").upper_bound(), None);
    }

    #[test]
    fn free_vars_in_order() {
        let e = IntExpr::var("b") * IntExpr::var("a") + IntExpr::var("b");
        assert_eq!(e.free_vars(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn node_count() {
        let e = IntExpr::var("x") * 4 + IntExpr::var("y");
        assert_eq!(e.node_count(), 5);
    }
}
