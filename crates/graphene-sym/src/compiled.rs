//! Compile-once/execute-many lowering of [`IntExpr`]s.
//!
//! Graphene layouts make data-to-thread mappings *statically
//! analyzable* (paper §3–§5): the index expressions code generation
//! produces are closed-form — overwhelmingly affine — maps over
//! hierarchical coordinates (`blockIdx.x`, `threadIdx.x`, loop
//! variables, dynamic shape parameters). Interpreting the expression
//! tree against a `HashMap<String, i64>` environment re-pays string
//! hashing and tree walking on every evaluation, which dominates the
//! simulator's hot loop.
//!
//! This module lowers an [`IntExpr`] *once* into a [`CompiledExpr`]
//! over a flat slot array: variables are resolved to dense slot indices
//! through a [`SlotMap`] at compile time, and evaluation reads
//! `slots[i]` directly. Two forms exist:
//!
//! - [`AffineExpr`] — `base + Σ coefᵢ · slotᵢ`, the closed form for the
//!   affine maps layouts produce (CuTe's "layouts are affine functions"
//!   observation). Like terms are combined at compile time.
//! - a post-order bytecode program for the residual non-affine cases
//!   (`/`, `%`, `min`, `max` over non-constant operands), evaluated on
//!   a small value stack without allocation.

use crate::expr::{BinOp, EvalError, IntExpr};
use std::collections::HashMap;

/// Interns variable names to dense slot indices, once per kernel.
///
/// Every expression compiled against the same `SlotMap` shares the
/// same slot numbering, so a single [`SlotEnv`] value array serves all
/// of them.
#[derive(Debug, Default, Clone)]
pub struct SlotMap {
    by_name: HashMap<String, usize>,
    names: Vec<String>,
}

impl SlotMap {
    /// An empty slot map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the slot for `name`, interning it on first use.
    pub fn slot(&mut self, name: &str) -> usize {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = self.names.len();
        self.by_name.insert(name.to_string(), s);
        self.names.push(name.to_string());
        s
    }

    /// Returns the slot for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The interned names, in slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of interned slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Creates a value environment sized for this map (all slots
    /// unbound).
    pub fn env(&self) -> SlotEnv {
        SlotEnv { values: vec![0; self.names.len()], bound: vec![false; self.names.len()] }
    }
}

/// A flat variable-value environment indexed by [`SlotMap`] slots.
#[derive(Debug, Clone)]
pub struct SlotEnv {
    values: Vec<i64>,
    bound: Vec<bool>,
}

impl SlotEnv {
    /// Binds `slot` to `v`.
    #[inline]
    pub fn set(&mut self, slot: usize, v: i64) {
        self.values[slot] = v;
        self.bound[slot] = true;
    }

    /// Unbinds `slot`.
    #[inline]
    pub fn clear(&mut self, slot: usize) {
        self.bound[slot] = false;
    }

    /// The value of `slot`, if bound.
    #[inline]
    pub fn get(&self, slot: usize) -> Option<i64> {
        if self.bound[slot] {
            Some(self.values[slot])
        } else {
            None
        }
    }

    /// Grows the environment to accommodate slots interned after it was
    /// created (new slots are unbound).
    pub fn grow(&mut self, map: &SlotMap) {
        self.values.resize(map.len(), 0);
        self.bound.resize(map.len(), false);
    }

    /// Copies bindings from a string-keyed environment, for slots the
    /// map knows. Slots absent from `env` are left untouched.
    pub fn bind_from(&mut self, map: &SlotMap, env: &HashMap<String, i64>) {
        for (name, &v) in env {
            if let Some(s) = map.lookup(name) {
                if s < self.values.len() {
                    self.set(s, v);
                }
            }
        }
    }
}

/// The affine closed form `base + Σ coefᵢ · slotᵢ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineExpr {
    /// Constant term.
    pub base: i64,
    /// `(coefficient, slot)` pairs with like terms combined and
    /// zero-coefficient terms dropped.
    pub terms: Vec<(i64, usize)>,
}

impl AffineExpr {
    #[inline]
    fn eval(&self, env: &SlotEnv) -> Result<i64, usize> {
        let mut acc = self.base;
        for &(c, s) in &self.terms {
            if !env.bound[s] {
                return Err(s);
            }
            acc += c * env.values[s];
        }
        Ok(acc)
    }
}

/// One post-order bytecode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(i64),
    /// Push the value of a slot.
    Slot(usize),
    /// Pop two values, push the operator result.
    Bin(BinOp),
}

/// An [`IntExpr`] lowered against a [`SlotMap`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// Closed-form affine map — the common case for layout offsets.
    Affine(AffineExpr),
    /// Stack-machine program for non-affine expressions.
    Bytecode(Vec<Op>),
}

impl CompiledExpr {
    /// Lowers `expr`, interning its variables into `slots`.
    ///
    /// Affine subtrees collapse into [`AffineExpr`]; anything touched
    /// by a non-affine operator compiles to bytecode.
    pub fn compile(expr: &IntExpr, slots: &mut SlotMap) -> CompiledExpr {
        if let Some(aff) = try_affine(expr, slots) {
            return CompiledExpr::Affine(aff);
        }
        let mut code = Vec::with_capacity(expr.node_count());
        emit(expr, slots, &mut code);
        CompiledExpr::Bytecode(code)
    }

    /// A compiled constant.
    pub fn constant(v: i64) -> CompiledExpr {
        CompiledExpr::Affine(AffineExpr { base: v, terms: Vec::new() })
    }

    /// The constant value, if this is one.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            CompiledExpr::Affine(a) if a.terms.is_empty() => Some(a.base),
            _ => None,
        }
    }

    /// Evaluates against a slot environment.
    ///
    /// # Errors
    ///
    /// [`EvalError::UnboundVar`] when a referenced slot is unbound
    /// (reported with its interned name via `names`, see
    /// [`CompiledExpr::eval_named`]), [`EvalError::DivisionByZero`] on
    /// `/ 0` or `% 0`.
    #[inline]
    pub fn eval(&self, env: &SlotEnv) -> Result<i64, CompiledEvalError> {
        match self {
            CompiledExpr::Affine(a) => a.eval(env).map_err(CompiledEvalError::Unbound),
            CompiledExpr::Bytecode(code) => eval_bytecode(code, env),
        }
    }

    /// Like [`eval`](Self::eval), mapping unbound slots back to their
    /// names for a user-facing [`EvalError`].
    pub fn eval_named(&self, env: &SlotEnv, slots: &SlotMap) -> Result<i64, EvalError> {
        self.eval(env).map_err(|e| match e {
            CompiledEvalError::Unbound(s) => EvalError::UnboundVar(
                slots.names().get(s).cloned().unwrap_or_else(|| format!("slot{s}")),
            ),
            CompiledEvalError::DivisionByZero => EvalError::DivisionByZero,
        })
    }

    /// The slots this expression reads.
    pub fn slots_used(&self) -> Vec<usize> {
        let mut out = Vec::new();
        match self {
            CompiledExpr::Affine(a) => out.extend(a.terms.iter().map(|&(_, s)| s)),
            CompiledExpr::Bytecode(code) => {
                for op in code {
                    if let Op::Slot(s) = op {
                        if !out.contains(s) {
                            out.push(*s);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Errors from [`CompiledExpr::eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledEvalError {
    /// A referenced slot was unbound (the payload is the slot index).
    Unbound(usize),
    /// Division or remainder by zero.
    DivisionByZero,
}

fn eval_bytecode(code: &[Op], env: &SlotEnv) -> Result<i64, CompiledEvalError> {
    // Expression trees are shallow; 16 covers every kernel in the repo
    // without reallocating.
    let mut stack: Vec<i64> = Vec::with_capacity(16);
    for op in code {
        match *op {
            Op::Const(v) => stack.push(v),
            Op::Slot(s) => {
                if !env.bound[s] {
                    return Err(CompiledEvalError::Unbound(s));
                }
                stack.push(env.values[s]);
            }
            Op::Bin(b) => {
                let rhs = stack.pop().expect("bytecode invariant: binary rhs");
                let lhs = stack.pop().expect("bytecode invariant: binary lhs");
                if matches!(b, BinOp::Div | BinOp::Mod) && rhs == 0 {
                    return Err(CompiledEvalError::DivisionByZero);
                }
                stack.push(b.apply(lhs, rhs));
            }
        }
    }
    Ok(stack.pop().expect("bytecode invariant: result"))
}

fn emit(expr: &IntExpr, slots: &mut SlotMap, code: &mut Vec<Op>) {
    match expr {
        IntExpr::Const(v) => code.push(Op::Const(*v)),
        IntExpr::Var(info) => {
            let s = slots.slot(&info.name);
            code.push(Op::Slot(s));
        }
        IntExpr::Bin(op, a, b) => {
            emit(a, slots, code);
            emit(b, slots, code);
            code.push(Op::Bin(*op));
        }
    }
}

/// Attempts the affine lowering: returns `None` as soon as a non-affine
/// operator over non-constant operands appears.
fn try_affine(expr: &IntExpr, slots: &mut SlotMap) -> Option<AffineExpr> {
    let mut base = 0i64;
    let mut terms: Vec<(i64, usize)> = Vec::new();
    collect_affine(expr, 1, slots, &mut base, &mut terms)?;
    // Combine like terms deterministically (slot order).
    terms.sort_unstable_by_key(|&(_, s)| s);
    terms.dedup_by(|b, a| {
        if a.1 == b.1 {
            a.0 += b.0;
            true
        } else {
            false
        }
    });
    terms.retain(|&(c, _)| c != 0);
    Some(AffineExpr { base, terms })
}

fn collect_affine(
    expr: &IntExpr,
    scale: i64,
    slots: &mut SlotMap,
    base: &mut i64,
    terms: &mut Vec<(i64, usize)>,
) -> Option<()> {
    match expr {
        IntExpr::Const(v) => {
            *base += scale * v;
            Some(())
        }
        IntExpr::Var(info) => {
            let s = slots.slot(&info.name);
            terms.push((scale, s));
            Some(())
        }
        IntExpr::Bin(op, a, b) => match op {
            BinOp::Add => {
                collect_affine(a, scale, slots, base, terms)?;
                collect_affine(b, scale, slots, base, terms)
            }
            BinOp::Sub => {
                collect_affine(a, scale, slots, base, terms)?;
                collect_affine(b, -scale, slots, base, terms)
            }
            BinOp::Mul => {
                if let Some(c) = b.as_const() {
                    collect_affine(a, scale * c, slots, base, terms)
                } else if let Some(c) = a.as_const() {
                    collect_affine(b, scale * c, slots, base, terms)
                } else {
                    None
                }
            }
            // Non-affine over non-constant operands; constant subtrees
            // were already folded by `IntExpr::bin`.
            BinOp::Div | BinOp::Mod | BinOp::Min | BinOp::Max => None,
        },
    }
}

impl IntExpr {
    /// Lowers this expression against `slots`; see
    /// [`CompiledExpr::compile`].
    pub fn compile(&self, slots: &mut SlotMap) -> CompiledExpr {
        CompiledExpr::compile(self, slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_env(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn affine_lowering_combines_terms() {
        let t = IntExpr::var("t");
        let e = t.clone() * 3 + (t.clone() * 5 - 2) + IntExpr::var("u");
        let mut slots = SlotMap::new();
        let c = e.compile(&mut slots);
        let CompiledExpr::Affine(a) = &c else { panic!("expected affine, got {c:?}") };
        assert_eq!(a.base, -2);
        assert_eq!(a.terms, vec![(8, slots.lookup("t").unwrap()), (1, slots.lookup("u").unwrap())]);
    }

    #[test]
    fn nonaffine_falls_back_to_bytecode() {
        let t = IntExpr::var("t");
        let e = (t.clone() / 8) * 32 + t.clone() % 8;
        let mut slots = SlotMap::new();
        let c = e.compile(&mut slots);
        assert!(matches!(c, CompiledExpr::Bytecode(_)));
        let mut env = slots.env();
        env.set(slots.lookup("t").unwrap(), 13);
        let t = 13i64;
        assert_eq!(c.eval(&env), Ok((t / 8) * 32 + t % 8));
    }

    #[test]
    fn compiled_matches_interpreted() {
        let t = IntExpr::var("threadIdx.x");
        let b = IntExpr::var("blockIdx.x");
        let k = IntExpr::var("k");
        let exprs = [
            t.clone() * 4 + b.clone() * 128 + k.clone() * 16,
            (t.clone() / 32) * 256 + (t.clone() % 32) * 8 + 3,
            (t.clone() % 16).min(b.clone() * 2) + (k.clone() - t.clone()) * 7,
            IntExpr::constant(42),
        ];
        let mut slots = SlotMap::new();
        let compiled: Vec<_> = exprs.iter().map(|e| e.compile(&mut slots)).collect();
        let mut env = slots.env();
        for tv in [0i64, 1, 31, 77] {
            let h = hash_env(&[("threadIdx.x", tv), ("blockIdx.x", 3), ("k", 9)]);
            env.bind_from(&slots, &h);
            for (e, c) in exprs.iter().zip(&compiled) {
                assert_eq!(c.eval_named(&env, &slots), e.eval(&h), "expr {e}");
            }
        }
    }

    #[test]
    fn unbound_slot_reports_name() {
        let e = IntExpr::var("M") + 1;
        let mut slots = SlotMap::new();
        let c = e.compile(&mut slots);
        let env = slots.env();
        assert_eq!(c.eval_named(&env, &slots), Err(EvalError::UnboundVar("M".into())));
    }

    #[test]
    fn division_by_zero_detected_at_eval() {
        let e = IntExpr::var("x") / IntExpr::var("y");
        let mut slots = SlotMap::new();
        let c = e.compile(&mut slots);
        let mut env = slots.env();
        env.set(slots.lookup("x").unwrap(), 4);
        env.set(slots.lookup("y").unwrap(), 0);
        assert_eq!(c.eval(&env), Err(CompiledEvalError::DivisionByZero));
    }

    #[test]
    fn env_grows_for_late_slots() {
        let mut slots = SlotMap::new();
        let c1 = IntExpr::var("a").compile(&mut slots);
        let mut env = slots.env();
        let c2 = IntExpr::var("b").compile(&mut slots);
        env.grow(&slots);
        env.set(slots.lookup("a").unwrap(), 1);
        env.set(slots.lookup("b").unwrap(), 2);
        assert_eq!(c1.eval(&env), Ok(1));
        assert_eq!(c2.eval(&env), Ok(2));
    }
}
