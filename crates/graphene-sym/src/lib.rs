//! # graphene-sym
//!
//! Symbolic integer expressions for the Graphene IR (ASPLOS '23).
//!
//! Graphene supports *parametric shapes* such as `[M,N].fp32` (paper §3.4)
//! and compiles tensor accesses into scalar index expressions that are
//! "arithmetically simplified" before being printed as CUDA C++
//! (paper §5.5). This crate provides:
//!
//! - [`IntExpr`] — the `IntExpr = int | var | (IntExpr BinOp IntExpr)`
//!   production from the paper's tensor syntax (Figure 2), with operator
//!   overloading, evaluation, and bound inference;
//! - [`simplify`] — the algebraic simplifier, including the paper's
//!   example rule `(M % 256) → M iff M < 256` plus linear-term collection
//!   and div/mod recombination;
//! - [`compiled`] — compile-once/execute-many lowering of expressions
//!   to slot-indexed affine/bytecode form ([`CompiledExpr`]), the fast
//!   evaluation path the simulator's address plans are built on.
//!
//! ```
//! use graphene_sym::{simplify, IntExpr};
//! let tid = IntExpr::var_bounded("threadIdx.x", 256);
//! let idx = (tid.clone() / 16) * 16 + tid.clone() % 16;
//! assert_eq!(simplify(&idx), tid);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compiled;
mod expr;
mod linear;
mod simplify;

pub use compiled::{AffineExpr, CompiledEvalError, CompiledExpr, SlotEnv, SlotMap};
pub use expr::{BinOp, EvalError, IntExpr, VarInfo};
pub use linear::{linearize, XorForm, XorTerm};
pub use simplify::simplify;
