//! Bit-level linearization of index expressions over F₂.
//!
//! The F₂ linear-layout view (see "Linear Layouts", PAPERS.md) treats an
//! address expression as an XOR-affine function of the *bits* of its input
//! variables: `addr = c ⊕ ⨁_k b_k·m_k`, where each `b_k` is a single bit of
//! some bounded variable and `m_k` is the constant mask that bit contributes.
//! Once an address is in this form, bank-conflict-freedom becomes a rank
//! condition on the mask matrix and swizzle synthesis a solvable linear
//! system (`graphene-layout::linear`).
//!
//! Not every integer expression is XOR-affine: `+` coincides with `⊕` only
//! when the summands are *carry-free* (pairwise disjoint bit supports).
//! [`linearize`] therefore works in an exact intermediate form — an integer
//! sum `c + Σ m_k·b_k` — and only reinterprets it as XOR at the points where
//! carry-freedom is required and verified:
//!
//! - `Div`/`Mod` by a power of two distribute over the sum *only* when the
//!   constant and all masks have pairwise disjoint supports (counterexample:
//!   `(x + 8) / 16` with `x = 8` carries into bit 4);
//! - the final conversion to [`XorForm`] requires the same disjointness,
//!   at which point integer sum, bitwise OR, and XOR all coincide.
//!
//! Expressions that fail these checks (e.g. `threadIdx.x * 3`, whose bit
//! masks `3, 6, 12, …` overlap) return `None` and callers fall back to
//! enumeration or sampling.

use crate::expr::{BinOp, IntExpr};
use std::collections::BTreeMap;

/// One F₂ basis term: when bit `bit` of variable `var` is set, the address
/// is XORed with `mask`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorTerm {
    /// Source variable name (e.g. `threadIdx.x`).
    pub var: String,
    /// Bit index within the variable (0 = LSB).
    pub bit: u32,
    /// Constant contribution of this bit to the address.
    pub mask: i64,
}

/// An XOR-affine address form: `value = constant ⊕ ⨁ {mask | bit set}`.
///
/// Invariant (established by [`linearize`]): the constant and all term
/// masks have pairwise disjoint bit supports, so the XOR is simultaneously
/// an integer sum and a bitwise OR. This makes shifts exact
/// ([`XorForm::shr`], [`XorForm::shl`]) and the maximum value a simple OR
/// ([`XorForm::max_value`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorForm {
    /// Address when all variable bits are zero.
    pub constant: i64,
    /// Basis terms, ordered by (variable, bit).
    pub terms: Vec<XorTerm>,
}

impl XorForm {
    /// Evaluates the form under an assignment of variables to values.
    /// Returns `None` if a term's variable is unbound.
    pub fn eval(&self, env: &std::collections::HashMap<String, i64>) -> Option<i64> {
        let mut v = self.constant;
        for t in &self.terms {
            let x = *env.get(&t.var)?;
            if (x >> t.bit) & 1 == 1 {
                v ^= t.mask;
            }
        }
        Some(v)
    }

    /// The largest value the form can take (exact, by support disjointness).
    pub fn max_value(&self) -> i64 {
        self.terms.iter().fold(self.constant, |acc, t| acc | t.mask)
    }

    /// Right-shifts the whole form by `s` bits. Exact because the sum is
    /// carry-free: `⌊(c | ⋁ m_k) / 2^s⌋ = (c >> s) | ⋁ (m_k >> s)`.
    /// Terms whose mask vanishes are dropped.
    #[must_use]
    pub fn shr(&self, s: u32) -> XorForm {
        XorForm {
            constant: self.constant >> s,
            terms: self
                .terms
                .iter()
                .filter_map(|t| {
                    let mask = t.mask >> s;
                    (mask != 0).then(|| XorTerm { mask, ..t.clone() })
                })
                .collect(),
        }
    }

    /// Left-shifts the whole form by `s` bits (exact; supports stay disjoint).
    #[must_use]
    pub fn shl(&self, s: u32) -> XorForm {
        XorForm {
            constant: self.constant << s,
            terms: self.terms.iter().map(|t| XorTerm { mask: t.mask << s, ..t.clone() }).collect(),
        }
    }

    /// The distinct variable names appearing in the terms, in term order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.terms {
            if !out.contains(&t.var.as_str()) {
                out.push(&t.var);
            }
        }
        out
    }
}

/// Exact intermediate form: `c + Σ m_k · b_k` over single-bit atoms.
#[derive(Debug, Clone)]
struct LinForm {
    c: i64,
    /// (var, bit) → integer coefficient contributed when that bit is 1.
    atoms: BTreeMap<(String, u32), i64>,
}

impl LinForm {
    fn constant(v: i64) -> Self {
        LinForm { c: v, atoms: BTreeMap::new() }
    }

    /// True when the constant and all coefficients are non-negative with
    /// pairwise disjoint bit supports — the sum is then carry-free.
    fn carry_free(&self) -> bool {
        if self.c < 0 {
            return false;
        }
        let mut seen = self.c;
        for &m in self.atoms.values() {
            if m < 0 || seen & m != 0 {
                return false;
            }
            seen |= m;
        }
        true
    }

    fn scale(mut self, k: i64) -> Option<Self> {
        if k < 0 {
            return None;
        }
        self.c = self.c.checked_mul(k)?;
        for m in self.atoms.values_mut() {
            *m = m.checked_mul(k)?;
        }
        self.atoms.retain(|_, m| *m != 0);
        Some(self)
    }

    fn add(mut self, other: LinForm) -> Option<Self> {
        self.c = self.c.checked_add(other.c)?;
        for (key, m) in other.atoms {
            let slot = self.atoms.entry(key).or_insert(0);
            *slot = slot.checked_add(m)?;
        }
        self.atoms.retain(|_, m| *m != 0);
        Some(self)
    }

    /// `self / 2^s` — sound only when carry-free (the sum is an OR, and OR
    /// distributes over right shift).
    fn div_pow2(mut self, s: u32) -> Option<Self> {
        if !self.carry_free() {
            return None;
        }
        self.c >>= s;
        for m in self.atoms.values_mut() {
            *m >>= s;
        }
        self.atoms.retain(|_, m| *m != 0);
        Some(self)
    }

    /// `self % 2^s` — same precondition as [`Self::div_pow2`].
    fn mod_pow2(mut self, s: u32) -> Option<Self> {
        if !self.carry_free() {
            return None;
        }
        let low = (1i64 << s) - 1;
        self.c &= low;
        for m in self.atoms.values_mut() {
            *m &= low;
        }
        self.atoms.retain(|_, m| *m != 0);
        Some(self)
    }

    fn into_xor(self) -> Option<XorForm> {
        if !self.carry_free() {
            return None;
        }
        Some(XorForm {
            constant: self.c,
            terms: self
                .atoms
                .into_iter()
                .map(|((var, bit), mask)| XorTerm { var, bit, mask })
                .collect(),
        })
    }
}

/// Number of bits needed to represent values in `0..bound` (exclusive bound).
fn bits_for(bound: i64) -> u32 {
    if bound <= 1 {
        0
    } else {
        64 - (bound - 1).leading_zeros()
    }
}

fn lin(e: &IntExpr) -> Option<LinForm> {
    match e {
        IntExpr::Const(v) => Some(LinForm::constant(*v)),
        IntExpr::Var(info) => {
            let bound = info.bound?;
            if bound <= 0 {
                return None;
            }
            let atoms = (0..bits_for(bound)).map(|b| ((info.name.clone(), b), 1i64 << b)).collect();
            Some(LinForm { c: 0, atoms })
        }
        IntExpr::Bin(op, a, b) => match op {
            BinOp::Add => lin(a)?.add(lin(b)?),
            BinOp::Mul => {
                if let Some(k) = b.as_const() {
                    lin(a)?.scale(k)
                } else if let Some(k) = a.as_const() {
                    lin(b)?.scale(k)
                } else {
                    None
                }
            }
            BinOp::Div => {
                let k = b.as_const()?;
                if k > 0 && k.count_ones() == 1 {
                    lin(a)?.div_pow2(k.trailing_zeros())
                } else {
                    None
                }
            }
            BinOp::Mod => {
                let k = b.as_const()?;
                if k > 0 && k.count_ones() == 1 {
                    lin(a)?.mod_pow2(k.trailing_zeros())
                } else {
                    None
                }
            }
            BinOp::Sub | BinOp::Min | BinOp::Max => None,
        },
    }
}

/// Abstracts an index expression into XOR-affine form over the bits of its
/// bounded variables.
///
/// Returns `None` when the expression is not provably XOR-affine: unbounded
/// variables, subtraction, min/max, division or remainder by a non-power of
/// two, products of variables, or any point where carry-freedom cannot be
/// established. A `Some` result is exact: [`XorForm::eval`] agrees with
/// [`IntExpr::eval`] for every in-bounds assignment.
///
/// ```
/// use graphene_sym::{linearize, IntExpr};
/// let tid = IntExpr::var_bounded("threadIdx.x", 32);
/// let form = linearize(&(tid.clone() % 8 * 16 + tid.clone() / 8 * 128)).unwrap();
/// assert_eq!(form.constant, 0);
/// assert!(linearize(&(tid * 3)).is_none()); // masks 3, 6, 12 overlap
/// ```
pub fn linearize(e: &IntExpr) -> Option<XorForm> {
    lin(e)?.into_xor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tid(bound: i64) -> IntExpr {
        IntExpr::var_bounded("threadIdx.x", bound)
    }

    /// Checks the form against direct evaluation for every in-bounds value.
    fn assert_exact(e: &IntExpr, bound: i64) {
        let form = linearize(e).unwrap_or_else(|| panic!("should linearize: {e}"));
        for v in 0..bound {
            let env: HashMap<String, i64> = [("threadIdx.x".to_string(), v)].into();
            assert_eq!(form.eval(&env), Some(e.eval(&env).unwrap()), "at tid={v} for {e}");
        }
    }

    #[test]
    fn plain_scaled_var() {
        assert_exact(&(tid(256) * 16), 256);
    }

    #[test]
    fn disjoint_tile_offset() {
        let t = tid(256);
        assert_exact(&(t.clone() % 8 * 16 + t.clone() / 8 * 128), 256);
    }

    #[test]
    fn carrying_tile_offset_fails() {
        // Real shape from the GEMM kernels' shared-memory staging: the
        // images of `t % 8 * 16` (bits 4–6) and `t / 16 * 8` (bits 3–6)
        // overlap, so the integer sum carries (t = 33 → 16 + 16 = 32, not
        // 16 ⊕ 16 = 0). Not XOR-affine; proven by warp enumeration instead.
        let t = tid(256);
        let e = t.clone() % 8 * 16 + t.clone() / 16 * 8 + t.clone() / 8 % 2 * 128;
        assert!(linearize(&e).is_none());
    }

    #[test]
    fn gemm_swizzled_vector_offset() {
        // (tid*2 + 1)*8 % 16 / 8 * 8 + (tid*2 + 1)*8 / 16 * 16
        let t = tid(128);
        let v = (t.clone() * 2 + 1) * 8;
        let e = v.clone() % 16 / 8 * 8 + v / 16 * 16;
        assert_exact(&e, 128);
    }

    #[test]
    fn doubled_var_is_a_shift() {
        let t = tid(64);
        assert_exact(&(t.clone() + t.clone()), 64);
    }

    #[test]
    fn stride_three_fails() {
        assert!(linearize(&(tid(32) * 3)).is_none());
    }

    #[test]
    fn carried_constant_fails_division() {
        // (x + 8) / 16 is not bit-linear: x = 8 carries into bit 4.
        let x = tid(64);
        assert!(linearize(&((x + 8) / 16)).is_none());
    }

    #[test]
    fn unbounded_var_fails() {
        assert!(linearize(&(IntExpr::var("m") * 4)).is_none());
    }

    #[test]
    fn subtraction_fails() {
        let t = tid(32);
        assert!(linearize(&(t.clone() * 2 - t)).is_none());
    }

    #[test]
    fn constant_only() {
        let form = linearize(&IntExpr::constant(96)).unwrap();
        assert_eq!(form.constant, 96);
        assert!(form.terms.is_empty());
        assert_eq!(form.max_value(), 96);
    }

    #[test]
    fn max_value_and_shifts() {
        let t = tid(32);
        let form = linearize(&(t * 16 + 8)).unwrap();
        assert_eq!(form.max_value(), 31 * 16 + 8);
        // Halving (fp16 byte→word scaling) is exact.
        let half = form.shr(1);
        let env: HashMap<String, i64> = [("threadIdx.x".to_string(), 21)].into();
        assert_eq!(half.eval(&env), Some((21 * 16 + 8) / 2));
        assert_eq!(form.shl(2).eval(&env), Some((21 * 16 + 8) * 4));
    }

    #[test]
    fn vars_listed_once() {
        let t = tid(32);
        let e = t.clone() % 8 + t / 8 * 64 + IntExpr::var_bounded("k", 4) * 8;
        let form = linearize(&e).unwrap();
        assert_eq!(form.vars(), vec!["k", "threadIdx.x"]);
    }
}
