//! Rendering correctness: the printed C form of an expression, re-parsed
//! by a tiny recursive-descent parser, evaluates identically to the
//! original — the property the generated CUDA relies on.

use graphene_sym::{BinOp, IntExpr};
use proptest::prelude::*;
use std::collections::HashMap;

/// A minimal C-expression parser supporting the renderer's output
/// grammar: identifiers, integers, `+ - * / %`, parens, and
/// `min(..)`/`max(..)`.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { s: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i] == b' ' {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn expr(&mut self) -> IntExpr {
        let mut lhs = self.term();
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.i += 1;
                    let rhs = self.term();
                    lhs = IntExpr::bin(BinOp::Add, lhs, rhs);
                }
                Some(b'-') => {
                    self.i += 1;
                    let rhs = self.term();
                    lhs = IntExpr::bin(BinOp::Sub, lhs, rhs);
                }
                _ => return lhs,
            }
        }
    }

    fn term(&mut self) -> IntExpr {
        let mut lhs = self.atom();
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.i += 1;
                    let rhs = self.atom();
                    lhs = IntExpr::bin(BinOp::Mul, lhs, rhs);
                }
                Some(b'/') => {
                    self.i += 1;
                    let rhs = self.atom();
                    lhs = IntExpr::bin(BinOp::Div, lhs, rhs);
                }
                Some(b'%') => {
                    self.i += 1;
                    let rhs = self.atom();
                    lhs = IntExpr::bin(BinOp::Mod, lhs, rhs);
                }
                _ => return lhs,
            }
        }
    }

    fn atom(&mut self) -> IntExpr {
        self.ws();
        match self.s[self.i] {
            b'-' => {
                // Unary minus (negative constants from folding).
                self.i += 1;
                let inner = self.atom();
                IntExpr::bin(BinOp::Sub, IntExpr::constant(0), inner)
            }
            b'(' => {
                self.i += 1;
                let e = self.expr();
                assert_eq!(self.peek(), Some(b')'), "expected )");
                self.i += 1;
                e
            }
            b'0'..=b'9' => {
                let start = self.i;
                while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
                    self.i += 1;
                }
                let v: i64 = std::str::from_utf8(&self.s[start..self.i]).unwrap().parse().unwrap();
                IntExpr::constant(v)
            }
            _ => {
                let start = self.i;
                while self.i < self.s.len()
                    && (self.s[self.i].is_ascii_alphanumeric()
                        || self.s[self.i] == b'_'
                        || self.s[self.i] == b'.')
                {
                    self.i += 1;
                }
                let name = std::str::from_utf8(&self.s[start..self.i]).unwrap().to_string();
                if (name == "min" || name == "max") && self.peek() == Some(b'(') {
                    self.i += 1;
                    let a = self.expr();
                    assert_eq!(self.peek(), Some(b','));
                    self.i += 1;
                    let b = self.expr();
                    assert_eq!(self.peek(), Some(b')'));
                    self.i += 1;
                    let op = if name == "min" { BinOp::Min } else { BinOp::Max };
                    IntExpr::bin(op, a, b)
                } else {
                    IntExpr::var(name)
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = IntExpr> {
    let leaf = prop_oneof![
        (1i64..40).prop_map(IntExpr::constant),
        Just(IntExpr::var("a")),
        Just(IntExpr::var("b")),
    ];
    leaf.prop_recursive(4, 40, 2, |inner| {
        (inner.clone(), inner, 0usize..7).prop_map(|(x, y, i)| {
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Mod,
                BinOp::Min,
                BinOp::Max,
            ][i];
            if matches!(op, BinOp::Div | BinOp::Mod) {
                IntExpr::bin(op, x, y.max(IntExpr::one()))
            } else {
                IntExpr::bin(op, x, y)
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display output re-parses to a semantically identical expression:
    /// the precedence/parenthesisation logic is correct.
    #[test]
    fn rendering_roundtrips(e in arb_expr(), a in 0i64..50, b in 1i64..50) {
        let rendered = e.to_string();
        let reparsed = Parser::new(&rendered).expr();
        let env: HashMap<String, i64> =
            [("a".to_string(), a), ("b".to_string(), b)].into();
        prop_assert_eq!(
            e.eval(&env), reparsed.eval(&env),
            "original `{}` reparsed `{}`", rendered, reparsed
        );
    }
}

#[test]
fn parser_sanity() {
    let e = Parser::new("a + 3 * (b - 1)").expr();
    let env: HashMap<String, i64> = [("a".to_string(), 2), ("b".to_string(), 5)].into();
    assert_eq!(e.eval(&env).unwrap(), 2 + 3 * 4);
    let e = Parser::new("min(a, max(b, 7))").expr();
    assert_eq!(e.eval(&env).unwrap(), 2);
}
