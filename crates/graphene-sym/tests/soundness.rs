//! Property tests: the simplifier never changes the meaning of an
//! expression — `simplify(e)` evaluates identically to `e` under every
//! bound-respecting environment.

use graphene_sym::{simplify, BinOp, IntExpr};
use proptest::prelude::*;
use std::collections::HashMap;

/// Variables used by generated expressions: (name, exclusive bound).
const VARS: &[(&str, i64)] = &[("a", 8), ("b", 32), ("c", 256), ("d", 1024)];

fn arb_expr() -> impl Strategy<Value = IntExpr> {
    let leaf = prop_oneof![
        (0i64..64).prop_map(IntExpr::constant),
        (0usize..VARS.len()).prop_map(|i| {
            let (name, bound) = VARS[i];
            IntExpr::var_bounded(name, bound)
        }),
    ];
    leaf.prop_recursive(4, 64, 2, |inner| {
        (inner.clone(), inner, 0usize..7).prop_map(|(a, b, op)| {
            let op = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Div,
                BinOp::Mod,
                BinOp::Min,
                BinOp::Max,
            ][op];
            // Guard div/mod-by-potentially-zero by clamping the divisor.
            if matches!(op, BinOp::Div | BinOp::Mod) {
                let divisor = b.max(IntExpr::one());
                IntExpr::bin(op, a, divisor)
            } else {
                IntExpr::bin(op, a, b)
            }
        })
    })
}

fn arb_env() -> impl Strategy<Value = HashMap<String, i64>> {
    let mut strat: Vec<BoxedStrategy<(String, i64)>> = Vec::new();
    for &(name, bound) in VARS {
        let n = name.to_string();
        strat.push((0..bound).prop_map(move |v| (n.clone(), v)).boxed());
    }
    strat.prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// simplify() preserves evaluation.
    #[test]
    fn simplify_sound(e in arb_expr(), env in arb_env()) {
        let orig = e.eval(&env);
        let simp = simplify(&e).eval(&env);
        prop_assert_eq!(orig, simp, "expr: {} simplified: {}", e, simplify(&e));
    }

    /// simplify() never grows the expression.
    #[test]
    fn simplify_never_grows(e in arb_expr()) {
        prop_assert!(simplify(&e).node_count() <= e.node_count() + 1,
            "{} ({} nodes) grew to {} ({} nodes)",
            e, e.node_count(), simplify(&e), simplify(&e).node_count());
    }

    /// simplify() is idempotent up to rendering.
    #[test]
    fn simplify_idempotent(e in arb_expr()) {
        let once = simplify(&e);
        let twice = simplify(&once);
        prop_assert_eq!(once.to_string(), twice.to_string());
    }

    /// The rendered C expression re-parses to the same value: we check the
    /// cheap invariant that rendering is parenthesised correctly by
    /// comparing evaluation of a re-built AST for +,*,% only.
    #[test]
    fn upper_bound_is_sound(e in arb_expr(), env in arb_env()) {
        if let (Some(ub), Ok(v)) = (e.upper_bound(), e.eval(&env)) {
            // upper_bound is exclusive; only guaranteed for non-negative
            // evaluations (all our generated vars are non-negative, but
            // Sub can produce negative values — skip those).
            if v >= 0 {
                prop_assert!(v < ub, "{e} evaluated to {v}, bound {ub}");
            }
        }
    }
}
