//! Execution counters — the simulator's Nsight-Compute-like profile.

/// Counters accumulated while executing or analysing a kernel.
///
/// `global_*_bytes` is the total traffic the kernel issues to the global
/// address space (served by L2); `unique_global_*_bytes` is the footprint
/// that must ultimately come from / go to DRAM (tile re-reads hit in L2
/// on real GPUs, which is what makes tensor-core GEMMs compute-bound).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes read from global address space (L2 traffic).
    pub global_read_bytes: u64,
    /// Bytes written to global address space (L2 traffic).
    pub global_write_bytes: u64,
    /// DRAM read footprint (unique bytes).
    pub unique_global_read_bytes: u64,
    /// DRAM write footprint (unique bytes).
    pub unique_global_write_bytes: u64,
    /// Bytes read from shared memory.
    pub smem_read_bytes: u64,
    /// Bytes written to shared memory.
    pub smem_write_bytes: u64,
    /// Ideal (conflict-free) shared-memory transactions.
    pub smem_accesses: u64,
    /// Actual transactions after bank-conflict serialisation.
    pub smem_transactions: u64,
    /// FLOPs executed on the FMA (CUDA-core) pipe.
    pub flops_fma: u64,
    /// FLOPs executed on the tensor-core pipe.
    pub flops_tc: u64,
    /// Dynamic instruction count (atomic-spec executions).
    pub instructions: u64,
    /// Barrier count.
    pub syncs: u64,
}

impl Counters {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.unique_global_read_bytes += other.unique_global_read_bytes;
        self.unique_global_write_bytes += other.unique_global_write_bytes;
        self.smem_read_bytes += other.smem_read_bytes;
        self.smem_write_bytes += other.smem_write_bytes;
        self.smem_accesses += other.smem_accesses;
        self.smem_transactions += other.smem_transactions;
        self.flops_fma += other.flops_fma;
        self.flops_tc += other.flops_tc;
        self.instructions += other.instructions;
        self.syncs += other.syncs;
    }

    /// Scales all counters by `n` (used when one representative block or
    /// iteration stands for many).
    pub fn scaled(&self, n: u64) -> Counters {
        Counters {
            global_read_bytes: self.global_read_bytes * n,
            global_write_bytes: self.global_write_bytes * n,
            // Unique footprints do not scale with repetition; the caller
            // sets them explicitly.
            unique_global_read_bytes: self.unique_global_read_bytes,
            unique_global_write_bytes: self.unique_global_write_bytes,
            smem_read_bytes: self.smem_read_bytes * n,
            smem_write_bytes: self.smem_write_bytes * n,
            smem_accesses: self.smem_accesses * n,
            smem_transactions: self.smem_transactions * n,
            flops_fma: self.flops_fma * n,
            flops_tc: self.flops_tc * n,
            instructions: self.instructions * n,
            syncs: self.syncs * n,
        }
    }

    /// Total global traffic (L2), bytes.
    pub fn l2_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Total DRAM traffic, bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.unique_global_read_bytes + self.unique_global_write_bytes
    }

    /// Total FLOPs.
    pub fn flops(&self) -> u64 {
        self.flops_fma + self.flops_tc
    }

    /// Average bank-conflict serialisation factor (1.0 = conflict-free).
    pub fn conflict_factor(&self) -> f64 {
        if self.smem_accesses == 0 {
            1.0
        } else {
            self.smem_transactions as f64 / self.smem_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a =
            Counters { flops_tc: 10, smem_accesses: 4, smem_transactions: 8, ..Default::default() };
        let b = Counters { flops_tc: 5, global_read_bytes: 64, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.flops_tc, 15);
        assert_eq!(a.global_read_bytes, 64);
        assert_eq!(a.conflict_factor(), 2.0);
    }

    #[test]
    fn scaled_multiplies_traffic_not_footprint() {
        let c = Counters {
            global_read_bytes: 100,
            unique_global_read_bytes: 40,
            flops_fma: 7,
            ..Default::default()
        };
        let s = c.scaled(3);
        assert_eq!(s.global_read_bytes, 300);
        assert_eq!(s.unique_global_read_bytes, 40);
        assert_eq!(s.flops_fma, 21);
    }

    #[test]
    fn conflict_factor_defaults_to_one() {
        assert_eq!(Counters::default().conflict_factor(), 1.0);
    }
}
