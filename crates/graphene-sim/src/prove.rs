//! Exact bank-conflict proofs for shared-memory access sites.
//!
//! [`crate::sample_conflicts_cached`] grades one representative warp — a
//! clean result is *evidence*, not proof. This module upgrades the grade
//! to a proof whenever the access admits one, with two rules:
//!
//! 1. **F₂ rank** ([`ConflictProvenance::ProvenLinear`]): the view's
//!    offset linearizes ([`graphene_sym::linearize`]) into an XOR-affine
//!    form, the execution's lane set is a union of aligned hardware
//!    warps, and the relative (vector) offsets XOR-decompose. Then the
//!    warp's word footprint is a coset of an F₂ span, every warp and
//!    every loop iteration shares one column matrix, and the grade is a
//!    rank condition ([`graphene_layout::prove_banks`]) — one small
//!    Gaussian elimination instead of any address enumeration.
//! 2. **Exhaustive warp enumeration**
//!    ([`ConflictProvenance::ProvenEnumerated`]): when the offset
//!    depends on nothing but `threadIdx.x` and bounded loop counters
//!    (true of non-linear strided patterns such as `threadIdx.x * 3`),
//!    grading *every* hardware warp at *every* loop-value combination
//!    (within a fixed budget) is a complete case analysis, not a
//!    sample. The worst warp's grade is reported.
//!
//! Accesses admitting neither rule fall back to sampling
//! ([`ConflictProvenance::Sampled`] via [`grade_conflicts_cached`]).

use crate::analyze::{exec_lanes, lane_addresses_cached, sample_conflicts_cached, AnalyzeError};
use crate::plan::{BankTally, PlanCache};
use graphene_ir::tensor::TensorId;
use graphene_ir::{Module, ThreadTensor};
use graphene_layout::{prove_banks, AccessSite};
use graphene_sym::linearize;
use std::collections::HashMap;
use std::collections::HashSet;

/// How a bank-conflict grade was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictProvenance {
    /// Proved by the F₂ rank condition: exact for all warps, all loop
    /// iterations.
    ProvenLinear,
    /// Proved by enumerating every hardware warp of an
    /// iteration-independent access: a complete case analysis.
    ProvenEnumerated,
    /// Measured on one representative warp only.
    Sampled,
}

impl ConflictProvenance {
    /// Stable lower-case label (used in diagnostics and JSON).
    pub fn label(self) -> &'static str {
        match self {
            ConflictProvenance::ProvenLinear => "proven-linear",
            ConflictProvenance::ProvenEnumerated => "proven-enumerated",
            ConflictProvenance::Sampled => "sampled",
        }
    }

    /// `true` for either proof rule.
    pub fn is_proven(self) -> bool {
        self != ConflictProvenance::Sampled
    }
}

/// A bank-conflict grade with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictGrade {
    /// Conflict-free transaction count for the warp's footprint.
    pub ideal: u64,
    /// Serialised transaction count (worst warp, for enumeration).
    pub actual: u64,
    /// How the grade was established.
    pub provenance: ConflictProvenance,
}

impl ConflictGrade {
    /// `true` when the access needs no extra transactions.
    pub fn conflict_free(&self) -> bool {
        self.actual <= self.ideal
    }
}

/// The F₂ abstraction of one shared-memory access: the element-address
/// columns of its varying bits, ready for [`graphene_layout::prove_banks`]
/// or swizzle synthesis. Built by [`linear_site`].
#[derive(Debug, Clone)]
pub struct LinearSite {
    /// Columns of the warp-varying bits (lane bits then vector bits),
    /// in *element* addresses, pre-swizzle.
    pub site: AccessSite,
    /// The root tensor's current swizzle.
    pub swizzle: graphene_layout::Swizzle,
}

/// Is the lane set a union of aligned 32-thread hardware warps?
///
/// Required by the rank rule: within each aligned warp, `threadIdx.x`
/// bits 0–4 range over all 32 combinations (the varying bits) while the
/// higher bits stay fixed (a coset shift). A partial warp would make the
/// representative footprint a *subset* of the span, for which the rank
/// counts no longer hold.
fn warp_closed(lanes: &[i64]) -> bool {
    if lanes.is_empty() {
        return false;
    }
    let set: HashSet<i64> = lanes.iter().copied().collect();
    if set.len() != lanes.len() || set.iter().any(|&l| l < 0) {
        return false;
    }
    // Every warp with any member present must be complete: distinct
    // lanes = 32 × distinct warp ids exactly when each warp is full.
    let warps: HashSet<i64> = set.iter().map(|&l| l >> 5).collect();
    warps.len() * 32 == set.len()
}

/// Verifies `adj` is XOR-decomposable over its index bits and returns
/// the basis deltas: `adj[i] == adj[0] ⊕ ⨁_{bit k of i} deltas[k]`.
fn xor_decompose(adj: &[i64]) -> Option<Vec<i64>> {
    let n = adj.len();
    if n == 0 || !n.is_power_of_two() {
        return None;
    }
    let v = n.trailing_zeros() as usize;
    let deltas: Vec<i64> = (0..v).map(|k| adj[1 << k] ^ adj[0]).collect();
    for (i, &a) in adj.iter().enumerate() {
        let mut expect = adj[0];
        for (k, &d) in deltas.iter().enumerate() {
            if (i >> k) & 1 == 1 {
                expect ^= d;
            }
        }
        if expect != a {
            return None;
        }
    }
    Some(deltas)
}

/// Abstracts view `id`'s access under exec `tt` into its F₂ columns.
///
/// Returns `None` when the access is not provably XOR-affine: the offset
/// fails to linearize, the lane set is not warp-closed, the relative
/// offsets don't XOR-decompose, or carry-freedom between the base and the
/// relative offsets cannot be established.
pub fn linear_site(
    plans: &mut PlanCache,
    id: TensorId,
    module: &Module,
    tt: &ThreadTensor,
    bytes_per: u64,
) -> Option<LinearSite> {
    let form = linearize(&module[id].offset)?;
    if !warp_closed(&exec_lanes(tt, tt.count() as usize)) {
        return None;
    }
    let plan = plans.plan(id, module).clone();

    // Fold the form's constant into the relative offsets: adj[j] is the
    // address when every variable bit is zero.
    let mut adj = Vec::with_capacity(plan.rel.len());
    for &o in plan.rel.iter() {
        let a = form.constant.checked_add(o)?;
        if a < 0 {
            return None;
        }
        adj.push(a);
    }
    let deltas = xor_decompose(&adj)?;

    // Carry-freedom between base and relative parts: the variable part
    // of the base is a subset-XOR of pairwise-disjoint masks, so its
    // support is within the OR of all masks; the adjusted offsets must
    // stay clear of it for `base + rel` to equal `base ⊕ rel`.
    let masks_all = form.terms.iter().fold(0i64, |m, t| m | t.mask);
    if adj.iter().fold(0i64, |m, &a| m | a) & masks_all != 0 {
        return None;
    }

    // Varying columns: the warp-lane bits of threadIdx.x (bits 0–4; a
    // dropped bit is a genuine zero column — a broadcast) plus the
    // vector deltas. Everything else (higher tid bits, loop counters)
    // only XOR-shifts the coset and cannot change the rank counts.
    let mut columns: Vec<i64> =
        form.terms.iter().filter(|t| t.var == "threadIdx.x" && t.bit < 5).map(|t| t.mask).collect();
    columns.extend(deltas);
    if bytes_per == 0 {
        return None;
    }
    Some(LinearSite {
        site: AccessSite { columns, bytes_per: bytes_per as i64 },
        swizzle: plan.swizzle,
    })
}

/// Rule 1: proves the grade by the F₂ rank condition, or `None`.
pub fn prove_conflicts_linear(
    plans: &mut PlanCache,
    id: TensorId,
    module: &Module,
    tt: &ThreadTensor,
    bytes_per: u64,
) -> Option<ConflictGrade> {
    let ls = linear_site(plans, id, module, tt, bytes_per)?;
    let proof = prove_banks(&ls.site, ls.swizzle)?;
    Some(ConflictGrade {
        ideal: proof.ideal() as u64,
        actual: proof.actual() as u64,
        provenance: ConflictProvenance::ProvenLinear,
    })
}

/// Enumeration budget for Rule 2: the largest loop-value cartesian
/// product worth exhausting before the proof stops paying for itself.
const MAX_LOOP_COMBOS: i64 = 1024;

/// Rule 2: proves the grade by enumerating every hardware warp of the
/// access, or `None`. Reports the worst warp.
///
/// The offset may depend on `threadIdx.x` and on loop counters listed
/// in `loops` (as `(var, extent)` pairs from the enclosing `for`
/// nesting): every combination of loop values is enumerated — a
/// complete case analysis, not a sample — up to a budget of
/// [`MAX_LOOP_COMBOS`] combinations. Iteration-independent offsets
/// (`threadIdx.x` only) enumerate exactly once.
#[allow(clippy::too_many_arguments)]
pub fn prove_conflicts_enumerated(
    plans: &mut PlanCache,
    tally: &mut BankTally,
    id: TensorId,
    module: &Module,
    tt: &ThreadTensor,
    env: &HashMap<String, i64>,
    loops: &[(String, i64)],
    bytes_per: u64,
) -> Option<ConflictGrade> {
    let free = module[id].offset.free_vars();
    // Loop counters the offset actually reads; everything else must be
    // the thread id, or the enumeration would not be exhaustive.
    let used: Vec<(&str, i64)> = loops
        .iter()
        .filter(|(v, _)| free.iter().any(|f| f == v))
        .map(|(v, e)| (v.as_str(), *e))
        .collect();
    if free.iter().any(|v| v != "threadIdx.x" && !used.iter().any(|(u, _)| u == v)) {
        return None;
    }
    let mut combos: i64 = 1;
    for &(_, e) in &used {
        if e <= 0 {
            return None;
        }
        combos = combos.checked_mul(e)?;
        if combos > MAX_LOOP_COMBOS {
            return None;
        }
    }
    // Hardware issue groups: collective specs issue per exec group, the
    // per-thread ones per aligned 32-thread warp.
    let groups: Vec<Vec<i64>> = if tt.group_size() > 1 {
        (0..tt.num_groups())
            .map(|g| {
                let base = tt.group.value(g);
                (0..tt.group_size()).map(|j| base + tt.local.value(j)).collect()
            })
            .collect()
    } else {
        let mut by_warp: HashMap<i64, Vec<i64>> = HashMap::new();
        for l in exec_lanes(tt, tt.count() as usize) {
            by_warp.entry(l >> 5).or_default().push(l);
        }
        let mut warps: Vec<_> = by_warp.into_iter().collect();
        warps.sort_unstable_by_key(|(w, _)| *w);
        warps.into_iter().map(|(_, ls)| ls).collect()
    };
    let mut env = env.clone();
    let mut worst: Option<(u64, u64)> = None;
    for c in 0..combos {
        let mut rem = c;
        for &(v, e) in &used {
            env.insert(v.to_string(), rem % e);
            rem /= e;
        }
        for warp in &groups {
            let per_lane = lane_addresses_cached(plans, id, module, warp, &env).ok()?;
            for (_, addrs) in &per_lane {
                for &a in addrs {
                    tally.add_addr(a, bytes_per);
                }
            }
            let (ideal, actual) = tally.grade();
            // Keep the warp with the largest conflict factor
            // (cross-multiplied to stay in integers).
            let factor_worse = match worst {
                None => true,
                Some((wi, wa)) => actual * wi > wa * ideal,
            };
            if factor_worse {
                worst = Some((ideal, actual));
            }
        }
    }
    worst.map(|(ideal, actual)| ConflictGrade {
        ideal,
        actual,
        provenance: ConflictProvenance::ProvenEnumerated,
    })
}

/// `true` when the representative lane set that
/// [`sample_conflicts_cached`] grades is exactly one aligned hardware
/// warp — in that case a linear proof's grade coincides with the sampled
/// grade and can replace it without changing any counter.
pub fn sample_is_aligned_warp(tt: &ThreadTensor) -> bool {
    // Mirror of the representative-lane choice in
    // `sample_conflicts_cached`.
    let lanes: Vec<i64> = if tt.group_size() == 1 {
        (0..tt.num_groups().min(32)).map(|g| tt.group.value(g)).collect()
    } else {
        let base = tt.group.value(0);
        (0..tt.group_size().min(32)).map(|j| base + tt.local.value(j)).collect()
    };
    lanes.len() == 32 && warp_closed(&lanes)
}

/// Grades a shared-memory access with the strongest available method:
/// the F₂ rank proof, then exhaustive warp enumeration, then one-warp
/// sampling.
///
/// # Errors
///
/// See [`AnalyzeError`] (sampling fallback only; proofs never error).
#[allow(clippy::too_many_arguments)]
pub fn grade_conflicts_cached(
    plans: &mut PlanCache,
    tally: &mut BankTally,
    id: TensorId,
    module: &Module,
    tt: &ThreadTensor,
    env: &HashMap<String, i64>,
    loops: &[(String, i64)],
    bytes_per: u64,
) -> Result<ConflictGrade, AnalyzeError> {
    if let Some(g) = prove_conflicts_linear(plans, id, module, tt, bytes_per) {
        return Ok(g);
    }
    if let Some(g) = prove_conflicts_enumerated(plans, tally, id, module, tt, env, loops, bytes_per)
    {
        return Ok(g);
    }
    let (ideal, actual) = sample_conflicts_cached(plans, tally, id, module, tt, env, bytes_per)?;
    Ok(ConflictGrade { ideal, actual, provenance: ConflictProvenance::Sampled })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_closure() {
        let full: Vec<i64> = (0..64).collect();
        assert!(warp_closed(&full));
        let partial: Vec<i64> = (0..48).collect();
        assert!(!warp_closed(&partial));
        let offset: Vec<i64> = (16..48).collect();
        assert!(!warp_closed(&offset));
        assert!(!warp_closed(&[]));
        let second_warp: Vec<i64> = (32..64).collect();
        assert!(warp_closed(&second_warp));
    }

    #[test]
    fn xor_decomposition() {
        // Contiguous vector: deltas are powers of two.
        assert_eq!(xor_decompose(&[0, 1, 2, 3]), Some(vec![1, 2]));
        // Strided vector.
        assert_eq!(xor_decompose(&[5, 13]), Some(vec![8]));
        // Arithmetic but not XOR-decomposable: 0,3,6,9 (3 ^ 6 != 5).
        assert_eq!(xor_decompose(&[0, 3, 6, 9]), None);
        // Non-power-of-two length.
        assert_eq!(xor_decompose(&[0, 1, 2]), None);
    }
}
