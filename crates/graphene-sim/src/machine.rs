//! Machine descriptions of the simulated GPUs.
//!
//! The paper evaluates on a V100 (SM70, Volta) and an RTX A6000 (SM86,
//! Ampere) with clocks locked to base frequencies by Nsight Compute.
//! These descriptions capture the headline capabilities the timing model
//! needs: pipe throughputs, memory bandwidths, shared-memory banking,
//! and kernel-launch overhead.

use graphene_ir::Arch;

/// Capabilities of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDesc {
    /// Marketing name, e.g. `V100`.
    pub name: &'static str,
    /// Architecture (selects the atomic-spec registry).
    pub arch: Arch,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Locked base clock in GHz.
    pub clock_ghz: f64,
    /// Peak FP16 tensor-core throughput (dense), TFLOP/s.
    pub tensor_tflops: f64,
    /// Peak FP32 FMA throughput, TFLOP/s.
    pub fma_tflops: f64,
    /// DRAM bandwidth, GB/s.
    pub dram_gbs: f64,
    /// L2 bandwidth, GB/s (serves tile re-reads that hit in L2).
    pub l2_gbs: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Shared-memory banks per SM (each serving 4 bytes per cycle).
    pub smem_banks: u32,
    /// Shared memory per SM, bytes.
    pub smem_bytes_per_sm: u64,
    /// Kernel launch overhead, microseconds. Fusion wins in the paper's
    /// Figures 11/12 come partly from eliminating these.
    pub launch_overhead_us: f64,
    /// Fraction of theoretical pipe/bandwidth peaks achievable by
    /// perfectly tuned kernels (cuBLAS-class).
    pub achievable_fraction: f64,
}

impl MachineDesc {
    /// Shared-memory bandwidth in bytes/s across the whole GPU:
    /// banks × 4 B × clock × SMs.
    pub fn smem_gbs(&self) -> f64 {
        self.smem_banks as f64 * 4.0 * self.clock_ghz * self.sms as f64
    }

    /// Peak tensor FLOP/s.
    pub fn tensor_flops(&self) -> f64 {
        self.tensor_tflops * 1e12
    }

    /// Peak FP32 FMA FLOP/s.
    pub fn fma_flops(&self) -> f64 {
        self.fma_tflops * 1e12
    }
}

/// The Volta-class machine (V100-SXM2-16GB at base clocks).
pub const VOLTA_V100: MachineDesc = MachineDesc {
    name: "V100",
    arch: Arch::Sm70,
    sms: 80,
    clock_ghz: 1.312,
    tensor_tflops: 112.0,
    fma_tflops: 14.0,
    dram_gbs: 900.0,
    l2_gbs: 2150.0,
    l2_bytes: 6 * 1024 * 1024,
    smem_banks: 32,
    smem_bytes_per_sm: 96 * 1024,
    launch_overhead_us: 5.0,
    achievable_fraction: 0.90,
};

/// The Ampere-class machine (RTX A6000 at base clocks).
pub const AMPERE_A6000: MachineDesc = MachineDesc {
    name: "RTX A6000",
    arch: Arch::Sm86,
    sms: 84,
    clock_ghz: 1.410,
    tensor_tflops: 155.0,
    fma_tflops: 19.4,
    dram_gbs: 768.0,
    l2_gbs: 2400.0,
    l2_bytes: 6 * 1024 * 1024,
    smem_banks: 32,
    smem_bytes_per_sm: 100 * 1024,
    launch_overhead_us: 4.0,
    achievable_fraction: 0.90,
};

/// Looks up the machine for an architecture.
pub fn machine_for(arch: Arch) -> &'static MachineDesc {
    match arch {
        Arch::Sm70 => &VOLTA_V100,
        Arch::Sm86 => &AMPERE_A6000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machines_match_arch() {
        assert_eq!(machine_for(Arch::Sm70).name, "V100");
        assert_eq!(machine_for(Arch::Sm86).name, "RTX A6000");
        assert_eq!(machine_for(Arch::Sm70).arch, Arch::Sm70);
    }

    #[test]
    fn smem_bandwidth_is_plausible() {
        // V100: 32 banks * 4 B * 1.312 GHz * 80 SMs ≈ 13.4 TB/s.
        let bw = VOLTA_V100.smem_gbs();
        assert!(bw > 10_000.0 && bw < 20_000.0, "{bw}");
    }

    #[test]
    fn ampere_has_more_tensor_throughput() {
        // Compare through the accessor so the values stay runtime reads.
        assert!(AMPERE_A6000.tensor_flops() > VOLTA_V100.tensor_flops());
    }
}
