//! Functional execution of decomposed Graphene kernels.
//!
//! The interpreter executes the *same IR* the CUDA backend prints:
//! blocks and logical thread groups are enumerated explicitly, tensor
//! views resolve to physical scalar addresses via their (symbolic)
//! offsets and layouts, and atomic specs execute their documented
//! semantics — including the collective register-fragment
//! redistributions of `ldmatrix` and the `mma` tensor instructions
//! (paper Figures 1a/1b, Table 2). This validates the data-to-thread
//! mappings that the generated CUDA encodes, element-exactly.
//!
//! Alongside the values, the interpreter accumulates [`Counters`]
//! (bytes per memory level, shared-memory bank conflicts, FLOPs per
//! pipe) which drive the timing model.

use crate::counters::Counters;
use crate::plan::KernelPlan;
use crate::run::{execute_plan, ExecMode};
use graphene_ir::atomic::{match_atomic, registry, AtomicSemantics, AtomicSpec};
use graphene_ir::body::{Stmt, SyncScope};
use graphene_ir::printer::render_spec_header;
use graphene_ir::spec::{Spec, SpecKind};
use graphene_ir::tensor::{TensorId, TensorType};
use graphene_ir::{Arch, Kernel, MemSpace, Module};
use std::collections::HashMap;
use std::fmt;

/// Errors during functional execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A kernel parameter buffer is missing or mis-sized.
    BadInput(String),
    /// An undecomposed spec matched no atomic spec.
    NoAtomicMatch(String),
    /// An address fell outside its buffer.
    OutOfBounds {
        /// Description of the access.
        what: String,
        /// The offending address.
        addr: i64,
        /// The buffer length.
        len: usize,
    },
    /// An index expression could not be evaluated.
    Eval(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BadInput(m) => write!(f, "bad input: {m}"),
            ExecError::NoAtomicMatch(s) => write!(f, "spec `{s}` matches no atomic spec"),
            ExecError::OutOfBounds { what, addr, len } => {
                write!(f, "out-of-bounds access: {what} at {addr} (buffer length {len})")
            }
            ExecError::Eval(m) => write!(f, "cannot evaluate index expression: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a functional execution.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Final contents of every global root tensor (params), keyed by id.
    pub globals: HashMap<TensorId, Vec<f32>>,
    /// Profile counters.
    pub counters: Counters,
}

/// Executes a kernel functionally on the given architecture.
///
/// `inputs` maps kernel parameters to their physical buffers (row-major
/// for row-major-layout params). Missing params are zero-initialised.
///
/// The kernel is lowered to a [`crate::plan::KernelPlan`] and
/// interpreted through the compiled engine, with independent CTAs
/// executing concurrently ([`ExecMode::Parallel`]); results and
/// counters are bit-identical to sequential execution.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute(
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<ExecOutcome, ExecError> {
    execute_bound(kernel, arch, inputs, &HashMap::new())
}

/// Like [`execute`], with values for the kernel's *dynamic parameters* —
/// the symbolic dimensions of parametric shapes (paper §3.4) that become
/// integer kernel arguments during code generation.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_bound(
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<TensorId, Vec<f32>>,
    bindings: &HashMap<String, i64>,
) -> Result<ExecOutcome, ExecError> {
    execute_with(kernel, arch, inputs, bindings, ExecMode::Parallel)
}

/// Like [`execute_bound`], with an explicit [`ExecMode`] selecting
/// sequential or parallel CTA interpretation.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_with(
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<TensorId, Vec<f32>>,
    bindings: &HashMap<String, i64>,
    mode: ExecMode,
) -> Result<ExecOutcome, ExecError> {
    let plan = KernelPlan::compile(kernel, arch)?;
    execute_plan(&plan, inputs, bindings, mode)
}

/// Executes a kernel through the original statement-tree interpreter
/// (no compiled plans, sequential CTAs). Retained as the reference for
/// the golden equivalence tests and as the pre-optimization baseline
/// the interpreter benchmarks measure speedup against.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_reference(
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<ExecOutcome, ExecError> {
    execute_reference_bound(kernel, arch, inputs, &HashMap::new())
}

/// Like [`execute_reference`], with dynamic-parameter bindings.
///
/// # Errors
///
/// See [`ExecError`].
pub fn execute_reference_bound(
    kernel: &Kernel,
    arch: Arch,
    inputs: &HashMap<TensorId, Vec<f32>>,
    bindings: &HashMap<String, i64>,
) -> Result<ExecOutcome, ExecError> {
    let mut m = Interp::new(kernel, arch, inputs)?;
    m.bindings = bindings.clone();
    m.run()?;
    Ok(ExecOutcome { globals: m.global, counters: m.counters })
}

/// Enumerates a view's scalar offsets (relative to the view's base
/// offset) in *value order* — delegates to
/// [`TensorType::scalar_offsets`], the shared definition codegen uses
/// too.
pub fn rel_offsets(ty: &TensorType) -> Vec<i64> {
    ty.scalar_offsets()
}

/// Per-lane resolved operand addresses: `(inputs, outputs)`, each a
/// `(root tensor, scalar addresses)` list.
type LaneAddrs = (Vec<(TensorId, Vec<i64>)>, Vec<(TensorId, Vec<i64>)>);

struct Interp<'k> {
    kernel: &'k Kernel,
    module: &'k Module,
    registry: Vec<AtomicSpec>,
    global: HashMap<TensorId, Vec<f32>>,
    shared: HashMap<TensorId, Vec<f32>>,
    regs: HashMap<(TensorId, i64), Vec<f32>>,
    counters: Counters,
    block_threads: i64,
    /// Thread-dependent predicates currently in scope: specs filter their
    /// lanes by these (partial-tile predication, paper §3.4).
    guards: Vec<graphene_ir::body::Predicate>,
    /// Values bound to dynamic (symbolic) kernel parameters.
    bindings: HashMap<String, i64>,
}

/// Buffer length for a root tensor: its cosize, rounded up to a swizzle
/// period so swizzled addresses stay in range.
fn root_len(ty: &TensorType) -> usize {
    let mut n = ty.layout.cosize() * ty.elem.scalar_count();
    if !ty.swizzle.is_identity() {
        let p = ty.swizzle.period();
        n = (n + p - 1) / p * p;
    }
    n as usize
}

impl<'k> Interp<'k> {
    fn new(
        kernel: &'k Kernel,
        arch: Arch,
        inputs: &HashMap<TensorId, Vec<f32>>,
    ) -> Result<Self, ExecError> {
        let module = &kernel.module;
        let mut global = HashMap::new();
        for &p in &kernel.params {
            let want = root_len(&module[p].ty);
            let buf = match inputs.get(&p) {
                Some(b) => {
                    if b.len() != want {
                        return Err(ExecError::BadInput(format!(
                            "param %{} expects {} scalars, got {}",
                            module[p].name,
                            want,
                            b.len()
                        )));
                    }
                    b.clone()
                }
                None => vec![0.0; want],
            };
            global.insert(p, buf);
        }
        Ok(Interp {
            kernel,
            module,
            registry: registry(arch),
            global,
            shared: HashMap::new(),
            regs: HashMap::new(),
            counters: Counters::default(),
            block_threads: kernel.block_size(),
            guards: Vec::new(),
            bindings: HashMap::new(),
        })
    }

    fn run(&mut self) -> Result<(), ExecError> {
        // DRAM footprint: params read at least once / written once.
        for b in 0..self.kernel.grid_size() {
            self.shared.clear();
            self.regs.clear();
            let mut env: HashMap<String, i64> = self.bindings.clone();
            env.insert("blockIdx.x".into(), b);
            let stmts = &self.kernel.body.stmts;
            self.exec_stmts(stmts, &mut env)?;
        }
        self.finalize_unique_traffic();
        Ok(())
    }

    fn finalize_unique_traffic(&mut self) {
        // Unique DRAM footprint: every param read counts once; written
        // params count once for writes. Determined from spec usage.
        let mut read = 0u64;
        let mut written = 0u64;
        let mut reads: std::collections::HashSet<TensorId> = Default::default();
        let mut writes: std::collections::HashSet<TensorId> = Default::default();
        self.kernel.body.visit(&mut |s| {
            if let Stmt::Spec(spec) = s {
                for &i in &spec.ins {
                    let root = self.module.root_of(i);
                    if self.module[root].mem == MemSpace::Global {
                        reads.insert(root);
                    }
                }
                for &o in &spec.outs {
                    let root = self.module.root_of(o);
                    if self.module[root].mem == MemSpace::Global {
                        writes.insert(root);
                    }
                }
            }
        });
        for r in reads {
            read += self.module[r].ty.bytes();
        }
        for w in writes {
            written += self.module[w].ty.bytes();
        }
        self.counters.unique_global_read_bytes = read;
        self.counters.unique_global_write_bytes = written;
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, i64>,
    ) -> Result<(), ExecError> {
        for s in stmts {
            self.exec_stmt(s, env)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut HashMap<String, i64>) -> Result<(), ExecError> {
        match stmt {
            Stmt::Tile { .. }
            | Stmt::Index { .. }
            | Stmt::ThreadTile { .. }
            | Stmt::ThreadReshape { .. }
            | Stmt::Comment(_) => Ok(()),

            Stmt::Alloc { tensor } => {
                let d = &self.module[*tensor];
                let len = root_len(&d.ty);
                match d.mem {
                    MemSpace::Shared => {
                        self.shared.insert(*tensor, vec![0.0; len]);
                    }
                    MemSpace::Register => {
                        for t in 0..self.block_threads {
                            self.regs.insert((*tensor, t), vec![0.0; len]);
                        }
                    }
                    MemSpace::Global => {
                        return Err(ExecError::BadInput(
                            "in-kernel global allocation unsupported".into(),
                        ))
                    }
                }
                Ok(())
            }

            Stmt::For { var, extent, body, .. } => {
                for i in 0..*extent {
                    env.insert(var.clone(), i);
                    self.exec_stmts(body, env)?;
                }
                env.remove(var);
                Ok(())
            }

            Stmt::If { cond, then } => {
                let thread_dependent = cond
                    .lhs
                    .free_vars()
                    .iter()
                    .chain(cond.rhs.free_vars().iter())
                    .any(|v| v == "threadIdx.x");
                if thread_dependent {
                    // Per-thread guard: push it; specs inside filter their
                    // lanes (partial-tile predication, paper §3.4).
                    self.guards.push(cond.clone());
                    let r = self.exec_stmts(then, env);
                    self.guards.pop();
                    r
                } else {
                    let l = cond.lhs.eval(env).map_err(|e| ExecError::Eval(e.to_string()))?;
                    let r = cond.rhs.eval(env).map_err(|e| ExecError::Eval(e.to_string()))?;
                    if l < r {
                        self.exec_stmts(then, env)?;
                    }
                    Ok(())
                }
            }

            Stmt::Sync(SyncScope::Block) => {
                self.counters.syncs += 1;
                Ok(())
            }
            Stmt::Sync(SyncScope::Warp) => Ok(()),

            Stmt::Spec(spec) => self.exec_spec(spec, env),
        }
    }

    fn exec_spec(&mut self, spec: &Spec, env: &mut HashMap<String, i64>) -> Result<(), ExecError> {
        if let Some(body) = &spec.body {
            let stmts = body.stmts.clone();
            return self.exec_stmts(&stmts, env);
        }
        let atomic = match_atomic(spec, self.module, &self.registry)
            .ok_or_else(|| ExecError::NoAtomicMatch(render_spec_header(self.module, spec)))?
            .clone();

        let exec = *spec.exec.last().expect("spec has an execution config");
        let tt = &self.module[exec];
        let (num_groups, group_size) = (tt.num_groups(), tt.group_size());
        let group_layout = tt.group.clone();
        let local_layout = tt.local.clone();

        if group_size == 1 {
            // Per-thread instruction: batch lanes into warps so
            // shared-memory bank conflicts are accounted per warp, as the
            // hardware serialises them. Threads failing an active guard
            // predicate are masked off (predication, paper §3.4).
            let ids: Vec<i64> = (0..num_groups)
                .map(|g| group_layout.value(g))
                .filter(|&t| self.lane_active(t, env))
                .collect();
            for chunk in ids.chunks(32) {
                if !chunk.is_empty() {
                    self.exec_group(spec, &atomic, chunk, env)?;
                }
            }
        } else {
            for g in 0..num_groups {
                let base = group_layout.value(g);
                let lanes: Vec<i64> =
                    (0..group_size).map(|j| base + local_layout.value(j)).collect();
                let active = lanes.iter().filter(|&&t| self.lane_active(t, env)).count();
                if active == 0 {
                    continue;
                }
                if active != lanes.len() {
                    return Err(ExecError::Eval(format!(
                        "collective spec under a divergent guard: {} of {} lanes active",
                        active,
                        lanes.len()
                    )));
                }
                self.exec_group(spec, &atomic, &lanes, env)?;
            }
        }
        Ok(())
    }

    /// Does thread `t` pass every active guard predicate?
    fn lane_active(&self, t: i64, env: &HashMap<String, i64>) -> bool {
        if self.guards.is_empty() {
            return true;
        }
        let mut env = env.clone();
        env.insert("threadIdx.x".into(), t);
        self.guards.iter().all(|p| match (p.lhs.eval(&env), p.rhs.eval(&env)) {
            (Ok(l), Ok(r)) => l < r,
            _ => false,
        })
    }

    /// Physical scalar addresses of a view for a fixed thread env.
    fn addrs(
        &self,
        id: TensorId,
        env: &HashMap<String, i64>,
    ) -> Result<(TensorId, Vec<i64>), ExecError> {
        let d = &self.module[id];
        let root_id = self.module.root_of(id);
        let root_ty = &self.module[root_id].ty;
        let base = d.offset.eval(env).map_err(|e| ExecError::Eval(e.to_string()))?;
        let sw = root_ty.swizzle;
        let offs = rel_offsets(&d.ty);
        let out = offs
            .into_iter()
            .map(|o| if sw.is_identity() { base + o } else { sw.apply(base + o) })
            .collect();
        Ok((root_id, out))
    }

    fn read(
        &mut self,
        root: TensorId,
        addr: i64,
        thread: i64,
        what: &str,
    ) -> Result<f32, ExecError> {
        let mem = self.module[root].mem;
        let buf: &Vec<f32> = match mem {
            MemSpace::Global => self.global.get(&root),
            MemSpace::Shared => self.shared.get(&root),
            MemSpace::Register => self.regs.get(&(root, thread)),
        }
        .ok_or_else(|| ExecError::BadInput(format!("unallocated tensor in {what}")))?;
        if addr < 0 || addr as usize >= buf.len() {
            return Err(ExecError::OutOfBounds { what: what.into(), addr, len: buf.len() });
        }
        Ok(buf[addr as usize])
    }

    fn write(
        &mut self,
        root: TensorId,
        addr: i64,
        thread: i64,
        v: f32,
        what: &str,
    ) -> Result<(), ExecError> {
        let mem = self.module[root].mem;
        let buf: &mut Vec<f32> = match mem {
            MemSpace::Global => self.global.get_mut(&root),
            MemSpace::Shared => self.shared.get_mut(&root),
            MemSpace::Register => self.regs.get_mut(&(root, thread)),
        }
        .ok_or_else(|| ExecError::BadInput(format!("unallocated tensor in {what}")))?;
        if addr < 0 || addr as usize >= buf.len() {
            return Err(ExecError::OutOfBounds { what: what.into(), addr, len: buf.len() });
        }
        buf[addr as usize] = v;
        Ok(())
    }

    /// Accounts the traffic of one per-lane access batch to a memory
    /// space, including shared-memory bank conflicts. `per_lane` holds
    /// each lane's addresses (same length per lane), borrowed from the
    /// resolved lane addresses rather than copied.
    fn account(&mut self, root: TensorId, per_lane: &[&[i64]], is_read: bool) {
        let d = &self.module[root];
        let bytes_per = d.ty.scalar_type().bytes();
        let total: u64 = per_lane.iter().map(|a| a.len() as u64).sum::<u64>() * bytes_per;
        match d.mem {
            MemSpace::Global => {
                if is_read {
                    self.counters.global_read_bytes += total;
                } else {
                    self.counters.global_write_bytes += total;
                }
            }
            MemSpace::Shared => {
                if is_read {
                    self.counters.smem_read_bytes += total;
                } else {
                    self.counters.smem_write_bytes += total;
                }
                // Bank conflicts over the whole warp access: each bank
                // serves one distinct 4-byte word per cycle, so the
                // access takes max-per-bank-distinct-words cycles; the
                // conflict-free ideal is ceil(distinct words / 32).
                let mut per_bank: HashMap<i64, std::collections::HashSet<i64>> = HashMap::new();
                for lane in per_lane {
                    for &a in *lane {
                        let word = a * bytes_per as i64 / 4;
                        per_bank.entry(word % 32).or_default().insert(word);
                    }
                }
                let distinct: usize = per_bank.values().map(|w| w.len()).sum();
                if distinct > 0 {
                    let ideal = distinct.div_ceil(32) as u64;
                    let cycles = per_bank.values().map(|w| w.len()).max().unwrap_or(1) as u64;
                    self.counters.smem_accesses += ideal;
                    self.counters.smem_transactions += cycles.max(ideal);
                }
            }
            MemSpace::Register => {}
        }
    }

    #[allow(clippy::too_many_lines, clippy::needless_range_loop)]
    fn exec_group(
        &mut self,
        spec: &Spec,
        atomic: &AtomicSpec,
        lanes: &[i64],
        env: &mut HashMap<String, i64>,
    ) -> Result<(), ExecError> {
        self.counters.instructions += if atomic.exec_local.size() > 1 {
            1 // collective: one instruction per group
        } else {
            lanes.len() as u64
        };
        // Resolve per-lane addresses for all operands.
        let mut lane_addrs: Vec<LaneAddrs> = Vec::with_capacity(lanes.len());
        for &t in lanes {
            env.insert("threadIdx.x".into(), t);
            let ins: Result<Vec<_>, _> = spec.ins.iter().map(|&i| self.addrs(i, env)).collect();
            let outs: Result<Vec<_>, _> = spec.outs.iter().map(|&o| self.addrs(o, env)).collect();
            lane_addrs.push((ins?, outs?));
        }
        env.remove("threadIdx.x");

        // Traffic accounting per operand (borrowing the resolved
        // addresses; no per-operand re-clone of every lane's vector).
        for (oi, _) in spec.ins.iter().enumerate() {
            let root = lane_addrs[0].0[oi].0;
            let per_lane: Vec<&[i64]> =
                lane_addrs.iter().map(|(ins, _)| ins[oi].1.as_slice()).collect();
            self.account(root, &per_lane, true);
        }
        for (oi, _) in spec.outs.iter().enumerate() {
            let root = lane_addrs[0].1[oi].0;
            let per_lane: Vec<&[i64]> =
                lane_addrs.iter().map(|(_, outs)| outs[oi].1.as_slice()).collect();
            self.account(root, &per_lane, false);
        }
        if atomic.cost.tensor_core {
            // Tensor instructions execute once per group.
            self.counters.flops_tc += atomic.cost.flops;
        } else {
            // Per-thread instructions execute once per lane.
            self.counters.flops_fma += atomic.cost.flops * lanes.len() as u64;
        }

        use graphene_ir::atomic::fragments as frag;
        match atomic.semantics {
            AtomicSemantics::CopyPerThread
            | AtomicSemantics::UnaryPerThread(_)
            | AtomicSemantics::BinaryPerThread(_)
            | AtomicSemantics::FmaPerThread
            | AtomicSemantics::InitPerThread
            | AtomicSemantics::ReducePerThread(_) => {
                for (li, &t) in lanes.iter().enumerate() {
                    let (ins, outs) = &lane_addrs[li];
                    match atomic.semantics {
                        AtomicSemantics::CopyPerThread => {
                            let (sr, sa) = &ins[0];
                            let (dr, da) = &outs[0];
                            for (s, d) in sa.iter().zip(da) {
                                let v = self.read(*sr, *s, t, "copy src")?;
                                self.write(*dr, *d, t, v, "copy dst")?;
                            }
                        }
                        AtomicSemantics::UnaryPerThread(op) => {
                            let (sr, sa) = &ins[0];
                            let (dr, da) = &outs[0];
                            for (s, d) in sa.iter().zip(da) {
                                let v = self.read(*sr, *s, t, "unary src")?;
                                self.write(*dr, *d, t, op.apply(v as f64) as f32, "unary dst")?;
                            }
                        }
                        AtomicSemantics::BinaryPerThread(op) => {
                            let (ar, aa) = &ins[0];
                            let (br, ba) = &ins[1];
                            let (dr, da) = &outs[0];
                            for i in 0..aa.len() {
                                let x = self.read(*ar, aa[i], t, "binary lhs")?;
                                let y = self.read(*br, ba[i], t, "binary rhs")?;
                                self.write(
                                    *dr,
                                    da[i],
                                    t,
                                    op.apply(x as f64, y as f64) as f32,
                                    "binary dst",
                                )?;
                            }
                        }
                        AtomicSemantics::FmaPerThread => {
                            let (ar, aa) = &ins[0];
                            let (br, ba) = &ins[1];
                            let (cr, ca) = &outs[0];
                            for i in 0..aa.len() {
                                let a = self.read(*ar, aa[i], t, "fma a")?;
                                let b = self.read(*br, ba[i], t, "fma b")?;
                                let c = self.read(*cr, ca[i], t, "fma c")?;
                                self.write(*cr, ca[i], t, a * b + c, "fma c")?;
                            }
                        }
                        AtomicSemantics::InitPerThread => {
                            let SpecKind::Init { value } = spec.kind else {
                                unreachable!("init semantics require init kind")
                            };
                            let (dr, da) = &outs[0];
                            for &d in da {
                                self.write(*dr, d, t, value as f32, "init dst")?;
                            }
                        }
                        AtomicSemantics::ReducePerThread(op) => {
                            let (sr, sa) = &ins[0];
                            let (dr, da) = &outs[0];
                            let mut acc = op.identity();
                            for &s in sa {
                                acc = op.combine(acc, self.read(*sr, s, t, "reduce src")? as f64);
                            }
                            self.write(*dr, da[0], t, acc as f32, "reduce dst")?;
                        }
                        _ => unreachable!(),
                    }
                }
            }

            AtomicSemantics::LdMatrix { num, trans } => {
                let num = num as usize;
                // Gather the matrices: lanes 8p..8p+8 supply the 8 rows
                // (or columns, pre-transposition the source view is still
                // a row) of matrix p.
                let (src_root, _) = lane_addrs[0].0[0];
                let mut mats = vec![[[0.0f32; 8]; 8]; num];
                for p in 0..num {
                    for r in 0..8 {
                        let li = p * 8 + r;
                        let (ins, _) = &lane_addrs[li];
                        let (_, sa) = &ins[0];
                        for c in 0..8 {
                            mats[p][r][c] =
                                self.read(src_root, sa[c], lanes[li], "ldmatrix src")?;
                        }
                    }
                }
                // Scatter fragments: lane l, pair p, element c.
                for (li, &t) in lanes.iter().enumerate() {
                    let (_, outs) = &lane_addrs[li];
                    let (dr, da) = &outs[0];
                    for p in 0..num {
                        for c in 0..2 {
                            let (row, col) = if trans {
                                (2 * (li % 4) + c, li / 4)
                            } else {
                                (li / 4, 2 * (li % 4) + c)
                            };
                            let v = mats[p][row][col];
                            self.write(*dr, da[2 * p + c], t, v, "ldmatrix dst")?;
                        }
                    }
                }
            }

            AtomicSemantics::MmaAmpere16816 => {
                let (ar, _) = lane_addrs[0].0[0];
                let (br, _) = lane_addrs[0].0[1];
                let (cr, _) = lane_addrs[0].1[0];
                let mut a = [[0.0f32; 16]; 16];
                let mut b = [[0.0f32; 8]; 16];
                let mut c = [[0.0f32; 8]; 16];
                for (li, &t) in lanes.iter().enumerate() {
                    let (ins, outs) = &lane_addrs[li];
                    for v in 0..8 {
                        let (m_, k) = frag::mma_16816_a(li, v);
                        a[m_][k] = self.read(ar, ins[0].1[v], t, "mma a")?;
                    }
                    for v in 0..4 {
                        let (k, n) = frag::mma_16816_b(li, v);
                        b[k][n] = self.read(br, ins[1].1[v], t, "mma b")?;
                    }
                    for v in 0..4 {
                        let (m_, n) = frag::mma_16816_c(li, v);
                        c[m_][n] = self.read(cr, outs[0].1[v], t, "mma c")?;
                    }
                }
                let mut d = c;
                for m_ in 0..16 {
                    for n in 0..8 {
                        let mut acc = 0.0f32;
                        for k in 0..16 {
                            acc += a[m_][k] * b[k][n];
                        }
                        d[m_][n] += acc;
                    }
                }
                for (li, &t) in lanes.iter().enumerate() {
                    let (_, outs) = &lane_addrs[li];
                    for v in 0..4 {
                        let (m_, n) = frag::mma_16816_c(li, v);
                        self.write(cr, outs[0].1[v], t, d[m_][n], "mma d")?;
                    }
                }
            }

            AtomicSemantics::MmaVolta884 => {
                let (ar, _) = lane_addrs[0].0[0];
                let (br, _) = lane_addrs[0].0[1];
                let (cr, _) = lane_addrs[0].1[0];
                let mut a = [[0.0f32; 4]; 8];
                let mut b = [[0.0f32; 8]; 4];
                let mut c = [[0.0f32; 8]; 8];
                for (li, &t) in lanes.iter().enumerate() {
                    let (ins, outs) = &lane_addrs[li];
                    for v in 0..4 {
                        let (m_, k) = frag::mma_884_a(li, v);
                        a[m_][k] = self.read(ar, ins[0].1[v], t, "mma884 a")?;
                        let (k2, n) = frag::mma_884_b(li, v);
                        b[k2][n] = self.read(br, ins[1].1[v], t, "mma884 b")?;
                    }
                    for v in 0..8 {
                        let (m_, n) = frag::mma_884_c(li, v);
                        c[m_][n] = self.read(cr, outs[0].1[v], t, "mma884 c")?;
                    }
                }
                for m_ in 0..8 {
                    for n in 0..8 {
                        let mut acc = 0.0f32;
                        for k in 0..4 {
                            acc += a[m_][k] * b[k][n];
                        }
                        c[m_][n] += acc;
                    }
                }
                for (li, &t) in lanes.iter().enumerate() {
                    let (_, outs) = &lane_addrs[li];
                    for v in 0..8 {
                        let (m_, n) = frag::mma_884_c(li, v);
                        self.write(cr, outs[0].1[v], t, c[m_][n], "mma884 d")?;
                    }
                }
            }

            AtomicSemantics::ShflBfly => {
                let SpecKind::Shfl { mask } = spec.kind else {
                    unreachable!("shfl semantics require shfl kind")
                };
                let (sr, _) = lane_addrs[0].0[0];
                let (dr, _) = lane_addrs[0].1[0];
                let vals: Result<Vec<f32>, _> = lanes
                    .iter()
                    .enumerate()
                    .map(|(li, &t)| self.read(sr, lane_addrs[li].0[0].1[0], t, "shfl src"))
                    .collect();
                let vals = vals?;
                for (li, &t) in lanes.iter().enumerate() {
                    let peer = li ^ mask as usize;
                    let v = vals[peer % vals.len()];
                    self.write(dr, lane_addrs[li].1[0].1[0], t, v, "shfl dst")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::builder::KernelBuilder;
    use graphene_ir::ScalarType;
    use graphene_layout::Layout;
    use graphene_sym::IntExpr;

    /// Each thread copies one element from global to global via a
    /// register: validates addressing, counters, and value flow.
    #[test]
    fn per_thread_copy_roundtrip() {
        let mut kb = KernelBuilder::new("copy", &[1], &[32]);
        let src = kb.param("src", &[32], ScalarType::F32);
        let dst = kb.param("dst", &[32], ScalarType::F32);
        let block = kb.block();
        let tid = kb.module()[block].group_coords()[0].clone();
        let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        let s_elem = kb.index(src, std::slice::from_ref(&tid));
        let d_elem = kb.index(dst, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![s_elem], vec![r]);
        let ts2 = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts2], vec![r], vec![d_elem]);
        let kernel = kb.build();

        let data: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let mut inputs = HashMap::new();
        inputs.insert(src, data.clone());
        let out = execute(&kernel, Arch::Sm86, &inputs).expect("exec");
        assert_eq!(out.globals[&dst], data);
        assert_eq!(out.counters.global_read_bytes, 32 * 4);
        assert_eq!(out.counters.global_write_bytes, 32 * 4);
        assert_eq!(out.counters.instructions, 64);
    }

    /// Strided shared-memory column access produces bank conflicts; the
    /// same access through a unit-stride row does not.
    #[test]
    fn bank_conflicts_detected() {
        // 32 threads write a 32x32 f32 smem tile column-wise: every lane
        // hits bank 0 -> 32-way conflict.
        let build = |column: bool| {
            let mut kb = KernelBuilder::new("smem", &[1], &[32]);
            let block = kb.block();
            let smem = kb.alloc_shared("s", TensorType::row_major(&[32, 32], ScalarType::F32));
            let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
            let tid = kb.module()[block].group_coords()[0].clone();
            let elem = if column {
                kb.index(smem, &[tid, IntExpr::zero()])
            } else {
                kb.index(smem, &[IntExpr::zero(), tid])
            };
            // One warp-wide collective move: 32 lanes, one scalar each.
            // Use per-thread move; conflicts counted per warp batch.
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::Move, vec![ts], vec![r], vec![elem]);
            kb.build()
        };
        let col = execute(&build(true), Arch::Sm86, &HashMap::new()).unwrap();
        let row = execute(&build(false), Arch::Sm86, &HashMap::new()).unwrap();
        assert!(col.counters.conflict_factor() > row.counters.conflict_factor());
        assert_eq!(row.counters.conflict_factor(), 1.0);
    }
}
