//! Workspace planning: liveness analysis + interval-graph buffer
//! aliasing for multi-kernel graphs.
//!
//! A lowered graph produces one intermediate activation per node. The
//! naive execution strategy allocates each intermediate its own fresh
//! buffer and keeps all of them alive for the whole run — what a
//! framework does when every kernel launch `cudaMalloc`s its output.
//! This module plans a single shared **arena** instead: each
//! intermediate's live interval is computed from the node order (it is
//! born at the node that writes it and dies after the last node that
//! reads it), and intervals that never overlap alias the same arena
//! bytes. The packing is the classic first-fit offset assignment over
//! the interval graph — the same greedy that static ML-compiler
//! workspace planners use, and exact for the chain-shaped graphs the
//! paper evaluates (at most a handful of temps are ever live at once).
//!
//! The planner is pure data → data: it knows nothing about kernels or
//! plans, only temp lengths and per-node read/write sets, which keeps
//! it independently testable. [`crate::graph_exec`] feeds it a lowered
//! [`ExecGraph`](crate::graph_exec::ExecGraph) and binds kernel
//! parameters to the planned arena slices.

/// The temps one graph node touches: indices into the graph's temp
/// table.
#[derive(Debug, Clone, Default)]
pub struct NodeUse {
    /// Temps the node's kernel reads.
    pub reads: Vec<usize>,
    /// Temps the node's kernel writes.
    pub writes: Vec<usize>,
}

/// One temp's planned placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempPlan {
    /// Arena offset, in scalars.
    pub offset: usize,
    /// Live interval `[def, last_use]` over node indices (inclusive);
    /// graph outputs extend to one past the last node.
    pub live: (usize, usize),
}

/// A planned workspace arena for one lowered graph.
#[derive(Debug, Clone)]
pub struct WorkspacePlan {
    /// Per-temp placement, aligned with the graph's temp table.
    pub temps: Vec<TempPlan>,
    /// Arena length in scalars (the planned peak).
    pub arena_scalars: usize,
    /// Sum of all temp lengths — the per-kernel fresh-allocation peak
    /// the arena replaces.
    pub naive_scalars: usize,
}

impl WorkspacePlan {
    /// Planned peak workspace in bytes (f32 scalars).
    pub fn arena_bytes(&self) -> usize {
        self.arena_scalars * 4
    }

    /// Naive (fresh-allocation) peak workspace in bytes.
    pub fn naive_bytes(&self) -> usize {
        self.naive_scalars * 4
    }

    /// Fraction of the naive peak the plan saves, in `[0, 1]`.
    pub fn saving(&self) -> f64 {
        if self.naive_scalars == 0 {
            0.0
        } else {
            1.0 - self.arena_scalars as f64 / self.naive_scalars as f64
        }
    }

    /// The arena slice range of temp `t`, given its scalar length.
    pub fn slice(&self, t: usize, len: usize) -> std::ops::Range<usize> {
        let o = self.temps[t].offset;
        o..o + len
    }
}

/// Plans the workspace arena for a graph of `temp_lens.len()` temps
/// executed as the node chain described by `uses` (in execution
/// order). Temps listed in `outputs` are graph results and stay live
/// to the end.
///
/// Every temp must be used by at least one node; an unused temp gets a
/// degenerate interval at node 0 and still receives arena space.
pub fn plan_workspace(temp_lens: &[usize], uses: &[NodeUse], outputs: &[usize]) -> WorkspacePlan {
    let n_nodes = uses.len();
    // Liveness: def = first touching node, last_use = last touching
    // node (a write alone keeps the buffer reserved through its node).
    let mut live: Vec<(usize, usize)> = vec![(usize::MAX, 0); temp_lens.len()];
    for (node, u) in uses.iter().enumerate() {
        for &t in u.reads.iter().chain(&u.writes) {
            let (def, last) = &mut live[t];
            *def = (*def).min(node);
            *last = (*last).max(node);
        }
    }
    for &t in outputs {
        live[t].1 = n_nodes; // one past the last node: live to the end
    }
    for l in &mut live {
        if l.0 == usize::MAX {
            *l = (0, 0);
        }
    }

    // First-fit packing in def order (FIFO over the chain). For each
    // temp, collect the occupied ranges of already-placed temps whose
    // intervals overlap, and take the lowest gap that fits.
    let mut order: Vec<usize> = (0..temp_lens.len()).collect();
    order.sort_by_key(|&t| (live[t].0, std::cmp::Reverse(temp_lens[t])));
    let mut offsets = vec![0usize; temp_lens.len()];
    let mut placed: Vec<usize> = Vec::new();
    let mut arena = 0usize;
    for &t in &order {
        let (def, last) = live[t];
        let mut busy: Vec<(usize, usize)> = placed
            .iter()
            .filter(|&&p| {
                let (pd, pl) = live[p];
                pd <= last && def <= pl
            })
            .map(|&p| (offsets[p], offsets[p] + temp_lens[p]))
            .collect();
        busy.sort_unstable();
        let mut at = 0usize;
        for (start, end) in busy {
            if at + temp_lens[t] <= start {
                break;
            }
            at = at.max(end);
        }
        offsets[t] = at;
        arena = arena.max(at + temp_lens[t]);
        placed.push(t);
    }

    WorkspacePlan {
        temps: (0..temp_lens.len())
            .map(|t| TempPlan { offset: offsets[t], live: live[t] })
            .collect(),
        arena_scalars: arena,
        naive_scalars: temp_lens.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Vec<NodeUse> {
        // Node 0 writes temp 0 from an external input; node i reads
        // temp i-1 and writes temp i.
        (0..n)
            .map(|i| NodeUse { reads: if i == 0 { vec![] } else { vec![i - 1] }, writes: vec![i] })
            .collect()
    }

    #[test]
    fn chain_aliases_to_two_buffers() {
        // Equal-size chain: at any node only (input, output) are live,
        // so the arena is exactly two buffers regardless of depth.
        let lens = vec![100; 6];
        let plan = plan_workspace(&lens, &chain(6), &[5]);
        assert_eq!(plan.naive_scalars, 600);
        assert_eq!(plan.arena_scalars, 200);
        assert!(plan.saving() > 0.6);
        // Adjacent temps must not alias; strided reuse is expected.
        for t in 1..6 {
            assert_ne!(plan.temps[t].offset, plan.temps[t - 1].offset, "temp {t}");
        }
    }

    #[test]
    fn outputs_stay_live_to_the_end() {
        let lens = vec![10; 3];
        // All three temps are outputs: nothing may alias.
        let plan = plan_workspace(&lens, &chain(3), &[0, 1, 2]);
        assert_eq!(plan.arena_scalars, 30);
        assert_eq!(plan.saving(), 0.0);
    }

    #[test]
    fn disjoint_intervals_share_offsets() {
        // temp 0 dies at node 1; temp 2 is born at node 2 → same slot.
        let lens = vec![50, 50, 50];
        let plan = plan_workspace(&lens, &chain(3), &[2]);
        assert_eq!(plan.temps[2].offset, plan.temps[0].offset);
        assert_eq!(plan.arena_scalars, 100);
    }

    #[test]
    fn mixed_sizes_pack_first_fit() {
        // A large temp in the middle of a chain of small ones: the
        // arena peaks at large + one neighbour, not the naive sum.
        let lens = vec![10, 1000, 10, 10];
        let plan = plan_workspace(&lens, &chain(4), &[3]);
        assert!(plan.arena_scalars <= 1020, "arena {}", plan.arena_scalars);
        assert_eq!(plan.naive_scalars, 1030);
    }

    #[test]
    fn fan_out_reader_extends_liveness() {
        // temp 0 is read by nodes 1 and 3 → it must not alias temp 1
        // or temp 2, which are live in between.
        let lens = vec![10, 10, 10, 10];
        let uses = vec![
            NodeUse { reads: vec![], writes: vec![0] },
            NodeUse { reads: vec![0], writes: vec![1] },
            NodeUse { reads: vec![1], writes: vec![2] },
            NodeUse { reads: vec![0, 2], writes: vec![3] },
        ];
        let plan = plan_workspace(&lens, &uses, &[3]);
        let r0 = plan.slice(0, 10);
        for t in 1..3 {
            let rt = plan.slice(t, 10);
            assert!(r0.end <= rt.start || rt.end <= r0.start, "temp {t} aliases temp 0");
        }
    }

    #[test]
    fn unused_temp_still_gets_space() {
        let lens = vec![10, 10];
        let uses = vec![NodeUse { reads: vec![], writes: vec![0] }];
        let plan = plan_workspace(&lens, &uses, &[0]);
        assert!(plan.arena_scalars >= 10);
        assert_eq!(plan.temps[1].live, (0, 0));
    }
}
