//! Trace optimization: lower a recorded [`Trace`] into an [`OptTrace`]
//! whose address arrays are compact affine descriptors and whose step
//! list has been peephole-cleaned.
//!
//! PR 7's replay executes every step as a per-element gather/scatter
//! through the shared `u32` address arena, even though most recorded
//! address runs in the paper's kernels are *affine* — contiguous or
//! constant-stride, often with a regular per-lane (2D) structure. That
//! is not an accident: under the F₂/linear-layout view of addresses,
//! every non-swizzled operand of these kernels is a linear function of
//! `(blockIdx, threadIdx, loop vars)`, so its recorded address slice is
//! an arithmetic progression (or a lane-major grid of them). This pass
//! runs **once at record time** and:
//!
//! 1. **Classifies** each operand slice by scanning the arena:
//!    [`Span::Affine`] `(base, stride)` for 1D progressions,
//!    [`Span::Lanes`] `(base, lane, stride, per)` for lane-major 2D
//!    grids (register files flattened to `thread*len+addr`, strided
//!    global loads, mma fragments), and [`Span::Gather`] for the
//!    residue (e.g. XOR-swizzled shared memory). Classified slices are
//!    dropped from the arena, shrinking the resident trace — and
//!    therefore the `TraceCache`/`GraphTraceCache` footprint.
//! 2. **Fuses** adjacent same-shape steps whose descriptors chain
//!    (`base₂ = base₁ + n₁·stride`), within a block only.
//! 3. **Eliminates dead fills**: a recorded `Alloc` zero-fill is
//!    dropped when the first subsequent touch of that buffer inside the
//!    same block is a write that fully overwrites it.
//!
//! The optimized replay ([`crate::replay::replay_opt`]) then runs
//! contiguous copies as `copy_from_slice`, contiguous element-wise ops
//! as tight auto-vectorizable slice loops, strided/lane spans as
//! stepped loops with no arena traffic, and residual gathers exactly as
//! before — bit-identical to the unoptimized replay by construction
//! (element order and `f64` op semantics are preserved).

use crate::counters::Counters;
use crate::exec::ExecError;
use crate::plan::KernelPlan;
use crate::trace::{record_trace, TOp, Trace};
use graphene_ir::ops::{BinaryOp, ReduceOp, UnaryOp};
use graphene_ir::tensor::TensorId;
use std::collections::HashMap;

/// A classified operand address slice: the compact replacement for a
/// run of arena addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Span {
    /// `addr(i) = base + i·stride`. Contiguous is `stride == 1`,
    /// broadcast is `stride == 0`.
    Affine { base: u32, stride: i32 },
    /// Lane-major 2D progression over `per`-element rows:
    /// `addr(i) = base + (i / per)·lane + (i % per)·stride`.
    Lanes { base: u32, lane: i32, stride: i32, per: u32 },
    /// Residual irregular slice: `addr(i) = gather[start + i]` in the
    /// [`OptTrace::gather`] arena.
    Gather { start: u32 },
}

impl Span {
    /// The address of element `i`; `g` is the residual gather arena.
    #[inline]
    pub(crate) fn at(&self, g: &[u32], i: usize) -> usize {
        match *self {
            Span::Affine { base, stride } => {
                (i64::from(base) + i as i64 * i64::from(stride)) as usize
            }
            Span::Lanes { base, lane, stride, per } => {
                let (li, j) = (i / per as usize, i % per as usize);
                (i64::from(base) + li as i64 * i64::from(lane) + j as i64 * i64::from(stride))
                    as usize
            }
            Span::Gather { start } => g[start as usize + i] as usize,
        }
    }

    /// Per-lane accessor for lane-structured (collective) operands:
    /// lane `li` of a span recorded with `per` addresses per lane.
    #[inline]
    pub(crate) fn lane<'g>(&self, g: &'g [u32], li: usize, per: usize) -> LaneRef<'g> {
        match *self {
            Span::Affine { base, stride } => LaneRef::Aff {
                start: i64::from(base) + (li * per) as i64 * i64::from(stride),
                step: i64::from(stride),
            },
            Span::Lanes { base, lane, stride, .. } => LaneRef::Aff {
                start: i64::from(base) + li as i64 * i64::from(lane),
                step: i64::from(stride),
            },
            Span::Gather { start } => {
                let s = start as usize + li * per;
                LaneRef::Gat(&g[s..s + per])
            }
        }
    }
}

/// One lane of a lane-structured operand: an arithmetic progression or
/// a residual gather row.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LaneRef<'g> {
    Aff { start: i64, step: i64 },
    Gat(&'g [u32]),
}

/// One optimized step: mirrors [`TOp`] with arena offsets replaced by
/// classified [`Span`] descriptors.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OTp {
    Fill {
        buf: u32,
    },
    Copy {
        src: u32,
        dst: u32,
        sa: Span,
        da: Span,
        n: u32,
    },
    Unary {
        op: UnaryOp,
        src: u32,
        dst: u32,
        sa: Span,
        da: Span,
        n: u32,
    },
    Binary {
        op: BinaryOp,
        a: u32,
        b: u32,
        dst: u32,
        aa: Span,
        ba: Span,
        da: Span,
        n: u32,
    },
    Fma {
        a: u32,
        b: u32,
        c: u32,
        aa: Span,
        ba: Span,
        ca: Span,
        n: u32,
    },
    Init {
        value: f32,
        dst: u32,
        da: Span,
        n: u32,
    },
    Reduce {
        op: ReduceOp,
        src: u32,
        dst: u32,
        sa: Span,
        da: Span,
        groups: u32,
        per: u32,
    },
    LdMatrix {
        num: u8,
        trans: bool,
        src: u32,
        dst: u32,
        sa: Span,
        sper: u32,
        da: Span,
        dper: u32,
        lanes: u32,
    },
    Mma16816 {
        a: u32,
        b: u32,
        c: u32,
        aa: Span,
        aper: u32,
        ba: Span,
        bper: u32,
        ca: Span,
        cper: u32,
        lanes: u32,
    },
    Mma884 {
        a: u32,
        b: u32,
        c: u32,
        aa: Span,
        aper: u32,
        ba: Span,
        bper: u32,
        ca: Span,
        cper: u32,
        lanes: u32,
    },
    /// Full-warp tensor-core MMA with the fragment shuffle composed
    /// away at optimize time: `am.at(i)` addresses `A[m][k]` at
    /// `i = m*K + k` (row-major), likewise `bm` for `B[k][n]` and `cm`
    /// for the `C[m][n]` accumulator. Replay streams whole matrices
    /// with no per-element lane/fragment arithmetic. `m16` selects
    /// m16n8k16 (true) vs m8n8k4 (false).
    MmaDense {
        m16: bool,
        a: u32,
        b: u32,
        c: u32,
        am: Span,
        bm: Span,
        cm: Span,
    },
    Shfl {
        mask: u32,
        src: u32,
        dst: u32,
        sa: Span,
        da: Span,
        lanes: u32,
    },
}

/// What the optimizer did to one trace — surfaced in CLI replay output,
/// the serve daemon's `stats`, and BENCH_PR10.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptStats {
    /// Steps in the unoptimized trace.
    pub steps_before: usize,
    /// Steps after fusion and dead-fill elimination.
    pub steps_after: usize,
    /// Scalar addresses in the unoptimized arena.
    pub addrs_before: usize,
    /// Addresses that stayed irregular (the residual gather arena).
    pub gather_addrs: usize,
    /// Zero-fill steps proven dead and removed.
    pub dead_fills: usize,
    /// Steps merged into a predecessor by adjacent-step fusion.
    pub fused_steps: usize,
    /// Resident payload bytes of the unoptimized trace.
    pub bytes_before: usize,
    /// Resident payload bytes of the optimized trace.
    pub bytes_after: usize,
}

impl OptStats {
    /// Fraction of recorded addresses replaced by affine descriptors
    /// (1.0 when the trace recorded no addresses at all).
    #[must_use]
    pub fn coalesced_fraction(&self) -> f64 {
        if self.addrs_before == 0 {
            1.0
        } else {
            1.0 - self.gather_addrs as f64 / self.addrs_before as f64
        }
    }

    /// Fraction of resident trace bytes eliminated.
    #[must_use]
    pub fn bytes_saved_fraction(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// An optimized straight-line trace: [`Trace`] after classification,
/// fusion and dead-fill elimination. Produced by [`optimize_trace`],
/// executed by [`crate::replay::replay_opt`]; this is what the
/// [`crate::trace::TraceCache`] and graph-trace cache keep resident.
#[derive(Debug)]
pub struct OptTrace {
    pub(crate) steps: Vec<OTp>,
    /// Residual irregular addresses ([`Span::Gather`] targets).
    pub(crate) gather: Vec<u32>,
    pub(crate) blocks: Vec<(u32, u32)>,
    pub(crate) buf_lens: Vec<usize>,
    pub(crate) n_globals: usize,
    pub(crate) params: Vec<(TensorId, String, usize)>,
    pub(crate) counters: Counters,
    stats: OptStats,
}

impl OptTrace {
    /// Number of optimized steps across all blocks.
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of residual gather addresses still held.
    #[must_use]
    pub fn num_addrs(&self) -> usize {
        self.gather.len()
    }

    /// Number of thread blocks in the recorded grid.
    #[must_use]
    pub fn grid_size(&self) -> i64 {
        self.blocks.len() as i64
    }

    /// The profile counters every replay of this trace reports.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// What the optimizer did to this trace.
    #[must_use]
    pub fn stats(&self) -> &OptStats {
        &self.stats
    }

    /// Resident payload bytes: step list, gather arena, block table and
    /// buffer metadata (length-based, so the figure is deterministic).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<OTp>()
            + self.gather.len() * std::mem::size_of::<u32>()
            + self.blocks.len() * std::mem::size_of::<(u32, u32)>()
            + self.buf_lens.len() * std::mem::size_of::<usize>()
            + self
                .params
                .iter()
                .map(|(_, name, _)| std::mem::size_of::<(TensorId, String, usize)>() + name.len())
                .sum::<usize>()
    }
}

/// Classifies a flat (lane-major flattened) address slice, falling back
/// to the residual gather arena.
fn classify_flat(addrs: &[u32], gather: &mut Vec<u32>) -> Span {
    if let Some(s) = affine_1d(addrs) {
        return s;
    }
    if let Some(s) = affine_periodic(addrs) {
        return s;
    }
    push_gather(addrs, gather)
}

/// Flat ops lose their lane structure when the recorder flattens
/// per-thread work lane-major, so an interleaved access pattern (lane
/// `li` touching `col·lanes + li`) reads as a two-level periodic
/// progression. Recover it: the first stride break fixes the row
/// length, then the implied `(rows, per)` grid is verified exactly.
fn affine_periodic(a: &[u32]) -> Option<Span> {
    if a.len() < 4 {
        return None;
    }
    let stride = i64::from(a[1]) - i64::from(a[0]);
    let per = a.windows(2).position(|w| i64::from(w[1]) - i64::from(w[0]) != stride)? + 1;
    if !a.len().is_multiple_of(per) {
        return None;
    }
    affine_2d(a, a.len() / per, per)
}

/// Classifies a lane-structured slice (`lanes` rows of `per`): 1D
/// affine first (it subsumes the 2D form when `lane == per·stride`),
/// then lane-major 2D, then gather.
fn classify_lanes(addrs: &[u32], lanes: usize, per: usize, gather: &mut Vec<u32>) -> Span {
    if let Some(s) = affine_1d(addrs) {
        return s;
    }
    if let Some(s) = affine_2d(addrs, lanes, per) {
        return s;
    }
    push_gather(addrs, gather)
}

fn push_gather(addrs: &[u32], gather: &mut Vec<u32>) -> Span {
    let start = u32::try_from(gather.len()).expect("gather arena exceeds u32 range");
    gather.extend_from_slice(addrs);
    Span::Gather { start }
}

/// `Some(Affine)` iff the whole slice is one arithmetic progression.
fn affine_1d(a: &[u32]) -> Option<Span> {
    let Some((&first, rest)) = a.split_first() else {
        return Some(Span::Affine { base: 0, stride: 0 });
    };
    let stride = rest.first().map_or(0, |&x| i64::from(x) - i64::from(first));
    let stride32 = i32::try_from(stride).ok()?;
    let mut want = i64::from(first);
    for &x in a {
        if i64::from(x) != want {
            return None;
        }
        want += stride;
    }
    Some(Span::Affine { base: first, stride: stride32 })
}

/// `Some(Lanes)` iff the slice is a lane-major 2D progression:
/// `a[li·per + j] = base + li·lane + j·stride`.
fn affine_2d(a: &[u32], lanes: usize, per: usize) -> Option<Span> {
    if lanes * per != a.len() || per == 0 || lanes < 2 || per < 1 {
        return None;
    }
    let base = i64::from(a[0]);
    let stride = if per > 1 { i64::from(a[1]) - base } else { 0 };
    let lane = i64::from(a[per]) - base;
    let (lane32, stride32) = (i32::try_from(lane).ok()?, i32::try_from(stride).ok()?);
    for li in 0..lanes {
        let row = base + li as i64 * lane;
        for j in 0..per {
            if i64::from(a[li * per + j]) != row + j as i64 * stride {
                return None;
            }
        }
    }
    Some(Span::Lanes { base: a[0], lane: lane32, stride: stride32, per: u32::try_from(per).ok()? })
}

/// Whether span `b` continues span `a` after `n` elements — the fusion
/// precondition. Gather spans chain when their arena runs are adjacent
/// (classification appends them in step order, so this is exact).
fn chains(a: Span, b: Span, n: u32) -> bool {
    match (a, b) {
        (Span::Affine { base: b1, stride: s1 }, Span::Affine { base: b2, stride: s2 }) => {
            s1 == s2 && i64::from(b2) == i64::from(b1) + i64::from(n) * i64::from(s1)
        }
        (Span::Gather { start: g1 }, Span::Gather { start: g2 }) => g2 == g1 + n,
        _ => false,
    }
}

/// Tries to merge `next` into `prev` (adjacent steps of one block).
/// Only flat element-wise shapes fuse; collectives keep their lane
/// structure and `Reduce` its group structure.
fn try_fuse(prev: &mut OTp, next: &OTp) -> bool {
    match (prev, next) {
        (
            OTp::Copy { src, dst, sa, da, n },
            OTp::Copy { src: s2, dst: d2, sa: sa2, da: da2, n: n2 },
        ) if src == s2 && dst == d2 && chains(*sa, *sa2, *n) && chains(*da, *da2, *n) => {
            *n += n2;
            true
        }
        (
            OTp::Unary { op, src, dst, sa, da, n },
            OTp::Unary { op: o2, src: s2, dst: d2, sa: sa2, da: da2, n: n2 },
        ) if op == o2
            && src == s2
            && dst == d2
            && chains(*sa, *sa2, *n)
            && chains(*da, *da2, *n) =>
        {
            *n += n2;
            true
        }
        (
            OTp::Binary { op, a, b, dst, aa, ba, da, n },
            OTp::Binary { op: o2, a: a2, b: b2, dst: d2, aa: aa2, ba: ba2, da: da2, n: n2 },
        ) if op == o2
            && a == a2
            && b == b2
            && dst == d2
            && chains(*aa, *aa2, *n)
            && chains(*ba, *ba2, *n)
            && chains(*da, *da2, *n) =>
        {
            *n += n2;
            true
        }
        (
            OTp::Fma { a, b, c, aa, ba, ca, n },
            OTp::Fma { a: a2, b: b2, c: c2, aa: aa2, ba: ba2, ca: ca2, n: n2 },
        ) if a == a2
            && b == b2
            && c == c2
            && chains(*aa, *aa2, *n)
            && chains(*ba, *ba2, *n)
            && chains(*ca, *ca2, *n) =>
        {
            *n += n2;
            true
        }
        (OTp::Init { value, dst, da, n }, OTp::Init { value: v2, dst: d2, da: da2, n: n2 })
            if value.to_bits() == v2.to_bits() && dst == d2 && chains(*da, *da2, *n) =>
        {
            *n += n2;
            true
        }
        _ => false,
    }
}

/// How one step relates to buffer `buf` — the dead-fill query.
enum Touch {
    /// The step does not reference `buf`.
    None,
    /// The step's **first** effect on `buf` is a write that overwrites
    /// the entire buffer without reading it.
    FullOverwrite,
    /// Anything else: a read, a partial write, or a read-modify-write.
    Other,
}

/// Whether `span` writes exactly `[0, len)` left-to-right.
fn covers(span: Span, n: u32, len: usize) -> bool {
    n as usize == len && span == Span::Affine { base: 0, stride: 1 }
}

fn touch(step: &OTp, buf: u32, len: usize) -> Touch {
    let write = |dst: u32, da: Span, n: u32, reads: &[u32]| {
        if reads.contains(&buf) {
            Touch::Other
        } else if dst == buf {
            if covers(da, n, len) {
                Touch::FullOverwrite
            } else {
                Touch::Other
            }
        } else {
            Touch::None
        }
    };
    match *step {
        OTp::Fill { buf: b } => {
            if b == buf {
                Touch::FullOverwrite
            } else {
                Touch::None
            }
        }
        OTp::Copy { src, dst, da, n, .. } => write(dst, da, n, &[src]),
        OTp::Unary { src, dst, da, n, .. } => write(dst, da, n, &[src]),
        OTp::Binary { a, b, dst, da, n, .. } => write(dst, da, n, &[a, b]),
        OTp::Init { dst, da, n, .. } => write(dst, da, n, &[]),
        OTp::Reduce { src, dst, da, groups, .. } => write(dst, da, groups, &[src]),
        // Fma reads its accumulator; collectives write lane fragments
        // (never a provable full overwrite worth the analysis).
        OTp::Fma { a, b, c, .. } => {
            if a == buf || b == buf || c == buf {
                Touch::Other
            } else {
                Touch::None
            }
        }
        OTp::LdMatrix { src, dst, .. } | OTp::Shfl { src, dst, .. } => {
            if src == buf || dst == buf {
                Touch::Other
            } else {
                Touch::None
            }
        }
        OTp::Mma16816 { a, b, c, .. }
        | OTp::Mma884 { a, b, c, .. }
        | OTp::MmaDense { a, b, c, .. } => {
            if a == buf || b == buf || c == buf {
                Touch::Other
            } else {
                Touch::None
            }
        }
    }
}

/// A `Fill` at `i` is dead iff the first later step in the block that
/// touches its buffer fully overwrites it without reading it first.
/// (Untouched buffers keep their fill: a later block could read them.)
fn fill_is_dead(steps: &[OTp], i: usize, buf: u32, len: usize) -> bool {
    for step in &steps[i + 1..] {
        match touch(step, buf, len) {
            Touch::None => {}
            Touch::FullOverwrite => return true,
            Touch::Other => return false,
        }
    }
    false
}

/// One fusion sweep over a block's steps, in place.
fn fuse_block(steps: &mut Vec<OTp>, fused: &mut usize) {
    let mut out: Vec<OTp> = Vec::with_capacity(steps.len());
    for step in steps.drain(..) {
        if let Some(last) = out.last_mut() {
            if try_fuse(last, &step) {
                *fused += 1;
                continue;
            }
        }
        out.push(step);
    }
    *steps = out;
}

/// Composes a full-warp MMA's fragment shuffle into matrix-order
/// address vectors and classifies them — `None` when the warp is
/// partial (some matrix slot unwritten), which keeps the lane-order
/// step in place. Slots are filled in the raw interpreter's lane-major
/// load order, so a hypothetical duplicate slot resolves to the same
/// last writer.
fn mma_dense(
    ar: &[u32],
    m16: bool,
    (a, b, c): (u32, u32, u32),
    (aa, aper, ba, bper, ca, cper): (u32, u32, u32, u32, u32, u32),
    lanes: u32,
    g: &mut Vec<u32>,
) -> Option<OTp> {
    use graphene_ir::atomic::fragments as frag;
    let (m, n, k, an, bn, cn) = if m16 { (16, 8, 16, 8, 4, 4) } else { (8, 8, 4, 4, 4, 8) };
    let mut av = vec![u32::MAX; m * k];
    let mut bv = vec![u32::MAX; k * n];
    let mut cv = vec![u32::MAX; m * n];
    for li in 0..lanes as usize {
        for v in 0..an {
            let (mi, ki) = if m16 { frag::mma_16816_a(li, v) } else { frag::mma_884_a(li, v) };
            av[mi * k + ki] = ar[aa as usize + li * aper as usize + v];
        }
        for v in 0..bn {
            let (ki, ni) = if m16 { frag::mma_16816_b(li, v) } else { frag::mma_884_b(li, v) };
            bv[ki * n + ni] = ar[ba as usize + li * bper as usize + v];
        }
        for v in 0..cn {
            let (mi, ni) = if m16 { frag::mma_16816_c(li, v) } else { frag::mma_884_c(li, v) };
            cv[mi * n + ni] = ar[ca as usize + li * cper as usize + v];
        }
    }
    if av.contains(&u32::MAX) || bv.contains(&u32::MAX) || cv.contains(&u32::MAX) {
        return None;
    }
    Some(OTp::MmaDense {
        m16,
        a,
        b,
        c,
        am: classify_flat(&av, g),
        bm: classify_flat(&bv, g),
        cm: classify_flat(&cv, g),
    })
}

/// Lowers a recorded [`Trace`] into an [`OptTrace`]: classify every
/// operand slice, fuse adjacent chained steps, drop dead fills.
///
/// The result replays bit-identically to the input trace: descriptors
/// reproduce the exact recorded addresses (classification verifies
/// every element), fusion preserves element order, and a dead fill is
/// only removed when the buffer is fully overwritten before any read.
#[must_use]
pub fn optimize_trace(trace: &Trace) -> OptTrace {
    let mut stats = OptStats {
        steps_before: trace.steps.len(),
        addrs_before: trace.addrs.len(),
        bytes_before: trace.resident_bytes(),
        ..OptStats::default()
    };
    let mut steps: Vec<OTp> = Vec::with_capacity(trace.steps.len());
    let mut gather: Vec<u32> = Vec::new();
    let mut blocks: Vec<(u32, u32)> = Vec::with_capacity(trace.blocks.len());
    let ar = &trace.addrs;
    let sl = |start: u32, n: u32| &ar[start as usize..(start + n) as usize];
    let mut block_steps: Vec<OTp> = Vec::new();
    for &(bs, be) in &trace.blocks {
        block_steps.clear();
        for step in &trace.steps[bs as usize..be as usize] {
            let g = &mut gather;
            let ot = match *step {
                TOp::Fill { buf } => OTp::Fill { buf },
                TOp::Copy { src, dst, sa, da, n } => OTp::Copy {
                    src,
                    dst,
                    sa: classify_flat(sl(sa, n), g),
                    da: classify_flat(sl(da, n), g),
                    n,
                },
                TOp::Unary { op, src, dst, sa, da, n } => OTp::Unary {
                    op,
                    src,
                    dst,
                    sa: classify_flat(sl(sa, n), g),
                    da: classify_flat(sl(da, n), g),
                    n,
                },
                TOp::Binary { op, a, b, dst, aa, ba, da, n } => OTp::Binary {
                    op,
                    a,
                    b,
                    dst,
                    aa: classify_flat(sl(aa, n), g),
                    ba: classify_flat(sl(ba, n), g),
                    da: classify_flat(sl(da, n), g),
                    n,
                },
                TOp::Fma { a, b, c, aa, ba, ca, n } => OTp::Fma {
                    a,
                    b,
                    c,
                    aa: classify_flat(sl(aa, n), g),
                    ba: classify_flat(sl(ba, n), g),
                    ca: classify_flat(sl(ca, n), g),
                    n,
                },
                TOp::Init { value, dst, da, n } => {
                    OTp::Init { value, dst, da: classify_flat(sl(da, n), g), n }
                }
                TOp::Reduce { op, src, dst, sa, da, groups, per } => OTp::Reduce {
                    op,
                    src,
                    dst,
                    sa: classify_lanes(sl(sa, groups * per), groups as usize, per as usize, g),
                    da: classify_flat(sl(da, groups), g),
                    groups,
                    per,
                },
                // The ldmatrix load/shuffle/store is a fixed permutation:
                // store (li, v) takes matrix element (p=v/2, c=v%2,
                // row/col from `trans`), which was loaded from source
                // lane p*8+row element col. Composing it at optimize
                // time turns the whole collective into one flat permuted
                // copy the bulk arms (and the classifier) can chew on.
                // Same-buffer steps keep the two-phase lane form: a
                // fused copy would interleave loads with stores.
                TOp::LdMatrix { num, trans, src, dst, sa, sper, da, dper, lanes } if src != dst => {
                    let numu = num as usize;
                    let n = lanes as usize * 2 * numu;
                    let mut sv = Vec::with_capacity(n);
                    let mut dv = Vec::with_capacity(n);
                    for li in 0..lanes as usize {
                        for v in 0..2 * numu {
                            let (p, cc) = (v / 2, v % 2);
                            let (row, col) = if trans {
                                (2 * (li % 4) + cc, li / 4)
                            } else {
                                (li / 4, 2 * (li % 4) + cc)
                            };
                            sv.push(ar[sa as usize + (p * 8 + row) * sper as usize + col]);
                            dv.push(ar[da as usize + li * dper as usize + v]);
                        }
                    }
                    OTp::Copy {
                        src,
                        dst,
                        sa: classify_flat(&sv, g),
                        da: classify_flat(&dv, g),
                        n: u32::try_from(n).expect("ldmatrix width fits u32"),
                    }
                }
                TOp::LdMatrix { num, trans, src, dst, sa, sper, da, dper, lanes } => {
                    OTp::LdMatrix {
                        num,
                        trans,
                        src,
                        dst,
                        sa: classify_lanes(sl(sa, lanes * sper), lanes as usize, sper as usize, g),
                        sper,
                        da: classify_lanes(sl(da, lanes * dper), lanes as usize, dper as usize, g),
                        dper,
                        lanes,
                    }
                }
                TOp::Mma16816 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    match mma_dense(ar, true, (a, b, c), (aa, aper, ba, bper, ca, cper), lanes, g) {
                        Some(ot) => ot,
                        None => OTp::Mma16816 {
                            a,
                            b,
                            c,
                            aa: classify_lanes(
                                sl(aa, lanes * aper),
                                lanes as usize,
                                aper as usize,
                                g,
                            ),
                            aper,
                            ba: classify_lanes(
                                sl(ba, lanes * bper),
                                lanes as usize,
                                bper as usize,
                                g,
                            ),
                            bper,
                            ca: classify_lanes(
                                sl(ca, lanes * cper),
                                lanes as usize,
                                cper as usize,
                                g,
                            ),
                            cper,
                            lanes,
                        },
                    }
                }
                TOp::Mma884 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    match mma_dense(ar, false, (a, b, c), (aa, aper, ba, bper, ca, cper), lanes, g)
                    {
                        Some(ot) => ot,
                        None => OTp::Mma884 {
                            a,
                            b,
                            c,
                            aa: classify_lanes(
                                sl(aa, lanes * aper),
                                lanes as usize,
                                aper as usize,
                                g,
                            ),
                            aper,
                            ba: classify_lanes(
                                sl(ba, lanes * bper),
                                lanes as usize,
                                bper as usize,
                                g,
                            ),
                            bper,
                            ca: classify_lanes(
                                sl(ca, lanes * cper),
                                lanes as usize,
                                cper as usize,
                                g,
                            ),
                            cper,
                            lanes,
                        },
                    }
                }
                TOp::Shfl { mask, src, dst, sa, da, lanes } => OTp::Shfl {
                    mask,
                    src,
                    dst,
                    sa: classify_flat(sl(sa, lanes), g),
                    da: classify_flat(sl(da, lanes), g),
                    lanes,
                },
            };
            block_steps.push(ot);
        }
        fuse_block(&mut block_steps, &mut stats.fused_steps);
        // Dead-fill elimination, then one more fusion sweep: removing a
        // fill can make its neighbours adjacent and chainable.
        let dead: Vec<usize> = block_steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match *s {
                OTp::Fill { buf }
                    if fill_is_dead(&block_steps, i, buf, trace.buf_lens[buf as usize]) =>
                {
                    Some(i)
                }
                _ => None,
            })
            .collect();
        if !dead.is_empty() {
            stats.dead_fills += dead.len();
            let mut keep = 0usize;
            let mut di = dead.iter().peekable();
            block_steps.retain(|_| {
                let drop = di.peek().is_some_and(|&&d| d == keep);
                if drop {
                    di.next();
                }
                keep += 1;
                !drop
            });
            fuse_block(&mut block_steps, &mut stats.fused_steps);
        }
        let start = u32::try_from(steps.len()).expect("optimized trace exceeds u32 steps");
        steps.extend_from_slice(&block_steps);
        let end = u32::try_from(steps.len()).expect("optimized trace exceeds u32 steps");
        blocks.push((start, end));
    }
    stats.steps_after = steps.len();
    stats.gather_addrs = gather.len();
    let mut opt = OptTrace {
        steps,
        gather,
        blocks,
        buf_lens: trace.buf_lens.clone(),
        n_globals: trace.n_globals,
        params: trace.params.clone(),
        counters: trace.counters,
        stats,
    };
    opt.stats.bytes_after = opt.resident_bytes();
    opt
}

/// Records `plan` once and optimizes the trace in the same pass — the
/// cache-facing entry point ([`crate::trace::TraceCache`] keeps only
/// the optimized form resident).
///
/// # Errors
///
/// Any [`ExecError`] the recording run hits.
pub fn record_opt_trace(
    plan: &KernelPlan,
    bindings: &HashMap<String, i64>,
) -> Result<OptTrace, ExecError> {
    Ok(optimize_trace(&record_trace(plan, bindings)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay, replay_opt};
    use graphene_ir::tensor::TensorId;
    use std::collections::HashMap;

    /// A two-buffer trace (global `out` of `len`, scratch of `len`)
    /// with the given steps and arena, as one block.
    fn plant(steps: Vec<TOp>, addrs: Vec<u32>, len: usize) -> Trace {
        let n = steps.len() as u32;
        Trace {
            steps,
            addrs,
            blocks: vec![(0, n)],
            buf_lens: vec![len, len],
            n_globals: 1,
            params: vec![(TensorId(0), "out".to_string(), len)],
            counters: Counters::default(),
        }
    }

    #[test]
    fn fully_affine_trace_drops_its_arena() {
        // scratch[i] = out[i] for i in 0..64 — contiguous both sides.
        let addrs: Vec<u32> = (0..64).chain(0..64).collect();
        let t = plant(vec![TOp::Copy { src: 0, dst: 1, sa: 0, da: 64, n: 64 }], addrs, 64);
        let o = optimize_trace(&t);
        assert_eq!(o.gather.len(), 0, "affine slices must not reach the gather arena");
        assert!(matches!(
            o.steps[0],
            OTp::Copy {
                sa: Span::Affine { base: 0, stride: 1 },
                da: Span::Affine { base: 0, stride: 1 },
                ..
            }
        ));
        assert!((o.stats().coalesced_fraction() - 1.0).abs() < 1e-12);
        assert!(o.stats().bytes_saved_fraction() > 0.0, "descriptors must shrink the trace");
    }

    #[test]
    fn pure_gather_trace_keeps_the_old_path() {
        // A swizzle-like permutation on both sides: nothing affine.
        let perm: Vec<u32> = vec![0, 3, 1, 2, 7, 4, 6, 5];
        let mut addrs = perm.clone();
        addrs.extend(&perm);
        let t = plant(vec![TOp::Copy { src: 0, dst: 1, sa: 0, da: 8, n: 8 }], addrs.clone(), 8);
        let o = optimize_trace(&t);
        assert_eq!(o.gather, addrs, "irregular slices must be preserved verbatim");
        assert!(matches!(
            o.steps[0],
            OTp::Copy { sa: Span::Gather { start: 0 }, da: Span::Gather { start: 8 }, .. }
        ));
        assert!(o.stats().coalesced_fraction() < 1e-12);
    }

    #[test]
    fn mixed_trace_classifies_per_operand() {
        // Contiguous source, permuted destination.
        let mut addrs: Vec<u32> = (0..8).collect();
        addrs.extend([0u32, 3, 1, 2, 7, 4, 6, 5]);
        let t = plant(vec![TOp::Copy { src: 0, dst: 1, sa: 0, da: 8, n: 8 }], addrs, 8);
        let o = optimize_trace(&t);
        assert!(matches!(
            o.steps[0],
            OTp::Copy {
                sa: Span::Affine { base: 0, stride: 1 },
                da: Span::Gather { start: 0 },
                ..
            }
        ));
        assert_eq!(o.gather.len(), 8);
        assert!((o.stats().coalesced_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strided_and_lane_major_slices_classify() {
        // Stride-2 1D progression.
        assert_eq!(affine_1d(&[4, 6, 8, 10]), Some(Span::Affine { base: 4, stride: 2 }));
        // Lane-major 2D: 3 lanes of 2, lane stride 10, element stride 1.
        let a = [0, 1, 10, 11, 20, 21];
        assert_eq!(affine_1d(&a), None);
        assert_eq!(affine_2d(&a, 3, 2), Some(Span::Lanes { base: 0, lane: 10, stride: 1, per: 2 }));
        // Broken tail: not affine in either view.
        assert_eq!(affine_2d(&[0, 1, 10, 11, 20, 99], 3, 2), None);
    }

    #[test]
    fn adjacent_chained_copies_fuse() {
        let addrs: Vec<u32> = (0..4).chain(0..4).chain(4..8).chain(4..8).collect();
        let t = plant(
            vec![
                TOp::Copy { src: 0, dst: 1, sa: 0, da: 4, n: 4 },
                TOp::Copy { src: 0, dst: 1, sa: 8, da: 12, n: 4 },
            ],
            addrs,
            8,
        );
        let o = optimize_trace(&t);
        assert_eq!(o.steps.len(), 1, "chained copies must fuse");
        assert!(matches!(o.steps[0], OTp::Copy { n: 8, .. }));
        assert_eq!(o.stats().fused_steps, 1);
    }

    #[test]
    fn dead_fill_is_removed_when_fully_overwritten() {
        // Fill scratch; then init fully overwrites it before any read.
        let addrs: Vec<u32> = (0..8).collect();
        let t = plant(
            vec![TOp::Fill { buf: 1 }, TOp::Init { value: 2.5, dst: 1, da: 0, n: 8 }],
            addrs,
            8,
        );
        let o = optimize_trace(&t);
        assert_eq!(o.stats().dead_fills, 1);
        assert!(matches!(o.steps[0], OTp::Init { .. }));
    }

    #[test]
    fn live_fill_is_kept_when_read_first() {
        // Fill scratch; copy reads scratch into out: fill is live.
        let addrs: Vec<u32> = (0..8).chain(0..8).collect();
        let t = plant(
            vec![TOp::Fill { buf: 1 }, TOp::Copy { src: 1, dst: 0, sa: 0, da: 8, n: 8 }],
            addrs,
            8,
        );
        let o = optimize_trace(&t);
        assert_eq!(o.stats().dead_fills, 0);
        assert_eq!(o.steps.len(), 2);
    }

    #[test]
    fn planted_trace_replays_identically_optimized() {
        // out[i] = out[perm[i]] * 2 staged through scratch, with a
        // gather on one side — exercises both paths end to end.
        let perm: Vec<u32> = vec![3, 1, 0, 2, 6, 7, 5, 4];
        let mut addrs: Vec<u32> = perm.clone();
        addrs.extend(0..8u32); // da of copy: contiguous scratch
        addrs.extend(0..8u32); // sa of binary: scratch
        addrs.extend(0..8u32); // ba of binary: scratch
        addrs.extend(0..8u32); // da of binary: out
        let t = plant(
            vec![
                TOp::Copy { src: 0, dst: 1, sa: 0, da: 8, n: 8 },
                TOp::Binary {
                    op: graphene_ir::ops::BinaryOp::Add,
                    a: 1,
                    b: 1,
                    dst: 0,
                    aa: 16,
                    ba: 24,
                    da: 32,
                    n: 8,
                },
            ],
            addrs,
            8,
        );
        let o = optimize_trace(&t);
        let inputs: HashMap<TensorId, Vec<f32>> =
            [(TensorId(0), (0..8).map(|i| i as f32 + 0.5).collect())].into();
        let base = replay(&t, &inputs).expect("raw replay");
        let opt = replay_opt(&o, &inputs).expect("opt replay");
        let b = &base.globals[&TensorId(0)];
        let p = &opt.globals[&TensorId(0)];
        assert_eq!(b.len(), p.len());
        for (x, y) in b.iter().zip(p) {
            assert_eq!(x.to_bits(), y.to_bits(), "optimized replay must be bit-identical");
        }
        assert_eq!(base.counters, opt.counters);
    }
}
