//! Graph execution: run a lowered multi-kernel chain against one
//! liveness-planned workspace arena, through either the compiled-plan
//! engine or whole-graph trace replay.
//!
//! [`ExecGraph`] is the execution form of a lowered graph: a node per
//! kernel launch, each node's parameters bound positionally to either
//! a named external (graph input / weight) or a workspace temp. The
//! temps are planned into a single arena by [`crate::workspace`] —
//! per-node fresh allocation is replaced by interval-aliased slices,
//! and [`GraphOutcome`] reports both peaks so callers can print
//! planned vs naive bytes.
//!
//! Two engines run the same graph:
//!
//! - [`execute_graph`] drives each node through the compiled-plan
//!   executor ([`crate::run::execute_plan`]), sequential or parallel
//!   CTA mode — the baseline.
//! - [`record_graph`] records each *distinct* (kernel, problem) once
//!   via the shared [`TraceCache`] and stitches the per-kernel traces
//!   with the node arg bindings and the workspace plan into a
//!   [`GraphTrace`]; [`replay_graph`] then re-runs the whole chain at
//!   straight-line speed with fresh inputs. Identical kernel instances
//!   (e.g. the QKV and attention-out projections of an encoder layer)
//!   share one recording.
//!
//! [`GraphTraceCache`] memoizes stitched [`GraphTrace`]s per
//! (graph signature, problem, arch) — the whole-model capture that
//! lets a serve loop replay an entire encoder without touching the
//! plan engine — and is LRU-bounded like [`TraceCache`].
//!
//! Both engines execute nodes in graph order over the same arena and
//! the same f32 scalar semantics, so their outputs are bit-identical;
//! the equivalence suite asserts it.

use crate::counters::Counters;
use crate::exec::ExecError;
use crate::plan::KernelPlan;
use crate::replay::replay_opt_with;
use crate::run::{execute_plan, ExecMode};
use crate::trace::{LruMap, TraceCache, TraceKey};
use crate::trace_opt::{OptStats, OptTrace};
use crate::workspace::{plan_workspace, NodeUse, WorkspacePlan};
use graphene_ir::tensor::TensorId;
use graphene_ir::Arch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How one kernel parameter is bound when the graph runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgBinding {
    /// Bound to the named graph input (activations in, weights,
    /// biases). Missing externals are zero-filled, like missing plan
    /// inputs.
    External(String),
    /// Read from workspace temp `t`.
    TempIn(usize),
    /// Written to workspace temp `t`.
    TempOut(usize),
}

/// One kernel launch in an executable graph.
#[derive(Debug, Clone)]
pub struct ExecNode {
    /// Kernel name — the [`TraceKey`] kernel component.
    pub kernel: String,
    /// Problem-instance description folding in the node's dimensions
    /// — the [`TraceKey`] problem component. Two nodes with equal
    /// (kernel, problem) share one recorded trace.
    pub problem: String,
    /// The compiled plan the node launches.
    pub plan: Arc<KernelPlan>,
    /// Per-parameter bindings, positionally aligned with
    /// [`KernelPlan::params`].
    pub args: Vec<ArgBinding>,
}

/// An executable lowered graph: kernel chain + temp table + outputs.
#[derive(Debug, Clone)]
pub struct ExecGraph {
    /// Lowering-assigned graph identity (hash of ops, dims, and
    /// lowering mode) — the [`GraphTraceCache`] key component.
    pub signature: String,
    /// Problem-instance description of the whole graph.
    pub problem: String,
    /// Target architecture all plans were compiled for.
    pub arch: Arch,
    /// Kernel launches, in execution order.
    pub nodes: Vec<ExecNode>,
    /// Scalar length of each workspace temp.
    pub temps: Vec<usize>,
    /// Temps that are graph results (stay live to the end).
    pub outputs: Vec<usize>,
}

impl ExecGraph {
    /// Structural validation: every binding must be positionally
    /// consistent with its plan's parameter list, temp indices and
    /// lengths must match the temp table, every temp read must be
    /// written by an earlier node, and every output must be written.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadInput`] naming the offending node/parameter.
    pub fn validate(&self) -> Result<(), ExecError> {
        let bad = |m: String| Err(ExecError::BadInput(m));
        let mut written = vec![false; self.temps.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let params = node.plan.params();
            if params.len() != node.args.len() {
                return bad(format!(
                    "node {i} `{}`: {} args for {} params",
                    node.kernel,
                    node.args.len(),
                    params.len()
                ));
            }
            for ((_, name, len), arg) in params.iter().zip(&node.args) {
                let t = match arg {
                    ArgBinding::External(_) => continue,
                    ArgBinding::TempIn(t) | ArgBinding::TempOut(t) => *t,
                };
                if t >= self.temps.len() {
                    return bad(format!("node {i} param %{name}: temp {t} out of range"));
                }
                if self.temps[t] != *len {
                    return bad(format!(
                        "node {i} param %{name}: temp {t} holds {} scalars, param expects {len}",
                        self.temps[t]
                    ));
                }
                if matches!(arg, ArgBinding::TempIn(_)) && !written[t] {
                    return bad(format!(
                        "node {i} param %{name}: temp {t} read before any node writes it"
                    ));
                }
            }
            for arg in &node.args {
                if let ArgBinding::TempOut(t) = arg {
                    written[*t] = true;
                }
            }
        }
        for &t in &self.outputs {
            if t >= self.temps.len() || !written[t] {
                return bad(format!("output temp {t} is never written"));
            }
        }
        Ok(())
    }

    /// Per-node temp read/write sets, for the workspace planner.
    pub fn node_uses(&self) -> Vec<NodeUse> {
        self.nodes
            .iter()
            .map(|n| {
                let mut u = NodeUse::default();
                for arg in &n.args {
                    match arg {
                        ArgBinding::TempIn(t) => u.reads.push(*t),
                        ArgBinding::TempOut(t) => u.writes.push(*t),
                        ArgBinding::External(_) => {}
                    }
                }
                u
            })
            .collect()
    }

    /// Plans the workspace arena for this graph.
    pub fn workspace(&self) -> WorkspacePlan {
        plan_workspace(&self.temps, &self.node_uses(), &self.outputs)
    }

    /// The graph's external inputs `(name, scalar length)`, deduped in
    /// first-use order — what a caller must (or may) supply.
    pub fn externals(&self) -> Vec<(String, usize)> {
        let mut seen: Vec<(String, usize)> = Vec::new();
        for node in &self.nodes {
            for ((_, _, len), arg) in node.plan.params().iter().zip(&node.args) {
                if let ArgBinding::External(name) = arg {
                    if !seen.iter().any(|(n, _)| n == name) {
                        seen.push((name.clone(), *len));
                    }
                }
            }
        }
        seen
    }
}

/// The result of one graph execution (either engine).
#[derive(Debug)]
pub struct GraphOutcome {
    /// Final contents of each output temp, keyed by temp index.
    pub outputs: HashMap<usize, Vec<f32>>,
    /// Profile counters summed over all kernel launches.
    pub counters: Counters,
    /// The workspace plan the run used — carries planned
    /// (`arena_scalars`) vs naive (`naive_scalars`) peaks.
    pub workspace: WorkspacePlan,
}

/// Seeds one node's input map from externals and arena slices.
fn node_inputs(
    params: &[(TensorId, String, usize)],
    args: &[ArgBinding],
    inputs: &HashMap<String, Vec<f32>>,
    arena: &[f32],
    ws: &WorkspacePlan,
) -> Result<HashMap<TensorId, Vec<f32>>, ExecError> {
    let mut kin = HashMap::new();
    for ((id, _, len), arg) in params.iter().zip(args) {
        match arg {
            ArgBinding::External(name) => {
                if let Some(v) = inputs.get(name) {
                    if v.len() != *len {
                        return Err(ExecError::BadInput(format!(
                            "graph input `{name}` expects {len} scalars, got {}",
                            v.len()
                        )));
                    }
                    kin.insert(*id, v.clone());
                }
                // Missing externals zero-fill, matching execute_plan.
            }
            ArgBinding::TempIn(t) => {
                kin.insert(*id, arena[ws.slice(*t, *len)].to_vec());
            }
            ArgBinding::TempOut(_) => {} // kernel output: starts zeroed
        }
    }
    Ok(kin)
}

/// Copies one node's written temps back into the arena.
fn scatter_outputs(
    params: &[(TensorId, String, usize)],
    args: &[ArgBinding],
    globals: &HashMap<TensorId, Vec<f32>>,
    arena: &mut [f32],
    ws: &WorkspacePlan,
) {
    for ((id, _, len), arg) in params.iter().zip(args) {
        if let ArgBinding::TempOut(t) = arg {
            let v = globals.get(id).expect("executor returns every param");
            arena[ws.slice(*t, *len)].copy_from_slice(v);
        }
    }
}

/// Collects the graph outputs out of the arena.
fn gather_outputs(
    outputs: &[usize],
    temps: &[usize],
    arena: &[f32],
    ws: &WorkspacePlan,
) -> HashMap<usize, Vec<f32>> {
    outputs.iter().map(|&t| (t, arena[ws.slice(t, temps[t])].to_vec())).collect()
}

/// Executes the graph through the compiled-plan engine, node by node
/// over one planned arena.
///
/// `mode` selects the per-kernel CTA schedule (sequential, parallel,
/// or one-shot record+replay); nodes themselves always run in graph
/// order, which the arena aliasing depends on.
///
/// # Errors
///
/// [`ExecError::BadInput`] from [`ExecGraph::validate`] or a mis-sized
/// external; any [`ExecError`] a kernel execution hits.
pub fn execute_graph(
    g: &ExecGraph,
    inputs: &HashMap<String, Vec<f32>>,
    mode: ExecMode,
) -> Result<GraphOutcome, ExecError> {
    g.validate()?;
    let ws = g.workspace();
    let mut arena = vec![0.0f32; ws.arena_scalars];
    let bindings = HashMap::new();
    let mut counters = Counters::default();
    for node in &g.nodes {
        let params = node.plan.params();
        let kin = node_inputs(params, &node.args, inputs, &arena, &ws)?;
        let out = execute_plan(&node.plan, &kin, &bindings, mode)?;
        counters.merge(&out.counters);
        scatter_outputs(params, &node.args, &out.globals, &mut arena, &ws);
    }
    Ok(GraphOutcome {
        outputs: gather_outputs(&g.outputs, &g.temps, &arena, &ws),
        counters,
        workspace: ws,
    })
}

/// A whole-graph trace: per-node recorded kernel traces stitched with
/// their arg bindings and the workspace plan. Produced by
/// [`record_graph`], executed by [`replay_graph`].
#[derive(Debug)]
pub struct GraphTrace {
    nodes: Vec<(Arc<OptTrace>, Vec<ArgBinding>)>,
    workspace: WorkspacePlan,
    temps: Vec<usize>,
    outputs: Vec<usize>,
}

impl GraphTrace {
    /// Kernel launches in the stitched chain.
    pub fn num_kernels(&self) -> usize {
        self.nodes.len()
    }

    /// Total recorded steps across all launches (shared traces
    /// counted once per launch, since replay runs them once each).
    pub fn num_steps(&self) -> usize {
        self.nodes.iter().map(|(t, _)| t.num_steps()).sum()
    }

    /// The workspace plan replay binds its slices from.
    pub fn workspace(&self) -> &WorkspacePlan {
        &self.workspace
    }

    /// Trace-optimizer stats aggregated over the stitched chain
    /// (shared recordings counted once per launch, matching
    /// [`num_steps`](Self::num_steps)).
    pub fn opt_stats(&self) -> OptStats {
        let mut agg = OptStats::default();
        for (t, _) in &self.nodes {
            let s = t.stats();
            agg.steps_before += s.steps_before;
            agg.steps_after += s.steps_after;
            agg.addrs_before += s.addrs_before;
            agg.gather_addrs += s.gather_addrs;
            agg.dead_fills += s.dead_fills;
            agg.fused_steps += s.fused_steps;
            agg.bytes_before += s.bytes_before;
            agg.bytes_after += s.bytes_after;
        }
        agg
    }

    /// Resident payload bytes of the stitched chain, counting each
    /// shared recording once.
    pub fn resident_bytes(&self) -> usize {
        let mut seen: Vec<*const OptTrace> = Vec::with_capacity(self.nodes.len());
        let mut total = 0;
        for (t, _) in &self.nodes {
            let p = Arc::as_ptr(t);
            if !seen.contains(&p) {
                seen.push(p);
                total += t.resident_bytes();
            }
        }
        total
    }
}

/// Records every node of `g` (once per distinct (kernel, problem) via
/// `traces`) and stitches the result into a [`GraphTrace`].
///
/// # Errors
///
/// [`ExecError`] from validation or any recording run.
pub fn record_graph(g: &ExecGraph, traces: &TraceCache) -> Result<GraphTrace, ExecError> {
    g.validate()?;
    let bindings = HashMap::new();
    let mut nodes = Vec::with_capacity(g.nodes.len());
    for node in &g.nodes {
        let key =
            TraceKey { kernel: node.kernel.clone(), problem: node.problem.clone(), arch: g.arch };
        let t = traces.get_or_record(&key, &node.plan, &bindings)?;
        nodes.push((t, node.args.clone()));
    }
    Ok(GraphTrace {
        nodes,
        workspace: g.workspace(),
        temps: g.temps.clone(),
        outputs: g.outputs.clone(),
    })
}

/// Replays a stitched graph trace end-to-end against fresh inputs.
///
/// Per-node data flow is identical to [`execute_graph`] — same arena,
/// same slices, same node order — so outputs are bit-identical to the
/// plan engine; only the per-kernel execution is the straight-line
/// replay instead of the compiled-plan walk.
///
/// # Errors
///
/// [`ExecError::BadInput`] on a mis-sized external; any replay error.
pub fn replay_graph(
    gt: &GraphTrace,
    inputs: &HashMap<String, Vec<f32>>,
    mode: ExecMode,
) -> Result<GraphOutcome, ExecError> {
    let ws = &gt.workspace;
    let mut arena = vec![0.0f32; ws.arena_scalars];
    let mut counters = Counters::default();
    for (trace, args) in &gt.nodes {
        let kin = node_inputs(&trace.params, args, inputs, &arena, ws)?;
        let out = replay_opt_with(trace, &kin, mode)?;
        counters.merge(&out.counters);
        scatter_outputs(&trace.params, args, &out.globals, &mut arena, ws);
    }
    Ok(GraphOutcome {
        outputs: gather_outputs(&gt.outputs, &gt.temps, &arena, ws),
        counters,
        workspace: gt.workspace.clone(),
    })
}

/// Cache key: one stitched trace per (graph signature, problem, arch).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphKey {
    /// Lowering-assigned graph signature ([`ExecGraph::signature`]).
    pub signature: String,
    /// Problem-instance description ([`ExecGraph::problem`]).
    pub problem: String,
    /// Target architecture.
    pub arch: Arch,
}

/// Default [`GraphTraceCache`] capacity — whole-graph traces are an
/// order of magnitude bigger than single-kernel ones.
pub const GRAPH_TRACE_CACHE_CAPACITY: usize = 32;

/// Memoizes stitched [`GraphTrace`]s per [`GraphKey`], LRU-bounded
/// like [`TraceCache`]. The per-kernel `TraceCache` is passed per
/// call, so graphs sharing kernels also share their recordings.
#[derive(Debug)]
pub struct GraphTraceCache {
    traces: Mutex<LruMap<GraphKey, Arc<GraphTrace>>>,
    hits: AtomicU64,
    recordings: AtomicU64,
}

impl Default for GraphTraceCache {
    fn default() -> Self {
        Self::with_capacity(GRAPH_TRACE_CACHE_CAPACITY)
    }
}

impl GraphTraceCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` graph traces (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        GraphTraceCache {
            traces: Mutex::new(LruMap::new(capacity)),
            hits: AtomicU64::new(0),
            recordings: AtomicU64::new(0),
        }
    }

    /// Returns the stitched trace for `g`, recording and stitching on
    /// first use. Like [`TraceCache::get_or_record`], recording
    /// happens outside the map lock.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] from [`record_graph`]; nothing is cached.
    pub fn get_or_record(
        &self,
        g: &ExecGraph,
        traces: &TraceCache,
    ) -> Result<Arc<GraphTrace>, ExecError> {
        let key =
            GraphKey { signature: g.signature.clone(), problem: g.problem.clone(), arch: g.arch };
        if let Some(t) = self.traces.lock().expect("graph-trace cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(t);
        }
        let t = Arc::new(record_graph(g, traces)?);
        self.recordings.fetch_add(1, Ordering::Relaxed);
        Ok(self.traces.lock().expect("graph-trace cache poisoned").insert(key, t))
    }

    /// Replays served from an already-stitched graph trace.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Graph recordings performed (full stitch passes).
    pub fn recordings(&self) -> u64 {
        self.recordings.load(Ordering::Relaxed)
    }

    /// Graph traces evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.traces.lock().expect("graph-trace cache poisoned").evicted()
    }

    /// Number of distinct graph traces held.
    pub fn len(&self) -> usize {
        self.traces.lock().expect("graph-trace cache poisoned").len()
    }

    /// Total resident payload bytes across all cached graph traces
    /// (each stitched chain counts its shared recordings once).
    pub fn resident_bytes(&self) -> usize {
        self.traces
            .lock()
            .expect("graph-trace cache poisoned")
            .values()
            .map(|t| t.resident_bytes())
            .sum()
    }

    /// Whether the cache holds no graph traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
