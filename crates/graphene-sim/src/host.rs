//! Host-side tensors and reference math.
//!
//! These are the correctness oracles the simulator's results are checked
//! against: straightforward sequential implementations of the tensor
//! computations the paper evaluates (GEMM, pointwise epilogues, MLP,
//! LSTM cell, Layernorm, softmax, attention).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major host tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct HostTensor {
    dims: Vec<usize>,
    data: Vec<f32>,
}

impl HostTensor {
    /// A zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let n = dims.iter().product();
        HostTensor { dims: dims.to_vec(), data: vec![0.0; n] }
    }

    /// A tensor filled with `v`.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let n = dims.iter().product();
        HostTensor { dims: dims.to_vec(), data: vec![v; n] }
    }

    /// Uniform random values in `[-1, 1)` from a seeded RNG
    /// (deterministic across runs).
    pub fn random(dims: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dims.iter().product();
        HostTensor { dims: dims.to_vec(), data: (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect() }
    }

    /// Builds a tensor from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the product of `dims`.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        HostTensor { dims: dims.to_vec(), data }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major flat view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major flat view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// 2-D element access.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of range.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.dims.len(), 2);
        self.data[i * self.dims[1] + j]
    }

    /// Mutable 2-D element access.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of range.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        assert_eq!(self.dims.len(), 2);
        &mut self.data[i * self.dims[1] + j]
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &HostTensor) -> f32 {
        assert_eq!(self.dims, other.dims, "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Asserts elementwise closeness with tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics when any element differs by more than `tol`.
    pub fn assert_close(&self, other: &HostTensor, tol: f32) {
        let d = self.max_abs_diff(other);
        assert!(d <= tol, "tensors differ by {d} (tol {tol})");
    }
}

/// `C = A × B` for row-major 2-D tensors (`A: [m,k]`, `B: [k,n]`).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn matmul_ref(a: &HostTensor, b: &HostTensor) -> HostTensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "inner dimensions differ");
    let mut c = HostTensor::zeros(&[m, n]);
    for i in 0..m {
        for p in 0..k {
            let av = a.at(i, p);
            for j in 0..n {
                *c.at_mut(i, j) += av * b.at(p, j);
            }
        }
    }
    c
}

/// Adds a row-broadcast bias: `C[i,j] += bias[j]`.
///
/// # Panics
///
/// Panics if `bias` length differs from `c`'s second dimension.
pub fn bias_add_ref(c: &mut HostTensor, bias: &[f32]) {
    let (m, n) = (c.dims()[0], c.dims()[1]);
    assert_eq!(bias.len(), n);
    for i in 0..m {
        for (j, b) in bias.iter().enumerate() {
            *c.at_mut(i, j) += b;
        }
    }
}

/// Applies ReLU in place.
pub fn relu_ref(c: &mut HostTensor) {
    for v in c.as_mut_slice() {
        *v = v.max(0.0);
    }
}

/// Row-wise softmax of a 2-D tensor.
pub fn softmax_ref(x: &HostTensor) -> HostTensor {
    let (m, n) = (x.dims()[0], x.dims()[1]);
    let mut out = HostTensor::zeros(&[m, n]);
    for i in 0..m {
        let mut mx = f32::NEG_INFINITY;
        for j in 0..n {
            mx = mx.max(x.at(i, j));
        }
        let mut denom = 0.0;
        for j in 0..n {
            denom += (x.at(i, j) - mx).exp();
        }
        for j in 0..n {
            *out.at_mut(i, j) = (x.at(i, j) - mx).exp() / denom;
        }
    }
    out
}

/// Row-wise layernorm with scale `gamma` and shift `beta`.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from the row width.
pub fn layernorm_ref(x: &HostTensor, gamma: &[f32], beta: &[f32], eps: f32) -> HostTensor {
    let (m, n) = (x.dims()[0], x.dims()[1]);
    assert_eq!(gamma.len(), n);
    assert_eq!(beta.len(), n);
    let mut out = HostTensor::zeros(&[m, n]);
    for i in 0..m {
        let mean = (0..n).map(|j| x.at(i, j)).sum::<f32>() / n as f32;
        let var = (0..n).map(|j| (x.at(i, j) - mean).powi(2)).sum::<f32>() / n as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for j in 0..n {
            *out.at_mut(i, j) = (x.at(i, j) - mean) * inv * gamma[j] + beta[j];
        }
    }
    out
}

/// The simplified LSTM-cell computation of the paper's Figure 12:
/// `relu(X×Wx + H×Wh + bias)` — two GEMMs, an add, a bias add and an
/// activation (the paper substitutes ReLU for tanh to enable library
/// comparison).
pub fn lstm_cell_ref(
    x: &HostTensor,
    wx: &HostTensor,
    h: &HostTensor,
    wh: &HostTensor,
    bias: &[f32],
) -> HostTensor {
    let mut g1 = matmul_ref(x, wx);
    let g2 = matmul_ref(h, wh);
    for (a, b) in g1.as_mut_slice().iter_mut().zip(g2.as_slice()) {
        *a += b;
    }
    bias_add_ref(&mut g1, bias);
    relu_ref(&mut g1);
    g1
}

/// Single-head scaled-dot-product attention:
/// `softmax(Q×Kᵀ / sqrt(d)) × V` with `Q,K,V: [s, d]`.
pub fn attention_ref(q: &HostTensor, k: &HostTensor, v: &HostTensor) -> HostTensor {
    let (s, d) = (q.dims()[0], q.dims()[1]);
    assert_eq!(k.dims(), &[s, d]);
    assert_eq!(v.dims(), &[s, d]);
    let scale = 1.0 / (d as f32).sqrt();
    let mut scores = HostTensor::zeros(&[s, s]);
    for i in 0..s {
        for j in 0..s {
            let mut acc = 0.0;
            for p in 0..d {
                acc += q.at(i, p) * k.at(j, p);
            }
            *scores.at_mut(i, j) = acc * scale;
        }
    }
    let probs = softmax_ref(&scores);
    matmul_ref(&probs, v)
}

/// Quantizes a value through fp16 precision (used to compare against
/// simulated f16 arithmetic with realistic tolerances).
pub fn to_f16_precision(x: f32) -> f32 {
    // Round-trip through IEEE 754 binary16 by bit manipulation.
    let bits = x.to_bits();
    let sign = (bits >> 16) & 0x8000;
    let mut exp = ((bits >> 23) & 0xff) as i32 - 127 + 15;
    let mut frac = (bits >> 13) & 0x3ff;
    if exp >= 31 {
        exp = 31;
        frac = 0;
    } else if exp <= 0 {
        return if sign != 0 { -0.0 } else { 0.0 };
    }
    let h = sign | ((exp as u32) << 10) | frac;
    // Decode back.
    let s = if h & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let e = ((h >> 10) & 0x1f) as i32;
    let f = (h & 0x3ff) as f32 / 1024.0;
    if e == 0 {
        s * f * 2.0f32.powi(-14)
    } else if e == 31 {
        if f == 0.0 {
            s * f32::INFINITY
        } else {
            f32::NAN
        }
    } else {
        s * (1.0 + f) * 2.0f32.powi(e - 15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = HostTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = HostTensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul_ref(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = HostTensor::random(&[4, 16], 1);
        let s = softmax_ref(&x);
        for i in 0..4 {
            let sum: f32 = (0..16).map(|j| s.at(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_normalizes() {
        let x = HostTensor::random(&[3, 64], 2);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        let y = layernorm_ref(&x, &gamma, &beta, 1e-5);
        for i in 0..3 {
            let mean: f32 = (0..64).map(|j| y.at(i, j)).sum::<f32>() / 64.0;
            let var: f32 = (0..64).map(|j| (y.at(i, j) - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn lstm_cell_matches_manual() {
        let x = HostTensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let wx = HostTensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        let h = HostTensor::from_vec(&[1, 2], vec![0.5, 0.5]);
        let wh = HostTensor::from_vec(&[2, 2], vec![2.0, 0.0, 0.0, 2.0]);
        let bias = vec![0.0, -1.0];
        let out = lstm_cell_ref(&x, &wx, &h, &wh, &bias);
        // g = [1+1, -1+1] + bias = [2, -1] -> relu -> [2, 0]
        assert_eq!(out.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn attention_uniform_scores_average_v() {
        // Q·Kᵀ constant => softmax uniform => output = mean of V rows.
        let q = HostTensor::zeros(&[4, 8]);
        let k = HostTensor::random(&[4, 8], 3);
        let v = HostTensor::random(&[4, 8], 4);
        let out = attention_ref(&q, &k, &v);
        for j in 0..8 {
            let mean: f32 = (0..4).map(|i| v.at(i, j)).sum::<f32>() / 4.0;
            assert!((out.at(0, j) - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn f16_precision_roundtrip() {
        assert_eq!(to_f16_precision(1.0), 1.0);
        assert_eq!(to_f16_precision(0.5), 0.5);
        let x = 0.1f32;
        let q = to_f16_precision(x);
        assert!((x - q).abs() < 1e-3);
        assert!(to_f16_precision(1e-30).abs() == 0.0);
        assert!(to_f16_precision(1e30).is_infinite());
    }

    #[test]
    fn random_is_deterministic() {
        let a = HostTensor::random(&[8, 8], 42);
        let b = HostTensor::random(&[8, 8], 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "differ by")]
    fn assert_close_fails_on_difference() {
        let a = HostTensor::zeros(&[2, 2]);
        let b = HostTensor::full(&[2, 2], 1.0);
        a.assert_close(&b, 0.5);
    }
}
