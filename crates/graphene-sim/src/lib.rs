//! # graphene-sim
//!
//! The GPU substrate for the Graphene reproduction (ASPLOS '23).
//!
//! The paper evaluates on real V100 (Volta) and RTX A6000 (Ampere)
//! hardware; this crate substitutes a simulator with two complementary
//! halves operating on the *same IR* the CUDA backend prints:
//!
//! - **Functional execution** ([`execute`]) — interprets a decomposed
//!   kernel block-by-block, group-by-group, including the collective
//!   register-fragment semantics of `ldmatrix` and the `mma` tensor
//!   instructions, validating Graphene's data-to-thread mappings
//!   element-exactly against the reference math in [`host`].
//! - **Static analysis + timing** ([`analyze()`](analyze()), [`time_kernel`]) — walks
//!   the IR to count bytes per memory level (with exact per-warp
//!   bank-conflict sampling), FLOPs per pipe, and launches, then applies
//!   a roofline-with-overheads model of the two machines
//!   ([`VOLTA_V100`], [`AMPERE_A6000`]). This scales to the paper's
//!   evaluation sizes and produces the Nsight-Compute-style utilisation
//!   percentages of Figure 9.
//!
//! Execution is compile-once/execute-many: [`KernelPlan::compile`]
//! lowers a kernel to slot-indexed address plans and precomputed lane
//! tables ([`plan`]), and [`execute_plan`] interprets the plan — with
//! independent CTAs running concurrently under [`ExecMode::Parallel`]
//! while staying bit-identical to sequential execution ([`run`]). The
//! original statement-tree interpreter is retained as
//! [`execute_reference`] for equivalence testing and as the benchmark
//! baseline.
//!
//! On top of the compiled engine sits record-once/replay-many
//! execution — the CUDA-graph analog: [`record_trace`] captures one
//! instrumented run as a flat straight-line program ([`trace`]), a
//! [`TraceCache`] memoizes traces per (kernel, problem, arch), and
//! [`replay`](replay()) re-runs the program against fresh inputs with
//! no dispatch, no symbolic environment, and no address emission
//! ([`ExecMode::Replay`] for one-shot use). Recorded traces are then
//! lowered by the trace optimizer ([`optimize_trace`], [`trace_opt`])
//! into an [`OptTrace`] whose address slices are compact affine
//! descriptors: [`replay_opt`](replay_opt()) runs contiguous steps at
//! memcpy speed, and the [`TraceCache`] keeps only this compact form
//! resident.

#![warn(missing_docs)]

pub mod analyze;
pub mod counters;
pub mod exec;
pub mod graph_exec;
pub mod host;
pub mod machine;
pub mod plan;
pub mod prove;
pub mod replay;
pub mod run;
pub mod timing;
pub mod trace;
pub mod trace_opt;
pub mod workspace;

pub use analyze::{
    analyze, analyze_bound, analyze_cached, exec_lanes, lane_addresses, lane_addresses_cached,
    sample_conflicts, sample_conflicts_cached, AnalyzeError,
};
pub use counters::Counters;
pub use exec::{
    execute, execute_bound, execute_reference, execute_reference_bound, execute_with, rel_offsets,
    ExecError, ExecOutcome,
};
pub use graph_exec::{
    execute_graph, record_graph, replay_graph, ArgBinding, ExecGraph, ExecNode, GraphKey,
    GraphOutcome, GraphTrace, GraphTraceCache,
};
pub use host::HostTensor;
pub use machine::{machine_for, MachineDesc, AMPERE_A6000, VOLTA_V100};
pub use plan::{root_len, AddressPlan, BankTally, KernelPlan, PlanCache, RelOffsetsMemo};
pub use prove::{
    grade_conflicts_cached, linear_site, prove_conflicts_enumerated, prove_conflicts_linear,
    sample_is_aligned_warp, ConflictGrade, ConflictProvenance, LinearSite,
};
pub use replay::{replay, replay_opt, replay_opt_with, replay_with};
pub use run::{execute_plan, ExecMode};
pub use timing::{time_kernel, time_sequence, KernelProfile};
pub use trace::{record_trace, Trace, TraceCache, TraceKey};
pub use trace_opt::{optimize_trace, record_opt_trace, OptStats, OptTrace};
pub use workspace::{plan_workspace, NodeUse, TempPlan, WorkspacePlan};
