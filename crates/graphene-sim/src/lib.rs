//! # graphene-sim
//!
//! The GPU substrate for the Graphene reproduction (ASPLOS '23).
//!
//! The paper evaluates on real V100 (Volta) and RTX A6000 (Ampere)
//! hardware; this crate substitutes a simulator with two complementary
//! halves operating on the *same IR* the CUDA backend prints:
//!
//! - **Functional execution** ([`execute`]) — interprets a decomposed
//!   kernel block-by-block, group-by-group, including the collective
//!   register-fragment semantics of `ldmatrix` and the `mma` tensor
//!   instructions, validating Graphene's data-to-thread mappings
//!   element-exactly against the reference math in [`host`].
//! - **Static analysis + timing** ([`analyze()`](analyze()), [`time_kernel`]) — walks
//!   the IR to count bytes per memory level (with exact per-warp
//!   bank-conflict sampling), FLOPs per pipe, and launches, then applies
//!   a roofline-with-overheads model of the two machines
//!   ([`VOLTA_V100`], [`AMPERE_A6000`]). This scales to the paper's
//!   evaluation sizes and produces the Nsight-Compute-style utilisation
//!   percentages of Figure 9.

#![warn(missing_docs)]

pub mod analyze;
pub mod counters;
pub mod exec;
pub mod host;
pub mod machine;
pub mod timing;

pub use analyze::{
    analyze, analyze_bound, exec_lanes, lane_addresses, sample_conflicts, AnalyzeError,
};
pub use counters::Counters;
pub use exec::{execute, execute_bound, rel_offsets, ExecError, ExecOutcome};
pub use host::HostTensor;
pub use machine::{machine_for, MachineDesc, AMPERE_A6000, VOLTA_V100};
pub use timing::{time_kernel, time_sequence, KernelProfile};
