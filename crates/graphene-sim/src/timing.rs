//! The roofline-with-overheads timing model.
//!
//! Kernel time is modelled as launch overhead plus the slowest of four
//! resource roofs — tensor/FMA compute, DRAM, L2, and shared memory
//! (scaled by the measured bank-conflict factor) — with wave
//! quantisation over the SMs. This is deliberately not a cycle-accurate
//! microarchitecture model: it captures exactly the mechanisms the
//! paper's evaluation turns on (fusion removes global-memory round
//! trips and launches; tensor-core GEMMs are compute-bound; bank
//! conflicts serialise shared memory) so the *shape* of every figure
//! reproduces while absolute numbers depend on the machine description.

use crate::counters::Counters;
use crate::machine::MachineDesc;

/// Timing breakdown of one simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// End-to-end kernel time in seconds (including launch).
    pub time_s: f64,
    /// Launch overhead, seconds.
    pub launch_s: f64,
    /// Tensor-pipe time at achievable peak.
    pub tensor_time_s: f64,
    /// FMA-pipe time at achievable peak.
    pub fma_time_s: f64,
    /// DRAM roof time.
    pub dram_time_s: f64,
    /// L2 roof time.
    pub l2_time_s: f64,
    /// Shared-memory roof time (conflict-inflated).
    pub smem_time_s: f64,
    /// Achieved tensor-pipe throughput as a fraction of the theoretical
    /// peak (the profiler's "SM %" in the paper's Figure 9).
    pub compute_util: f64,
    /// Achieved DRAM throughput as a fraction of peak (Figure 9's
    /// "Mem %").
    pub dram_util: f64,
}

impl KernelProfile {
    /// Time in microseconds.
    pub fn us(&self) -> f64 {
        self.time_s * 1e6
    }

    /// Time in milliseconds.
    pub fn ms(&self) -> f64 {
        self.time_s * 1e3
    }
}

/// Times one kernel from its counters on a machine.
///
/// `blocks` is the launched grid size (for wave quantisation); pass 0 to
/// skip quantisation (library kernels whose tiling we don't model).
pub fn time_kernel(c: &Counters, m: &MachineDesc, blocks: i64) -> KernelProfile {
    let launch_s = m.launch_overhead_us * 1e-6;
    let eff = m.achievable_fraction;

    let tensor_time_s = c.flops_tc as f64 / (m.tensor_flops() * eff);
    let fma_time_s = c.flops_fma as f64 / (m.fma_flops() * eff);
    let dram_time_s = c.dram_bytes() as f64 / (m.dram_gbs * 1e9 * eff);
    let l2_time_s = c.l2_bytes() as f64 / (m.l2_gbs * 1e9 * eff);
    // Each shared-memory transaction serves up to 32 lanes x 4 B.
    let smem_bytes_serialised = c.smem_transactions as f64 * 128.0;
    let smem_time_s = smem_bytes_serialised / (m.smem_gbs() * 1e9 * eff);

    // Wave quantisation: a partially filled last wave still takes a full
    // wave of time.
    let wave_factor = if blocks > 0 {
        let waves = (blocks as f64 / m.sms as f64).ceil();
        let ideal = blocks as f64 / m.sms as f64;
        if ideal > 0.0 {
            waves / ideal.max(waves / 8.0) // bounded distortion
        } else {
            1.0
        }
    } else {
        1.0
    };

    let compute_time = tensor_time_s + fma_time_s;
    let roof = compute_time.max(dram_time_s).max(l2_time_s).max(smem_time_s);
    let time_s = launch_s + roof * wave_factor;

    let busy = (time_s - launch_s).max(1e-12);
    KernelProfile {
        time_s,
        launch_s,
        tensor_time_s,
        fma_time_s,
        dram_time_s,
        l2_time_s,
        smem_time_s,
        compute_util: (c.flops_tc as f64 + c.flops_fma as f64)
            / (busy * if c.flops_tc > 0 { m.tensor_flops() } else { m.fma_flops() }),
        dram_util: c.dram_bytes() as f64 / (busy * m.dram_gbs * 1e9),
    }
}

/// Total time of a sequence of kernels launched back-to-back (the
/// unfused library baselines of Figures 11/12/14): times sum, and each
/// launch pays its overhead.
pub fn time_sequence(profiles: &[KernelProfile]) -> f64 {
    profiles.iter().map(|p| p.time_s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AMPERE_A6000, VOLTA_V100};

    fn gemm_counters(m: u64, n: u64, k: u64) -> Counters {
        Counters {
            flops_tc: 2 * m * n * k,
            unique_global_read_bytes: (m * k + k * n) * 2,
            unique_global_write_bytes: m * n * 2,
            global_read_bytes: (m * k + k * n) * 2 * 8, // tile re-reads via L2
            global_write_bytes: m * n * 2,
            ..Default::default()
        }
    }

    #[test]
    fn large_gemm_is_compute_bound() {
        let c = gemm_counters(5376, 5376, 2048);
        let p = time_kernel(&c, &AMPERE_A6000, (5376 / 128) * (5376 / 128));
        assert!(
            p.tensor_time_s > p.dram_time_s,
            "tensor {} vs dram {}",
            p.tensor_time_s,
            p.dram_time_s
        );
        assert!(p.compute_util > 0.85, "util {}", p.compute_util);
        assert!(p.dram_util < 0.5, "dram util {}", p.dram_util);
    }

    #[test]
    fn tiny_kernel_dominated_by_launch() {
        let c = gemm_counters(64, 64, 64);
        let p = time_kernel(&c, &AMPERE_A6000, 1);
        assert!(p.launch_s / p.time_s > 0.5);
    }

    #[test]
    fn conflicts_slow_smem_roof() {
        let base = Counters {
            smem_read_bytes: 1 << 26,
            smem_accesses: 1 << 19,
            smem_transactions: 1 << 19,
            ..Default::default()
        };
        let conflicted = Counters { smem_transactions: 1 << 22, ..base };
        let p0 = time_kernel(&base, &VOLTA_V100, 80);
        let p1 = time_kernel(&conflicted, &VOLTA_V100, 80);
        assert!(p1.smem_time_s > p0.smem_time_s * 7.0);
    }

    #[test]
    fn sequence_pays_launch_per_kernel() {
        let c = gemm_counters(512, 512, 512);
        let p = time_kernel(&c, &AMPERE_A6000, 16);
        let total = time_sequence(&[p, p, p]);
        assert!((total - 3.0 * p.time_s).abs() < 1e-12);
        assert!(total > 3.0 * p.launch_s);
    }

    #[test]
    fn wave_quantization_penalises_ragged_grids() {
        let c = gemm_counters(4096, 4096, 1024);
        // 85 blocks on 84 SMs -> 2 waves for barely more work.
        let ragged = time_kernel(&c, &AMPERE_A6000, 85);
        let even = time_kernel(&c, &AMPERE_A6000, 84);
        assert!(ragged.time_s > even.time_s);
    }
}
