//! Compiled address plans: the compile-once/execute-many layer.
//!
//! Graphene's layouts make every data-to-thread mapping *statically
//! analyzable* (paper §3–§5): an operand view's scalar addresses are a
//! fixed relative-offset pattern ([`TensorType::scalar_offsets`])
//! shifted by a closed-form — overwhelmingly affine — base offset over
//! `blockIdx.x` / `threadIdx.x` / loop variables. The interpreter used
//! to re-derive all of this per lane per evaluation through a
//! `HashMap<String, i64>` environment; this module lowers it once:
//!
//! - [`AddressPlan`] — one operand view's compiled base offset
//!   ([`graphene_sym::CompiledExpr`] over dense slots), memoized
//!   relative offsets (shared per [`TensorType`]), and root swizzle.
//! - [`PlanCache`] — interns [`AddressPlan`]s per tensor view, shared
//!   by the interpreter, the counter analysis, and `graphene-analysis`'
//!   race/bank passes (which perform the same per-lane evaluation).
//! - [`KernelPlan`] — a whole kernel lowered to a compiled statement
//!   tree: atomics matched once, lane enumerations precomputed, operand
//!   plans resolved to dense buffer references. Execution (see
//!   [`crate::run`]) walks this plan with zero hashing on the hot path.
//! - [`BankTally`] — a reusable fixed 32-entry bank-conflict tally
//!   replacing the per-access `HashMap<i64, HashSet<i64>>`.

use crate::exec::ExecError;
use graphene_ir::atomic::{match_atomic, registry, AtomicSemantics};
use graphene_ir::body::{Predicate, Stmt, SyncScope};
use graphene_ir::printer::render_spec_header;
use graphene_ir::spec::{Spec, SpecKind};
use graphene_ir::tensor::{TensorId, TensorType};
use graphene_ir::{Arch, Kernel, MemSpace, Module};
use graphene_layout::Swizzle;
use graphene_sym::{CompiledExpr, EvalError, SlotEnv, SlotMap};
use std::collections::HashMap;
use std::sync::Arc;

/// Buffer length for a root tensor: its cosize, rounded up to a swizzle
/// period so swizzled addresses stay in range.
///
/// Public because the out-of-bounds proof pass (`graphene-analysis`
/// GRA015) checks addresses against exactly the buffer length the
/// simulator would allocate.
pub fn root_len(ty: &TensorType) -> usize {
    let mut n = ty.layout.cosize() * ty.elem.scalar_count();
    if !ty.swizzle.is_identity() {
        let p = ty.swizzle.period();
        n = (n + p - 1) / p * p;
    }
    n as usize
}

/// Memoizes [`TensorType::scalar_offsets`] per type, so every view with
/// the same layout shares one relative-offset table instead of
/// re-walking the recursive tensor type.
#[derive(Debug, Default)]
pub struct RelOffsetsMemo {
    // Keyed by the rendered type: the `layout.elem` display uniquely
    // determines the offset pattern (the swizzle is applied separately).
    by_type: HashMap<String, Arc<[i64]>>,
}

impl RelOffsetsMemo {
    /// The relative scalar offsets of `ty`, computed at most once per
    /// distinct type.
    pub fn offsets(&mut self, ty: &TensorType) -> Arc<[i64]> {
        self.by_type.entry(ty.to_string()).or_insert_with(|| ty.scalar_offsets().into()).clone()
    }
}

/// One operand view's compiled addressing: `swizzle(base(slots) + relᵢ)`.
#[derive(Debug, Clone)]
pub struct AddressPlan {
    /// Root tensor the addresses index into.
    pub root: TensorId,
    /// Compiled base-offset expression (scalar elements from the root's
    /// origin).
    pub base: CompiledExpr,
    /// Relative scalar offsets of the view, in value order.
    pub rel: Arc<[i64]>,
    /// The root tensor's swizzle.
    pub swizzle: Swizzle,
}

impl AddressPlan {
    /// Compiles the plan for view `id`, interning variables into
    /// `slots` and sharing offset tables through `memo`.
    pub fn compile(
        id: TensorId,
        module: &Module,
        slots: &mut SlotMap,
        memo: &mut RelOffsetsMemo,
    ) -> AddressPlan {
        let d = &module[id];
        let root = module.root_of(id);
        AddressPlan {
            root,
            base: d.offset.compile(slots),
            rel: memo.offsets(&d.ty),
            swizzle: module[root].ty.swizzle,
        }
    }

    /// Number of scalar addresses one lane touches.
    pub fn addrs_per_lane(&self) -> usize {
        self.rel.len()
    }

    /// Emits this lane's addresses into `out` (appending), with the
    /// swizzle applied.
    ///
    /// # Errors
    ///
    /// Fails when the base offset references an unbound slot.
    #[inline]
    pub fn emit_into(
        &self,
        env: &SlotEnv,
        slots: &SlotMap,
        out: &mut Vec<i64>,
    ) -> Result<(), EvalError> {
        let base = self.base.eval_named(env, slots)?;
        if self.swizzle.is_identity() {
            out.extend(self.rel.iter().map(|&o| base + o));
        } else {
            out.extend(self.rel.iter().map(|&o| self.swizzle.apply(base + o)));
        }
        Ok(())
    }
}

/// Interns [`AddressPlan`]s per tensor view over one shared [`SlotMap`].
///
/// All plans compiled through one cache agree on slot numbering, so a
/// single [`SlotEnv`] drives every plan — this is what the race pass,
/// the bank-conflict lint, and the counter analysis share with the
/// interpreter.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// The slot numbering shared by every plan in this cache.
    pub slots: SlotMap,
    plans: HashMap<TensorId, AddressPlan>,
    memo: RelOffsetsMemo,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The plan for view `id`, compiled on first use.
    pub fn plan(&mut self, id: TensorId, module: &Module) -> &AddressPlan {
        if !self.plans.contains_key(&id) {
            let p = AddressPlan::compile(id, module, &mut self.slots, &mut self.memo);
            self.plans.insert(id, p);
        }
        &self.plans[&id]
    }

    /// Evaluates the scalar addresses view `id` touches for each lane,
    /// under a string-keyed environment (compile-once, evaluate per
    /// lane through the slot array).
    ///
    /// # Errors
    ///
    /// Fails when the view's offset references a variable bound neither
    /// in `env` nor as a lane id.
    pub fn lane_addresses(
        &mut self,
        id: TensorId,
        module: &Module,
        lanes: &[i64],
        env: &HashMap<String, i64>,
    ) -> Result<Vec<(i64, Vec<i64>)>, EvalError> {
        self.plan(id, module);
        let tid = self.slots.slot("threadIdx.x");
        let mut senv = self.slots.env();
        senv.bind_from(&self.slots, env);
        let plan = &self.plans[&id];
        let mut out = Vec::with_capacity(lanes.len());
        for &t in lanes {
            senv.set(tid, t);
            let mut addrs = Vec::with_capacity(plan.addrs_per_lane());
            plan.emit_into(&senv, &self.slots, &mut addrs)?;
            out.push((t, addrs));
        }
        Ok(out)
    }
}

/// Reusable shared-memory bank-conflict tally: a fixed 32-entry array
/// of per-bank word lists, replacing a per-access
/// `HashMap<i64, HashSet<i64>>`.
///
/// Words are pushed with [`add_word`](Self::add_word); [`grade`](Self::grade)
/// sorts/dedups each bank in place, returns the access's cost, and
/// resets the tally for reuse.
#[derive(Debug, Default)]
pub struct BankTally {
    banks: [Vec<i64>; 32],
}

impl BankTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one 4-byte-word access.
    #[inline]
    pub fn add_word(&mut self, word: i64) {
        self.banks[(word & 31) as usize].push(word);
    }

    /// Records every word a scalar access at `addr` touches.
    #[inline]
    pub fn add_addr(&mut self, addr: i64, bytes_per: u64) {
        self.add_word(addr * bytes_per as i64 / 4);
    }

    /// Grades the recorded warp access and resets the tally:
    /// `(ideal transactions, serialised transactions)`. Each bank
    /// serves one distinct word per cycle, so the access takes
    /// max-per-bank-distinct-words cycles; the conflict-free ideal is
    /// `ceil(distinct words / 32)`.
    pub fn grade(&mut self) -> (u64, u64) {
        let mut distinct = 0usize;
        let mut worst = 0usize;
        for bank in &mut self.banks {
            if bank.is_empty() {
                continue;
            }
            bank.sort_unstable();
            bank.dedup();
            distinct += bank.len();
            worst = worst.max(bank.len());
            bank.clear();
        }
        if distinct == 0 {
            return (0, 0);
        }
        let ideal = distinct.div_ceil(32) as u64;
        (ideal, (worst as u64).max(ideal))
    }
}

/// Dense reference to a simulated buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BufRef {
    /// Memory space (selects the buffer table).
    pub mem: MemSpace,
    /// Index into the space's buffer table.
    pub idx: usize,
    /// Scalar length (per thread, for registers).
    pub len: usize,
}

/// One compiled operand: where it lives plus how to address it.
#[derive(Debug, Clone)]
pub(crate) struct COperand {
    pub buf: BufRef,
    pub plan: AddressPlan,
    pub bytes_per: u64,
}

/// Precomputed lane enumeration of one execution config.
#[derive(Debug)]
pub(crate) enum GroupLanes {
    /// Per-thread instruction: all lanes, batched into warps at run
    /// time (after guard filtering).
    PerThread(Vec<i64>),
    /// Collective instruction: the lanes of each group.
    Collective(Vec<Vec<i64>>),
}

/// A fully compiled undecomposed spec.
#[derive(Debug)]
pub(crate) struct CSpec {
    pub semantics: AtomicSemantics,
    /// Collective instructions count once per group.
    pub collective: bool,
    pub flops: u64,
    pub tensor_core: bool,
    pub lanes: GroupLanes,
    pub ins: Vec<COperand>,
    pub outs: Vec<COperand>,
    /// `Init` fill value.
    pub init_value: f32,
    /// `Shfl` butterfly mask.
    pub shfl_mask: u32,
}

/// A compiled thread-dependent guard (`lhs < rhs`).
#[derive(Debug)]
pub(crate) struct CGuard {
    pub lhs: CompiledExpr,
    pub rhs: CompiledExpr,
}

/// A compiled statement.
#[derive(Debug)]
pub(crate) enum CStmt {
    /// Zero-fill a shared or register buffer.
    Alloc(BufRef),
    For {
        slot: usize,
        extent: i64,
        body: Vec<CStmt>,
    },
    If {
        guard: CGuard,
        /// The guard mentions `threadIdx.x`: it filters lanes instead
        /// of gating the block.
        thread_dependent: bool,
        then: Vec<CStmt>,
    },
    SyncBlock,
    Exec(Box<CSpec>),
}

/// A kernel lowered for compile-once/execute-many interpretation.
///
/// Compiling resolves — once, ahead of all CTAs — everything the old
/// interpreter re-derived per block per lane: atomic-spec matching,
/// lane enumerations, operand address plans, buffer indices, and the
/// unique DRAM footprint. The plan holds no `Rc`-backed IR, so one
/// plan is shared (`&KernelPlan` is `Sync`) by every CTA worker
/// thread in parallel execution.
#[derive(Debug)]
pub struct KernelPlan {
    pub(crate) slots: SlotMap,
    pub(crate) tid_slot: usize,
    pub(crate) block_slot: usize,
    /// Global roots: `(param id, name, buffer length)`, in params order.
    pub(crate) globals: Vec<(TensorId, String, usize)>,
    /// Shared roots: `(tensor id, buffer length)`.
    pub(crate) shared: Vec<(TensorId, usize)>,
    /// Register roots: `(tensor id, per-thread length)`.
    pub(crate) regs: Vec<(TensorId, usize)>,
    pub(crate) body: Vec<CStmt>,
    pub(crate) block_threads: i64,
    pub(crate) grid: i64,
    pub(crate) unique_read: u64,
    pub(crate) unique_written: u64,
}

struct PlanBuilder<'k> {
    module: &'k Module,
    registry: Vec<graphene_ir::AtomicSpec>,
    slots: SlotMap,
    memo: RelOffsetsMemo,
    buf_of: HashMap<TensorId, BufRef>,
    globals: Vec<(TensorId, String, usize)>,
    shared: Vec<(TensorId, usize)>,
    regs: Vec<(TensorId, usize)>,
}

impl KernelPlan {
    /// Compiles `kernel` for `arch`.
    ///
    /// # Errors
    ///
    /// [`ExecError::NoAtomicMatch`] when an undecomposed spec matches
    /// no atomic spec, [`ExecError::BadInput`] on in-kernel global
    /// allocation.
    pub fn compile(kernel: &Kernel, arch: Arch) -> Result<Self, ExecError> {
        let module = &kernel.module;
        let mut b = PlanBuilder {
            module,
            registry: registry(arch),
            slots: SlotMap::new(),
            memo: RelOffsetsMemo::default(),
            buf_of: HashMap::new(),
            globals: Vec::new(),
            shared: Vec::new(),
            regs: Vec::new(),
        };
        // Reserve the hot slots first so they sit at fixed low indices.
        let block_slot = b.slots.slot("blockIdx.x");
        let tid_slot = b.slots.slot("threadIdx.x");
        for &p in &kernel.params {
            let len = root_len(&module[p].ty);
            b.buf_of.insert(p, BufRef { mem: MemSpace::Global, idx: b.globals.len(), len });
            b.globals.push((p, module[p].name.clone(), len));
        }
        let body = b.compile_stmts(&kernel.body.stmts)?;
        let (unique_read, unique_written) = unique_footprint(kernel);
        Ok(KernelPlan {
            slots: b.slots,
            tid_slot,
            block_slot,
            globals: b.globals,
            shared: b.shared,
            regs: b.regs,
            body,
            block_threads: kernel.block_size(),
            grid: kernel.grid_size(),
            unique_read,
            unique_written,
        })
    }

    /// Number of thread blocks the compiled grid launches.
    pub fn grid_size(&self) -> i64 {
        self.grid
    }

    /// Number of threads per block.
    pub fn block_size(&self) -> i64 {
        self.block_threads
    }

    /// The kernel's global parameters: `(id, name, element count)` in
    /// declaration order.
    pub fn params(&self) -> &[(TensorId, String, usize)] {
        &self.globals
    }
}

impl<'k> PlanBuilder<'k> {
    fn compile_stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<CStmt>, ExecError> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                Stmt::Tile { .. }
                | Stmt::Index { .. }
                | Stmt::ThreadTile { .. }
                | Stmt::ThreadReshape { .. }
                | Stmt::Comment(_) => {}

                Stmt::Alloc { tensor } => {
                    let d = &self.module[*tensor];
                    let len = root_len(&d.ty);
                    let buf = match d.mem {
                        MemSpace::Shared => {
                            let idx = self.shared.len();
                            self.shared.push((*tensor, len));
                            BufRef { mem: MemSpace::Shared, idx, len }
                        }
                        MemSpace::Register => {
                            let idx = self.regs.len();
                            self.regs.push((*tensor, len));
                            BufRef { mem: MemSpace::Register, idx, len }
                        }
                        MemSpace::Global => {
                            return Err(ExecError::BadInput(
                                "in-kernel global allocation unsupported".into(),
                            ))
                        }
                    };
                    self.buf_of.insert(*tensor, buf);
                    out.push(CStmt::Alloc(buf));
                }

                Stmt::For { var, extent, body, .. } => {
                    let slot = self.slots.slot(var);
                    let body = self.compile_stmts(body)?;
                    out.push(CStmt::For { slot, extent: *extent, body });
                }

                Stmt::If { cond, then } => {
                    let thread_dependent = predicate_thread_dependent(cond);
                    let guard = CGuard {
                        lhs: cond.lhs.compile(&mut self.slots),
                        rhs: cond.rhs.compile(&mut self.slots),
                    };
                    let then = self.compile_stmts(then)?;
                    out.push(CStmt::If { guard, thread_dependent, then });
                }

                Stmt::Sync(SyncScope::Block) => out.push(CStmt::SyncBlock),
                Stmt::Sync(SyncScope::Warp) => {}

                Stmt::Spec(spec) => match &spec.body {
                    Some(body) => out.extend(self.compile_stmts(&body.stmts)?),
                    None => out.push(CStmt::Exec(Box::new(self.compile_spec(spec)?))),
                },
            }
        }
        Ok(out)
    }

    fn compile_spec(&mut self, spec: &Spec) -> Result<CSpec, ExecError> {
        let atomic = match_atomic(spec, self.module, &self.registry)
            .ok_or_else(|| ExecError::NoAtomicMatch(render_spec_header(self.module, spec)))?
            .clone();
        let exec = *spec.exec.last().expect("spec has an execution config");
        let tt = &self.module[exec];
        let (num_groups, group_size) = (tt.num_groups(), tt.group_size());
        let lanes = if group_size == 1 {
            GroupLanes::PerThread((0..num_groups).map(|g| tt.group.value(g)).collect())
        } else {
            GroupLanes::Collective(
                (0..num_groups)
                    .map(|g| {
                        let base = tt.group.value(g);
                        (0..group_size).map(|j| base + tt.local.value(j)).collect()
                    })
                    .collect(),
            )
        };
        let mut operand = |id: TensorId| -> COperand {
            let plan = AddressPlan::compile(id, self.module, &mut self.slots, &mut self.memo);
            let root = plan.root;
            let buf = self.buf_of.get(&root).copied().unwrap_or_else(|| {
                // Root seen only through views (e.g. a param indexed
                // before any alloc statement): resolve lazily.
                BufRef { mem: self.module[root].mem, idx: usize::MAX, len: 0 }
            });
            debug_assert!(buf.idx != usize::MAX, "operand root has no buffer");
            COperand { buf, plan, bytes_per: self.module[id].ty.scalar_type().bytes() }
        };
        let ins: Vec<COperand> = spec.ins.iter().map(|&i| operand(i)).collect();
        let outs: Vec<COperand> = spec.outs.iter().map(|&o| operand(o)).collect();
        let init_value = match spec.kind {
            SpecKind::Init { value } => value as f32,
            _ => 0.0,
        };
        let shfl_mask = match spec.kind {
            SpecKind::Shfl { mask } => mask,
            _ => 0,
        };
        Ok(CSpec {
            semantics: atomic.semantics,
            collective: atomic.exec_local.size() > 1,
            flops: atomic.cost.flops,
            tensor_core: atomic.cost.tensor_core,
            lanes,
            ins,
            outs,
            init_value,
            shfl_mask,
        })
    }
}

/// Whether a predicate mentions `threadIdx.x`.
fn predicate_thread_dependent(cond: &Predicate) -> bool {
    cond.lhs.free_vars().iter().chain(cond.rhs.free_vars().iter()).any(|v| v == "threadIdx.x")
}

/// Unique DRAM footprint `(read, written)` from parameter usage:
/// every global param read counts once, written params once for writes.
fn unique_footprint(kernel: &Kernel) -> (u64, u64) {
    let module = &kernel.module;
    let mut reads: std::collections::HashSet<TensorId> = Default::default();
    let mut writes: std::collections::HashSet<TensorId> = Default::default();
    kernel.body.visit(&mut |s| {
        if let Stmt::Spec(spec) = s {
            for &i in &spec.ins {
                let root = module.root_of(i);
                if module[root].mem == MemSpace::Global {
                    reads.insert(root);
                }
            }
            for &o in &spec.outs {
                let root = module.root_of(o);
                if module[root].mem == MemSpace::Global {
                    writes.insert(root);
                }
            }
        }
    });
    let read = reads.into_iter().map(|r| module[r].ty.bytes()).sum();
    let written = writes.into_iter().map(|w| module[w].ty.bytes()).sum();
    (read, written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_tally_matches_hash_grading() {
        let mut tally = BankTally::new();
        // 32 lanes all hitting bank 0 -> 32-way conflict.
        for lane in 0..32 {
            tally.add_addr(lane * 32, 4);
        }
        assert_eq!(tally.grade(), (1, 32));
        // Unit-stride row: conflict-free.
        for lane in 0..32 {
            tally.add_addr(lane, 4);
        }
        assert_eq!(tally.grade(), (1, 1));
        // Tally is reusable and empty after grading.
        assert_eq!(tally.grade(), (0, 0));
        // Duplicate words in one bank count once (broadcast).
        for _ in 0..32 {
            tally.add_addr(0, 4);
        }
        assert_eq!(tally.grade(), (1, 1));
    }

    #[test]
    fn rel_offsets_memo_shares_tables() {
        use graphene_ir::ScalarType;
        use graphene_layout::Layout;
        let ty = TensorType::row_major(&[4, 8], ScalarType::F32);
        let same = TensorType::row_major(&[4, 8], ScalarType::F32);
        let other = TensorType::row_major(&[8, 4], ScalarType::F32);
        let mut memo = RelOffsetsMemo::default();
        let a = memo.offsets(&ty);
        let b = memo.offsets(&same);
        let c = memo.offsets(&other);
        assert!(Arc::ptr_eq(&a, &b), "identical types share one table");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*a, ty.scalar_offsets().as_slice());
        let _ = Layout::contiguous(1);
    }
}
