//! Plan execution: sequential and parallel CTA interpretation.
//!
//! Executes a [`KernelPlan`] — the compiled form of a kernel (see
//! [`crate::plan`]) — with no hashing, no atomic-spec re-matching, and
//! no per-lane allocation on the hot path: lane addresses are emitted
//! into a reusable scratch buffer, bank conflicts are tallied in a
//! fixed 32-entry [`BankTally`], and register files are flat
//! per-tensor arrays indexed by `thread * len + addr`.
//!
//! Independent CTAs execute concurrently under
//! [`ExecMode::Parallel`] via `std::thread::scope`: each worker owns a
//! private snapshot of the global buffers plus per-CTA shared/register
//! state, records its global writes in a per-block log, and the logs
//! are merged **in ascending block order** — so results and counters
//! are bit-identical to [`ExecMode::Sequential`] whenever no CTA reads
//! another CTA's writes (the independence every Graphene grid
//! decomposition expresses, and the golden equivalence test checks for
//! every paper kernel).

use crate::counters::Counters;
use crate::exec::{ExecError, ExecOutcome};
use crate::plan::{BankTally, BufRef, CGuard, COperand, CSpec, CStmt, GroupLanes, KernelPlan};
use graphene_ir::atomic::AtomicSemantics;
use graphene_ir::tensor::TensorId;
use graphene_ir::MemSpace;
use graphene_sym::SlotEnv;
use std::collections::HashMap;

/// How CTAs (thread blocks) are interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Blocks run one after another on the calling thread.
    Sequential,
    /// Independent blocks run concurrently across OS threads, with a
    /// deterministic in-block-order merge. Falls back to sequential
    /// when the grid (or the machine) offers no parallelism.
    #[default]
    Parallel,
    /// Like [`Parallel`](Self::Parallel) with an explicit worker-thread
    /// count, regardless of the machine's core count (used by the
    /// equivalence tests to force the threaded merge path).
    Workers(usize),
    /// Record the kernel once into a straight-line trace
    /// ([`crate::trace`]) and execute by replaying it — no statement
    /// tree, no spec dispatch, no address emission
    /// ([`crate::replay`]). Callers executing the same (kernel,
    /// problem, arch) repeatedly should record through a
    /// [`crate::trace::TraceCache`] instead, which amortises the
    /// single recording across every replay.
    Replay,
}

/// One logged global-memory write (parallel mode).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WriteRec {
    buf: u32,
    addr: i64,
    val: f32,
}

/// Reusable per-group address scratch: all lanes' addresses for every
/// operand of one spec execution, segment per operand, lane-major
/// within a segment.
#[derive(Debug, Default)]
pub(crate) struct AddrScratch {
    pub(crate) addrs: Vec<i64>,
    /// Per input operand: `(segment start, addresses per lane)`.
    pub(crate) ins: Vec<(usize, usize)>,
    /// Per output operand: `(segment start, addresses per lane)`.
    pub(crate) outs: Vec<(usize, usize)>,
}

impl AddrScratch {
    #[inline]
    fn lane(&self, seg: (usize, usize), li: usize) -> &[i64] {
        let (start, n) = seg;
        &self.addrs[start + li * n..start + (li + 1) * n]
    }
}

/// Per-worker CTA interpreter state over a shared [`KernelPlan`].
pub(crate) struct CtaRunner<'p> {
    plan: &'p KernelPlan,
    env: SlotEnv,
    global: Vec<Vec<f32>>,
    shared: Vec<Vec<f32>>,
    regs: Vec<Vec<f32>>,
    pub(crate) counters: Counters,
    scratch: AddrScratch,
    tally: BankTally,
    guards: Vec<&'p CGuard>,
    lane_buf: Vec<i64>,
    /// When `Some`, global writes are logged for the ordered merge.
    pub(crate) log: Option<Vec<WriteRec>>,
    /// When `Some`, executed allocs and groups are captured into a
    /// trace ([`crate::trace::record_trace`]).
    pub(crate) rec: Option<crate::trace::Recorder>,
}

impl<'p> CtaRunner<'p> {
    pub(crate) fn new(
        plan: &'p KernelPlan,
        global: Vec<Vec<f32>>,
        bindings: &HashMap<String, i64>,
    ) -> Self {
        let mut env = plan.slots.env();
        env.bind_from(&plan.slots, bindings);
        let shared = plan.shared.iter().map(|&(_, len)| vec![0.0; len]).collect();
        let regs = plan
            .regs
            .iter()
            .map(|&(_, len)| vec![0.0; len * plan.block_threads as usize])
            .collect();
        CtaRunner {
            plan,
            env,
            global,
            shared,
            regs,
            counters: Counters::default(),
            scratch: AddrScratch::default(),
            tally: BankTally::new(),
            guards: Vec::new(),
            lane_buf: Vec::new(),
            log: None,
            rec: None,
        }
    }

    pub(crate) fn into_globals(self) -> Vec<Vec<f32>> {
        self.global
    }

    /// Executes block `b`.
    pub(crate) fn run_block(&mut self, b: i64) -> Result<(), ExecError> {
        self.env.set(self.plan.block_slot, b);
        self.exec_stmts(&self.plan.body)
    }

    fn exec_stmts(&mut self, stmts: &'p [CStmt]) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                CStmt::Alloc(buf) => {
                    match buf.mem {
                        MemSpace::Shared => self.shared[buf.idx].fill(0.0),
                        MemSpace::Register => self.regs[buf.idx].fill(0.0),
                        MemSpace::Global => unreachable!("plan rejects global allocs"),
                    }
                    if let Some(rec) = &mut self.rec {
                        rec.record_alloc(*buf);
                    }
                }
                CStmt::For { slot, extent, body } => {
                    for i in 0..*extent {
                        self.env.set(*slot, i);
                        self.exec_stmts(body)?;
                    }
                    self.env.clear(*slot);
                }
                CStmt::If { guard, thread_dependent, then } => {
                    if *thread_dependent {
                        // Per-thread guard: push it; specs inside filter
                        // their lanes (partial-tile predication, §3.4).
                        self.guards.push(guard);
                        let r = self.exec_stmts(then);
                        self.guards.pop();
                        r?;
                    } else {
                        let l = guard
                            .lhs
                            .eval_named(&self.env, &self.plan.slots)
                            .map_err(|e| ExecError::Eval(e.to_string()))?;
                        let r = guard
                            .rhs
                            .eval_named(&self.env, &self.plan.slots)
                            .map_err(|e| ExecError::Eval(e.to_string()))?;
                        if l < r {
                            self.exec_stmts(then)?;
                        }
                    }
                }
                CStmt::SyncBlock => self.counters.syncs += 1,
                CStmt::Exec(spec) => self.exec_spec(spec)?,
            }
        }
        Ok(())
    }

    fn exec_spec(&mut self, cs: &'p CSpec) -> Result<(), ExecError> {
        match &cs.lanes {
            GroupLanes::PerThread(ids) => {
                // Per-thread instruction: batch lanes into warps so
                // bank conflicts are accounted per warp, as the
                // hardware serialises them.
                if self.guards.is_empty() {
                    for ci in 0..ids.len().div_ceil(32) {
                        self.exec_group(cs, &ids[ci * 32..((ci + 1) * 32).min(ids.len())])?;
                    }
                } else {
                    let mut buf = std::mem::take(&mut self.lane_buf);
                    buf.clear();
                    buf.extend(ids.iter().copied().filter(|&t| self.lane_active(t)));
                    self.env.clear(self.plan.tid_slot);
                    let mut r = Ok(());
                    for chunk in buf.chunks(32) {
                        r = self.exec_group(cs, chunk);
                        if r.is_err() {
                            break;
                        }
                    }
                    self.lane_buf = buf;
                    r?;
                }
            }
            GroupLanes::Collective(groups) => {
                for lanes in groups {
                    if !self.guards.is_empty() {
                        let active = lanes.iter().filter(|&&t| self.lane_active(t)).count();
                        self.env.clear(self.plan.tid_slot);
                        if active == 0 {
                            continue;
                        }
                        if active != lanes.len() {
                            return Err(ExecError::Eval(format!(
                                "collective spec under a divergent guard: {} of {} lanes active",
                                active,
                                lanes.len()
                            )));
                        }
                    }
                    self.exec_group(cs, lanes)?;
                }
            }
        }
        Ok(())
    }

    /// Does thread `t` pass every active guard predicate?
    #[inline]
    fn lane_active(&mut self, t: i64) -> bool {
        self.env.set(self.plan.tid_slot, t);
        let env = &self.env;
        self.guards.iter().all(|g| match (g.lhs.eval(env), g.rhs.eval(env)) {
            (Ok(l), Ok(r)) => l < r,
            _ => false,
        })
    }

    /// Accounts the traffic of one operand's warp-batch access.
    fn account(&mut self, op: &COperand, addrs: &[i64], is_read: bool) {
        let total = addrs.len() as u64 * op.bytes_per;
        match op.buf.mem {
            MemSpace::Global => {
                if is_read {
                    self.counters.global_read_bytes += total;
                } else {
                    self.counters.global_write_bytes += total;
                }
            }
            MemSpace::Shared => {
                if is_read {
                    self.counters.smem_read_bytes += total;
                } else {
                    self.counters.smem_write_bytes += total;
                }
                for &a in addrs {
                    self.tally.add_addr(a, op.bytes_per);
                }
                let (ideal, transactions) = self.tally.grade();
                self.counters.smem_accesses += ideal;
                self.counters.smem_transactions += transactions;
            }
            MemSpace::Register => {}
        }
    }

    #[inline]
    fn read(&self, buf: BufRef, addr: i64, thread: i64, what: &str) -> Result<f32, ExecError> {
        if addr < 0 || addr as usize >= buf.len {
            return Err(ExecError::OutOfBounds { what: what.into(), addr, len: buf.len });
        }
        Ok(match buf.mem {
            MemSpace::Global => self.global[buf.idx][addr as usize],
            MemSpace::Shared => self.shared[buf.idx][addr as usize],
            MemSpace::Register => self.regs[buf.idx][thread as usize * buf.len + addr as usize],
        })
    }

    #[inline]
    fn write(
        &mut self,
        buf: BufRef,
        addr: i64,
        thread: i64,
        v: f32,
        what: &str,
    ) -> Result<(), ExecError> {
        if addr < 0 || addr as usize >= buf.len {
            return Err(ExecError::OutOfBounds { what: what.into(), addr, len: buf.len });
        }
        match buf.mem {
            MemSpace::Global => {
                self.global[buf.idx][addr as usize] = v;
                if let Some(log) = &mut self.log {
                    log.push(WriteRec { buf: buf.idx as u32, addr, val: v });
                }
            }
            MemSpace::Shared => self.shared[buf.idx][addr as usize] = v,
            MemSpace::Register => {
                self.regs[buf.idx][thread as usize * buf.len + addr as usize] = v;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines, clippy::needless_range_loop)]
    fn exec_group(&mut self, cs: &CSpec, lanes: &[i64]) -> Result<(), ExecError> {
        self.counters.instructions += if cs.collective {
            1 // collective: one instruction per group
        } else {
            lanes.len() as u64
        };
        // Emit every lane's addresses for all operands into the scratch
        // (one flat buffer, no per-lane allocation).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.addrs.clear();
        scratch.ins.clear();
        scratch.outs.clear();
        let filled = emit_ops(
            self.plan,
            lanes,
            &cs.ins,
            &mut scratch.ins,
            &mut scratch.addrs,
            &mut self.env,
        )
        .and_then(|()| {
            emit_ops(
                self.plan,
                lanes,
                &cs.outs,
                &mut scratch.outs,
                &mut scratch.addrs,
                &mut self.env,
            )
        });
        self.env.clear(self.plan.tid_slot);
        if let Err(e) = filled {
            self.scratch = scratch;
            return Err(e);
        }

        // Traffic accounting per operand.
        for (oi, op) in cs.ins.iter().enumerate() {
            let (start, n) = scratch.ins[oi];
            let seg = &scratch.addrs[start..start + lanes.len() * n];
            self.account(op, seg, true);
        }
        for (oi, op) in cs.outs.iter().enumerate() {
            let (start, n) = scratch.outs[oi];
            let seg = &scratch.addrs[start..start + lanes.len() * n];
            self.account(op, seg, false);
        }
        if cs.tensor_core {
            // Tensor instructions execute once per group.
            self.counters.flops_tc += cs.flops;
        } else {
            // Per-thread instructions execute once per lane.
            self.counters.flops_fma += cs.flops * lanes.len() as u64;
        }

        use graphene_ir::atomic::fragments as frag;
        match cs.semantics {
            AtomicSemantics::CopyPerThread
            | AtomicSemantics::UnaryPerThread(_)
            | AtomicSemantics::BinaryPerThread(_)
            | AtomicSemantics::FmaPerThread
            | AtomicSemantics::InitPerThread
            | AtomicSemantics::ReducePerThread(_) => {
                for (li, &t) in lanes.iter().enumerate() {
                    match cs.semantics {
                        AtomicSemantics::CopyPerThread => {
                            let sa = scratch.lane(scratch.ins[0], li);
                            let da = scratch.lane(scratch.outs[0], li);
                            for (s, d) in sa.iter().zip(da) {
                                let v = self.read(cs.ins[0].buf, *s, t, "copy src")?;
                                self.write(cs.outs[0].buf, *d, t, v, "copy dst")?;
                            }
                        }
                        AtomicSemantics::UnaryPerThread(op) => {
                            let sa = scratch.lane(scratch.ins[0], li);
                            let da = scratch.lane(scratch.outs[0], li);
                            for (s, d) in sa.iter().zip(da) {
                                let v = self.read(cs.ins[0].buf, *s, t, "unary src")?;
                                self.write(
                                    cs.outs[0].buf,
                                    *d,
                                    t,
                                    op.apply(v as f64) as f32,
                                    "unary dst",
                                )?;
                            }
                        }
                        AtomicSemantics::BinaryPerThread(op) => {
                            let aa = scratch.lane(scratch.ins[0], li);
                            let ba = scratch.lane(scratch.ins[1], li);
                            let da = scratch.lane(scratch.outs[0], li);
                            for i in 0..aa.len() {
                                let x = self.read(cs.ins[0].buf, aa[i], t, "binary lhs")?;
                                let y = self.read(cs.ins[1].buf, ba[i], t, "binary rhs")?;
                                self.write(
                                    cs.outs[0].buf,
                                    da[i],
                                    t,
                                    op.apply(x as f64, y as f64) as f32,
                                    "binary dst",
                                )?;
                            }
                        }
                        AtomicSemantics::FmaPerThread => {
                            let aa = scratch.lane(scratch.ins[0], li);
                            let ba = scratch.lane(scratch.ins[1], li);
                            let ca = scratch.lane(scratch.outs[0], li);
                            for i in 0..aa.len() {
                                let a = self.read(cs.ins[0].buf, aa[i], t, "fma a")?;
                                let b = self.read(cs.ins[1].buf, ba[i], t, "fma b")?;
                                let c = self.read(cs.outs[0].buf, ca[i], t, "fma c")?;
                                self.write(cs.outs[0].buf, ca[i], t, a * b + c, "fma c")?;
                            }
                        }
                        AtomicSemantics::InitPerThread => {
                            let da = scratch.lane(scratch.outs[0], li);
                            for &d in da {
                                self.write(cs.outs[0].buf, d, t, cs.init_value, "init dst")?;
                            }
                        }
                        AtomicSemantics::ReducePerThread(op) => {
                            let sa = scratch.lane(scratch.ins[0], li);
                            let da = scratch.lane(scratch.outs[0], li);
                            let mut acc = op.identity();
                            for &s in sa {
                                acc = op.combine(
                                    acc,
                                    self.read(cs.ins[0].buf, s, t, "reduce src")? as f64,
                                );
                            }
                            self.write(cs.outs[0].buf, da[0], t, acc as f32, "reduce dst")?;
                        }
                        _ => unreachable!(),
                    }
                }
            }

            AtomicSemantics::LdMatrix { num, trans } => {
                let num = num as usize;
                // Gather the matrices: lanes 8p..8p+8 supply the 8 rows
                // (or columns, pre-transposition the source view is
                // still a row) of matrix p.
                let mut mats = vec![[[0.0f32; 8]; 8]; num];
                for p in 0..num {
                    for r in 0..8 {
                        let li = p * 8 + r;
                        let sa = scratch.lane(scratch.ins[0], li);
                        for c in 0..8 {
                            mats[p][r][c] =
                                self.read(cs.ins[0].buf, sa[c], lanes[li], "ldmatrix src")?;
                        }
                    }
                }
                // Scatter fragments: lane l, pair p, element c.
                for (li, &t) in lanes.iter().enumerate() {
                    for p in 0..num {
                        for c in 0..2 {
                            let (row, col) = if trans {
                                (2 * (li % 4) + c, li / 4)
                            } else {
                                (li / 4, 2 * (li % 4) + c)
                            };
                            let v = mats[p][row][col];
                            let d = scratch.lane(scratch.outs[0], li)[2 * p + c];
                            self.write(cs.outs[0].buf, d, t, v, "ldmatrix dst")?;
                        }
                    }
                }
            }

            AtomicSemantics::MmaAmpere16816 => {
                let mut a = [[0.0f32; 16]; 16];
                let mut b = [[0.0f32; 8]; 16];
                let mut c = [[0.0f32; 8]; 16];
                for (li, &t) in lanes.iter().enumerate() {
                    for v in 0..8 {
                        let (m_, k) = frag::mma_16816_a(li, v);
                        let sa = scratch.lane(scratch.ins[0], li)[v];
                        a[m_][k] = self.read(cs.ins[0].buf, sa, t, "mma a")?;
                    }
                    for v in 0..4 {
                        let (k, n) = frag::mma_16816_b(li, v);
                        let sb = scratch.lane(scratch.ins[1], li)[v];
                        b[k][n] = self.read(cs.ins[1].buf, sb, t, "mma b")?;
                    }
                    for v in 0..4 {
                        let (m_, n) = frag::mma_16816_c(li, v);
                        let sc = scratch.lane(scratch.outs[0], li)[v];
                        c[m_][n] = self.read(cs.outs[0].buf, sc, t, "mma c")?;
                    }
                }
                let mut d = c;
                for m_ in 0..16 {
                    for n in 0..8 {
                        let mut acc = 0.0f32;
                        for k in 0..16 {
                            acc += a[m_][k] * b[k][n];
                        }
                        d[m_][n] += acc;
                    }
                }
                for (li, &t) in lanes.iter().enumerate() {
                    for v in 0..4 {
                        let (m_, n) = frag::mma_16816_c(li, v);
                        let da = scratch.lane(scratch.outs[0], li)[v];
                        self.write(cs.outs[0].buf, da, t, d[m_][n], "mma d")?;
                    }
                }
            }

            AtomicSemantics::MmaVolta884 => {
                let mut a = [[0.0f32; 4]; 8];
                let mut b = [[0.0f32; 8]; 4];
                let mut c = [[0.0f32; 8]; 8];
                for (li, &t) in lanes.iter().enumerate() {
                    for v in 0..4 {
                        let (m_, k) = frag::mma_884_a(li, v);
                        let sa = scratch.lane(scratch.ins[0], li)[v];
                        a[m_][k] = self.read(cs.ins[0].buf, sa, t, "mma884 a")?;
                        let (k2, n) = frag::mma_884_b(li, v);
                        let sb = scratch.lane(scratch.ins[1], li)[v];
                        b[k2][n] = self.read(cs.ins[1].buf, sb, t, "mma884 b")?;
                    }
                    for v in 0..8 {
                        let (m_, n) = frag::mma_884_c(li, v);
                        let sc = scratch.lane(scratch.outs[0], li)[v];
                        c[m_][n] = self.read(cs.outs[0].buf, sc, t, "mma884 c")?;
                    }
                }
                for m_ in 0..8 {
                    for n in 0..8 {
                        let mut acc = 0.0f32;
                        for k in 0..4 {
                            acc += a[m_][k] * b[k][n];
                        }
                        c[m_][n] += acc;
                    }
                }
                for (li, &t) in lanes.iter().enumerate() {
                    for v in 0..8 {
                        let (m_, n) = frag::mma_884_c(li, v);
                        let da = scratch.lane(scratch.outs[0], li)[v];
                        self.write(cs.outs[0].buf, da, t, c[m_][n], "mma884 d")?;
                    }
                }
            }

            AtomicSemantics::ShflBfly => {
                let vals: Result<Vec<f32>, _> = lanes
                    .iter()
                    .enumerate()
                    .map(|(li, &t)| {
                        self.read(cs.ins[0].buf, scratch.lane(scratch.ins[0], li)[0], t, "shfl src")
                    })
                    .collect();
                let vals = vals?;
                for (li, &t) in lanes.iter().enumerate() {
                    let peer = li ^ cs.shfl_mask as usize;
                    let v = vals[peer % vals.len()];
                    let d = scratch.lane(scratch.outs[0], li)[0];
                    self.write(cs.outs[0].buf, d, t, v, "shfl dst")?;
                }
            }
        }
        // Capture the group only after its semantics executed cleanly:
        // every recorded address has passed the bounds checks above, so
        // replay can index without re-validating.
        if let Some(rec) = &mut self.rec {
            rec.record_group(cs, lanes, &scratch);
        }
        self.scratch = scratch;
        Ok(())
    }
}

/// Emits every lane's addresses for each operand in `ops` into `addrs`
/// (appending), recording one `(start, addrs-per-lane)` segment per
/// operand in `segs`.
fn emit_ops(
    plan: &KernelPlan,
    lanes: &[i64],
    ops: &[COperand],
    segs: &mut Vec<(usize, usize)>,
    addrs: &mut Vec<i64>,
    env: &mut SlotEnv,
) -> Result<(), ExecError> {
    for op in ops {
        let start = addrs.len();
        for &t in lanes {
            env.set(plan.tid_slot, t);
            op.plan
                .emit_into(env, &plan.slots, addrs)
                .map_err(|e| ExecError::Eval(e.to_string()))?;
        }
        segs.push((start, op.plan.addrs_per_lane()));
    }
    Ok(())
}

/// Validates `inputs` against the plan's parameters and produces the
/// initial global buffers, in params order.
fn initial_globals(
    plan: &KernelPlan,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<Vec<Vec<f32>>, ExecError> {
    plan.globals
        .iter()
        .map(|(p, name, want)| match inputs.get(p) {
            Some(b) if b.len() != *want => Err(ExecError::BadInput(format!(
                "param %{} expects {} scalars, got {}",
                name,
                want,
                b.len()
            ))),
            Some(b) => Ok(b.clone()),
            None => Ok(vec![0.0; *want]),
        })
        .collect()
}

/// Executes a compiled plan.
///
/// # Errors
///
/// See [`ExecError`]. Error reporting is deterministic in both modes:
/// when several blocks fail, the failure of the lowest block id is
/// returned.
pub fn execute_plan(
    plan: &KernelPlan,
    inputs: &HashMap<TensorId, Vec<f32>>,
    bindings: &HashMap<String, i64>,
    mode: ExecMode,
) -> Result<ExecOutcome, ExecError> {
    if mode == ExecMode::Replay {
        // Record once, optimize, replay once — the same pipeline the
        // `TraceCache` runs, so one-shot replay execution and cached
        // replay are the same engine. Repeated executions should share
        // a `TraceCache` and call `replay_opt` directly.
        let trace = crate::trace_opt::record_opt_trace(plan, bindings)?;
        return crate::replay::replay_opt(&trace, inputs);
    }
    let init = initial_globals(plan, inputs)?;
    let workers = match mode {
        ExecMode::Sequential | ExecMode::Replay => 1,
        ExecMode::Parallel => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(plan.grid.max(1) as usize),
        ExecMode::Workers(n) => n.max(1).min(plan.grid.max(1) as usize),
    };
    let (globals, mut counters) = if workers <= 1 || plan.grid <= 1 {
        run_sequential(plan, init, bindings)?
    } else {
        run_parallel(plan, init, bindings, workers)?
    };
    counters.unique_global_read_bytes = plan.unique_read;
    counters.unique_global_write_bytes = plan.unique_written;
    let globals = plan.globals.iter().map(|(p, _, _)| *p).zip(globals).collect::<HashMap<_, _>>();
    Ok(ExecOutcome { globals, counters })
}

fn run_sequential(
    plan: &KernelPlan,
    init: Vec<Vec<f32>>,
    bindings: &HashMap<String, i64>,
) -> Result<(Vec<Vec<f32>>, Counters), ExecError> {
    let mut runner = CtaRunner::new(plan, init, bindings);
    for b in 0..plan.grid {
        runner.run_block(b)?;
    }
    let counters = runner.counters;
    Ok((runner.into_globals(), counters))
}

fn run_parallel(
    plan: &KernelPlan,
    init: Vec<Vec<f32>>,
    bindings: &HashMap<String, i64>,
    workers: usize,
) -> Result<(Vec<Vec<f32>>, Counters), ExecError> {
    let grid = plan.grid as usize;
    let chunk = grid.div_ceil(workers);
    let mut logs: Vec<Vec<WriteRec>> = vec![Vec::new(); grid];
    let mut worker_counters: Vec<Counters> = vec![Counters::default(); workers];
    let mut worker_errs: Vec<Option<(i64, ExecError)>> = vec![None; workers];
    let init_ref = &init;
    std::thread::scope(|s| {
        for ((w, log_chunk), (ctr, err)) in (0..workers)
            .zip(logs.chunks_mut(chunk))
            .zip(worker_counters.iter_mut().zip(worker_errs.iter_mut()))
        {
            s.spawn(move || {
                let mut runner = CtaRunner::new(plan, init_ref.clone(), bindings);
                for (i, slot) in log_chunk.iter_mut().enumerate() {
                    let b = (w * chunk + i) as i64;
                    runner.log = Some(Vec::new());
                    match runner.run_block(b) {
                        Ok(()) => *slot = runner.log.take().expect("log set above"),
                        Err(e) => {
                            *err = Some((b, e));
                            break;
                        }
                    }
                }
                *ctr = runner.counters;
            });
        }
    });
    if let Some((_, e)) = worker_errs.into_iter().flatten().min_by_key(|&(b, _)| b) {
        return Err(e);
    }
    // Deterministic merge: apply every block's writes in block order,
    // and fold worker counters in worker order.
    let mut globals = init;
    for log in &logs {
        for rec in log {
            globals[rec.buf as usize][rec.addr as usize] = rec.val;
        }
    }
    let mut counters = Counters::default();
    for c in &worker_counters {
        counters.merge(c);
    }
    Ok((globals, counters))
}
