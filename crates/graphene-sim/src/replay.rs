//! Replay execution: re-run a recorded [`Trace`] against fresh inputs.
//!
//! A replay is a single pass over a straight-line program: no `CSpec`
//! dispatch, no symbolic environment, no guard evaluation, no
//! per-group address emission, no traffic accounting — every step is
//! an op kind plus precomputed `u32` addresses into flat `f32`
//! buffers. Counters were captured at record time (they are
//! input-independent) and are returned unchanged.
//!
//! Like the compiled executor ([`crate::run`]), independent CTAs can
//! replay concurrently: workers chunk the recorded blocks, each owns a
//! private snapshot of the global buffers, logs its global writes, and
//! the logs merge **in ascending block order** — bit-identical to the
//! sequential replay whenever no CTA reads another CTA's writes.

use crate::exec::{ExecError, ExecOutcome};
use crate::run::ExecMode;
use crate::trace::{TOp, Trace};
use std::collections::HashMap;

use graphene_ir::tensor::TensorId;

/// One logged global write during a parallel replay.
#[derive(Debug, Clone, Copy)]
struct RWrite {
    buf: u32,
    addr: u32,
    val: f32,
}

/// Replays a trace sequentially against `inputs`.
///
/// `inputs` maps kernel parameters to their buffers, exactly as for
/// [`crate::exec::execute`]; missing params are zero-initialised.
///
/// # Errors
///
/// [`ExecError::BadInput`] when an input buffer is mis-sized. Replay
/// itself cannot fail: every address was bounds-validated when the
/// recording run executed it.
pub fn replay(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<ExecOutcome, ExecError> {
    replay_with(trace, inputs, ExecMode::Sequential)
}

/// Like [`replay`], with an explicit [`ExecMode`] selecting sequential
/// or parallel CTA replay ([`ExecMode::Replay`] acts as sequential).
///
/// # Errors
///
/// See [`replay`].
pub fn replay_with(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
    mode: ExecMode,
) -> Result<ExecOutcome, ExecError> {
    let init = initial_bufs(trace, inputs)?;
    let grid = trace.blocks.len();
    let workers = match mode {
        ExecMode::Sequential | ExecMode::Replay => 1,
        ExecMode::Parallel => {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(grid.max(1))
        }
        ExecMode::Workers(n) => n.max(1).min(grid.max(1)),
    };
    let globals = if workers <= 1 || grid <= 1 {
        run_sequential(trace, init)
    } else {
        run_parallel(trace, init, workers)
    };
    let globals = trace.params.iter().map(|(p, _, _)| *p).zip(globals).collect::<HashMap<_, _>>();
    Ok(ExecOutcome { globals, counters: trace.counters })
}

/// Validates `inputs` against the trace's parameters and produces the
/// unified buffer table (globals in params order, then zeroed shared
/// and register buffers).
fn initial_bufs(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<Vec<Vec<f32>>, ExecError> {
    let mut bufs = Vec::with_capacity(trace.buf_lens.len());
    for (p, name, want) in &trace.params {
        match inputs.get(p) {
            Some(b) if b.len() != *want => {
                return Err(ExecError::BadInput(format!(
                    "param %{} expects {} scalars, got {}",
                    name,
                    want,
                    b.len()
                )))
            }
            Some(b) => bufs.push(b.clone()),
            None => bufs.push(vec![0.0; *want]),
        }
    }
    bufs.extend(trace.buf_lens[trace.n_globals..].iter().map(|&len| vec![0.0; len]));
    Ok(bufs)
}

fn run_sequential(trace: &Trace, init: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let mut cta = ReplayCta { trace, bufs: init, log: None };
    for b in 0..trace.blocks.len() {
        cta.run_block(b);
    }
    cta.bufs.truncate(trace.n_globals);
    cta.bufs
}

fn run_parallel(trace: &Trace, init: Vec<Vec<f32>>, workers: usize) -> Vec<Vec<f32>> {
    let grid = trace.blocks.len();
    let chunk = grid.div_ceil(workers);
    let mut logs: Vec<Vec<RWrite>> = vec![Vec::new(); grid];
    let init_ref = &init;
    std::thread::scope(|s| {
        for (w, log_chunk) in (0..workers).zip(logs.chunks_mut(chunk)) {
            s.spawn(move || {
                let mut cta = ReplayCta { trace, bufs: init_ref.clone(), log: Some(Vec::new()) };
                for (i, slot) in log_chunk.iter_mut().enumerate() {
                    cta.run_block(w * chunk + i);
                    *slot = std::mem::take(cta.log.as_mut().expect("log installed"));
                }
            });
        }
    });
    // Deterministic merge: apply every block's writes in block order.
    let mut globals = init;
    globals.truncate(trace.n_globals);
    for log in &logs {
        for rec in log {
            globals[rec.buf as usize][rec.addr as usize] = rec.val;
        }
    }
    globals
}

/// Per-worker replay state: the unified flat buffer table plus an
/// optional global-write log for the parallel merge.
struct ReplayCta<'t> {
    trace: &'t Trace,
    bufs: Vec<Vec<f32>>,
    log: Option<Vec<RWrite>>,
}

impl ReplayCta<'_> {
    #[inline]
    fn get(&self, buf: u32, addr: u32) -> f32 {
        self.bufs[buf as usize][addr as usize]
    }

    #[inline]
    fn put(&mut self, buf: u32, addr: u32, v: f32) {
        self.bufs[buf as usize][addr as usize] = v;
        if (buf as usize) < self.trace.n_globals {
            if let Some(log) = &mut self.log {
                log.push(RWrite { buf, addr, val: v });
            }
        }
    }

    #[allow(clippy::too_many_lines, clippy::needless_range_loop)]
    fn run_block(&mut self, b: usize) {
        let trace = self.trace;
        let (start, end) = trace.blocks[b];
        let ar: &[u32] = &trace.addrs;
        use graphene_ir::atomic::fragments as frag;
        for step in &trace.steps[start as usize..end as usize] {
            match *step {
                TOp::Fill { buf } => {
                    self.bufs[buf as usize].fill(0.0);
                    // A global fill would need logging for the parallel
                    // merge, but plans reject global allocs, so filled
                    // buffers are always shared/register.
                }
                TOp::Copy { src, dst, sa, da, n } => {
                    for i in 0..n as usize {
                        let v = self.get(src, ar[sa as usize + i]);
                        self.put(dst, ar[da as usize + i], v);
                    }
                }
                TOp::Unary { op, src, dst, sa, da, n } => {
                    for i in 0..n as usize {
                        let v = self.get(src, ar[sa as usize + i]);
                        self.put(dst, ar[da as usize + i], op.apply(v as f64) as f32);
                    }
                }
                TOp::Binary { op, a, b, dst, aa, ba, da, n } => {
                    for i in 0..n as usize {
                        let x = self.get(a, ar[aa as usize + i]);
                        let y = self.get(b, ar[ba as usize + i]);
                        self.put(dst, ar[da as usize + i], op.apply(x as f64, y as f64) as f32);
                    }
                }
                TOp::Fma { a, b, c, aa, ba, ca, n } => {
                    for i in 0..n as usize {
                        let x = self.get(a, ar[aa as usize + i]);
                        let y = self.get(b, ar[ba as usize + i]);
                        let addr = ar[ca as usize + i];
                        let z = self.get(c, addr);
                        self.put(c, addr, x * y + z);
                    }
                }
                TOp::Init { value, dst, da, n } => {
                    for i in 0..n as usize {
                        self.put(dst, ar[da as usize + i], value);
                    }
                }
                TOp::Reduce { op, src, dst, sa, da, groups, per } => {
                    for g in 0..groups as usize {
                        let base = sa as usize + g * per as usize;
                        let mut acc = op.identity();
                        for j in 0..per as usize {
                            acc = op.combine(acc, self.get(src, ar[base + j]) as f64);
                        }
                        self.put(dst, ar[da as usize + g], acc as f32);
                    }
                }
                TOp::LdMatrix { num, trans, src, dst, sa, sper, da, dper, lanes } => {
                    let num = num as usize;
                    let mut mats = [[[0.0f32; 8]; 8]; 4];
                    for p in 0..num {
                        for r in 0..8 {
                            let base = sa as usize + (p * 8 + r) * sper as usize;
                            for c in 0..8 {
                                mats[p][r][c] = self.get(src, ar[base + c]);
                            }
                        }
                    }
                    for li in 0..lanes as usize {
                        let dbase = da as usize + li * dper as usize;
                        for p in 0..num {
                            for c in 0..2 {
                                let (row, col) = if trans {
                                    (2 * (li % 4) + c, li / 4)
                                } else {
                                    (li / 4, 2 * (li % 4) + c)
                                };
                                self.put(dst, ar[dbase + 2 * p + c], mats[p][row][col]);
                            }
                        }
                    }
                }
                TOp::Mma16816 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let mut am = [[0.0f32; 16]; 16];
                    let mut bm = [[0.0f32; 8]; 16];
                    let mut cm = [[0.0f32; 8]; 16];
                    for li in 0..lanes as usize {
                        let abase = aa as usize + li * aper as usize;
                        for v in 0..8 {
                            let (m_, k) = frag::mma_16816_a(li, v);
                            am[m_][k] = self.get(a, ar[abase + v]);
                        }
                        let bbase = ba as usize + li * bper as usize;
                        for v in 0..4 {
                            let (k, n) = frag::mma_16816_b(li, v);
                            bm[k][n] = self.get(b, ar[bbase + v]);
                        }
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..4 {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            cm[m_][n] = self.get(c, ar[cbase + v]);
                        }
                    }
                    let mut d = cm;
                    for m_ in 0..16 {
                        for n in 0..8 {
                            let mut acc = 0.0f32;
                            for k in 0..16 {
                                acc += am[m_][k] * bm[k][n];
                            }
                            d[m_][n] += acc;
                        }
                    }
                    for li in 0..lanes as usize {
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..4 {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            self.put(c, ar[cbase + v], d[m_][n]);
                        }
                    }
                }
                TOp::Mma884 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let mut am = [[0.0f32; 4]; 8];
                    let mut bm = [[0.0f32; 8]; 4];
                    let mut cm = [[0.0f32; 8]; 8];
                    for li in 0..lanes as usize {
                        let abase = aa as usize + li * aper as usize;
                        let bbase = ba as usize + li * bper as usize;
                        for v in 0..4 {
                            let (m_, k) = frag::mma_884_a(li, v);
                            am[m_][k] = self.get(a, ar[abase + v]);
                            let (k2, n) = frag::mma_884_b(li, v);
                            bm[k2][n] = self.get(b, ar[bbase + v]);
                        }
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..8 {
                            let (m_, n) = frag::mma_884_c(li, v);
                            cm[m_][n] = self.get(c, ar[cbase + v]);
                        }
                    }
                    for m_ in 0..8 {
                        for n in 0..8 {
                            let mut acc = 0.0f32;
                            for k in 0..4 {
                                acc += am[m_][k] * bm[k][n];
                            }
                            cm[m_][n] += acc;
                        }
                    }
                    for li in 0..lanes as usize {
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..8 {
                            let (m_, n) = frag::mma_884_c(li, v);
                            self.put(c, ar[cbase + v], cm[m_][n]);
                        }
                    }
                }
                TOp::Shfl { mask, src, dst, sa, da, lanes } => {
                    let lanes = lanes as usize;
                    let vals: Vec<f32> =
                        (0..lanes).map(|li| self.get(src, ar[sa as usize + li])).collect();
                    for li in 0..lanes {
                        let peer = li ^ mask as usize;
                        let v = vals[peer % vals.len()];
                        self.put(dst, ar[da as usize + li], v);
                    }
                }
            }
        }
    }
}
