//! Replay execution: re-run a recorded [`Trace`] against fresh inputs.
//!
//! A replay is a single pass over a straight-line program: no `CSpec`
//! dispatch, no symbolic environment, no guard evaluation, no
//! per-group address emission, no traffic accounting — every step is
//! an op kind plus precomputed `u32` addresses into flat `f32`
//! buffers. Counters were captured at record time (they are
//! input-independent) and are returned unchanged.
//!
//! Like the compiled executor ([`crate::run`]), independent CTAs can
//! replay concurrently: workers chunk the recorded blocks, each owns a
//! private snapshot of the global buffers, logs its global writes, and
//! the logs merge **in ascending block order** — bit-identical to the
//! sequential replay whenever no CTA reads another CTA's writes.

use crate::exec::{ExecError, ExecOutcome};
use crate::run::ExecMode;
use crate::trace::{TOp, Trace};
use crate::trace_opt::{LaneRef, OTp, OptTrace, Span};
use std::collections::HashMap;

use graphene_ir::tensor::TensorId;

/// One logged global write during a parallel replay.
#[derive(Debug, Clone, Copy)]
struct RWrite {
    buf: u32,
    addr: u32,
    val: f32,
}

/// Replays a trace sequentially against `inputs`.
///
/// `inputs` maps kernel parameters to their buffers, exactly as for
/// [`crate::exec::execute`]; missing params are zero-initialised.
///
/// # Errors
///
/// [`ExecError::BadInput`] when an input buffer is mis-sized. Replay
/// itself cannot fail: every address was bounds-validated when the
/// recording run executed it.
pub fn replay(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<ExecOutcome, ExecError> {
    replay_with(trace, inputs, ExecMode::Sequential)
}

/// Like [`replay`], with an explicit [`ExecMode`] selecting sequential
/// or parallel CTA replay ([`ExecMode::Replay`] acts as sequential).
///
/// # Errors
///
/// See [`replay`].
pub fn replay_with(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
    mode: ExecMode,
) -> Result<ExecOutcome, ExecError> {
    let init = initial_bufs(trace, inputs)?;
    let grid = trace.blocks.len();
    let workers = match mode {
        ExecMode::Sequential | ExecMode::Replay => 1,
        ExecMode::Parallel => {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(grid.max(1))
        }
        ExecMode::Workers(n) => n.max(1).min(grid.max(1)),
    };
    let globals = if workers <= 1 || grid <= 1 {
        run_sequential(trace, init)
    } else {
        run_parallel(trace, init, workers)
    };
    let globals = trace.params.iter().map(|(p, _, _)| *p).zip(globals).collect::<HashMap<_, _>>();
    Ok(ExecOutcome { globals, counters: trace.counters })
}

/// Validates `inputs` against the trace's parameters and produces the
/// unified buffer table (globals in params order, then zeroed shared
/// and register buffers). Shared by the raw and optimized replays.
fn initial_bufs_from(
    params: &[(TensorId, String, usize)],
    buf_lens: &[usize],
    n_globals: usize,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<Vec<Vec<f32>>, ExecError> {
    let mut bufs = Vec::with_capacity(buf_lens.len());
    for (p, name, want) in params {
        match inputs.get(p) {
            Some(b) if b.len() != *want => {
                return Err(ExecError::BadInput(format!(
                    "param %{} expects {} scalars, got {}",
                    name,
                    want,
                    b.len()
                )))
            }
            Some(b) => bufs.push(b.clone()),
            None => bufs.push(vec![0.0; *want]),
        }
    }
    bufs.extend(buf_lens[n_globals..].iter().map(|&len| vec![0.0; len]));
    Ok(bufs)
}

fn initial_bufs(
    trace: &Trace,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<Vec<Vec<f32>>, ExecError> {
    initial_bufs_from(&trace.params, &trace.buf_lens, trace.n_globals, inputs)
}

fn run_sequential(trace: &Trace, init: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let mut cta = ReplayCta { trace, bufs: init, log: None };
    for b in 0..trace.blocks.len() {
        cta.run_block(b);
    }
    cta.bufs.truncate(trace.n_globals);
    cta.bufs
}

fn run_parallel(trace: &Trace, init: Vec<Vec<f32>>, workers: usize) -> Vec<Vec<f32>> {
    let grid = trace.blocks.len();
    let chunk = grid.div_ceil(workers);
    let mut logs: Vec<Vec<RWrite>> = vec![Vec::new(); grid];
    let init_ref = &init;
    std::thread::scope(|s| {
        for (w, log_chunk) in (0..workers).zip(logs.chunks_mut(chunk)) {
            s.spawn(move || {
                let mut cta = ReplayCta { trace, bufs: init_ref.clone(), log: Some(Vec::new()) };
                for (i, slot) in log_chunk.iter_mut().enumerate() {
                    cta.run_block(w * chunk + i);
                    *slot = std::mem::take(cta.log.as_mut().expect("log installed"));
                }
            });
        }
    });
    // Deterministic merge: apply every block's writes in block order.
    let mut globals = init;
    globals.truncate(trace.n_globals);
    for log in &logs {
        for rec in log {
            globals[rec.buf as usize][rec.addr as usize] = rec.val;
        }
    }
    globals
}

/// Replays an optimized trace sequentially against `inputs` — the
/// coalesced fast path: contiguous copies run as `copy_from_slice`,
/// contiguous element-wise steps as tight slice loops, strided/lane
/// spans as stepped loops, and only residual gathers walk an address
/// array. Bit-identical to [`replay`] of the unoptimized trace.
///
/// # Errors
///
/// [`ExecError::BadInput`] when an input buffer is mis-sized.
pub fn replay_opt(
    trace: &OptTrace,
    inputs: &HashMap<TensorId, Vec<f32>>,
) -> Result<ExecOutcome, ExecError> {
    replay_opt_with(trace, inputs, ExecMode::Sequential)
}

/// Like [`replay_opt`], with an explicit [`ExecMode`] selecting
/// sequential or parallel CTA replay ([`ExecMode::Replay`] acts as
/// sequential). The parallel merge logs whole written runs instead of
/// scalar writes, so coalesced steps stay coalesced across the merge.
///
/// # Errors
///
/// See [`replay_opt`].
pub fn replay_opt_with(
    trace: &OptTrace,
    inputs: &HashMap<TensorId, Vec<f32>>,
    mode: ExecMode,
) -> Result<ExecOutcome, ExecError> {
    let init = initial_bufs_from(&trace.params, &trace.buf_lens, trace.n_globals, inputs)?;
    let grid = trace.blocks.len();
    let workers = match mode {
        ExecMode::Sequential | ExecMode::Replay => 1,
        ExecMode::Parallel => {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(grid.max(1))
        }
        ExecMode::Workers(n) => n.max(1).min(grid.max(1)),
    };
    let globals = if workers <= 1 || grid <= 1 {
        let mut cta = OptCta { trace, bufs: init, log: None };
        for b in 0..grid {
            cta.run_block(b);
        }
        cta.bufs.truncate(trace.n_globals);
        cta.bufs
    } else {
        run_parallel_opt(trace, init, workers)
    };
    let globals = trace.params.iter().map(|(p, _, _)| *p).zip(globals).collect::<HashMap<_, _>>();
    Ok(ExecOutcome { globals, counters: trace.counters })
}

fn run_parallel_opt(trace: &OptTrace, init: Vec<Vec<f32>>, workers: usize) -> Vec<Vec<f32>> {
    let grid = trace.blocks.len();
    let chunk = grid.div_ceil(workers);
    let mut logs: Vec<Vec<OWrite>> = vec![Vec::new(); grid];
    let init_ref = &init;
    std::thread::scope(|s| {
        for (w, log_chunk) in (0..workers).zip(logs.chunks_mut(chunk)) {
            s.spawn(move || {
                let mut cta = OptCta { trace, bufs: init_ref.clone(), log: Some(Vec::new()) };
                for (i, slot) in log_chunk.iter_mut().enumerate() {
                    cta.run_block(w * chunk + i);
                    *slot = std::mem::take(cta.log.as_mut().expect("log installed"));
                }
            });
        }
    });
    // Deterministic merge: apply every block's writes in block order;
    // run entries splat whole slices, scalar entries single elements.
    let mut globals = init;
    globals.truncate(trace.n_globals);
    for log in &logs {
        for rec in log {
            match rec {
                OWrite::Run { buf, start, vals } => {
                    let s = *start as usize;
                    globals[*buf as usize][s..s + vals.len()].copy_from_slice(vals);
                }
                OWrite::At { buf, addr, val } => {
                    globals[*buf as usize][*addr as usize] = *val;
                }
            }
        }
    }
    globals
}

/// One logged global write of an optimized parallel replay: either a
/// whole contiguous run (from a coalesced step) or a scalar.
#[derive(Debug, Clone)]
enum OWrite {
    Run { buf: u32, start: u32, vals: Vec<f32> },
    At { buf: u32, addr: u32, val: f32 },
}

/// Per-worker replay state: the unified flat buffer table plus an
/// optional global-write log for the parallel merge.
struct ReplayCta<'t> {
    trace: &'t Trace,
    bufs: Vec<Vec<f32>>,
    log: Option<Vec<RWrite>>,
}

impl ReplayCta<'_> {
    #[inline]
    fn get(&self, buf: u32, addr: u32) -> f32 {
        self.bufs[buf as usize][addr as usize]
    }

    #[inline]
    fn put(&mut self, buf: u32, addr: u32, v: f32) {
        self.bufs[buf as usize][addr as usize] = v;
        if (buf as usize) < self.trace.n_globals {
            if let Some(log) = &mut self.log {
                log.push(RWrite { buf, addr, val: v });
            }
        }
    }

    #[allow(clippy::too_many_lines, clippy::needless_range_loop)]
    fn run_block(&mut self, b: usize) {
        let trace = self.trace;
        let (start, end) = trace.blocks[b];
        let ar: &[u32] = &trace.addrs;
        use graphene_ir::atomic::fragments as frag;
        for step in &trace.steps[start as usize..end as usize] {
            match *step {
                TOp::Fill { buf } => {
                    self.bufs[buf as usize].fill(0.0);
                    // A global fill would need logging for the parallel
                    // merge, but plans reject global allocs, so filled
                    // buffers are always shared/register.
                }
                TOp::Copy { src, dst, sa, da, n } => {
                    for i in 0..n as usize {
                        let v = self.get(src, ar[sa as usize + i]);
                        self.put(dst, ar[da as usize + i], v);
                    }
                }
                TOp::Unary { op, src, dst, sa, da, n } => {
                    for i in 0..n as usize {
                        let v = self.get(src, ar[sa as usize + i]);
                        self.put(dst, ar[da as usize + i], op.apply(v as f64) as f32);
                    }
                }
                TOp::Binary { op, a, b, dst, aa, ba, da, n } => {
                    for i in 0..n as usize {
                        let x = self.get(a, ar[aa as usize + i]);
                        let y = self.get(b, ar[ba as usize + i]);
                        self.put(dst, ar[da as usize + i], op.apply(x as f64, y as f64) as f32);
                    }
                }
                TOp::Fma { a, b, c, aa, ba, ca, n } => {
                    for i in 0..n as usize {
                        let x = self.get(a, ar[aa as usize + i]);
                        let y = self.get(b, ar[ba as usize + i]);
                        let addr = ar[ca as usize + i];
                        let z = self.get(c, addr);
                        self.put(c, addr, x * y + z);
                    }
                }
                TOp::Init { value, dst, da, n } => {
                    for i in 0..n as usize {
                        self.put(dst, ar[da as usize + i], value);
                    }
                }
                TOp::Reduce { op, src, dst, sa, da, groups, per } => {
                    for g in 0..groups as usize {
                        let base = sa as usize + g * per as usize;
                        let mut acc = op.identity();
                        for j in 0..per as usize {
                            acc = op.combine(acc, self.get(src, ar[base + j]) as f64);
                        }
                        self.put(dst, ar[da as usize + g], acc as f32);
                    }
                }
                TOp::LdMatrix { num, trans, src, dst, sa, sper, da, dper, lanes } => {
                    let num = num as usize;
                    let mut mats = [[[0.0f32; 8]; 8]; 4];
                    for p in 0..num {
                        for r in 0..8 {
                            let base = sa as usize + (p * 8 + r) * sper as usize;
                            for c in 0..8 {
                                mats[p][r][c] = self.get(src, ar[base + c]);
                            }
                        }
                    }
                    for li in 0..lanes as usize {
                        let dbase = da as usize + li * dper as usize;
                        for p in 0..num {
                            for c in 0..2 {
                                let (row, col) = if trans {
                                    (2 * (li % 4) + c, li / 4)
                                } else {
                                    (li / 4, 2 * (li % 4) + c)
                                };
                                self.put(dst, ar[dbase + 2 * p + c], mats[p][row][col]);
                            }
                        }
                    }
                }
                TOp::Mma16816 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let mut am = [[0.0f32; 16]; 16];
                    let mut bm = [[0.0f32; 8]; 16];
                    let mut cm = [[0.0f32; 8]; 16];
                    for li in 0..lanes as usize {
                        let abase = aa as usize + li * aper as usize;
                        for v in 0..8 {
                            let (m_, k) = frag::mma_16816_a(li, v);
                            am[m_][k] = self.get(a, ar[abase + v]);
                        }
                        let bbase = ba as usize + li * bper as usize;
                        for v in 0..4 {
                            let (k, n) = frag::mma_16816_b(li, v);
                            bm[k][n] = self.get(b, ar[bbase + v]);
                        }
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..4 {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            cm[m_][n] = self.get(c, ar[cbase + v]);
                        }
                    }
                    let mut d = cm;
                    for m_ in 0..16 {
                        for n in 0..8 {
                            let mut acc = 0.0f32;
                            for k in 0..16 {
                                acc += am[m_][k] * bm[k][n];
                            }
                            d[m_][n] += acc;
                        }
                    }
                    for li in 0..lanes as usize {
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..4 {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            self.put(c, ar[cbase + v], d[m_][n]);
                        }
                    }
                }
                TOp::Mma884 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let mut am = [[0.0f32; 4]; 8];
                    let mut bm = [[0.0f32; 8]; 4];
                    let mut cm = [[0.0f32; 8]; 8];
                    for li in 0..lanes as usize {
                        let abase = aa as usize + li * aper as usize;
                        let bbase = ba as usize + li * bper as usize;
                        for v in 0..4 {
                            let (m_, k) = frag::mma_884_a(li, v);
                            am[m_][k] = self.get(a, ar[abase + v]);
                            let (k2, n) = frag::mma_884_b(li, v);
                            bm[k2][n] = self.get(b, ar[bbase + v]);
                        }
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..8 {
                            let (m_, n) = frag::mma_884_c(li, v);
                            cm[m_][n] = self.get(c, ar[cbase + v]);
                        }
                    }
                    for m_ in 0..8 {
                        for n in 0..8 {
                            let mut acc = 0.0f32;
                            for k in 0..4 {
                                acc += am[m_][k] * bm[k][n];
                            }
                            cm[m_][n] += acc;
                        }
                    }
                    for li in 0..lanes as usize {
                        let cbase = ca as usize + li * cper as usize;
                        for v in 0..8 {
                            let (m_, n) = frag::mma_884_c(li, v);
                            self.put(c, ar[cbase + v], cm[m_][n]);
                        }
                    }
                }
                TOp::Shfl { mask, src, dst, sa, da, lanes } => {
                    let lanes = lanes as usize;
                    let vals: Vec<f32> =
                        (0..lanes).map(|li| self.get(src, ar[sa as usize + li])).collect();
                    for li in 0..lanes {
                        let peer = li ^ mask as usize;
                        let v = vals[peer % vals.len()];
                        self.put(dst, ar[da as usize + li], v);
                    }
                }
            }
        }
    }
}

/// Zero-dispatch address streams: a [`Span`] resolves to one concrete
/// stream type per step (not per element), so the loops below
/// monomorphize per variant combination with no enum branch in the
/// body — the difference between matching and beating the raw arena
/// walk.
trait Addrs {
    fn next_addr(&mut self) -> usize;
}

struct AffA {
    cur: i64,
    step: i64,
}

impl Addrs for AffA {
    #[inline(always)]
    fn next_addr(&mut self) -> usize {
        let a = self.cur;
        self.cur += self.step;
        a as usize
    }
}

struct LanA {
    cur: i64,
    row: i64,
    lane: i64,
    stride: i64,
    per: u32,
    j: u32,
}

impl Addrs for LanA {
    #[inline(always)]
    fn next_addr(&mut self) -> usize {
        let a = self.cur;
        self.j += 1;
        if self.j == self.per {
            self.j = 0;
            self.row += self.lane;
            self.cur = self.row;
        } else {
            self.cur += self.stride;
        }
        a as usize
    }
}

struct GatA<'g> {
    g: &'g [u32],
    i: usize,
}

impl Addrs for GatA<'_> {
    #[inline(always)]
    fn next_addr(&mut self) -> usize {
        let a = self.g[self.i];
        self.i += 1;
        a as usize
    }
}

/// Binds `$it` to the concrete stream for `$span` and runs `$body`
/// once — the single variant match per operand per step.
macro_rules! dispatch_span {
    ($span:expr, $g:expr, |$it:ident| $body:expr) => {
        match $span {
            Span::Affine { base, stride } => {
                let mut $it = AffA { cur: i64::from(base), step: i64::from(stride) };
                $body
            }
            Span::Lanes { base, lane, stride, per } => {
                let mut $it = LanA {
                    cur: i64::from(base),
                    row: i64::from(base),
                    lane: i64::from(lane),
                    stride: i64::from(stride),
                    per,
                    j: 0,
                };
                $body
            }
            Span::Gather { start } => {
                let mut $it = GatA { g: $g, i: start as usize };
                $body
            }
        }
    };
}

/// The loop drivers are macros, not generic fns taking closures: a
/// closure shared by 9–27 monomorphized loop variants is too bloated
/// for LLVM to inline, leaving a function call per element. Textual
/// expansion gives every span-variant combination its own
/// straight-line loop body.
macro_rules! each1 {
    ($s:expr, $g:expr, $n:expr, |$a:ident| $body:expr) => {
        dispatch_span!($s, $g, |it| for _ in 0..$n {
            let $a = it.next_addr();
            $body
        })
    };
}

macro_rules! zip2 {
    ($s:expr, $d:expr, $g:expr, $n:expr, |$a:ident, $b:ident| $body:expr) => {
        dispatch_span!($s, $g, |ai| dispatch_span!($d, $g, |bi| for _ in 0..$n {
            let $a = ai.next_addr();
            let $b = bi.next_addr();
            $body
        }))
    };
}

macro_rules! zip3 {
    ($x:expr, $y:expr, $z:expr, $g:expr, $n:expr, |$a:ident, $b:ident, $c:ident| $body:expr) => {
        dispatch_span!($x, $g, |ai| dispatch_span!($y, $g, |bi| dispatch_span!(
            $z,
            $g,
            |ci| for _ in 0..$n {
                let $a = ai.next_addr();
                let $b = bi.next_addr();
                let $c = ci.next_addr();
                $body
            }
        )))
    };
}

/// Iterates one lane of a collective operand — binds `($v, $a)` =
/// (element index, address) for `$v in 0..$cnt` — with the lane's
/// variant resolved once, not per element.
macro_rules! each_lane {
    ($s:expr, $g:expr, $li:expr, $per:expr, $cnt:expr, |$v:ident, $a:ident| $body:expr) => {
        match $s.lane($g, $li, $per) {
            LaneRef::Aff { start, step } => {
                let mut cur = start;
                for $v in 0..$cnt {
                    let $a = cur as usize;
                    $body;
                    cur += step;
                }
            }
            LaneRef::Gat(row) => {
                for ($v, &addr_raw) in row[..$cnt].iter().enumerate() {
                    let $a = addr_raw as usize;
                    $body
                }
            }
        }
    };
}

/// Row decomposition of a span whose rows are contiguous: element `i`
/// lives at `start + (i/per)*row_step + i%per`. Affine stride-1 spans
/// are one row of length `n`; `Lanes` stride-1 spans are `n/per` rows.
/// These are the spans the bulk (`copy_from_slice` / slice-loop) arms
/// can service.
#[inline]
fn rows1(s: Span, n: usize) -> Option<(i64, i64, usize)> {
    match s {
        Span::Affine { base, stride: 1 } => Some((i64::from(base), n as i64, n.max(1))),
        Span::Lanes { base, lane, stride: 1, per } if per > 0 && n.is_multiple_of(per as usize) => {
            Some((i64::from(base), i64::from(lane), per as usize))
        }
        _ => None,
    }
}

/// Walks two row-contiguous spans in matched chunks — `f(sa, da, len)`
/// with both ranges contiguous — or returns `false` untouched when
/// either span has no contiguous-row shape. The chunk length is the
/// smaller `per`, so a long source row can feed several short
/// destination rows and vice versa.
#[inline]
fn chunks2<F: FnMut(usize, usize, usize)>(sa: Span, da: Span, n: usize, mut f: F) -> bool {
    let (Some((s0, sl, sp)), Some((d0, dl, dp))) = (rows1(sa, n), rows1(da, n)) else {
        return false;
    };
    let rp = sp.min(dp);
    if rp == 0 || sp % rp != 0 || dp % rp != 0 || (rp < 8 && rp != n) {
        return false;
    }
    let mut i = 0usize;
    while i < n {
        let s = s0 + (i / sp) as i64 * sl + (i % sp) as i64;
        let d = d0 + (i / dp) as i64 * dl + (i % dp) as i64;
        f(s as usize, d as usize, rp);
        i += rp;
    }
    true
}

/// Three-operand variant of [`chunks2`].
#[inline]
fn chunks3<F: FnMut(usize, usize, usize, usize)>(
    aa: Span,
    ba: Span,
    ca: Span,
    n: usize,
    mut f: F,
) -> bool {
    let (Some((a0, al, ap)), Some((b0, bl, bp)), Some((c0, cl, cp))) =
        (rows1(aa, n), rows1(ba, n), rows1(ca, n))
    else {
        return false;
    };
    let rp = ap.min(bp).min(cp);
    if rp == 0 || ap % rp != 0 || bp % rp != 0 || cp % rp != 0 || (rp < 8 && rp != n) {
        return false;
    }
    let mut i = 0usize;
    while i < n {
        let a = a0 + (i / ap) as i64 * al + (i % ap) as i64;
        let b = b0 + (i / bp) as i64 * bl + (i % bp) as i64;
        let c = c0 + (i / cp) as i64 * cl + (i % cp) as i64;
        f(a as usize, b as usize, c as usize, rp);
        i += rp;
    }
    true
}

/// Fills a row-major matrix from a span's addresses. The gather case
/// (the norm for composed MMA fragments) pre-slices the address table
/// so the const-bound nested loop carries one bounds check per element
/// and no division.
#[inline(always)]
fn load_mat<const R: usize, const C: usize>(
    dst: &mut [[f32; C]; R],
    buf: &[f32],
    s: Span,
    g: &[u32],
) {
    if let Span::Gather { start } = s {
        let tbl = &g[start as usize..start as usize + R * C];
        for (r, row) in dst.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = buf[tbl[r * C + c] as usize];
            }
        }
    } else {
        let mut i = 0;
        each1!(s, g, R * C, |addr| {
            dst[i / C][i % C] = buf[addr];
            i += 1;
        });
    }
}

/// Per-worker optimized replay state.
struct OptCta<'t> {
    trace: &'t OptTrace,
    bufs: Vec<Vec<f32>>,
    log: Option<Vec<OWrite>>,
}

impl OptCta<'_> {
    #[inline]
    fn get(&self, buf: u32, addr: usize) -> f32 {
        self.bufs[buf as usize][addr]
    }

    #[inline]
    fn put(&mut self, buf: u32, addr: usize, v: f32) {
        self.bufs[buf as usize][addr] = v;
        if (buf as usize) < self.trace.n_globals {
            if let Some(log) = &mut self.log {
                log.push(OWrite::At { buf, addr: addr as u32, val: v });
            }
        }
    }

    /// Logs a contiguous run already written to `buf` at `start`.
    #[inline]
    fn log_run(&mut self, buf: u32, start: usize, n: usize) {
        if (buf as usize) < self.trace.n_globals && self.log.is_some() {
            let vals = self.bufs[buf as usize][start..start + n].to_vec();
            if let Some(log) = &mut self.log {
                log.push(OWrite::Run { buf, start: start as u32, vals });
            }
        }
    }

    /// Logs every destination row a bulk arm just wrote — only when the
    /// parallel merge needs it (`log` installed and `buf` global).
    #[inline]
    fn log_chunks2(&mut self, buf: u32, da: Span, n: usize) {
        if (buf as usize) < self.trace.n_globals && self.log.is_some() {
            let Some((d0, dl, dp)) = rows1(da, n) else { return };
            let mut i = 0usize;
            while i < n {
                let d = (d0 + (i / dp) as i64 * dl) as usize;
                self.log_run(buf, d, dp.min(n - i));
                i += dp;
            }
        }
    }

    /// Dense tensor-core MMA: fragment operands were permuted into
    /// matrix order at optimize time, so loads and the writeback
    /// stream whole matrices with zero per-element fragment
    /// arithmetic, and the accumulate vectorizes over `n` with the
    /// exact per-output f32 op order of the lane-order interpreter.
    #[inline(never)]
    fn mma_dense<const M: usize, const N: usize, const K: usize>(
        &mut self,
        (a, b, c): (u32, u32, u32),
        (am, bm, cm): (Span, Span, Span),
        g: &[u32],
    ) {
        let mut amx = [[0.0f32; K]; M];
        let mut bmx = [[0.0f32; N]; K];
        let mut cmx = [[0.0f32; N]; M];
        load_mat(&mut amx, &self.bufs[a as usize], am, g);
        load_mat(&mut bmx, &self.bufs[b as usize], bm, g);
        load_mat(&mut cmx, &self.bufs[c as usize], cm, g);
        for mi in 0..M {
            let mut acc = [0.0f32; N];
            for ki in 0..K {
                let av = amx[mi][ki];
                for ni in 0..N {
                    acc[ni] += av * bmx[ki][ni];
                }
            }
            for ni in 0..N {
                cmx[mi][ni] += acc[ni];
            }
        }
        if (c as usize) < self.trace.n_globals && self.log.is_some() {
            let mut i = 0;
            each1!(cm, g, M * N, |addr| {
                self.put(c, addr, cmx[i / N][i % N]);
                i += 1;
            });
        } else {
            let cb = &mut self.bufs[c as usize];
            if let Span::Gather { start } = cm {
                let tbl = &g[start as usize..start as usize + M * N];
                for (r, row) in cmx.iter().enumerate() {
                    for (ni, v) in row.iter().enumerate() {
                        cb[tbl[r * N + ni] as usize] = *v;
                    }
                }
            } else {
                let mut i = 0;
                each1!(cm, g, M * N, |addr| {
                    cb[addr] = cmx[i / N][i % N];
                    i += 1;
                });
            }
        }
    }

    /// Disjoint `(&src, &mut dst)` buffer views; `src != dst`.
    #[inline]
    fn pair(&mut self, src: u32, dst: u32) -> (&[f32], &mut [f32]) {
        let (s, d) = (src as usize, dst as usize);
        debug_assert_ne!(s, d);
        if s < d {
            let (lo, hi) = self.bufs.split_at_mut(d);
            (&lo[s], &mut hi[0])
        } else {
            let (lo, hi) = self.bufs.split_at_mut(s);
            (&hi[0], &mut lo[d])
        }
    }

    // `assign_op_pattern`: FMA accumulates are written `acc = x*y + acc`
    // (not `acc += x*y`) so the f32 addition keeps the raw
    // interpreter's operand order exactly — bit-identity is a hard
    // contract here.
    #[allow(clippy::too_many_lines, clippy::assign_op_pattern)]
    fn run_block(&mut self, b: usize) {
        let t = self.trace;
        let (start, end) = t.blocks[b];
        let g: &[u32] = &t.gather;
        use graphene_ir::atomic::fragments as frag;
        for step in &t.steps[start as usize..end as usize] {
            match *step {
                OTp::Fill { buf } => {
                    self.bufs[buf as usize].fill(0.0);
                    // Never a global (plans reject global allocs), so
                    // no logging for the parallel merge.
                }
                OTp::Copy { src, dst, sa, da, n } => {
                    let n = n as usize;
                    let logged = (dst as usize) < t.n_globals && self.log.is_some();
                    let bulk = src != dst && {
                        let (s, d) = self.pair(src, dst);
                        chunks2(sa, da, n, |si, di, len| {
                            d[di..di + len].copy_from_slice(&s[si..si + len]);
                        })
                    };
                    if bulk {
                        self.log_chunks2(dst, da, n);
                    } else if src != dst && !logged {
                        let (s, d) = self.pair(src, dst);
                        zip2!(sa, da, g, n, |si, di| d[di] = s[si]);
                    } else {
                        zip2!(sa, da, g, n, |s, d| {
                            let v = self.get(src, s);
                            self.put(dst, d, v);
                        });
                    }
                }
                OTp::Unary { op, src, dst, sa, da, n } => {
                    let n = n as usize;
                    let bulk = src != dst && {
                        let (s, d) = self.pair(src, dst);
                        chunks2(sa, da, n, |si, di, len| {
                            for (x, y) in s[si..si + len].iter().zip(&mut d[di..di + len]) {
                                *y = op.apply(f64::from(*x)) as f32;
                            }
                        })
                    };
                    if bulk {
                        self.log_chunks2(dst, da, n);
                    } else if src != dst && !((dst as usize) < t.n_globals && self.log.is_some()) {
                        let (s, d) = self.pair(src, dst);
                        zip2!(sa, da, g, n, |si, di| {
                            d[di] = op.apply(f64::from(s[si])) as f32;
                        });
                    } else if !((dst as usize) < t.n_globals && self.log.is_some()) {
                        // src == dst: in-place, element order preserved.
                        let d = &mut self.bufs[dst as usize];
                        zip2!(sa, da, g, n, |si, di| {
                            d[di] = op.apply(f64::from(d[si])) as f32;
                        });
                    } else {
                        zip2!(sa, da, g, n, |s, d| {
                            let v = self.get(src, s);
                            self.put(dst, d, op.apply(f64::from(v)) as f32);
                        });
                    }
                }
                OTp::Binary { op, a, b, dst, aa, ba, da, n } => {
                    let n = n as usize;
                    let bulk = a != dst && b != dst && {
                        let mut dvec = std::mem::take(&mut self.bufs[dst as usize]);
                        let hit = {
                            let av = &self.bufs[a as usize];
                            let bv = &self.bufs[b as usize];
                            chunks3(aa, ba, da, n, |ia, ib, id, len| {
                                let (xs, ys) = (&av[ia..ia + len], &bv[ib..ib + len]);
                                for ((x, y), o) in xs.iter().zip(ys).zip(&mut dvec[id..id + len]) {
                                    *o = op.apply(f64::from(*x), f64::from(*y)) as f32;
                                }
                            })
                        };
                        self.bufs[dst as usize] = dvec;
                        hit
                    };
                    if bulk {
                        self.log_chunks2(dst, da, n);
                    } else if a != dst
                        && b != dst
                        && !((dst as usize) < t.n_globals && self.log.is_some())
                    {
                        let mut dvec = std::mem::take(&mut self.bufs[dst as usize]);
                        {
                            let av = &self.bufs[a as usize];
                            let bv = &self.bufs[b as usize];
                            zip3!(aa, ba, da, g, n, |ia, ib, id| {
                                dvec[id] = op.apply(f64::from(av[ia]), f64::from(bv[ib])) as f32;
                            });
                        }
                        self.bufs[dst as usize] = dvec;
                    } else if a == dst
                        && b != dst
                        && !((dst as usize) < t.n_globals && self.log.is_some())
                    {
                        // In-place accumulate: read/write the same
                        // buffer in element order, like the raw
                        // interpreter.
                        let (bv, d) = self.pair(b, dst);
                        zip3!(aa, ba, da, g, n, |ia, ib, id| {
                            d[id] = op.apply(f64::from(d[ia]), f64::from(bv[ib])) as f32;
                        });
                    } else {
                        zip3!(aa, ba, da, g, n, |ia, ib, id| {
                            let x = self.get(a, ia);
                            let y = self.get(b, ib);
                            self.put(dst, id, op.apply(f64::from(x), f64::from(y)) as f32);
                        });
                    }
                }
                OTp::Fma { a, b, c, aa, ba, ca, n } => {
                    let n = n as usize;
                    let bulk = a != c && b != c && {
                        let mut cvec = std::mem::take(&mut self.bufs[c as usize]);
                        let hit = {
                            let av = &self.bufs[a as usize];
                            let bv = &self.bufs[b as usize];
                            chunks3(aa, ba, ca, n, |ia, ib, ic, len| {
                                let (xs, ys) = (&av[ia..ia + len], &bv[ib..ib + len]);
                                for ((x, y), o) in xs.iter().zip(ys).zip(&mut cvec[ic..ic + len]) {
                                    *o = x * y + *o;
                                }
                            })
                        };
                        self.bufs[c as usize] = cvec;
                        hit
                    };
                    if bulk {
                        self.log_chunks2(c, ca, n);
                    } else if a != c
                        && b != c
                        && !((c as usize) < t.n_globals && self.log.is_some())
                    {
                        let mut cvec = std::mem::take(&mut self.bufs[c as usize]);
                        {
                            let av = &self.bufs[a as usize];
                            let bv = &self.bufs[b as usize];
                            zip3!(aa, ba, ca, g, n, |ia, ib, ic| {
                                cvec[ic] = av[ia] * bv[ib] + cvec[ic];
                            });
                        }
                        self.bufs[c as usize] = cvec;
                    } else {
                        zip3!(aa, ba, ca, g, n, |ia, ib, ic| {
                            let x = self.get(a, ia);
                            let y = self.get(b, ib);
                            let z = self.get(c, ic);
                            self.put(c, ic, x * y + z);
                        });
                    }
                }
                OTp::Init { value, dst, da, n } => {
                    let n = n as usize;
                    if n == 0 {
                        continue;
                    }
                    let bulk = {
                        let dbuf = &mut self.bufs[dst as usize];
                        chunks2(da, da, n, |_, di, len| dbuf[di..di + len].fill(value))
                    };
                    if bulk {
                        self.log_chunks2(dst, da, n);
                    } else {
                        each1!(da, g, n, |d| self.put(dst, d, value));
                    }
                }
                OTp::Reduce { op, src, dst, sa, da, groups, per } => {
                    let per = per as usize;
                    match sa {
                        Span::Affine { base, stride: 1 } => {
                            for gi in 0..groups as usize {
                                let s0 = base as usize + gi * per;
                                let acc = self.bufs[src as usize][s0..s0 + per]
                                    .iter()
                                    .fold(op.identity(), |acc, &v| op.combine(acc, f64::from(v)));
                                self.put(dst, da.at(g, gi), acc as f32);
                            }
                        }
                        _ => {
                            for gi in 0..groups as usize {
                                let mut acc = op.identity();
                                each_lane!(sa, g, gi, per, per, |_v, addr| {
                                    acc = op.combine(acc, f64::from(self.get(src, addr)));
                                });
                                self.put(dst, da.at(g, gi), acc as f32);
                            }
                        }
                    }
                }
                OTp::LdMatrix { num, trans, src, dst, sa, sper, da, dper, lanes } => {
                    let num = num as usize;
                    let (sper, dper) = (sper as usize, dper as usize);
                    let mut mats = [[[0.0f32; 8]; 8]; 4];
                    for (p, mat) in mats.iter_mut().enumerate().take(num) {
                        for (r, row) in mat.iter_mut().enumerate() {
                            each_lane!(sa, g, p * 8 + r, sper, 8, |c, addr| {
                                row[c] = self.bufs[src as usize][addr];
                            });
                        }
                    }
                    for li in 0..lanes as usize {
                        each_lane!(da, g, li, dper, 2 * num, |v, addr| {
                            let (p, c) = (v / 2, v % 2);
                            let (row, col) = if trans {
                                (2 * (li % 4) + c, li / 4)
                            } else {
                                (li / 4, 2 * (li % 4) + c)
                            };
                            self.put(dst, addr, mats[p][row][col]);
                        });
                    }
                }
                OTp::Mma16816 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let (aper, bper, cper) = (aper as usize, bper as usize, cper as usize);
                    let mut am = [[0.0f32; 16]; 16];
                    let mut bm = [[0.0f32; 8]; 16];
                    let mut cm = [[0.0f32; 8]; 16];
                    for li in 0..lanes as usize {
                        each_lane!(aa, g, li, aper, 8, |v, addr| {
                            let (m_, k) = frag::mma_16816_a(li, v);
                            am[m_][k] = self.bufs[a as usize][addr];
                        });
                        each_lane!(ba, g, li, bper, 4, |v, addr| {
                            let (k, n) = frag::mma_16816_b(li, v);
                            bm[k][n] = self.bufs[b as usize][addr];
                        });
                        each_lane!(ca, g, li, cper, 4, |v, addr| {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            cm[m_][n] = self.bufs[c as usize][addr];
                        });
                    }
                    let mut d = cm;
                    // Same per-output f32 op order as the scalar loop (no
                    // mul+add contraction), reordered so the n loop
                    // vectorizes 8-wide.
                    for m_ in 0..16 {
                        let mut acc = [0.0f32; 8];
                        for k in 0..16 {
                            let av = am[m_][k];
                            for n in 0..8 {
                                acc[n] += av * bm[k][n];
                            }
                        }
                        for n in 0..8 {
                            d[m_][n] += acc[n];
                        }
                    }
                    for li in 0..lanes as usize {
                        each_lane!(ca, g, li, cper, 4, |v, addr| {
                            let (m_, n) = frag::mma_16816_c(li, v);
                            self.put(c, addr, d[m_][n]);
                        });
                    }
                }
                OTp::Mma884 { a, b, c, aa, aper, ba, bper, ca, cper, lanes } => {
                    let (aper, bper, cper) = (aper as usize, bper as usize, cper as usize);
                    let mut am = [[0.0f32; 4]; 8];
                    let mut bm = [[0.0f32; 8]; 4];
                    let mut cm = [[0.0f32; 8]; 8];
                    for li in 0..lanes as usize {
                        each_lane!(aa, g, li, aper, 4, |v, addr| {
                            let (m_, k) = frag::mma_884_a(li, v);
                            am[m_][k] = self.bufs[a as usize][addr];
                        });
                        each_lane!(ba, g, li, bper, 4, |v, addr| {
                            let (k, n) = frag::mma_884_b(li, v);
                            bm[k][n] = self.bufs[b as usize][addr];
                        });
                        each_lane!(ca, g, li, cper, 8, |v, addr| {
                            let (m_, n) = frag::mma_884_c(li, v);
                            cm[m_][n] = self.bufs[c as usize][addr];
                        });
                    }
                    // Same per-output f32 op order as the scalar loop (no
                    // mul+add contraction), reordered so the n loop
                    // vectorizes 8-wide.
                    for m_ in 0..8 {
                        let mut acc = [0.0f32; 8];
                        for k in 0..4 {
                            let av = am[m_][k];
                            for n in 0..8 {
                                acc[n] += av * bm[k][n];
                            }
                        }
                        for n in 0..8 {
                            cm[m_][n] += acc[n];
                        }
                    }
                    for li in 0..lanes as usize {
                        each_lane!(ca, g, li, cper, 8, |v, addr| {
                            let (m_, n) = frag::mma_884_c(li, v);
                            self.put(c, addr, cm[m_][n]);
                        });
                    }
                }
                OTp::MmaDense { m16, a, b, c, am, bm, cm } => {
                    if m16 {
                        self.mma_dense::<16, 8, 16>((a, b, c), (am, bm, cm), g);
                    } else {
                        self.mma_dense::<8, 8, 4>((a, b, c), (am, bm, cm), g);
                    }
                }
                OTp::Shfl { mask, src, dst, sa, da, lanes } => {
                    let lanes = lanes as usize;
                    let vals: Vec<f32> = (0..lanes).map(|li| self.get(src, sa.at(g, li))).collect();
                    for li in 0..lanes {
                        let peer = li ^ mask as usize;
                        let v = vals[peer % vals.len()];
                        self.put(dst, da.at(g, li), v);
                    }
                }
            }
        }
    }
}
