//! Static cost analysis of Graphene kernels.
//!
//! The paper's evaluation sizes (e.g. a 5376×5376×2048 GEMM) are far too
//! large to execute element-by-element; but because Graphene IR
//! "precisely describes the implementation" (§5.5), its cost profile is
//! statically computable: walk the decomposition, multiply per-group
//! instruction costs by loop trip counts, thread-group counts, and the
//! grid size. Shared-memory bank-conflict factors are measured exactly by
//! evaluating one representative warp's addresses per access site —
//! the same arithmetic the hardware performs.

use crate::counters::Counters;
use crate::plan::{BankTally, PlanCache};
use graphene_ir::atomic::{match_atomic, registry, AtomicSpec};
use graphene_ir::body::Stmt;
use graphene_ir::printer::render_spec_header;
use graphene_ir::spec::Spec;
use graphene_ir::tensor::TensorId;
use graphene_ir::{Arch, Kernel, MemSpace, Module};
use std::collections::HashMap;

/// Errors from static analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeError {
    /// An undecomposed spec matched no atomic spec.
    NoAtomicMatch(String),
    /// An address expression could not be evaluated for the sample warp.
    Eval(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::NoAtomicMatch(s) => write!(f, "spec `{s}` matches no atomic spec"),
            AnalyzeError::Eval(m) => write!(f, "cannot evaluate sample address: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Statically computes the execution counters of a kernel.
///
/// # Errors
///
/// Fails when an undecomposed spec cannot be matched or sample addresses
/// cannot be evaluated.
pub fn analyze(kernel: &Kernel, arch: Arch) -> Result<Counters, AnalyzeError> {
    analyze_bound(kernel, arch, &HashMap::new())
}

/// Like [`analyze`], with values for dynamic (symbolic) kernel
/// parameters (paper §3.4).
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn analyze_bound(
    kernel: &Kernel,
    arch: Arch,
    bindings: &HashMap<String, i64>,
) -> Result<Counters, AnalyzeError> {
    analyze_cached(kernel, arch, bindings, &mut PlanCache::new())
}

/// Like [`analyze_bound`], reusing an externally owned [`PlanCache`] so
/// callers that run several passes over the *same kernel* (e.g. the
/// autotuner's prune-then-cost pipeline, or `graphene-analysis`
/// followed by counter analysis) compile each tensor's address plan
/// once instead of once per pass.
///
/// The cache is keyed by [`TensorId`], so it must only ever be shared
/// between passes over one kernel's module — never across kernels.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn analyze_cached(
    kernel: &Kernel,
    arch: Arch,
    bindings: &HashMap<String, i64>,
    plans: &mut PlanCache,
) -> Result<Counters, AnalyzeError> {
    let reg = registry(arch);
    let module = &kernel.module;
    let mut env: HashMap<String, i64> = bindings.clone();
    env.insert("blockIdx.x".into(), 0);
    let mut c = Counters::default();
    let mut cx = SampleCx { plans, tally: BankTally::new() };
    walk(&kernel.body.stmts, module, &reg, &mut env, 1, &mut c, &mut cx)?;
    // Whole-kernel scaling: every block executes the body.
    let mut total = c.scaled(kernel.grid_size() as u64);

    // Unique DRAM footprint from parameter usage.
    let (mut read, mut written) = (0u64, 0u64);
    let mut reads: std::collections::HashSet<TensorId> = Default::default();
    let mut writes: std::collections::HashSet<TensorId> = Default::default();
    kernel.body.visit(&mut |s| {
        if let Stmt::Spec(spec) = s {
            for &i in &spec.ins {
                let root = module.root_of(i);
                if module[root].mem == MemSpace::Global {
                    reads.insert(root);
                }
            }
            for &o in &spec.outs {
                let root = module.root_of(o);
                if module[root].mem == MemSpace::Global {
                    writes.insert(root);
                }
            }
        }
    });
    for r in reads {
        read += module[r].ty.bytes();
    }
    for w in writes {
        written += module[w].ty.bytes();
    }
    total.unique_global_read_bytes = read;
    total.unique_global_write_bytes = written;
    Ok(total)
}

/// Reusable sampling state threaded through the analysis walk: compiled
/// address plans and a fixed bank-conflict tally shared across every
/// access site instead of rebuilt per access.
struct SampleCx<'p> {
    plans: &'p mut PlanCache,
    tally: BankTally,
}

fn walk(
    stmts: &[Stmt],
    module: &Module,
    reg: &[AtomicSpec],
    env: &mut HashMap<String, i64>,
    mult: u64,
    c: &mut Counters,
    cx: &mut SampleCx<'_>,
) -> Result<(), AnalyzeError> {
    for s in stmts {
        match s {
            Stmt::For { var, extent, body, .. } => {
                env.insert(var.clone(), 0);
                walk(body, module, reg, env, mult * *extent as u64, c, cx)?;
                env.remove(var);
            }
            Stmt::If { then, .. } => {
                // Conservative: count the guarded block fully (partial
                // tiles over-approximate, paper §3.4).
                walk(then, module, reg, env, mult, c, cx)?;
            }
            Stmt::Spec(spec) => match &spec.body {
                Some(body) => walk(&body.stmts, module, reg, env, mult, c, cx)?,
                None => {
                    let atomic = match_atomic(spec, module, reg).ok_or_else(|| {
                        AnalyzeError::NoAtomicMatch(render_spec_header(module, spec))
                    })?;
                    spec_counters(spec, atomic, module, env, mult, c, cx)?;
                }
            },
            Stmt::Sync(graphene_ir::SyncScope::Block) => c.syncs += mult,
            _ => {}
        }
    }
    Ok(())
}

fn spec_counters(
    spec: &Spec,
    atomic: &AtomicSpec,
    module: &Module,
    env: &mut HashMap<String, i64>,
    mult: u64,
    c: &mut Counters,
    cx: &mut SampleCx<'_>,
) -> Result<(), AnalyzeError> {
    let exec = *spec.exec.last().expect("spec has an exec config");
    let tt = &module[exec];
    let groups = tt.num_groups() as u64;
    let group_size = tt.group_size() as u64;
    let lanes_total = groups * group_size;

    // Instructions and FLOPs. Collective instructions (group > 1 lane)
    // count once per group, matching the interpreter.
    let collective = atomic.exec_local.size() > 1;
    if collective {
        c.instructions += groups * mult;
    } else {
        c.instructions += lanes_total * mult;
    }
    if atomic.cost.tensor_core {
        c.flops_tc += atomic.cost.flops * groups * mult;
    } else if collective {
        c.flops_fma += atomic.cost.flops * groups * mult;
    } else {
        c.flops_fma += atomic.cost.flops * lanes_total * mult;
    }

    // Traffic per operand.
    for (&id, is_read) in
        spec.ins.iter().map(|i| (i, true)).chain(spec.outs.iter().map(|o| (o, false)))
    {
        let d = &module[id];
        let root = module.root_of(id);
        let mem = module[root].mem;
        let bytes_per = d.ty.scalar_type().bytes();
        let scalars = d.ty.num_scalars() as u64;
        let total_bytes = scalars * bytes_per * lanes_total * mult;
        match mem {
            MemSpace::Global => {
                if is_read {
                    c.global_read_bytes += total_bytes;
                } else {
                    c.global_write_bytes += total_bytes;
                }
            }
            MemSpace::Shared => {
                if is_read {
                    c.smem_read_bytes += total_bytes;
                } else {
                    c.smem_write_bytes += total_bytes;
                }
                // One warp's conflict factor: by the F₂ rank proof when
                // its grade provably coincides with the sampled warp's
                // (the representative lanes form one aligned hardware
                // warp, so the proof's coset argument applies to exactly
                // the lanes sampling would evaluate), else by sampling.
                let proved = if crate::prove::sample_is_aligned_warp(tt) {
                    crate::prove::prove_conflicts_linear(cx.plans, id, module, tt, bytes_per)
                } else {
                    None
                };
                let (accesses, transactions) = match proved {
                    Some(g) => (g.ideal, g.actual),
                    None => sample_conflicts_cached(
                        cx.plans,
                        &mut cx.tally,
                        id,
                        module,
                        tt,
                        env,
                        bytes_per,
                    )?,
                };
                let chunk = 32.min(lanes_total).max(1);
                let instances = (lanes_total * mult).div_ceil(chunk);
                c.smem_accesses += accesses * instances;
                c.smem_transactions += transactions * instances;
            }
            MemSpace::Register => {}
        }
    }
    Ok(())
}

/// Enumerates the concrete `threadIdx.x` values covered by an execution
/// config, outermost groups first, capped at `limit` lanes.
///
/// A per-thread config (`group_size() == 1`) yields one lane per group;
/// a collective config yields `group base + local offset` for every
/// group member — including non-contiguous layouts such as Volta's
/// quad-pairs.
pub fn exec_lanes(tt: &graphene_ir::ThreadTensor, limit: usize) -> Vec<i64> {
    let mut lanes = Vec::new();
    if tt.group_size() == 1 {
        for g in 0..tt.num_groups().min(limit as i64) {
            lanes.push(tt.group.value(g));
        }
    } else {
        'groups: for g in 0..tt.num_groups() {
            let base = tt.group.value(g);
            for j in 0..tt.group_size() {
                if lanes.len() >= limit {
                    break 'groups;
                }
                lanes.push(base + tt.local.value(j));
            }
        }
    }
    lanes
}

/// Evaluates the scalar shared/global addresses an operand view touches
/// for each given lane, with the root tensor's swizzle applied — the
/// same arithmetic the interpreter and the hardware perform.
///
/// Loop variables and dynamic parameters must already be bound in
/// `env`; `threadIdx.x` is bound per lane and removed before returning.
///
/// # Errors
///
/// Fails when the view's offset expression references an unbound
/// variable.
pub fn lane_addresses(
    id: TensorId,
    module: &Module,
    lanes: &[i64],
    env: &mut HashMap<String, i64>,
) -> Result<Vec<(i64, Vec<i64>)>, AnalyzeError> {
    lane_addresses_cached(&mut PlanCache::new(), id, module, lanes, env)
}

/// Like [`lane_addresses`], but compiling the view's address plan at
/// most once through a shared [`PlanCache`] — the form the race and
/// bank-conflict passes use, where the same views are evaluated at many
/// sites.
///
/// # Errors
///
/// See [`lane_addresses`].
pub fn lane_addresses_cached(
    plans: &mut PlanCache,
    id: TensorId,
    module: &Module,
    lanes: &[i64],
    env: &HashMap<String, i64>,
) -> Result<Vec<(i64, Vec<i64>)>, AnalyzeError> {
    plans.lane_addresses(id, module, lanes, env).map_err(|e| AnalyzeError::Eval(e.to_string()))
}

/// Evaluates one representative warp's addresses for a shared-memory
/// operand and counts its bank-conflict serialisation: returns
/// `(ideal transactions, actual transactions)` for one warp-wide access.
///
/// # Errors
///
/// See [`AnalyzeError`].
pub fn sample_conflicts(
    id: TensorId,
    module: &Module,
    tt: &graphene_ir::ThreadTensor,
    env: &mut HashMap<String, i64>,
    bytes_per: u64,
) -> Result<(u64, u64), AnalyzeError> {
    sample_conflicts_cached(
        &mut PlanCache::new(),
        &mut BankTally::new(),
        id,
        module,
        tt,
        env,
        bytes_per,
    )
}

/// Like [`sample_conflicts`], reusing a compiled [`PlanCache`] and a
/// fixed 32-entry [`BankTally`] across access sites instead of building
/// a fresh hash map per access.
///
/// # Errors
///
/// See [`AnalyzeError`].
#[allow(clippy::too_many_arguments)]
pub fn sample_conflicts_cached(
    plans: &mut PlanCache,
    tally: &mut BankTally,
    id: TensorId,
    module: &Module,
    tt: &graphene_ir::ThreadTensor,
    env: &HashMap<String, i64>,
    bytes_per: u64,
) -> Result<(u64, u64), AnalyzeError> {
    // Representative lanes: the first warp's worth of threads covered by
    // the exec tensor.
    let lanes: Vec<i64> = if tt.group_size() == 1 {
        (0..tt.num_groups().min(32)).map(|g| tt.group.value(g)).collect()
    } else {
        let base = tt.group.value(0);
        (0..tt.group_size().min(32)).map(|j| base + tt.local.value(j)).collect()
    };
    let per_lane = lane_addresses_cached(plans, id, module, &lanes, env)?;
    for (_, lane) in &per_lane {
        for &a in lane {
            tally.add_addr(a, bytes_per);
        }
    }
    Ok(tally.grade())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphene_ir::builder::KernelBuilder;
    use graphene_ir::spec::SpecKind;
    use graphene_ir::tensor::TensorType;
    use graphene_ir::ScalarType;
    use graphene_layout::Layout;

    /// Analysis and functional execution agree on a small kernel.
    #[test]
    fn analysis_matches_execution() {
        let mut kb = KernelBuilder::new("copy", &[4], &[64]);
        let src = kb.param("src", &[256], ScalarType::F32);
        let dst = kb.param("dst", &[256], ScalarType::F32);
        let block = kb.block();
        let grid = kb.grid();
        let bid = kb.module()[grid].group_coords()[0].clone();
        let tid = kb.module()[block].group_coords()[0].clone();
        let idx = bid * 64 + tid;
        let r = kb.alloc_reg("r", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        let s = kb.index(src, std::slice::from_ref(&idx));
        let d = kb.index(dst, &[idx]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts], vec![s], vec![r]);
        let ts2 = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![ts2], vec![r], vec![d]);
        let kernel = kb.build();

        let an = analyze(&kernel, Arch::Sm86).expect("analyze");
        let ex = crate::exec::execute(&kernel, Arch::Sm86, &Default::default()).expect("exec");
        assert_eq!(an.global_read_bytes, ex.counters.global_read_bytes);
        assert_eq!(an.global_write_bytes, ex.counters.global_write_bytes);
        assert_eq!(an.instructions, ex.counters.instructions);
        assert_eq!(an.unique_global_read_bytes, ex.counters.unique_global_read_bytes);
    }

    /// Loop trip counts multiply instruction counts.
    #[test]
    fn loops_scale_counters() {
        let mut kb = KernelBuilder::new("loop", &[1], &[32]);
        let block = kb.block();
        let a = kb.alloc_reg("a", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        let b = kb.alloc_reg("b", TensorType::scalar(Layout::contiguous(1), ScalarType::F32));
        kb.for_loop("i", 10, true, |kb, _| {
            let ts = kb.thread_scalar(block);
            kb.spec(SpecKind::MatMul, vec![ts], vec![a, b], vec![b]);
        });
        let kernel = kb.build();
        let an = analyze(&kernel, Arch::Sm86).unwrap();
        // 10 iterations x 32 threads x 2 flops (fmaf).
        assert_eq!(an.flops_fma, 10 * 32 * 2);
        assert_eq!(an.instructions, 10 * 32);
    }
}
