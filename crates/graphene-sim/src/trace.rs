//! Trace capture: record one compiled-plan execution as a flat
//! straight-line program.
//!
//! The compiled executor ([`crate::run`]) already pays no hashing on
//! the hot path, but every execution still walks the statement tree,
//! re-evaluates guards and loop bounds, re-emits operand addresses per
//! group, and dispatches on [`AtomicSemantics`]. This module is the
//! CUDA-graph analog for the simulator: [`record_trace`] runs a kernel
//! **once** per (kernel, problem, arch) through the instrumented
//! compiled executor and captures everything that cannot change across
//! runs — resolved branches and loops, precomputed operand address
//! segments, op kind and flat buffer operands per step — into a
//! [`Trace`]. The replay executor ([`crate::replay`]) then re-runs the
//! straight-line program against fresh input buffers with no `CSpec`
//! dispatch, no symbolic environment, and no per-group address
//! emission.
//!
//! **Why recording with zero-filled inputs is sound:** control flow in
//! this IR is purely *index-driven*. Guards compare index expressions
//! over `blockIdx.x` / `threadIdx.x` / loop variables, and loop extents
//! are static — no branch ever inspects a tensor *value*. The step
//! sequence and every address are therefore identical for all input
//! valuations; only the data differs, and replay recomputes the data.
//!
//! Register addresses are flattened to `thread * len + addr` at record
//! time, so a replay touches nothing but flat `Vec<f32>` buffers
//! indexed by a shared `u32` address arena.

use crate::counters::Counters;
use crate::exec::ExecError;
use crate::plan::{BufRef, CSpec, KernelPlan};
use crate::run::{AddrScratch, CtaRunner};
use crate::trace_opt::{record_opt_trace, OptTrace};
use graphene_ir::atomic::AtomicSemantics;
use graphene_ir::ops::{BinaryOp, ReduceOp, UnaryOp};
use graphene_ir::tensor::TensorId;
use graphene_ir::Arch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded step of a straight-line trace.
///
/// Buffer operands are indices into the trace's unified buffer table
/// (globals, then shared, then flattened register files); fields named
/// `sa`/`da`/`aa`/`ba`/`ca` are start offsets into the shared address
/// arena ([`Trace::addrs` — crate-private]).
#[derive(Debug, Clone)]
pub(crate) enum TOp {
    /// Zero-fill buffer `buf` (a recorded `Alloc`).
    Fill { buf: u32 },
    /// `dst[da[i]] = src[sa[i]]` for `i in 0..n`.
    Copy { src: u32, dst: u32, sa: u32, da: u32, n: u32 },
    /// `dst[da[i]] = op(src[sa[i]])`.
    Unary { op: UnaryOp, src: u32, dst: u32, sa: u32, da: u32, n: u32 },
    /// `dst[da[i]] = op(a[aa[i]], b[ba[i]])`.
    Binary { op: BinaryOp, a: u32, b: u32, dst: u32, aa: u32, ba: u32, da: u32, n: u32 },
    /// `c[ca[i]] += a[aa[i]] * b[ba[i]]`.
    Fma { a: u32, b: u32, c: u32, aa: u32, ba: u32, ca: u32, n: u32 },
    /// `dst[da[i]] = value`.
    Init { value: f32, dst: u32, da: u32, n: u32 },
    /// `groups` reductions of `per` elements each:
    /// `dst[da[g]] = fold(op, src[sa[g*per..(g+1)*per]])`.
    Reduce { op: ReduceOp, src: u32, dst: u32, sa: u32, da: u32, groups: u32, per: u32 },
    /// Collective `ldmatrix`: per-lane address strides `sper`/`dper`.
    LdMatrix {
        num: u8,
        trans: bool,
        src: u32,
        dst: u32,
        sa: u32,
        sper: u32,
        da: u32,
        dper: u32,
        lanes: u32,
    },
    /// Collective `mma.m16n8k16` over `lanes` lanes.
    Mma16816 {
        a: u32,
        b: u32,
        c: u32,
        aa: u32,
        aper: u32,
        ba: u32,
        bper: u32,
        ca: u32,
        cper: u32,
        lanes: u32,
    },
    /// Collective `mma.m8n8k4` over `lanes` lanes.
    Mma884 {
        a: u32,
        b: u32,
        c: u32,
        aa: u32,
        aper: u32,
        ba: u32,
        bper: u32,
        ca: u32,
        cper: u32,
        lanes: u32,
    },
    /// Butterfly shuffle: lane `l` reads `src[sa[l]]`, lane `l` writes
    /// the value read by lane `l ^ mask` to `dst[da[l]]`.
    Shfl { mask: u32, src: u32, dst: u32, sa: u32, da: u32, lanes: u32 },
}

/// A recorded straight-line execution of one (kernel, problem, arch):
/// every branch resolved, every loop unrolled, every operand address
/// precomputed. Produced by [`record_trace`], executed by
/// [`crate::replay::replay`].
#[derive(Debug)]
pub struct Trace {
    pub(crate) steps: Vec<TOp>,
    pub(crate) addrs: Vec<u32>,
    /// Per-block `(start, end)` step ranges, in block order.
    pub(crate) blocks: Vec<(u32, u32)>,
    /// Unified buffer table lengths: globals, then shared, then
    /// register files (already `len × block_threads` flat).
    pub(crate) buf_lens: Vec<usize>,
    pub(crate) n_globals: usize,
    /// Kernel params `(id, name, scalar length)`: replay input
    /// validation and outcome keying.
    pub(crate) params: Vec<(TensorId, String, usize)>,
    /// Counters captured from the recording run. Counters are
    /// input-independent, so every replay of this trace reports them
    /// unchanged.
    pub(crate) counters: Counters,
}

impl Trace {
    /// Number of recorded steps across all blocks.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Number of precomputed scalar addresses in the arena.
    pub fn num_addrs(&self) -> usize {
        self.addrs.len()
    }

    /// Number of thread blocks in the recorded grid.
    pub fn grid_size(&self) -> i64 {
        self.blocks.len() as i64
    }

    /// The profile counters every replay of this trace reports.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resident payload bytes: step list, address arena, block table
    /// and buffer metadata (length-based, so the figure is
    /// deterministic — the optimizer's before/after comparison).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.steps.len() * std::mem::size_of::<TOp>()
            + self.addrs.len() * std::mem::size_of::<u32>()
            + self.blocks.len() * std::mem::size_of::<(u32, u32)>()
            + self.buf_lens.len() * std::mem::size_of::<usize>()
            + self
                .params
                .iter()
                .map(|(_, name, _)| std::mem::size_of::<(TensorId, String, usize)>() + name.len())
                .sum::<usize>()
    }
}

/// Captures [`TOp`]s during one instrumented [`CtaRunner`] pass.
///
/// Installed on the runner by [`record_trace`]; the runner calls back
/// after each `Alloc` and after each successfully executed group, so a
/// failing execution never leaves a partial step in a published trace.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    pub(crate) steps: Vec<TOp>,
    pub(crate) addrs: Vec<u32>,
    n_globals: usize,
    n_shared: usize,
}

impl Recorder {
    pub(crate) fn new(plan: &KernelPlan) -> Self {
        Recorder {
            steps: Vec::new(),
            addrs: Vec::new(),
            n_globals: plan.globals.len(),
            n_shared: plan.shared.len(),
        }
    }

    /// Unified buffer-table index of a plan buffer reference.
    fn buf_id(&self, buf: BufRef) -> u32 {
        use graphene_ir::MemSpace;
        (match buf.mem {
            MemSpace::Global => buf.idx,
            MemSpace::Shared => self.n_globals + buf.idx,
            MemSpace::Register => self.n_globals + self.n_shared + buf.idx,
        }) as u32
    }

    /// Appends `k` addresses per lane of one operand segment to the
    /// arena, flattening register addresses to `thread * len + addr`.
    /// Returns the arena start offset.
    fn push_seg(
        &mut self,
        buf: BufRef,
        lanes: &[i64],
        scratch: &AddrScratch,
        seg: (usize, usize),
        k: usize,
    ) -> u32 {
        let start = u32::try_from(self.addrs.len()).expect("trace address arena exceeds u32 range");
        let (s0, n) = seg;
        if buf.mem == graphene_ir::MemSpace::Register {
            for (li, &t) in lanes.iter().enumerate() {
                let base = t * buf.len as i64;
                self.addrs.extend(
                    scratch.addrs[s0 + li * n..s0 + li * n + k].iter().map(|&a| (base + a) as u32),
                );
            }
        } else {
            for li in 0..lanes.len() {
                self.addrs
                    .extend(scratch.addrs[s0 + li * n..s0 + li * n + k].iter().map(|&a| a as u32));
            }
        }
        start
    }

    /// Records a zero-fill of an allocated buffer.
    pub(crate) fn record_alloc(&mut self, buf: BufRef) {
        let buf = self.buf_id(buf);
        self.steps.push(TOp::Fill { buf });
    }

    /// Records one successfully executed warp/collective group.
    ///
    /// Per-thread ops are flattened lane-major (the per-lane structure
    /// is irrelevant to their semantics); collective ops keep their
    /// per-lane address strides because their fragment math indexes by
    /// lane.
    pub(crate) fn record_group(&mut self, cs: &CSpec, lanes: &[i64], sc: &AddrScratch) {
        let nl = lanes.len() as u32;
        let step = match cs.semantics {
            AtomicSemantics::CopyPerThread | AtomicSemantics::UnaryPerThread(_) => {
                // The executor zips src/dst per lane, so the effective
                // per-lane count is the shorter of the two segments.
                let k = sc.ins[0].1.min(sc.outs[0].1);
                let sa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], k);
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], k);
                let (src, dst) = (self.buf_id(cs.ins[0].buf), self.buf_id(cs.outs[0].buf));
                let n = nl * k as u32;
                match cs.semantics {
                    AtomicSemantics::UnaryPerThread(op) => TOp::Unary { op, src, dst, sa, da, n },
                    _ => TOp::Copy { src, dst, sa, da, n },
                }
            }
            AtomicSemantics::BinaryPerThread(op) => {
                let k = sc.ins[0].1;
                let aa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], k);
                let ba = self.push_seg(cs.ins[1].buf, lanes, sc, sc.ins[1], k);
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], k);
                TOp::Binary {
                    op,
                    a: self.buf_id(cs.ins[0].buf),
                    b: self.buf_id(cs.ins[1].buf),
                    dst: self.buf_id(cs.outs[0].buf),
                    aa,
                    ba,
                    da,
                    n: nl * k as u32,
                }
            }
            AtomicSemantics::FmaPerThread => {
                let k = sc.ins[0].1;
                let aa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], k);
                let ba = self.push_seg(cs.ins[1].buf, lanes, sc, sc.ins[1], k);
                let ca = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], k);
                TOp::Fma {
                    a: self.buf_id(cs.ins[0].buf),
                    b: self.buf_id(cs.ins[1].buf),
                    c: self.buf_id(cs.outs[0].buf),
                    aa,
                    ba,
                    ca,
                    n: nl * k as u32,
                }
            }
            AtomicSemantics::InitPerThread => {
                let k = sc.outs[0].1;
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], k);
                TOp::Init {
                    value: cs.init_value,
                    dst: self.buf_id(cs.outs[0].buf),
                    da,
                    n: nl * k as u32,
                }
            }
            AtomicSemantics::ReducePerThread(op) => {
                let per = sc.ins[0].1;
                let sa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], per);
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], 1);
                TOp::Reduce {
                    op,
                    src: self.buf_id(cs.ins[0].buf),
                    dst: self.buf_id(cs.outs[0].buf),
                    sa,
                    da,
                    groups: nl,
                    per: per as u32,
                }
            }
            AtomicSemantics::LdMatrix { num, trans } => {
                let (sper, dper) = (sc.ins[0].1, sc.outs[0].1);
                let sa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], sper);
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], dper);
                TOp::LdMatrix {
                    num,
                    trans,
                    src: self.buf_id(cs.ins[0].buf),
                    dst: self.buf_id(cs.outs[0].buf),
                    sa,
                    sper: sper as u32,
                    da,
                    dper: dper as u32,
                    lanes: nl,
                }
            }
            AtomicSemantics::MmaAmpere16816 | AtomicSemantics::MmaVolta884 => {
                let (aper, bper, cper) = (sc.ins[0].1, sc.ins[1].1, sc.outs[0].1);
                let aa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], aper);
                let ba = self.push_seg(cs.ins[1].buf, lanes, sc, sc.ins[1], bper);
                let ca = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], cper);
                let (a, b, c) = (
                    self.buf_id(cs.ins[0].buf),
                    self.buf_id(cs.ins[1].buf),
                    self.buf_id(cs.outs[0].buf),
                );
                let (aper, bper, cper) = (aper as u32, bper as u32, cper as u32);
                if cs.semantics == AtomicSemantics::MmaAmpere16816 {
                    TOp::Mma16816 { a, b, c, aa, aper, ba, bper, ca, cper, lanes: nl }
                } else {
                    TOp::Mma884 { a, b, c, aa, aper, ba, bper, ca, cper, lanes: nl }
                }
            }
            AtomicSemantics::ShflBfly => {
                let sa = self.push_seg(cs.ins[0].buf, lanes, sc, sc.ins[0], 1);
                let da = self.push_seg(cs.outs[0].buf, lanes, sc, sc.outs[0], 1);
                TOp::Shfl {
                    mask: cs.shfl_mask,
                    src: self.buf_id(cs.ins[0].buf),
                    dst: self.buf_id(cs.outs[0].buf),
                    sa,
                    da,
                    lanes: nl,
                }
            }
        };
        self.steps.push(step);
    }
}

/// Records `plan` once into a [`Trace`].
///
/// The recording run executes the full grid sequentially over
/// zero-filled inputs through the instrumented compiled executor. This
/// is sound because control flow in this IR is purely index-driven
/// (see the module docs): the captured step sequence and addresses are
/// valid for every input valuation.
///
/// # Errors
///
/// Any [`ExecError`] the recording run hits (the trace is discarded).
pub fn record_trace(
    plan: &KernelPlan,
    bindings: &HashMap<String, i64>,
) -> Result<Trace, ExecError> {
    let init: Vec<Vec<f32>> = plan.globals.iter().map(|&(_, _, len)| vec![0.0; len]).collect();
    let mut runner = CtaRunner::new(plan, init, bindings);
    runner.rec = Some(Recorder::new(plan));
    let mut blocks = Vec::with_capacity(plan.grid.max(0) as usize);
    for b in 0..plan.grid {
        let start = runner.rec.as_ref().expect("recorder installed").steps.len();
        runner.run_block(b)?;
        let end = runner.rec.as_ref().expect("recorder installed").steps.len();
        blocks.push((
            u32::try_from(start).expect("trace exceeds u32 steps"),
            u32::try_from(end).expect("trace exceeds u32 steps"),
        ));
    }
    let mut counters = runner.counters;
    counters.unique_global_read_bytes = plan.unique_read;
    counters.unique_global_write_bytes = plan.unique_written;
    let rec = runner.rec.take().expect("recorder installed");
    let mut buf_lens: Vec<usize> = plan.globals.iter().map(|&(_, _, l)| l).collect();
    buf_lens.extend(plan.shared.iter().map(|&(_, l)| l));
    buf_lens.extend(plan.regs.iter().map(|&(_, l)| l * plan.block_threads as usize));
    Ok(Trace {
        steps: rec.steps,
        addrs: rec.addrs,
        blocks,
        buf_lens,
        n_globals: plan.globals.len(),
        params: plan.globals.clone(),
        counters,
    })
}

/// Cache key: one trace per (kernel, problem, arch).
///
/// `problem` is a caller-chosen string naming the problem instance —
/// by convention the kernel's dimension summary (e.g.
/// `"m=1024 n=1024 k=512"`). Dynamic-parameter bindings **must** be
/// folded into it: they change loop trip counts and guard outcomes,
/// i.e. the recorded program itself. Editing the kernel or changing
/// the arch likewise yields a different key, so stale traces are never
/// replayed — invalidation is by construction, not by mutation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Kernel name.
    pub kernel: String,
    /// Problem-instance description (sizes and bindings).
    pub problem: String,
    /// Target architecture.
    pub arch: Arch,
}

/// A capacity-bounded map with least-recently-used eviction, shared by
/// [`TraceCache`] and the graph-trace cache
/// ([`crate::graph_exec::GraphTraceCache`]).
///
/// Recency is a monotone stamp bumped on every get/insert; eviction
/// removes the minimum-stamp entry. The scan is O(len) per eviction,
/// which is irrelevant at trace-cache capacities (tens to hundreds)
/// against the cost of the recording run an eviction forces.
#[derive(Debug)]
pub(crate) struct LruMap<K, V> {
    map: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
    evicted: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> LruMap<K, V> {
    pub(crate) fn new(capacity: usize) -> Self {
        LruMap { map: HashMap::new(), capacity: capacity.max(1), tick: 0, evicted: 0 }
    }

    /// Looks up `k`, marking it most-recently-used on a hit.
    pub(crate) fn get(&mut self, k: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(k).map(|e| {
            e.1 = tick;
            e.0.clone()
        })
    }

    /// Inserts `v` under `k`, evicting the least-recently-used entry
    /// if the map is at capacity. First insert wins: if `k` is already
    /// present (a racing caller beat us), the existing value is
    /// returned and `v` is dropped.
    pub(crate) fn insert(&mut self, k: K, v: V) -> V {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&k) {
            e.1 = tick;
            return e.0.clone();
        }
        if self.map.len() >= self.capacity {
            if let Some(victim) = self.map.iter().min_by_key(|(_, e)| e.1).map(|(k, _)| k.clone()) {
                self.map.remove(&victim);
                self.evicted += 1;
            }
        }
        self.map.insert(k, (v.clone(), tick));
        v
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Iterates the resident values without touching recency.
    pub(crate) fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|(v, _)| v)
    }

    /// Membership test that does **not** bump recency.
    pub(crate) fn contains(&self, k: &K) -> bool {
        self.map.contains_key(k)
    }

    pub(crate) fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// Default [`TraceCache`] capacity. Each trace holds the unrolled step
/// and address arenas of one kernel instance (megabytes at paper
/// sizes), so the bound is what makes long-lived many-shape traffic —
/// the serve-daemon pattern — safe.
pub const TRACE_CACHE_CAPACITY: usize = 256;

/// Memoizes recorded traces per [`TraceKey`], in
/// [`crate::plan::PlanCache`] style: record on first request, share
/// the [`Arc`]'d trace on every subsequent one. `Sync`, so one cache
/// can serve the per-CTA parallel fan-out and concurrent tuner
/// workers.
///
/// What the cache keeps resident is the **optimized** form
/// ([`OptTrace`]): recording runs the trace optimizer before insertion,
/// so every cached trace replays on the coalesced fast path and the
/// cache's memory footprint is the post-classification one (see
/// [`resident_bytes`](Self::resident_bytes)).
///
/// The cache is bounded ([`TRACE_CACHE_CAPACITY`] by default, or
/// [`TraceCache::with_capacity`]): inserting past capacity evicts the
/// least-recently-used trace and bumps [`evictions`](Self::evictions).
/// An evicted key simply re-records on next request.
#[derive(Debug)]
pub struct TraceCache {
    traces: Mutex<LruMap<TraceKey, Arc<OptTrace>>>,
    hits: AtomicU64,
    recordings: AtomicU64,
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::with_capacity(TRACE_CACHE_CAPACITY)
    }
}

impl TraceCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` traces (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceCache {
            traces: Mutex::new(LruMap::new(capacity)),
            hits: AtomicU64::new(0),
            recordings: AtomicU64::new(0),
        }
    }

    /// Returns the cached trace for `key`, recording it on first use.
    ///
    /// Recording happens outside the map lock, so requests for
    /// *different* keys never serialize on a recording. Two racing
    /// requests for the same cold key may both record; the first
    /// insert wins and both callers get identical traces.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] from the recording run; nothing is cached.
    pub fn get_or_record(
        &self,
        key: &TraceKey,
        plan: &KernelPlan,
        bindings: &HashMap<String, i64>,
    ) -> Result<Arc<OptTrace>, ExecError> {
        if let Some(t) = self.traces.lock().expect("trace cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(t);
        }
        let t = Arc::new(record_opt_trace(plan, bindings)?);
        self.recordings.fetch_add(1, Ordering::Relaxed);
        Ok(self.traces.lock().expect("trace cache poisoned").insert(key.clone(), t))
    }

    /// Replays served from an already-recorded trace.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Recording runs performed (interpretations of the full kernel).
    pub fn recordings(&self) -> u64 {
        self.recordings.load(Ordering::Relaxed)
    }

    /// Traces evicted by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.traces.lock().expect("trace cache poisoned").evicted()
    }

    /// Whether a trace for `key` is currently resident. Unlike a
    /// lookup this does not bump the entry's recency, so observers
    /// (request handlers reporting hit-vs-record, tests asserting
    /// eviction behavior) don't perturb the LRU order.
    pub fn contains(&self, key: &TraceKey) -> bool {
        self.traces.lock().expect("trace cache poisoned").contains(key)
    }

    /// Number of distinct traces held.
    pub fn len(&self) -> usize {
        self.traces.lock().expect("trace cache poisoned").len()
    }

    /// Total resident payload bytes across all cached (optimized)
    /// traces: step lists plus residual gather arenas plus metadata.
    pub fn resident_bytes(&self) -> usize {
        self.traces.lock().expect("trace cache poisoned").values().map(|t| t.resident_bytes()).sum()
    }

    /// Whether the cache holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
