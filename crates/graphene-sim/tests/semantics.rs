//! Direct tests of the interpreter's atomic-spec semantics: shuffles,
//! reductions, inits, conversions, and the collective fragment
//! instructions, each exercised through a minimal kernel.

use graphene_ir::builder::KernelBuilder;
use graphene_ir::spec::SpecKind;
use graphene_ir::tensor::TensorType;
use graphene_ir::{Arch, BinaryOp, ReduceOp, ScalarType, UnaryOp};
use graphene_layout::Layout;
use graphene_sim::execute;
use graphene_sym::IntExpr;
use std::collections::HashMap;

fn reg(n: i64, st: ScalarType) -> TensorType {
    TensorType::scalar(Layout::contiguous(n), st)
}

/// Each lane loads `in[lane]`, shuffles with mask, stores to `out[lane]`.
#[test]
fn shfl_bfly_exchanges_lanes() {
    for mask in [1u32, 2, 4, 8, 16] {
        let mut kb = KernelBuilder::new("shfl", &[1], &[32]);
        let src = kb.param("in", &[32], ScalarType::F32);
        let dst = kb.param("out", &[32], ScalarType::F32);
        let (grid, block) = (kb.grid(), kb.block());
        let warp = kb.thread_tile(block, &Layout::contiguous(32)).unwrap();
        let tid = kb.module()[block].group_coords()[0].clone();
        let v = kb.alloc_reg("v", reg(1, ScalarType::F32));
        let t = kb.alloc_reg("t", reg(1, ScalarType::F32));
        let se = kb.index(src, std::slice::from_ref(&tid));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![v]);
        kb.spec(SpecKind::Shfl { mask }, vec![grid, warp], vec![v], vec![t]);
        let de = kb.index(dst, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![t], vec![de]);
        let kernel = kb.build();

        let input: Vec<f32> = (0..32).map(|i| i as f32 * 10.0).collect();
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], input.clone());
        let out = execute(&kernel, Arch::Sm86, &inputs).unwrap();
        let got = &out.globals[&kernel.params[1]];
        for lane in 0..32usize {
            assert_eq!(got[lane], input[lane ^ mask as usize], "mask {mask} lane {lane}");
        }
    }
}

/// Warp tree reduction via 5 shfl+add steps computes the exact sum.
#[test]
fn warp_reduction_via_shuffles() {
    let mut kb = KernelBuilder::new("wred", &[1], &[32]);
    let src = kb.param("in", &[32], ScalarType::F32);
    let dst = kb.param("out", &[32], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let warp = kb.thread_tile(block, &Layout::contiguous(32)).unwrap();
    let tid = kb.module()[block].group_coords()[0].clone();
    let v = kb.alloc_reg("v", reg(1, ScalarType::F32));
    let t = kb.alloc_reg("t", reg(1, ScalarType::F32));
    let se = kb.index(src, std::slice::from_ref(&tid));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![v]);
    for mask in [16u32, 8, 4, 2, 1] {
        kb.spec(SpecKind::Shfl { mask }, vec![grid, warp], vec![v], vec![t]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::BinaryPointwise(BinaryOp::Add), vec![grid, ts], vec![v, t], vec![v]);
    }
    let de = kb.index(dst, &[tid]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![v], vec![de]);
    let kernel = kb.build();

    let input: Vec<f32> = (0..32).map(|i| (i * i) as f32).collect();
    let want: f32 = input.iter().sum();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], input);
    let out = execute(&kernel, Arch::Sm86, &inputs).unwrap();
    for lane in 0..32 {
        assert_eq!(out.globals[&kernel.params[1]][lane], want, "lane {lane}");
    }
}

/// Init assigns the value to every element of the output tile.
#[test]
fn init_fills_registers_and_shared() {
    let mut kb = KernelBuilder::new("init", &[1], &[32]);
    let dst = kb.param("out", &[32, 4], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let tid = kb.module()[block].group_coords()[0].clone();
    let r = kb.alloc_reg("r", reg(4, ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Init { value: 2.5 }, vec![grid, ts], vec![], vec![r]);
    let dv = kb.tile_c(dst, &[Some(1), Some(4)]).unwrap();
    let de = kb.index(dv, &[tid, IntExpr::zero()]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![r], vec![de]);
    let kernel = kb.build();
    let out = execute(&kernel, Arch::Sm86, &HashMap::new()).unwrap();
    assert!(out.globals[&kernel.params[0]].iter().all(|&v| v == 2.5));
}

/// Per-thread Reduction over a strided register view.
#[test]
fn reduction_over_strided_view() {
    let mut kb = KernelBuilder::new("red", &[1], &[32]);
    let src = kb.param("in", &[32, 8], ScalarType::F32);
    let dst = kb.param("out", &[32], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let tid = kb.module()[block].group_coords()[0].clone();
    let r = kb.alloc_reg("r", reg(8, ScalarType::F32));
    let sv = kb.tile_c(src, &[Some(1), Some(8)]).unwrap();
    let se = kb.index(sv, &[tid.clone(), IntExpr::zero()]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![r]);
    // Reduce only the even elements: view [4:2] over the 8 registers.
    let evens =
        kb.view_as(r, TensorType::scalar(Layout::strided(4, 2), ScalarType::F32), IntExpr::zero());
    let acc = kb.alloc_reg("acc", reg(1, ScalarType::F32));
    let ts = kb.thread_scalar(block);
    kb.spec(
        SpecKind::Reduction { op: ReduceOp::Max, axes: vec![0] },
        vec![grid, ts],
        vec![evens],
        vec![acc],
    );
    let de = kb.index(dst, &[tid]);
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![acc], vec![de]);
    let kernel = kb.build();

    let input: Vec<f32> = (0..256).map(|i| ((i * 37) % 101) as f32).collect();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], input.clone());
    let out = execute(&kernel, Arch::Sm86, &inputs).unwrap();
    for t in 0..32usize {
        let want = (0..4).map(|j| input[t * 8 + 2 * j]).fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(out.globals[&kernel.params[1]][t], want, "thread {t}");
    }
}

/// Unary pointwise semantics through the simulator match the ops table.
#[test]
fn unary_ops_through_simulator() {
    for (op, x, want) in [
        (UnaryOp::Relu, -2.0f32, 0.0f32),
        (UnaryOp::Relu, 3.0, 3.0),
        (UnaryOp::Neg, 3.0, -3.0),
        (UnaryOp::Recip, 4.0, 0.25),
        (UnaryOp::Sqrt, 9.0, 3.0),
    ] {
        let mut kb = KernelBuilder::new("un", &[1], &[32]);
        let src = kb.param("in", &[32], ScalarType::F32);
        let dst = kb.param("out", &[32], ScalarType::F32);
        let (grid, block) = (kb.grid(), kb.block());
        let tid = kb.module()[block].group_coords()[0].clone();
        let r = kb.alloc_reg("r", reg(1, ScalarType::F32));
        let se = kb.index(src, std::slice::from_ref(&tid));
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![r]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::UnaryPointwise(op), vec![grid, ts], vec![r], vec![r]);
        let de = kb.index(dst, &[tid]);
        let ts = kb.thread_scalar(block);
        kb.spec(SpecKind::Move, vec![grid, ts], vec![r], vec![de]);
        let kernel = kb.build();
        let mut inputs = HashMap::new();
        inputs.insert(kernel.params[0], vec![x; 32]);
        let out = execute(&kernel, Arch::Sm86, &inputs).unwrap();
        assert!(
            (out.globals[&kernel.params[1]][0] - want).abs() < 1e-6,
            "{op:?}({x}) -> {} want {want}",
            out.globals[&kernel.params[1]][0]
        );
    }
}

/// Mis-sized input buffers are rejected with a clear error.
#[test]
fn missized_inputs_rejected() {
    let mut kb = KernelBuilder::new("k", &[1], &[32]);
    let src = kb.param("in", &[64], ScalarType::F32);
    let _ = src;
    let kernel = kb.build();
    let mut inputs = HashMap::new();
    inputs.insert(kernel.params[0], vec![0.0f32; 63]);
    let err = execute(&kernel, Arch::Sm86, &inputs).unwrap_err();
    assert!(err.to_string().contains("expects 64 scalars, got 63"), "{err}");
}

/// Out-of-bounds accesses are detected, not silently wrapped.
#[test]
fn out_of_bounds_detected() {
    let mut kb = KernelBuilder::new("oob", &[1], &[32]);
    let src = kb.param("in", &[16], ScalarType::F32);
    let (grid, block) = (kb.grid(), kb.block());
    let tid = kb.module()[block].group_coords()[0].clone();
    let r = kb.alloc_reg("r", reg(1, ScalarType::F32));
    let se = kb.index(src, &[tid * 2]); // threads 8.. read past the end
    let ts = kb.thread_scalar(block);
    kb.spec(SpecKind::Move, vec![grid, ts], vec![se], vec![r]);
    let kernel = kb.build();
    let err = execute(&kernel, Arch::Sm86, &HashMap::new()).unwrap_err();
    assert!(matches!(err, graphene_sim::ExecError::OutOfBounds { .. }), "{err}");
}
